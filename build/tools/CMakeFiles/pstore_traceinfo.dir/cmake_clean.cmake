file(REMOVE_RECURSE
  "CMakeFiles/pstore_traceinfo.dir/pstore_traceinfo.cc.o"
  "CMakeFiles/pstore_traceinfo.dir/pstore_traceinfo.cc.o.d"
  "pstore_traceinfo"
  "pstore_traceinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstore_traceinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
