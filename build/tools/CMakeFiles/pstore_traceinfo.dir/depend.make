# Empty dependencies file for pstore_traceinfo.
# This may be replaced when dependencies are built.
