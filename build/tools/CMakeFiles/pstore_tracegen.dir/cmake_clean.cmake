file(REMOVE_RECURSE
  "CMakeFiles/pstore_tracegen.dir/pstore_tracegen.cc.o"
  "CMakeFiles/pstore_tracegen.dir/pstore_tracegen.cc.o.d"
  "pstore_tracegen"
  "pstore_tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstore_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
