# Empty compiler generated dependencies file for pstore_tracegen.
# This may be replaced when dependencies are built.
