# Empty dependencies file for pstore_simulate.
# This may be replaced when dependencies are built.
