file(REMOVE_RECURSE
  "CMakeFiles/pstore_simulate.dir/pstore_simulate.cc.o"
  "CMakeFiles/pstore_simulate.dir/pstore_simulate.cc.o.d"
  "pstore_simulate"
  "pstore_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstore_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
