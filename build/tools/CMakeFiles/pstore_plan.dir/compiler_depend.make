# Empty compiler generated dependencies file for pstore_plan.
# This may be replaced when dependencies are built.
