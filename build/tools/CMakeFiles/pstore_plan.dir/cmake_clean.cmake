file(REMOVE_RECURSE
  "CMakeFiles/pstore_plan.dir/pstore_plan.cc.o"
  "CMakeFiles/pstore_plan.dir/pstore_plan.cc.o.d"
  "pstore_plan"
  "pstore_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstore_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
