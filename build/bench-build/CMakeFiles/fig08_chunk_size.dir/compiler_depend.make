# Empty compiler generated dependencies file for fig08_chunk_size.
# This may be replaced when dependencies are built.
