file(REMOVE_RECURSE
  "../bench/fig08_chunk_size"
  "../bench/fig08_chunk_size.pdb"
  "CMakeFiles/fig08_chunk_size.dir/fig08_chunk_size.cc.o"
  "CMakeFiles/fig08_chunk_size.dir/fig08_chunk_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_chunk_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
