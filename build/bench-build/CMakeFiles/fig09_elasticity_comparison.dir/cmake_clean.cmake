file(REMOVE_RECURSE
  "../bench/fig09_elasticity_comparison"
  "../bench/fig09_elasticity_comparison.pdb"
  "CMakeFiles/fig09_elasticity_comparison.dir/fig09_elasticity_comparison.cc.o"
  "CMakeFiles/fig09_elasticity_comparison.dir/fig09_elasticity_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_elasticity_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
