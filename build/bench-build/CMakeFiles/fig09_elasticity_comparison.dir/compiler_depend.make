# Empty compiler generated dependencies file for fig09_elasticity_comparison.
# This may be replaced when dependencies are built.
