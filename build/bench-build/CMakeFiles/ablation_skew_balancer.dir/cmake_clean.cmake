file(REMOVE_RECURSE
  "../bench/ablation_skew_balancer"
  "../bench/ablation_skew_balancer.pdb"
  "CMakeFiles/ablation_skew_balancer.dir/ablation_skew_balancer.cc.o"
  "CMakeFiles/ablation_skew_balancer.dir/ablation_skew_balancer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_skew_balancer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
