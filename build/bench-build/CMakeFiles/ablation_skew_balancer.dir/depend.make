# Empty dependencies file for ablation_skew_balancer.
# This may be replaced when dependencies are built.
