file(REMOVE_RECURSE
  "../bench/fig05_spar_b2w"
  "../bench/fig05_spar_b2w.pdb"
  "CMakeFiles/fig05_spar_b2w.dir/fig05_spar_b2w.cc.o"
  "CMakeFiles/fig05_spar_b2w.dir/fig05_spar_b2w.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_spar_b2w.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
