# Empty compiler generated dependencies file for fig05_spar_b2w.
# This may be replaced when dependencies are built.
