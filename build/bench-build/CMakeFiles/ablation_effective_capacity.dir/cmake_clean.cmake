file(REMOVE_RECURSE
  "../bench/ablation_effective_capacity"
  "../bench/ablation_effective_capacity.pdb"
  "CMakeFiles/ablation_effective_capacity.dir/ablation_effective_capacity.cc.o"
  "CMakeFiles/ablation_effective_capacity.dir/ablation_effective_capacity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_effective_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
