# Empty compiler generated dependencies file for fig02_ideal_capacity.
# This may be replaced when dependencies are built.
