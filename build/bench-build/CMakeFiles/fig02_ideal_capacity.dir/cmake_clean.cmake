file(REMOVE_RECURSE
  "../bench/fig02_ideal_capacity"
  "../bench/fig02_ideal_capacity.pdb"
  "CMakeFiles/fig02_ideal_capacity.dir/fig02_ideal_capacity.cc.o"
  "CMakeFiles/fig02_ideal_capacity.dir/fig02_ideal_capacity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_ideal_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
