# Empty dependencies file for ablation_inflation.
# This may be replaced when dependencies are built.
