file(REMOVE_RECURSE
  "../bench/ablation_inflation"
  "../bench/ablation_inflation.pdb"
  "CMakeFiles/ablation_inflation.dir/ablation_inflation.cc.o"
  "CMakeFiles/ablation_inflation.dir/ablation_inflation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inflation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
