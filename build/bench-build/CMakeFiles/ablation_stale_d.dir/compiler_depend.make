# Empty compiler generated dependencies file for ablation_stale_d.
# This may be replaced when dependencies are built.
