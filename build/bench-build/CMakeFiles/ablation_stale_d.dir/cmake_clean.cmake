file(REMOVE_RECURSE
  "../bench/ablation_stale_d"
  "../bench/ablation_stale_d.pdb"
  "CMakeFiles/ablation_stale_d.dir/ablation_stale_d.cc.o"
  "CMakeFiles/ablation_stale_d.dir/ablation_stale_d.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stale_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
