file(REMOVE_RECURSE
  "libpstore_bench_util.a"
)
