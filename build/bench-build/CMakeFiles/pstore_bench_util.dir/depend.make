# Empty dependencies file for pstore_bench_util.
# This may be replaced when dependencies are built.
