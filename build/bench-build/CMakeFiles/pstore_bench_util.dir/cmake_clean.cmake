file(REMOVE_RECURSE
  "CMakeFiles/pstore_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/pstore_bench_util.dir/bench_util.cc.o.d"
  "libpstore_bench_util.a"
  "libpstore_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstore_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
