file(REMOVE_RECURSE
  "../bench/micro_predictor"
  "../bench/micro_predictor.pdb"
  "CMakeFiles/micro_predictor.dir/micro_predictor.cc.o"
  "CMakeFiles/micro_predictor.dir/micro_predictor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
