# Empty compiler generated dependencies file for micro_predictor.
# This may be replaced when dependencies are built.
