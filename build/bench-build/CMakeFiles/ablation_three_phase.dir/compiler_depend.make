# Empty compiler generated dependencies file for ablation_three_phase.
# This may be replaced when dependencies are built.
