file(REMOVE_RECURSE
  "../bench/ablation_three_phase"
  "../bench/ablation_three_phase.pdb"
  "CMakeFiles/ablation_three_phase.dir/ablation_three_phase.cc.o"
  "CMakeFiles/ablation_three_phase.dir/ablation_three_phase.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_three_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
