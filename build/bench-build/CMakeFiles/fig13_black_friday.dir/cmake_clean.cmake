file(REMOVE_RECURSE
  "../bench/fig13_black_friday"
  "../bench/fig13_black_friday.pdb"
  "CMakeFiles/fig13_black_friday.dir/fig13_black_friday.cc.o"
  "CMakeFiles/fig13_black_friday.dir/fig13_black_friday.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_black_friday.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
