# Empty dependencies file for fig13_black_friday.
# This may be replaced when dependencies are built.
