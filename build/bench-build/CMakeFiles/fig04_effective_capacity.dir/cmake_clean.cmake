file(REMOVE_RECURSE
  "../bench/fig04_effective_capacity"
  "../bench/fig04_effective_capacity.pdb"
  "CMakeFiles/fig04_effective_capacity.dir/fig04_effective_capacity.cc.o"
  "CMakeFiles/fig04_effective_capacity.dir/fig04_effective_capacity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_effective_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
