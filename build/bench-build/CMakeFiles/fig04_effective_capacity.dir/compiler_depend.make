# Empty compiler generated dependencies file for fig04_effective_capacity.
# This may be replaced when dependencies are built.
