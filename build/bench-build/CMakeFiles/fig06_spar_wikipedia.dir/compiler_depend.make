# Empty compiler generated dependencies file for fig06_spar_wikipedia.
# This may be replaced when dependencies are built.
