file(REMOVE_RECURSE
  "../bench/fig06_spar_wikipedia"
  "../bench/fig06_spar_wikipedia.pdb"
  "CMakeFiles/fig06_spar_wikipedia.dir/fig06_spar_wikipedia.cc.o"
  "CMakeFiles/fig06_spar_wikipedia.dir/fig06_spar_wikipedia.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_spar_wikipedia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
