# Empty compiler generated dependencies file for fig11_reactive_rates.
# This may be replaced when dependencies are built.
