file(REMOVE_RECURSE
  "../bench/fig11_reactive_rates"
  "../bench/fig11_reactive_rates.pdb"
  "CMakeFiles/fig11_reactive_rates.dir/fig11_reactive_rates.cc.o"
  "CMakeFiles/fig11_reactive_rates.dir/fig11_reactive_rates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_reactive_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
