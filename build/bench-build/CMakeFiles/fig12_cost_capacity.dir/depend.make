# Empty dependencies file for fig12_cost_capacity.
# This may be replaced when dependencies are built.
