file(REMOVE_RECURSE
  "../bench/fig12_cost_capacity"
  "../bench/fig12_cost_capacity.pdb"
  "CMakeFiles/fig12_cost_capacity.dir/fig12_cost_capacity.cc.o"
  "CMakeFiles/fig12_cost_capacity.dir/fig12_cost_capacity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cost_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
