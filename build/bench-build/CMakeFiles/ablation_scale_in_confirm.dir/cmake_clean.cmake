file(REMOVE_RECURSE
  "../bench/ablation_scale_in_confirm"
  "../bench/ablation_scale_in_confirm.pdb"
  "CMakeFiles/ablation_scale_in_confirm.dir/ablation_scale_in_confirm.cc.o"
  "CMakeFiles/ablation_scale_in_confirm.dir/ablation_scale_in_confirm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_scale_in_confirm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
