# Empty dependencies file for ablation_scale_in_confirm.
# This may be replaced when dependencies are built.
