# Empty dependencies file for ext_linear_scalability.
# This may be replaced when dependencies are built.
