file(REMOVE_RECURSE
  "../bench/ext_linear_scalability"
  "../bench/ext_linear_scalability.pdb"
  "CMakeFiles/ext_linear_scalability.dir/ext_linear_scalability.cc.o"
  "CMakeFiles/ext_linear_scalability.dir/ext_linear_scalability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_linear_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
