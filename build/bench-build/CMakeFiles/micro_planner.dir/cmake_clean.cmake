file(REMOVE_RECURSE
  "../bench/micro_planner"
  "../bench/micro_planner.pdb"
  "CMakeFiles/micro_planner.dir/micro_planner.cc.o"
  "CMakeFiles/micro_planner.dir/micro_planner.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
