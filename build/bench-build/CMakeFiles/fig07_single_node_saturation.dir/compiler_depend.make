# Empty compiler generated dependencies file for fig07_single_node_saturation.
# This may be replaced when dependencies are built.
