file(REMOVE_RECURSE
  "../bench/fig07_single_node_saturation"
  "../bench/fig07_single_node_saturation.pdb"
  "CMakeFiles/fig07_single_node_saturation.dir/fig07_single_node_saturation.cc.o"
  "CMakeFiles/fig07_single_node_saturation.dir/fig07_single_node_saturation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_single_node_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
