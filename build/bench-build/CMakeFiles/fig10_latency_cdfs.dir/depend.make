# Empty dependencies file for fig10_latency_cdfs.
# This may be replaced when dependencies are built.
