file(REMOVE_RECURSE
  "../bench/fig10_latency_cdfs"
  "../bench/fig10_latency_cdfs.pdb"
  "CMakeFiles/fig10_latency_cdfs.dir/fig10_latency_cdfs.cc.o"
  "CMakeFiles/fig10_latency_cdfs.dir/fig10_latency_cdfs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_latency_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
