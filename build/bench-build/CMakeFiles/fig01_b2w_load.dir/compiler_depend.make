# Empty compiler generated dependencies file for fig01_b2w_load.
# This may be replaced when dependencies are built.
