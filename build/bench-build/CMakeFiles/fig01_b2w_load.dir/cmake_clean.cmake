file(REMOVE_RECURSE
  "../bench/fig01_b2w_load"
  "../bench/fig01_b2w_load.pdb"
  "CMakeFiles/fig01_b2w_load.dir/fig01_b2w_load.cc.o"
  "CMakeFiles/fig01_b2w_load.dir/fig01_b2w_load.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_b2w_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
