
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_sla_violations.cc" "bench-build/CMakeFiles/table2_sla_violations.dir/table2_sla_violations.cc.o" "gcc" "bench-build/CMakeFiles/table2_sla_violations.dir/table2_sla_violations.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/pstore_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/pstore_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/pstore_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/b2w/CMakeFiles/pstore_b2w.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/pstore_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pstore_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pstore_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/pstore_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/prediction/CMakeFiles/pstore_prediction.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pstore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
