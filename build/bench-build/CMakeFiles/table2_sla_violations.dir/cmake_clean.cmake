file(REMOVE_RECURSE
  "../bench/table2_sla_violations"
  "../bench/table2_sla_violations.pdb"
  "CMakeFiles/table2_sla_violations.dir/table2_sla_violations.cc.o"
  "CMakeFiles/table2_sla_violations.dir/table2_sla_violations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_sla_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
