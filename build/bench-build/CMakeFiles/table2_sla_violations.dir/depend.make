# Empty dependencies file for table2_sla_violations.
# This may be replaced when dependencies are built.
