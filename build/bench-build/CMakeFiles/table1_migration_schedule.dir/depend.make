# Empty dependencies file for table1_migration_schedule.
# This may be replaced when dependencies are built.
