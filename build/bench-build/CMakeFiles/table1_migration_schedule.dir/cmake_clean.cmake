file(REMOVE_RECURSE
  "../bench/table1_migration_schedule"
  "../bench/table1_migration_schedule.pdb"
  "CMakeFiles/table1_migration_schedule.dir/table1_migration_schedule.cc.o"
  "CMakeFiles/table1_migration_schedule.dir/table1_migration_schedule.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_migration_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
