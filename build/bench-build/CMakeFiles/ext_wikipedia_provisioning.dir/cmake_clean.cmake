file(REMOVE_RECURSE
  "../bench/ext_wikipedia_provisioning"
  "../bench/ext_wikipedia_provisioning.pdb"
  "CMakeFiles/ext_wikipedia_provisioning.dir/ext_wikipedia_provisioning.cc.o"
  "CMakeFiles/ext_wikipedia_provisioning.dir/ext_wikipedia_provisioning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_wikipedia_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
