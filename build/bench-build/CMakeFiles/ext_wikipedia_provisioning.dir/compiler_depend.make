# Empty compiler generated dependencies file for ext_wikipedia_provisioning.
# This may be replaced when dependencies are built.
