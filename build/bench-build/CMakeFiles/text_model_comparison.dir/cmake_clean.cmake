file(REMOVE_RECURSE
  "../bench/text_model_comparison"
  "../bench/text_model_comparison.pdb"
  "CMakeFiles/text_model_comparison.dir/text_model_comparison.cc.o"
  "CMakeFiles/text_model_comparison.dir/text_model_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_model_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
