# Empty dependencies file for text_model_comparison.
# This may be replaced when dependencies are built.
