file(REMOVE_RECURSE
  "../bench/ablation_distributed_txns"
  "../bench/ablation_distributed_txns.pdb"
  "CMakeFiles/ablation_distributed_txns.dir/ablation_distributed_txns.cc.o"
  "CMakeFiles/ablation_distributed_txns.dir/ablation_distributed_txns.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_distributed_txns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
