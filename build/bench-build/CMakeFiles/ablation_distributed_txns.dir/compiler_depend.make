# Empty compiler generated dependencies file for ablation_distributed_txns.
# This may be replaced when dependencies are built.
