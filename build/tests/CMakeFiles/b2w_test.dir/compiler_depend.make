# Empty compiler generated dependencies file for b2w_test.
# This may be replaced when dependencies are built.
