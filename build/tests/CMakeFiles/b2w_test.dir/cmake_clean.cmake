file(REMOVE_RECURSE
  "CMakeFiles/b2w_test.dir/b2w_test.cc.o"
  "CMakeFiles/b2w_test.dir/b2w_test.cc.o.d"
  "b2w_test"
  "b2w_test.pdb"
  "b2w_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2w_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
