# Empty dependencies file for event_calendar_test.
# This may be replaced when dependencies are built.
