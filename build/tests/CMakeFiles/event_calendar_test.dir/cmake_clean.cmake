file(REMOVE_RECURSE
  "CMakeFiles/event_calendar_test.dir/event_calendar_test.cc.o"
  "CMakeFiles/event_calendar_test.dir/event_calendar_test.cc.o.d"
  "event_calendar_test"
  "event_calendar_test.pdb"
  "event_calendar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_calendar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
