file(REMOVE_RECURSE
  "CMakeFiles/event_loop_test.dir/event_loop_test.cc.o"
  "CMakeFiles/event_loop_test.dir/event_loop_test.cc.o.d"
  "event_loop_test"
  "event_loop_test.pdb"
  "event_loop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
