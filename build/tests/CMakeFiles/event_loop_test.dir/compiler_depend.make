# Empty compiler generated dependencies file for event_loop_test.
# This may be replaced when dependencies are built.
