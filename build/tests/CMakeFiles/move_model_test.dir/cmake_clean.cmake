file(REMOVE_RECURSE
  "CMakeFiles/move_model_test.dir/move_model_test.cc.o"
  "CMakeFiles/move_model_test.dir/move_model_test.cc.o.d"
  "move_model_test"
  "move_model_test.pdb"
  "move_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/move_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
