# Empty dependencies file for move_model_test.
# This may be replaced when dependencies are built.
