# Empty dependencies file for capacity_sim_test.
# This may be replaced when dependencies are built.
