file(REMOVE_RECURSE
  "CMakeFiles/capacity_sim_test.dir/capacity_sim_test.cc.o"
  "CMakeFiles/capacity_sim_test.dir/capacity_sim_test.cc.o.d"
  "capacity_sim_test"
  "capacity_sim_test.pdb"
  "capacity_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
