# Empty dependencies file for load_balancer_test.
# This may be replaced when dependencies are built.
