# Empty compiler generated dependencies file for time_series_test.
# This may be replaced when dependencies are built.
