file(REMOVE_RECURSE
  "CMakeFiles/time_series_test.dir/time_series_test.cc.o"
  "CMakeFiles/time_series_test.dir/time_series_test.cc.o.d"
  "time_series_test"
  "time_series_test.pdb"
  "time_series_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
