# Empty dependencies file for dp_planner_test.
# This may be replaced when dependencies are built.
