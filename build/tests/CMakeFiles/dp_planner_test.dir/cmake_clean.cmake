file(REMOVE_RECURSE
  "CMakeFiles/dp_planner_test.dir/dp_planner_test.cc.o"
  "CMakeFiles/dp_planner_test.dir/dp_planner_test.cc.o.d"
  "dp_planner_test"
  "dp_planner_test.pdb"
  "dp_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
