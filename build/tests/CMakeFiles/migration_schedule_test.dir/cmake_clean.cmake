file(REMOVE_RECURSE
  "CMakeFiles/migration_schedule_test.dir/migration_schedule_test.cc.o"
  "CMakeFiles/migration_schedule_test.dir/migration_schedule_test.cc.o.d"
  "migration_schedule_test"
  "migration_schedule_test.pdb"
  "migration_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
