# Empty dependencies file for migration_schedule_test.
# This may be replaced when dependencies are built.
