file(REMOVE_RECURSE
  "CMakeFiles/session_workload_test.dir/session_workload_test.cc.o"
  "CMakeFiles/session_workload_test.dir/session_workload_test.cc.o.d"
  "session_workload_test"
  "session_workload_test.pdb"
  "session_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
