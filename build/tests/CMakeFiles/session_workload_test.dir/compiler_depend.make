# Empty compiler generated dependencies file for session_workload_test.
# This may be replaced when dependencies are built.
