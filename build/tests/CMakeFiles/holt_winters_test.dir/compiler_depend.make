# Empty compiler generated dependencies file for holt_winters_test.
# This may be replaced when dependencies are built.
