file(REMOVE_RECURSE
  "CMakeFiles/holt_winters_test.dir/holt_winters_test.cc.o"
  "CMakeFiles/holt_winters_test.dir/holt_winters_test.cc.o.d"
  "holt_winters_test"
  "holt_winters_test.pdb"
  "holt_winters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/holt_winters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
