# Empty dependencies file for distributed_txn_test.
# This may be replaced when dependencies are built.
