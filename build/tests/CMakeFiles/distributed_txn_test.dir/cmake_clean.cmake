file(REMOVE_RECURSE
  "CMakeFiles/distributed_txn_test.dir/distributed_txn_test.cc.o"
  "CMakeFiles/distributed_txn_test.dir/distributed_txn_test.cc.o.d"
  "distributed_txn_test"
  "distributed_txn_test.pdb"
  "distributed_txn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_txn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
