
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/planner/brute_force_planner.cc" "src/planner/CMakeFiles/pstore_planner.dir/brute_force_planner.cc.o" "gcc" "src/planner/CMakeFiles/pstore_planner.dir/brute_force_planner.cc.o.d"
  "/root/repo/src/planner/dp_planner.cc" "src/planner/CMakeFiles/pstore_planner.dir/dp_planner.cc.o" "gcc" "src/planner/CMakeFiles/pstore_planner.dir/dp_planner.cc.o.d"
  "/root/repo/src/planner/migration_schedule.cc" "src/planner/CMakeFiles/pstore_planner.dir/migration_schedule.cc.o" "gcc" "src/planner/CMakeFiles/pstore_planner.dir/migration_schedule.cc.o.d"
  "/root/repo/src/planner/move.cc" "src/planner/CMakeFiles/pstore_planner.dir/move.cc.o" "gcc" "src/planner/CMakeFiles/pstore_planner.dir/move.cc.o.d"
  "/root/repo/src/planner/move_model.cc" "src/planner/CMakeFiles/pstore_planner.dir/move_model.cc.o" "gcc" "src/planner/CMakeFiles/pstore_planner.dir/move_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pstore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
