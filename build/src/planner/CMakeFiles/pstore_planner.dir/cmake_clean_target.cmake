file(REMOVE_RECURSE
  "libpstore_planner.a"
)
