# Empty dependencies file for pstore_planner.
# This may be replaced when dependencies are built.
