file(REMOVE_RECURSE
  "CMakeFiles/pstore_planner.dir/brute_force_planner.cc.o"
  "CMakeFiles/pstore_planner.dir/brute_force_planner.cc.o.d"
  "CMakeFiles/pstore_planner.dir/dp_planner.cc.o"
  "CMakeFiles/pstore_planner.dir/dp_planner.cc.o.d"
  "CMakeFiles/pstore_planner.dir/migration_schedule.cc.o"
  "CMakeFiles/pstore_planner.dir/migration_schedule.cc.o.d"
  "CMakeFiles/pstore_planner.dir/move.cc.o"
  "CMakeFiles/pstore_planner.dir/move.cc.o.d"
  "CMakeFiles/pstore_planner.dir/move_model.cc.o"
  "CMakeFiles/pstore_planner.dir/move_model.cc.o.d"
  "libpstore_planner.a"
  "libpstore_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstore_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
