file(REMOVE_RECURSE
  "CMakeFiles/pstore_migration.dir/squall_migrator.cc.o"
  "CMakeFiles/pstore_migration.dir/squall_migrator.cc.o.d"
  "libpstore_migration.a"
  "libpstore_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstore_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
