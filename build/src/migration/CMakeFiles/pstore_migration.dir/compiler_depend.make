# Empty compiler generated dependencies file for pstore_migration.
# This may be replaced when dependencies are built.
