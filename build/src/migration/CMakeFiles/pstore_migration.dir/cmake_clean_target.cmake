file(REMOVE_RECURSE
  "libpstore_migration.a"
)
