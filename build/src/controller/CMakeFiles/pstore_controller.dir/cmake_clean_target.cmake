file(REMOVE_RECURSE
  "libpstore_controller.a"
)
