file(REMOVE_RECURSE
  "CMakeFiles/pstore_controller.dir/load_balancer.cc.o"
  "CMakeFiles/pstore_controller.dir/load_balancer.cc.o.d"
  "CMakeFiles/pstore_controller.dir/predictive_controller.cc.o"
  "CMakeFiles/pstore_controller.dir/predictive_controller.cc.o.d"
  "CMakeFiles/pstore_controller.dir/reactive_controller.cc.o"
  "CMakeFiles/pstore_controller.dir/reactive_controller.cc.o.d"
  "CMakeFiles/pstore_controller.dir/simple_controller.cc.o"
  "CMakeFiles/pstore_controller.dir/simple_controller.cc.o.d"
  "libpstore_controller.a"
  "libpstore_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstore_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
