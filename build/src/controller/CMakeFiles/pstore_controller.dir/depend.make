# Empty dependencies file for pstore_controller.
# This may be replaced when dependencies are built.
