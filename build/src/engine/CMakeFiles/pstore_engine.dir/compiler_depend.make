# Empty compiler generated dependencies file for pstore_engine.
# This may be replaced when dependencies are built.
