
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/cluster.cc" "src/engine/CMakeFiles/pstore_engine.dir/cluster.cc.o" "gcc" "src/engine/CMakeFiles/pstore_engine.dir/cluster.cc.o.d"
  "/root/repo/src/engine/event_loop.cc" "src/engine/CMakeFiles/pstore_engine.dir/event_loop.cc.o" "gcc" "src/engine/CMakeFiles/pstore_engine.dir/event_loop.cc.o.d"
  "/root/repo/src/engine/metrics.cc" "src/engine/CMakeFiles/pstore_engine.dir/metrics.cc.o" "gcc" "src/engine/CMakeFiles/pstore_engine.dir/metrics.cc.o.d"
  "/root/repo/src/engine/murmur_hash.cc" "src/engine/CMakeFiles/pstore_engine.dir/murmur_hash.cc.o" "gcc" "src/engine/CMakeFiles/pstore_engine.dir/murmur_hash.cc.o.d"
  "/root/repo/src/engine/partition.cc" "src/engine/CMakeFiles/pstore_engine.dir/partition.cc.o" "gcc" "src/engine/CMakeFiles/pstore_engine.dir/partition.cc.o.d"
  "/root/repo/src/engine/txn_executor.cc" "src/engine/CMakeFiles/pstore_engine.dir/txn_executor.cc.o" "gcc" "src/engine/CMakeFiles/pstore_engine.dir/txn_executor.cc.o.d"
  "/root/repo/src/engine/workload_driver.cc" "src/engine/CMakeFiles/pstore_engine.dir/workload_driver.cc.o" "gcc" "src/engine/CMakeFiles/pstore_engine.dir/workload_driver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pstore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
