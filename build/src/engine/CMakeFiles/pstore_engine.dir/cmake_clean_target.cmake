file(REMOVE_RECURSE
  "libpstore_engine.a"
)
