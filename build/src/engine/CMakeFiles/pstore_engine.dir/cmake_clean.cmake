file(REMOVE_RECURSE
  "CMakeFiles/pstore_engine.dir/cluster.cc.o"
  "CMakeFiles/pstore_engine.dir/cluster.cc.o.d"
  "CMakeFiles/pstore_engine.dir/event_loop.cc.o"
  "CMakeFiles/pstore_engine.dir/event_loop.cc.o.d"
  "CMakeFiles/pstore_engine.dir/metrics.cc.o"
  "CMakeFiles/pstore_engine.dir/metrics.cc.o.d"
  "CMakeFiles/pstore_engine.dir/murmur_hash.cc.o"
  "CMakeFiles/pstore_engine.dir/murmur_hash.cc.o.d"
  "CMakeFiles/pstore_engine.dir/partition.cc.o"
  "CMakeFiles/pstore_engine.dir/partition.cc.o.d"
  "CMakeFiles/pstore_engine.dir/txn_executor.cc.o"
  "CMakeFiles/pstore_engine.dir/txn_executor.cc.o.d"
  "CMakeFiles/pstore_engine.dir/workload_driver.cc.o"
  "CMakeFiles/pstore_engine.dir/workload_driver.cc.o.d"
  "libpstore_engine.a"
  "libpstore_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstore_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
