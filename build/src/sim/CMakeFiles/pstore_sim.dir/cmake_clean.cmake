file(REMOVE_RECURSE
  "CMakeFiles/pstore_sim.dir/capacity_simulator.cc.o"
  "CMakeFiles/pstore_sim.dir/capacity_simulator.cc.o.d"
  "libpstore_sim.a"
  "libpstore_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstore_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
