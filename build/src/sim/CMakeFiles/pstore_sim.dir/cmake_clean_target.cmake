file(REMOVE_RECURSE
  "libpstore_sim.a"
)
