# Empty dependencies file for pstore_sim.
# This may be replaced when dependencies are built.
