
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/b2w_trace_generator.cc" "src/trace/CMakeFiles/pstore_trace.dir/b2w_trace_generator.cc.o" "gcc" "src/trace/CMakeFiles/pstore_trace.dir/b2w_trace_generator.cc.o.d"
  "/root/repo/src/trace/spike_injector.cc" "src/trace/CMakeFiles/pstore_trace.dir/spike_injector.cc.o" "gcc" "src/trace/CMakeFiles/pstore_trace.dir/spike_injector.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/pstore_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/pstore_trace.dir/trace_io.cc.o.d"
  "/root/repo/src/trace/wikipedia_trace_generator.cc" "src/trace/CMakeFiles/pstore_trace.dir/wikipedia_trace_generator.cc.o" "gcc" "src/trace/CMakeFiles/pstore_trace.dir/wikipedia_trace_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pstore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
