# Empty dependencies file for pstore_trace.
# This may be replaced when dependencies are built.
