file(REMOVE_RECURSE
  "CMakeFiles/pstore_trace.dir/b2w_trace_generator.cc.o"
  "CMakeFiles/pstore_trace.dir/b2w_trace_generator.cc.o.d"
  "CMakeFiles/pstore_trace.dir/spike_injector.cc.o"
  "CMakeFiles/pstore_trace.dir/spike_injector.cc.o.d"
  "CMakeFiles/pstore_trace.dir/trace_io.cc.o"
  "CMakeFiles/pstore_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/pstore_trace.dir/wikipedia_trace_generator.cc.o"
  "CMakeFiles/pstore_trace.dir/wikipedia_trace_generator.cc.o.d"
  "libpstore_trace.a"
  "libpstore_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstore_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
