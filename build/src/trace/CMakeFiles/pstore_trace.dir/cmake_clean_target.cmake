file(REMOVE_RECURSE
  "libpstore_trace.a"
)
