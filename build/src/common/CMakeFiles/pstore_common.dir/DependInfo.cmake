
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/csv_writer.cc" "src/common/CMakeFiles/pstore_common.dir/csv_writer.cc.o" "gcc" "src/common/CMakeFiles/pstore_common.dir/csv_writer.cc.o.d"
  "/root/repo/src/common/flags.cc" "src/common/CMakeFiles/pstore_common.dir/flags.cc.o" "gcc" "src/common/CMakeFiles/pstore_common.dir/flags.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/common/CMakeFiles/pstore_common.dir/histogram.cc.o" "gcc" "src/common/CMakeFiles/pstore_common.dir/histogram.cc.o.d"
  "/root/repo/src/common/linalg.cc" "src/common/CMakeFiles/pstore_common.dir/linalg.cc.o" "gcc" "src/common/CMakeFiles/pstore_common.dir/linalg.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/common/CMakeFiles/pstore_common.dir/rng.cc.o" "gcc" "src/common/CMakeFiles/pstore_common.dir/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/common/CMakeFiles/pstore_common.dir/status.cc.o" "gcc" "src/common/CMakeFiles/pstore_common.dir/status.cc.o.d"
  "/root/repo/src/common/time_series.cc" "src/common/CMakeFiles/pstore_common.dir/time_series.cc.o" "gcc" "src/common/CMakeFiles/pstore_common.dir/time_series.cc.o.d"
  "/root/repo/src/common/zipf.cc" "src/common/CMakeFiles/pstore_common.dir/zipf.cc.o" "gcc" "src/common/CMakeFiles/pstore_common.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
