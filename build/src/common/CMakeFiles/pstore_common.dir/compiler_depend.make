# Empty compiler generated dependencies file for pstore_common.
# This may be replaced when dependencies are built.
