file(REMOVE_RECURSE
  "libpstore_common.a"
)
