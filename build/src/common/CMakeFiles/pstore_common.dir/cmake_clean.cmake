file(REMOVE_RECURSE
  "CMakeFiles/pstore_common.dir/csv_writer.cc.o"
  "CMakeFiles/pstore_common.dir/csv_writer.cc.o.d"
  "CMakeFiles/pstore_common.dir/flags.cc.o"
  "CMakeFiles/pstore_common.dir/flags.cc.o.d"
  "CMakeFiles/pstore_common.dir/histogram.cc.o"
  "CMakeFiles/pstore_common.dir/histogram.cc.o.d"
  "CMakeFiles/pstore_common.dir/linalg.cc.o"
  "CMakeFiles/pstore_common.dir/linalg.cc.o.d"
  "CMakeFiles/pstore_common.dir/rng.cc.o"
  "CMakeFiles/pstore_common.dir/rng.cc.o.d"
  "CMakeFiles/pstore_common.dir/status.cc.o"
  "CMakeFiles/pstore_common.dir/status.cc.o.d"
  "CMakeFiles/pstore_common.dir/time_series.cc.o"
  "CMakeFiles/pstore_common.dir/time_series.cc.o.d"
  "CMakeFiles/pstore_common.dir/zipf.cc.o"
  "CMakeFiles/pstore_common.dir/zipf.cc.o.d"
  "libpstore_common.a"
  "libpstore_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstore_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
