# CMake generated Testfile for 
# Source directory: /root/repo/src/ycsb
# Build directory: /root/repo/build/src/ycsb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
