file(REMOVE_RECURSE
  "libpstore_ycsb.a"
)
