# Empty dependencies file for pstore_ycsb.
# This may be replaced when dependencies are built.
