file(REMOVE_RECURSE
  "CMakeFiles/pstore_ycsb.dir/ycsb_workload.cc.o"
  "CMakeFiles/pstore_ycsb.dir/ycsb_workload.cc.o.d"
  "libpstore_ycsb.a"
  "libpstore_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstore_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
