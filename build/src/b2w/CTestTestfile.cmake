# CMake generated Testfile for 
# Source directory: /root/repo/src/b2w
# Build directory: /root/repo/build/src/b2w
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
