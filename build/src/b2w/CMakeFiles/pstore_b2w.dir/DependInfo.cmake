
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/b2w/procedures.cc" "src/b2w/CMakeFiles/pstore_b2w.dir/procedures.cc.o" "gcc" "src/b2w/CMakeFiles/pstore_b2w.dir/procedures.cc.o.d"
  "/root/repo/src/b2w/session_workload.cc" "src/b2w/CMakeFiles/pstore_b2w.dir/session_workload.cc.o" "gcc" "src/b2w/CMakeFiles/pstore_b2w.dir/session_workload.cc.o.d"
  "/root/repo/src/b2w/workload.cc" "src/b2w/CMakeFiles/pstore_b2w.dir/workload.cc.o" "gcc" "src/b2w/CMakeFiles/pstore_b2w.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/pstore_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pstore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
