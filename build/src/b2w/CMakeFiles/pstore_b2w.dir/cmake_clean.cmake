file(REMOVE_RECURSE
  "CMakeFiles/pstore_b2w.dir/procedures.cc.o"
  "CMakeFiles/pstore_b2w.dir/procedures.cc.o.d"
  "CMakeFiles/pstore_b2w.dir/session_workload.cc.o"
  "CMakeFiles/pstore_b2w.dir/session_workload.cc.o.d"
  "CMakeFiles/pstore_b2w.dir/workload.cc.o"
  "CMakeFiles/pstore_b2w.dir/workload.cc.o.d"
  "libpstore_b2w.a"
  "libpstore_b2w.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstore_b2w.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
