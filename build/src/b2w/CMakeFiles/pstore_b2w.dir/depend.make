# Empty dependencies file for pstore_b2w.
# This may be replaced when dependencies are built.
