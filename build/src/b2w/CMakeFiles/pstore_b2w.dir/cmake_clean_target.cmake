file(REMOVE_RECURSE
  "libpstore_b2w.a"
)
