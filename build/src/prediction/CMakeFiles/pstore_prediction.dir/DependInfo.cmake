
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prediction/ar_model.cc" "src/prediction/CMakeFiles/pstore_prediction.dir/ar_model.cc.o" "gcc" "src/prediction/CMakeFiles/pstore_prediction.dir/ar_model.cc.o.d"
  "/root/repo/src/prediction/arma_model.cc" "src/prediction/CMakeFiles/pstore_prediction.dir/arma_model.cc.o" "gcc" "src/prediction/CMakeFiles/pstore_prediction.dir/arma_model.cc.o.d"
  "/root/repo/src/prediction/event_calendar.cc" "src/prediction/CMakeFiles/pstore_prediction.dir/event_calendar.cc.o" "gcc" "src/prediction/CMakeFiles/pstore_prediction.dir/event_calendar.cc.o.d"
  "/root/repo/src/prediction/holt_winters.cc" "src/prediction/CMakeFiles/pstore_prediction.dir/holt_winters.cc.o" "gcc" "src/prediction/CMakeFiles/pstore_prediction.dir/holt_winters.cc.o.d"
  "/root/repo/src/prediction/naive_models.cc" "src/prediction/CMakeFiles/pstore_prediction.dir/naive_models.cc.o" "gcc" "src/prediction/CMakeFiles/pstore_prediction.dir/naive_models.cc.o.d"
  "/root/repo/src/prediction/online_predictor.cc" "src/prediction/CMakeFiles/pstore_prediction.dir/online_predictor.cc.o" "gcc" "src/prediction/CMakeFiles/pstore_prediction.dir/online_predictor.cc.o.d"
  "/root/repo/src/prediction/predictor.cc" "src/prediction/CMakeFiles/pstore_prediction.dir/predictor.cc.o" "gcc" "src/prediction/CMakeFiles/pstore_prediction.dir/predictor.cc.o.d"
  "/root/repo/src/prediction/spar_model.cc" "src/prediction/CMakeFiles/pstore_prediction.dir/spar_model.cc.o" "gcc" "src/prediction/CMakeFiles/pstore_prediction.dir/spar_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pstore_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
