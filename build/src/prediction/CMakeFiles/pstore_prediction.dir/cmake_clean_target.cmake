file(REMOVE_RECURSE
  "libpstore_prediction.a"
)
