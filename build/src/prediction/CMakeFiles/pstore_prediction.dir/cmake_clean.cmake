file(REMOVE_RECURSE
  "CMakeFiles/pstore_prediction.dir/ar_model.cc.o"
  "CMakeFiles/pstore_prediction.dir/ar_model.cc.o.d"
  "CMakeFiles/pstore_prediction.dir/arma_model.cc.o"
  "CMakeFiles/pstore_prediction.dir/arma_model.cc.o.d"
  "CMakeFiles/pstore_prediction.dir/event_calendar.cc.o"
  "CMakeFiles/pstore_prediction.dir/event_calendar.cc.o.d"
  "CMakeFiles/pstore_prediction.dir/holt_winters.cc.o"
  "CMakeFiles/pstore_prediction.dir/holt_winters.cc.o.d"
  "CMakeFiles/pstore_prediction.dir/naive_models.cc.o"
  "CMakeFiles/pstore_prediction.dir/naive_models.cc.o.d"
  "CMakeFiles/pstore_prediction.dir/online_predictor.cc.o"
  "CMakeFiles/pstore_prediction.dir/online_predictor.cc.o.d"
  "CMakeFiles/pstore_prediction.dir/predictor.cc.o"
  "CMakeFiles/pstore_prediction.dir/predictor.cc.o.d"
  "CMakeFiles/pstore_prediction.dir/spar_model.cc.o"
  "CMakeFiles/pstore_prediction.dir/spar_model.cc.o.d"
  "libpstore_prediction.a"
  "libpstore_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstore_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
