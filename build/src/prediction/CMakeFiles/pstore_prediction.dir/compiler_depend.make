# Empty compiler generated dependencies file for pstore_prediction.
# This may be replaced when dependencies are built.
