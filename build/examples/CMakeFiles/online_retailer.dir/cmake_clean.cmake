file(REMOVE_RECURSE
  "CMakeFiles/online_retailer.dir/online_retailer.cc.o"
  "CMakeFiles/online_retailer.dir/online_retailer.cc.o.d"
  "online_retailer"
  "online_retailer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_retailer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
