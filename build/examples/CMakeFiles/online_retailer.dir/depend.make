# Empty dependencies file for online_retailer.
# This may be replaced when dependencies are built.
