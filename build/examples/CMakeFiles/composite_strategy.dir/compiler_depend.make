# Empty compiler generated dependencies file for composite_strategy.
# This may be replaced when dependencies are built.
