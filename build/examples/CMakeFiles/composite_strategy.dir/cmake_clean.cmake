file(REMOVE_RECURSE
  "CMakeFiles/composite_strategy.dir/composite_strategy.cc.o"
  "CMakeFiles/composite_strategy.dir/composite_strategy.cc.o.d"
  "composite_strategy"
  "composite_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
