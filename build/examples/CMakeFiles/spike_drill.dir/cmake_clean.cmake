file(REMOVE_RECURSE
  "CMakeFiles/spike_drill.dir/spike_drill.cc.o"
  "CMakeFiles/spike_drill.dir/spike_drill.cc.o.d"
  "spike_drill"
  "spike_drill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spike_drill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
