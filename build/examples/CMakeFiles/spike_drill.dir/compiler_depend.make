# Empty compiler generated dependencies file for spike_drill.
# This may be replaced when dependencies are built.
