#ifndef PSTORE_ENGINE_PARTITION_H_
#define PSTORE_ENGINE_PARTITION_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/sim_time.h"
#include "engine/table.h"

namespace pstore {

// Identifier of a routing bucket. Keys hash to buckets; buckets map to
// partitions. Buckets are the unit of data migration, mirroring how
// fine-grained elasticity systems group tuples into movable blocks.
using BucketId = int32_t;

// The rows of one bucket, organized per table, plus byte/row accounting
// so migration can size chunks without scanning rows, and an access
// counter for hot-spot detection (E-Store-style detailed monitoring).
struct BucketData {
  // Hash maps keep the per-key hot path O(1); rows are only ever probed
  // by key, never iterated, so the unordered order cannot leak into
  // simulation results.
  // pstore-analyze: allow(nondet-iteration)
  std::array<std::unordered_map<uint64_t, Row>, kMaxTables> tables;
  int64_t rows = 0;
  int64_t bytes = 0;
  int64_t accesses = 0;
};

// One H-Store-style data partition: single-threaded storage plus an
// execution queue. The queue is modeled analytically as a FIFO server —
// a job arriving at time t with service time s starts at
// max(t, busy_until) and completes s later — which makes submission O(1)
// and still produces the queueing-delay behaviour (latency blow-up at
// saturation, migration interference) the paper measures.
class Partition {
 public:
  Partition() = default;
  Partition(const Partition&) = delete;
  Partition& operator=(const Partition&) = delete;
  Partition(Partition&&) = default;
  Partition& operator=(Partition&&) = default;

  // --- Execution queue -------------------------------------------------

  // Submits a job at `now` with the given service time; returns its
  // completion time. Latency = completion - now.
  SimTime Submit(SimTime now, SimTime service_time);

  // Time at which the partition becomes idle.
  SimTime busy_until() const { return busy_until_; }

  // Queueing delay a job submitted at `now` would currently experience.
  SimTime QueueDelay(SimTime now) const {
    return busy_until_ > now ? busy_until_ - now : 0;
  }

  // Total service time executed (busy time), for utilization accounting.
  SimTime total_busy_time() const { return total_busy_time_; }
  int64_t jobs_executed() const { return jobs_executed_; }

  // --- Storage ----------------------------------------------------------

  // Inserts or overwrites a row in the given bucket.
  void Put(BucketId bucket, TableId table, uint64_t key, const Row& row);

  // Returns the row or nullptr.
  const Row* Get(BucketId bucket, TableId table, uint64_t key) const;
  Row* GetMutable(BucketId bucket, TableId table, uint64_t key);

  // Removes a row; returns true if it existed.
  bool Erase(BucketId bucket, TableId table, uint64_t key);

  // Bucket-granularity access used by migration: detaches the whole
  // bucket from this partition and returns it. The bucket must exist.
  BucketData ExtractBucket(BucketId bucket);

  // Attaches a bucket (e.g., one extracted from another partition).
  // The bucket must not already exist here.
  void InsertBucket(BucketId bucket, BucketData data);

  bool HasBucket(BucketId bucket) const {
    return buckets_.count(bucket) > 0;
  }
  // Bytes held by one bucket (0 if the bucket holds no data here).
  int64_t BucketBytes(BucketId bucket) const;

  // --- Hot-spot monitoring ---------------------------------------------

  // Counts one transaction against the bucket (creates an empty bucket
  // record if needed so even data-less buckets can be tracked).
  void RecordAccess(BucketId bucket) { ++buckets_[bucket].accesses; }

  // The bucket with the most recorded accesses, or -1 when nothing was
  // recorded. `accesses` (optional) receives its count.
  BucketId HottestBucket(int64_t* accesses = nullptr) const;

  // The bucket with the most recorded accesses that is still <= `cap`,
  // or -1 when none qualifies. Used by the load balancer to pick moves
  // that are guaranteed to shrink the hot/cold gap.
  BucketId HottestBucketBelow(int64_t cap, int64_t* accesses = nullptr) const;

  // Sum of access counts across buckets.
  int64_t TotalAccesses() const;

  // Zeroes all access counters (start of a new monitoring window).
  void ResetAccessCounts();

  int64_t row_count() const { return row_count_; }
  int64_t data_bytes() const { return data_bytes_; }

 private:
  BucketData* FindBucket(BucketId bucket);
  const BucketData* FindBucket(BucketId bucket) const;

  // Bucket ids in ascending order, for traversals whose result could
  // otherwise depend on hash iteration order (hot-spot scans tie-break
  // toward the lowest id).
  std::vector<BucketId> SortedBucketIds() const;

  SimTime busy_until_ = 0;
  SimTime total_busy_time_ = 0;
  int64_t jobs_executed_ = 0;

  // O(1) bucket routing on the Put/Get/Submit hot path. Every
  // order-sensitive traversal goes through SortedBucketIds() so results
  // never depend on hash iteration order.
  // pstore-analyze: allow(nondet-iteration)
  std::unordered_map<BucketId, BucketData> buckets_;
  int64_t row_count_ = 0;
  int64_t data_bytes_ = 0;
};

}  // namespace pstore

#endif  // PSTORE_ENGINE_PARTITION_H_
