#ifndef PSTORE_ENGINE_WORKLOAD_DRIVER_H_
#define PSTORE_ENGINE_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/sim_time.h"
#include "common/time_series.h"
#include "engine/event_loop.h"
#include "engine/transaction.h"
#include "engine/txn_executor.h"
#include "obs/tracer.h"

namespace pstore {

// Options for the open-loop workload driver.
struct DriverOptions {
  // Duration of one trace slot in simulated seconds. The paper replays
  // B2W's per-minute trace at 10x speed, so one trace minute lasts 6
  // simulated seconds.
  double slot_sim_seconds = 6.0;
  // Multiplies trace values to convert them to transactions per
  // simulated second. For a req/min trace replayed at 10x speed:
  // rate [txn/s] = trace [req/min] * 10 / 60.
  double rate_factor = 10.0 / 60.0;
  // Index of the first trace slot to replay.
  size_t start_slot = 0;
  uint64_t seed = 5;
};

// Open-loop driver: replays an aggregate load trace against the executor
// as a Poisson arrival process whose rate follows the trace. Arrivals
// are generated in one-second batches with exact exponential
// inter-arrival gaps, so they arrive sorted and the partition queue
// model stays faithful.
class WorkloadDriver {
 public:
  // Produces the next transaction to submit; called once per arrival.
  using TxnFactory = std::function<TxnRequest(Rng& rng)>;

  WorkloadDriver(EventLoop* loop, TxnExecutor* executor, TimeSeries trace,
                 TxnFactory factory, const DriverOptions& options);
  WorkloadDriver(const WorkloadDriver&) = delete;
  WorkloadDriver& operator=(const WorkloadDriver&) = delete;

  // Schedules the generation ticks; arrivals flow until `end_time` or the
  // trace runs out, whichever is first.
  void Start(SimTime end_time);

  // Offered rate (txn per simulated second) at simulated time `t`.
  double OfferedRate(SimTime t) const;

  int64_t arrivals_generated() const { return arrivals_generated_; }

  // Observability: emits one engine.slot event per one-second generation
  // tick with the offered rate and arrivals produced.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  void Tick();
  // First trace-slot boundary strictly after `t`. Slot boundaries land
  // inside generation ticks whenever slot_sim_seconds is fractional.
  SimTime NextSlotBoundary(SimTime t) const;

  EventLoop* loop_;
  TxnExecutor* executor_;
  TimeSeries trace_;
  TxnFactory factory_;
  DriverOptions options_;
  Rng rng_;
  SimTime end_time_ = 0;
  int64_t arrivals_generated_ = 0;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace pstore

#endif  // PSTORE_ENGINE_WORKLOAD_DRIVER_H_
