#include "engine/murmur_hash.h"

#include <cstring>

namespace pstore {

uint64_t MurmurHash64A(const void* key, size_t len, uint64_t seed) {
  const uint64_t m = 0xc6a4a7935bd1e995ULL;
  const int r = 47;

  uint64_t h = seed ^ (len * m);

  const unsigned char* data = static_cast<const unsigned char*>(key);
  const unsigned char* end = data + (len & ~size_t{7});

  while (data != end) {
    uint64_t k;
    std::memcpy(&k, data, sizeof(k));
    data += 8;

    k *= m;
    k ^= k >> r;
    k *= m;

    h ^= k;
    h *= m;
  }

  switch (len & 7) {
    case 7:
      h ^= static_cast<uint64_t>(data[6]) << 48;
      [[fallthrough]];
    case 6:
      h ^= static_cast<uint64_t>(data[5]) << 40;
      [[fallthrough]];
    case 5:
      h ^= static_cast<uint64_t>(data[4]) << 32;
      [[fallthrough]];
    case 4:
      h ^= static_cast<uint64_t>(data[3]) << 24;
      [[fallthrough]];
    case 3:
      h ^= static_cast<uint64_t>(data[2]) << 16;
      [[fallthrough]];
    case 2:
      h ^= static_cast<uint64_t>(data[1]) << 8;
      [[fallthrough]];
    case 1:
      h ^= static_cast<uint64_t>(data[0]);
      h *= m;
  }

  h ^= h >> r;
  h *= m;
  h ^= h >> r;

  return h;
}

}  // namespace pstore
