#ifndef PSTORE_ENGINE_EVENT_LOOP_H_
#define PSTORE_ENGINE_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/sim_time.h"

namespace pstore {

// Single-threaded discrete-event simulation loop. Events are callbacks
// scheduled at simulated timestamps; ties are broken by scheduling order
// (FIFO), which keeps experiments deterministic.
class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Current simulated time. Starts at 0.
  SimTime now() const { return now_; }

  // Schedules `callback` to run at simulated time `when`. Scheduling in
  // the past (before now()) is clamped to now().
  void ScheduleAt(SimTime when, Callback callback);

  // Schedules `callback` to run `delay` after now().
  void ScheduleAfter(SimTime delay, Callback callback);

  // Runs events until the queue is empty or simulated time would exceed
  // `end`. Events exactly at `end` are executed. Afterwards now() == end
  // unconditionally — even when the queue drains before `end`, the
  // clock lands on `end` (not on the last event's time), so a
  // subsequent ScheduleAfter(d) fires at end + d.
  void RunUntil(SimTime end);

  // Runs everything. Use only when the event graph is known to be finite.
  void RunToCompletion();

  // Installs a hook invoked immediately before each event callback, in
  // both RunUntil and RunToCompletion, after now() has advanced to the
  // event's timestamp. ShardedEngine installs its window barrier here so
  // every event on this loop observes fully-advanced shards. Pass
  // nullptr to clear.
  void set_pre_event_hook(Callback hook) {
    pre_event_hook_ = std::move(hook);
  }

  size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    Callback callback;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  Callback pre_event_hook_;  // null unless sharding is active
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace pstore

#endif  // PSTORE_ENGINE_EVENT_LOOP_H_
