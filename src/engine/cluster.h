#ifndef PSTORE_ENGINE_CLUSTER_H_
#define PSTORE_ENGINE_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "engine/murmur_hash.h"
#include "engine/partition.h"

namespace pstore {

// Static configuration of a simulated shared-nothing cluster.
struct ClusterOptions {
  // Logical data partitions per machine (the paper deploys 6).
  int partitions_per_node = 6;
  // Upper bound on machines; partition objects are created up front so
  // node (de)allocation never invalidates references.
  int max_nodes = 16;
  // Machines active at startup.
  int initial_nodes = 1;
  // Number of routing buckets (the granularity of migration). More
  // buckets = more even shares but smaller migration chunks.
  int num_buckets = 3600;
  // Seed for the MurmurHash2 used to route keys to buckets.
  uint64_t hash_seed = 0x9747b28cULL;
};

// A simulated H-Store-style cluster: `max_nodes` machines of
// `partitions_per_node` partitions each, of which the first
// `active_nodes` are allocated. Keys hash to buckets (MurmurHash2, as in
// the paper §8.1) and a bucket->partition map does the routing; changing
// that map (and physically moving the bucket's rows) is how migration
// reconfigures the cluster.
class Cluster {
 public:
  explicit Cluster(const ClusterOptions& options);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterOptions& options() const { return options_; }
  int active_nodes() const { return active_nodes_; }
  int partitions_per_node() const { return options_.partitions_per_node; }
  int num_buckets() const { return options_.num_buckets; }
  int total_active_partitions() const {
    return active_nodes_ * options_.partitions_per_node;
  }

  // --- Routing ---------------------------------------------------------

  BucketId BucketForKey(uint64_t key) const {
    return static_cast<BucketId>(MurmurHash64(key, options_.hash_seed) %
                                 static_cast<uint64_t>(options_.num_buckets));
  }
  int PartitionOfBucket(BucketId bucket) const {
    return bucket_map_[bucket];
  }
  int PartitionForKey(uint64_t key) const {
    return PartitionOfBucket(BucketForKey(key));
  }
  int NodeOfPartition(int partition_id) const {
    return partition_id / options_.partitions_per_node;
  }

  Partition& partition(int partition_id) { return partitions_[partition_id]; }
  const Partition& partition(int partition_id) const {
    return partitions_[partition_id];
  }

  // --- Node lifecycle ----------------------------------------------------
  // Allocation only; moving data on/off nodes is the migration
  // subsystem's job.

  // Grows the active set to `count` machines (new machines start empty).
  Status ActivateNodes(int count);

  // Shrinks the active set to `count` machines. Every partition of the
  // machines being released must hold no buckets.
  Status DeactivateNodes(int count);

  // --- Node health (fault injection) --------------------------------------
  // Health is orthogonal to allocation: a crashed node keeps its data and
  // its place in the active set, but serves no transactions and accepts
  // no migration chunks until it recovers. The fault subsystem toggles
  // these; the executor and migrator consult them.

  void MarkNodeDown(int node);
  void MarkNodeUp(int node);
  bool IsNodeUp(int node) const { return node_up_[node] != 0; }

  // --- Bucket placement ---------------------------------------------------

  // Reassigns a bucket's routing to `partition_id` and physically moves
  // its rows there. No-op if already there.
  void MoveBucket(BucketId bucket, int partition_id);

  // Spreads all buckets evenly across the active partitions
  // (round-robin), physically moving rows. Used for initial placement.
  void AssignBucketsEvenly();

  std::vector<BucketId> BucketsOnPartition(int partition_id) const;
  std::vector<BucketId> BucketsOnNode(int node) const;

  // --- Accounting ----------------------------------------------------------

  int64_t TotalDataBytes() const;
  int64_t TotalRowCount() const;
  int64_t NodeDataBytes(int node) const;

 private:
  ClusterOptions options_;
  int active_nodes_;
  std::vector<Partition> partitions_;     // max_nodes * partitions_per_node
  std::vector<int> bucket_map_;           // bucket -> partition id
  std::vector<char> node_up_;             // per node; 1 = healthy
};

}  // namespace pstore

#endif  // PSTORE_ENGINE_CLUSTER_H_
