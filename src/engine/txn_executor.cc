#include "engine/txn_executor.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "engine/cluster.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "engine/transaction.h"
#include "obs/tracer.h"

namespace pstore {

TxnExecutor::TxnExecutor(Cluster* cluster, MetricsCollector* metrics,
                         const ExecutorOptions& options)
    : cluster_(cluster),
      metrics_(metrics),
      options_(options),
      rng_(options.seed) {
  PSTORE_CHECK(cluster_ != nullptr);
  PSTORE_CHECK(options_.mean_service_seconds > 0.0);
}

Status TxnExecutor::RegisterProcedure(ProcedureId id, ProcedureHandler handler,
                                      double service_scale) {
  if (id >= kMaxProcedures) {
    return Status::OutOfRange("procedure id " + std::to_string(id) +
                              " exceeds kMaxProcedures");
  }
  if (handler == nullptr) {
    return Status::InvalidArgument("null procedure handler");
  }
  if (service_scale <= 0.0) {
    return Status::InvalidArgument("service_scale must be positive");
  }
  if (handlers_[id] != nullptr) {
    return Status::AlreadyExists("procedure " + std::to_string(id) +
                                 " already registered");
  }
  handlers_[id] = handler;
  service_scale_[id] = service_scale;
  return Status::OK();
}

Status TxnExecutor::RegisterMultiProcedure(ProcedureId id,
                                           MultiProcedureHandler handler,
                                           double service_scale) {
  if (id >= kMaxProcedures) {
    return Status::OutOfRange("procedure id " + std::to_string(id) +
                              " exceeds kMaxProcedures");
  }
  if (handler == nullptr) {
    return Status::InvalidArgument("null procedure handler");
  }
  if (service_scale <= 0.0) {
    return Status::InvalidArgument("service_scale must be positive");
  }
  if (handlers_[id] != nullptr || multi_handlers_[id] != nullptr) {
    return Status::AlreadyExists("procedure " + std::to_string(id) +
                                 " already registered");
  }
  multi_handlers_[id] = handler;
  service_scale_[id] = service_scale;
  return Status::OK();
}

void TxnExecutor::CountOutcome(ProcedureId id, const TxnResult& result) {
  if (result.status == TxnStatus::kCommitted) {
    ++committed_count_;
    ++procedure_stats_[id].committed;
  } else {
    ++aborted_count_;
    ++procedure_stats_[id].aborted;
  }
}

TxnResult TxnExecutor::SubmitMulti(const TxnRequest& request, SimTime now) {
  const int num_keys = 1 + request.num_extra_keys;
  TxnContext contexts[kMaxTxnKeys];
  bool distributed = false;
  for (int i = 0; i < num_keys; ++i) {
    const uint64_t key = i == 0 ? request.key : request.extra_keys[i - 1];
    const BucketId bucket = cluster_->BucketForKey(key);
    const int partition_id = cluster_->PartitionOfBucket(bucket);
    if (!cluster_->IsNodeUp(cluster_->NodeOfPartition(partition_id))) {
      ++unavailable_count_;
      if (metrics_ != nullptr) metrics_->RecordUnavailable(now);
      const TxnResult result{TxnStatus::kUnavailable, 0};
      CountOutcome(request.procedure, result);
      return result;
    }
    contexts[i].partition = &cluster_->partition(partition_id);
    contexts[i].bucket = bucket;
    contexts[i].key = key;
    contexts[i].arg = request.arg;
    contexts[i].partition->RecordAccess(bucket);
    if (contexts[i].partition != contexts[0].partition) distributed = true;
  }
  if (distributed) ++distributed_count_;

  const TxnResult result =
      multi_handlers_[request.procedure](contexts, num_keys);

  // Every participant executes its fragment; a distributed transaction
  // additionally pays 2PC overhead on each participant and completes
  // only after all participants have, plus the coordination delay.
  const double base_mean =
      options_.mean_service_seconds * service_scale_[request.procedure];
  const double mean =
      distributed ? base_mean * (1.0 + options_.two_pc_overhead) : base_mean;
  SimTime completion = 0;
  for (int i = 0; i < num_keys; ++i) {
    // Skip duplicate partitions (both keys on the same partition = one
    // fragment).
    bool duplicate = false;
    for (int j = 0; j < i; ++j) {
      if (contexts[j].partition == contexts[i].partition) duplicate = true;
    }
    if (duplicate) continue;
    const SimTime service = FromSeconds(rng_.NextExponential(mean));
    completion =
        std::max(completion, contexts[i].partition->Submit(now, service));
  }
  if (distributed) {
    completion += FromSeconds(options_.coordination_delay_seconds);
  }
  if (metrics_ != nullptr) metrics_->RecordTxn(now, completion);
  CountOutcome(request.procedure, result);
  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kVerbose, now,
               "engine.txn",
               .With("proc", request.procedure)
                   .With("committed", result.status == TxnStatus::kCommitted)
                   .With("distributed", distributed)
                   .With("latency_us", completion - now));
  return result;
}

TxnResult TxnExecutor::Submit(const TxnRequest& request, SimTime now) {
  ++submitted_count_;
  if (request.procedure >= kMaxProcedures ||
      (handlers_[request.procedure] == nullptr &&
       multi_handlers_[request.procedure] == nullptr)) {
    ++aborted_count_;
    return TxnResult{TxnStatus::kUnknownProcedure, 0};
  }
  if (multi_handlers_[request.procedure] != nullptr) {
    if (request.num_extra_keys < 0 ||
        request.num_extra_keys > kMaxTxnKeys - 1) {
      ++aborted_count_;
      return TxnResult{TxnStatus::kAborted, 0};
    }
    return SubmitMulti(request, now);
  }

  const BucketId bucket = cluster_->BucketForKey(request.key);
  const int partition_id = cluster_->PartitionOfBucket(bucket);
  if (!cluster_->IsNodeUp(cluster_->NodeOfPartition(partition_id))) {
    // The owning node is crashed: fail fast without executing or
    // charging service time (the client sees an error, not a stall).
    ++unavailable_count_;
    if (metrics_ != nullptr) metrics_->RecordUnavailable(now);
    const TxnResult result{TxnStatus::kUnavailable, 0};
    CountOutcome(request.procedure, result);
    return result;
  }
  Partition& partition = cluster_->partition(partition_id);
  partition.RecordAccess(bucket);

  TxnContext context;
  context.partition = &partition;
  context.bucket = bucket;
  context.key = request.key;
  context.arg = request.arg;
  const TxnResult result = handlers_[request.procedure](context);

  const double mean =
      options_.mean_service_seconds * service_scale_[request.procedure];
  const SimTime service = FromSeconds(rng_.NextExponential(mean));
  const SimTime completion = partition.Submit(now, service);
  if (metrics_ != nullptr) metrics_->RecordTxn(now, completion);

  CountOutcome(request.procedure, result);
  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kVerbose, now,
               "engine.txn",
               .With("proc", request.procedure)
                   .With("committed", result.status == TxnStatus::kCommitted)
                   .With("distributed", false)
                   .With("latency_us", completion - now));
  return result;
}

}  // namespace pstore
