#include "engine/txn_executor.h"

#include <algorithm>
#include <array>
#include <string>

#include "common/logging.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "engine/cluster.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "engine/sharded_loop.h"
#include "engine/transaction.h"
#include "obs/tracer.h"

namespace pstore {

TxnExecutor::TxnExecutor(Cluster* cluster, MetricsCollector* metrics,
                         const ExecutorOptions& options)
    : cluster_(cluster),
      metrics_(metrics),
      options_(options),
      rng_(options.seed) {
  PSTORE_CHECK(cluster_ != nullptr);
  PSTORE_CHECK(options_.mean_service_seconds > 0.0);
}

Status TxnExecutor::RegisterProcedure(ProcedureId id, ProcedureHandler handler,
                                      double service_scale) {
  if (id >= kMaxProcedures) {
    return Status::OutOfRange("procedure id " + std::to_string(id) +
                              " exceeds kMaxProcedures");
  }
  if (handler == nullptr) {
    return Status::InvalidArgument("null procedure handler");
  }
  if (service_scale <= 0.0) {
    return Status::InvalidArgument("service_scale must be positive");
  }
  if (handlers_[id] != nullptr) {
    return Status::AlreadyExists("procedure " + std::to_string(id) +
                                 " already registered");
  }
  handlers_[id] = handler;
  service_scale_[id] = service_scale;
  return Status::OK();
}

Status TxnExecutor::RegisterMultiProcedure(ProcedureId id,
                                           MultiProcedureHandler handler,
                                           double service_scale) {
  if (id >= kMaxProcedures) {
    return Status::OutOfRange("procedure id " + std::to_string(id) +
                              " exceeds kMaxProcedures");
  }
  if (handler == nullptr) {
    return Status::InvalidArgument("null procedure handler");
  }
  if (service_scale <= 0.0) {
    return Status::InvalidArgument("service_scale must be positive");
  }
  if (handlers_[id] != nullptr || multi_handlers_[id] != nullptr) {
    return Status::AlreadyExists("procedure " + std::to_string(id) +
                                 " already registered");
  }
  multi_handlers_[id] = handler;
  service_scale_[id] = service_scale;
  return Status::OK();
}

void TxnExecutor::CountOutcome(ProcedureId id, const TxnResult& result) {
  if (result.status == TxnStatus::kCommitted) {
    ++committed_count_;
    ++procedure_stats_[id].committed;
  } else {
    ++aborted_count_;
    ++procedure_stats_[id].aborted;
  }
}

TxnResult TxnExecutor::SubmitMulti(const TxnRequest& request, SimTime now) {
  const int num_keys = 1 + request.num_extra_keys;
  TxnContext contexts[kMaxTxnKeys];
  bool distributed = false;
  for (int i = 0; i < num_keys; ++i) {
    const uint64_t key = i == 0 ? request.key : request.extra_keys[i - 1];
    const BucketId bucket = cluster_->BucketForKey(key);
    const int partition_id = cluster_->PartitionOfBucket(bucket);
    if (!cluster_->IsNodeUp(cluster_->NodeOfPartition(partition_id))) {
      ++unavailable_count_;
      if (metrics_ != nullptr) metrics_->RecordUnavailable(now);
      const TxnResult result{TxnStatus::kUnavailable, 0};
      CountOutcome(request.procedure, result);
      return result;
    }
    contexts[i].partition = &cluster_->partition(partition_id);
    contexts[i].bucket = bucket;
    contexts[i].key = key;
    contexts[i].arg = request.arg;
    contexts[i].partition->RecordAccess(bucket);
    if (contexts[i].partition != contexts[0].partition) distributed = true;
  }
  if (distributed) ++distributed_count_;

  const TxnResult result =
      multi_handlers_[request.procedure](contexts, num_keys);

  // Every participant executes its fragment; a distributed transaction
  // additionally pays 2PC overhead on each participant and completes
  // only after all participants have, plus the coordination delay.
  const double base_mean =
      options_.mean_service_seconds * service_scale_[request.procedure];
  const double mean =
      distributed ? base_mean * (1.0 + options_.two_pc_overhead) : base_mean;
  SimTime completion = 0;
  for (int i = 0; i < num_keys; ++i) {
    // Skip duplicate partitions (both keys on the same partition = one
    // fragment).
    bool duplicate = false;
    for (int j = 0; j < i; ++j) {
      if (contexts[j].partition == contexts[i].partition) duplicate = true;
    }
    if (duplicate) continue;
    const SimTime service = FromSeconds(rng_.NextExponential(mean));
    completion =
        std::max(completion, contexts[i].partition->Submit(now, service));
  }
  if (distributed) {
    completion += FromSeconds(options_.coordination_delay_seconds);
  }
  if (metrics_ != nullptr) metrics_->RecordTxn(now, completion);
  CountOutcome(request.procedure, result);
  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kVerbose, now,
               "engine.txn",
               .With("proc", request.procedure)
                   .With("committed", result.status == TxnStatus::kCommitted)
                   .With("distributed", distributed)
                   .With("latency_us", completion - now));
  return result;
}

TxnResult TxnExecutor::Submit(const TxnRequest& request, SimTime now) {
  ++submitted_count_;
  if (request.procedure >= kMaxProcedures ||
      (handlers_[request.procedure] == nullptr &&
       multi_handlers_[request.procedure] == nullptr)) {
    ++aborted_count_;
    return TxnResult{TxnStatus::kUnknownProcedure, 0};
  }
  if (multi_handlers_[request.procedure] != nullptr) {
    if (request.num_extra_keys < 0 ||
        request.num_extra_keys > kMaxTxnKeys - 1) {
      ++aborted_count_;
      return TxnResult{TxnStatus::kAborted, 0};
    }
    return SubmitMulti(request, now);
  }

  const BucketId bucket = cluster_->BucketForKey(request.key);
  const int partition_id = cluster_->PartitionOfBucket(bucket);
  if (!cluster_->IsNodeUp(cluster_->NodeOfPartition(partition_id))) {
    // The owning node is crashed: fail fast without executing or
    // charging service time (the client sees an error, not a stall).
    ++unavailable_count_;
    if (metrics_ != nullptr) metrics_->RecordUnavailable(now);
    const TxnResult result{TxnStatus::kUnavailable, 0};
    CountOutcome(request.procedure, result);
    return result;
  }
  Partition& partition = cluster_->partition(partition_id);
  partition.RecordAccess(bucket);

  TxnContext context;
  context.partition = &partition;
  context.bucket = bucket;
  context.key = request.key;
  context.arg = request.arg;
  const TxnResult result = handlers_[request.procedure](context);

  const double mean =
      options_.mean_service_seconds * service_scale_[request.procedure];
  const SimTime service = FromSeconds(rng_.NextExponential(mean));
  const SimTime completion = partition.Submit(now, service);
  if (metrics_ != nullptr) metrics_->RecordTxn(now, completion);

  CountOutcome(request.procedure, result);
  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kVerbose, now,
               "engine.txn",
               .With("proc", request.procedure)
                   .With("committed", result.status == TxnStatus::kCommitted)
                   .With("distributed", false)
                   .With("latency_us", completion - now));
  return result;
}

void TxnExecutor::EnableSharding(ShardedEngine* engine) {
  PSTORE_CHECK(engine != nullptr);
  // A serial engine would add indirection without parallelism; the
  // threads == 1 golden path stays on the classic inline Submit().
  PSTORE_CHECK(!engine->serial());
  PSTORE_CHECK(engine_ == nullptr);
  engine_ = engine;
  const double window =
      metrics_ != nullptr ? metrics_->window_seconds() : 1.0;
  const int num_shards = engine->num_shards();
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) shards_.emplace_back(window);
}

void TxnExecutor::CountShardOutcome(ShardState& shard, ProcedureId id,
                                    const TxnResult& result) {
  if (result.status == TxnStatus::kCommitted) {
    ++shard.committed;
    ++shard.procedure_stats[id].committed;
  } else {
    ++shard.aborted;
    ++shard.procedure_stats[id].aborted;
  }
}

void TxnExecutor::SendTxnTrace(int shard, SimTime now, ProcedureId proc,
                               const TxnResult& result, bool distributed,
                               SimTime completion) {
  const bool committed = result.status == TxnStatus::kCommitted;
  const SimTime latency = completion - now;
  engine_->Send(shard, ShardedEngine::kControlPlane, now,
                [this, now, proc, committed, distributed, latency] {
                  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kVerbose,
                               now, "engine.txn",
                               .With("proc", proc)
                                   .With("committed", committed)
                                   .With("distributed", distributed)
                                   .With("latency_us", latency));
                });
}

void TxnExecutor::SubmitSharded(const TxnRequest& request, SimTime now) {
  PSTORE_DCHECK(engine_ != nullptr);
  ++submitted_count_;
  if (request.procedure >= kMaxProcedures ||
      (handlers_[request.procedure] == nullptr &&
       multi_handlers_[request.procedure] == nullptr)) {
    ++aborted_count_;
    return;
  }
  if (multi_handlers_[request.procedure] != nullptr) {
    if (request.num_extra_keys < 0 ||
        request.num_extra_keys > kMaxTxnKeys - 1) {
      ++aborted_count_;
      return;
    }
    SubmitMultiSharded(request, now);
    return;
  }

  const BucketId bucket = cluster_->BucketForKey(request.key);
  const int partition_id = cluster_->PartitionOfBucket(bucket);
  const int node = cluster_->NodeOfPartition(partition_id);
  if (!cluster_->IsNodeUp(node)) {
    ++unavailable_count_;
    if (metrics_ != nullptr) metrics_->RecordUnavailable(now);
    CountOutcome(request.procedure, TxnResult{TxnStatus::kUnavailable, 0});
    return;
  }
  // The serial path draws the service time after the handler runs, but
  // handlers never touch rng_, so drawing here keeps the stream position
  // identical while leaving the deferred body RNG-free.
  const double mean =
      options_.mean_service_seconds * service_scale_[request.procedure];
  const SimTime service = FromSeconds(rng_.NextExponential(mean));
  Partition* partition = &cluster_->partition(partition_id);
  const bool want_trace =
      tracer_ != nullptr && tracer_->enabled(obs::TraceCategory::kVerbose);
  engine_->Post(
      node, now,
      [this, request, now, service, partition, bucket, node, want_trace] {
        partition->RecordAccess(bucket);
        TxnContext context;
        context.partition = partition;
        context.bucket = bucket;
        context.key = request.key;
        context.arg = request.arg;
        const TxnResult result = handlers_[request.procedure](context);
        const SimTime completion = partition->Submit(now, service);
        ShardState& shard = shards_[static_cast<size_t>(node)];
        shard.metrics.RecordTxn(now, completion);
        CountShardOutcome(shard, request.procedure, result);
        if (want_trace) {
          SendTxnTrace(node, now, request.procedure, result, false,
                       completion);
        }
      });
}

void TxnExecutor::SubmitMultiSharded(const TxnRequest& request, SimTime now) {
  const int num_keys = 1 + request.num_extra_keys;
  std::array<BucketId, kMaxTxnKeys> buckets = {};
  std::array<int, kMaxTxnKeys> partition_ids = {};
  for (int i = 0; i < num_keys; ++i) {
    const uint64_t key = i == 0 ? request.key : request.extra_keys[i - 1];
    buckets[i] = cluster_->BucketForKey(key);
    partition_ids[i] = cluster_->PartitionOfBucket(buckets[i]);
    if (!cluster_->IsNodeUp(cluster_->NodeOfPartition(partition_ids[i]))) {
      // The serial path records accesses for the keys it routed before
      // hitting the down node (see SubmitMulti); replay exactly those on
      // their shards before failing fast.
      for (int j = 0; j < i; ++j) {
        Partition* partition = &cluster_->partition(partition_ids[j]);
        const BucketId bucket = buckets[j];
        engine_->Post(cluster_->NodeOfPartition(partition_ids[j]), now,
                      [partition, bucket] { partition->RecordAccess(bucket); });
      }
      ++unavailable_count_;
      if (metrics_ != nullptr) metrics_->RecordUnavailable(now);
      CountOutcome(request.procedure, TxnResult{TxnStatus::kUnavailable, 0});
      return;
    }
  }

  const int home = cluster_->NodeOfPartition(partition_ids[0]);
  bool cross_node = false;
  for (int i = 1; i < num_keys; ++i) {
    if (cluster_->NodeOfPartition(partition_ids[i]) != home) cross_node = true;
  }
  if (cross_node) {
    // Participants span shards: synchronize everything to `now` and run
    // the classic inline path. RNG draws still happen in arrival order
    // and metrics/counters land in the control-plane collector, exactly
    // the monolithic behavior. §4.2's "few distributed transactions"
    // assumption is what keeps this barrier rare.
    engine_->Flush();
    SubmitMulti(request, now);
    return;
  }

  // All keys on one node: the whole transaction defers to that shard,
  // including the multi-partition (same-node "distributed") case — the
  // shard owns every participant partition.
  bool distributed = false;
  for (int i = 1; i < num_keys; ++i) {
    if (partition_ids[i] != partition_ids[0]) distributed = true;
  }
  if (distributed) ++distributed_count_;

  const double base_mean =
      options_.mean_service_seconds * service_scale_[request.procedure];
  const double mean =
      distributed ? base_mean * (1.0 + options_.two_pc_overhead) : base_mean;
  // Pre-draw the per-distinct-partition service times in key order,
  // mirroring the serial loop (handlers are RNG-free, so the stream
  // position matches).
  std::array<SimTime, kMaxTxnKeys> services = {};
  std::array<bool, kMaxTxnKeys> duplicate = {};
  std::array<Partition*, kMaxTxnKeys> partitions = {};
  for (int i = 0; i < num_keys; ++i) {
    partitions[i] = &cluster_->partition(partition_ids[i]);
    for (int j = 0; j < i; ++j) {
      if (partition_ids[j] == partition_ids[i]) duplicate[i] = true;
    }
    if (!duplicate[i]) services[i] = FromSeconds(rng_.NextExponential(mean));
  }
  const bool want_trace =
      tracer_ != nullptr && tracer_->enabled(obs::TraceCategory::kVerbose);
  engine_->Post(
      home, now,
      [this, request, now, num_keys, buckets, partitions, services, duplicate,
       distributed, home, want_trace] {
        TxnContext contexts[kMaxTxnKeys];
        for (int i = 0; i < num_keys; ++i) {
          contexts[i].partition = partitions[i];
          contexts[i].bucket = buckets[i];
          contexts[i].key = i == 0 ? request.key : request.extra_keys[i - 1];
          contexts[i].arg = request.arg;
          contexts[i].partition->RecordAccess(buckets[i]);
        }
        const TxnResult result =
            multi_handlers_[request.procedure](contexts, num_keys);
        SimTime completion = 0;
        for (int i = 0; i < num_keys; ++i) {
          if (duplicate[i]) continue;
          completion =
              std::max(completion, partitions[i]->Submit(now, services[i]));
        }
        if (distributed) {
          completion += FromSeconds(options_.coordination_delay_seconds);
        }
        ShardState& shard = shards_[static_cast<size_t>(home)];
        shard.metrics.RecordTxn(now, completion);
        CountShardOutcome(shard, request.procedure, result);
        if (want_trace) {
          SendTxnTrace(home, now, request.procedure, result, distributed,
                       completion);
        }
      });
}

void TxnExecutor::FoldShardStats() {
  if (engine_ == nullptr) return;
  PSTORE_CHECK(!folded_);
  folded_ = true;
  for (ShardState& shard : shards_) {
    if (metrics_ != nullptr) metrics_->MergeFrom(shard.metrics);
    committed_count_ += shard.committed;
    aborted_count_ += shard.aborted;
    for (int i = 0; i < kMaxProcedures; ++i) {
      procedure_stats_[i].committed += shard.procedure_stats[i].committed;
      procedure_stats_[i].aborted += shard.procedure_stats[i].aborted;
    }
  }
}

}  // namespace pstore
