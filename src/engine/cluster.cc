#include "engine/cluster.h"

#include <string>
#include <utility>

#include "common/logging.h"
#include "common/status.h"
#include "engine/partition.h"

namespace pstore {

Cluster::Cluster(const ClusterOptions& options)
    : options_(options), active_nodes_(options.initial_nodes) {
  PSTORE_CHECK(options_.partitions_per_node >= 1);
  PSTORE_CHECK(options_.max_nodes >= 1);
  PSTORE_CHECK(options_.initial_nodes >= 1 &&
               options_.initial_nodes <= options_.max_nodes);
  PSTORE_CHECK(options_.num_buckets >= 1);
  partitions_.resize(static_cast<size_t>(options_.max_nodes) *
                     options_.partitions_per_node);
  bucket_map_.resize(options_.num_buckets);
  node_up_.assign(static_cast<size_t>(options_.max_nodes), 1);
  // Initial placement: round-robin across the active partitions.
  for (int b = 0; b < options_.num_buckets; ++b) {
    bucket_map_[b] = b % total_active_partitions();
  }
}

Status Cluster::ActivateNodes(int count) {
  if (count < active_nodes_) {
    return Status::InvalidArgument("ActivateNodes cannot shrink the cluster");
  }
  if (count > options_.max_nodes) {
    return Status::OutOfRange("cluster capped at " +
                              std::to_string(options_.max_nodes) + " nodes");
  }
  active_nodes_ = count;
  return Status::OK();
}

Status Cluster::DeactivateNodes(int count) {
  if (count > active_nodes_) {
    return Status::InvalidArgument("DeactivateNodes cannot grow the cluster");
  }
  if (count < 1) {
    return Status::InvalidArgument("at least one node must stay active");
  }
  // The released machines must hold no buckets.
  const int first_released_partition = count * options_.partitions_per_node;
  for (int b = 0; b < options_.num_buckets; ++b) {
    if (bucket_map_[b] >= first_released_partition) {
      return Status::FailedPrecondition(
          "bucket " + std::to_string(b) + " still routed to partition " +
          std::to_string(bucket_map_[b]) + " on a node being released");
    }
  }
  active_nodes_ = count;
  return Status::OK();
}

void Cluster::MarkNodeDown(int node) {
  PSTORE_CHECK(node >= 0 && node < options_.max_nodes);
  node_up_[node] = 0;
}

void Cluster::MarkNodeUp(int node) {
  PSTORE_CHECK(node >= 0 && node < options_.max_nodes);
  node_up_[node] = 1;
}

void Cluster::MoveBucket(BucketId bucket, int partition_id) {
  PSTORE_CHECK(bucket >= 0 && bucket < options_.num_buckets);
  PSTORE_CHECK(partition_id >= 0 &&
               partition_id < static_cast<int>(partitions_.size()));
  const int from = bucket_map_[bucket];
  if (from == partition_id) return;
  if (partitions_[from].HasBucket(bucket)) {
    partitions_[partition_id].InsertBucket(
        bucket, partitions_[from].ExtractBucket(bucket));
  }
  bucket_map_[bucket] = partition_id;
}

void Cluster::AssignBucketsEvenly() {
  for (int b = 0; b < options_.num_buckets; ++b) {
    MoveBucket(b, b % total_active_partitions());
  }
}

std::vector<BucketId> Cluster::BucketsOnPartition(int partition_id) const {
  std::vector<BucketId> out;
  out.reserve(static_cast<size_t>(options_.num_buckets) /
              partitions_.size());
  for (int b = 0; b < options_.num_buckets; ++b) {
    if (bucket_map_[b] == partition_id) out.push_back(b);
  }
  return out;
}

std::vector<BucketId> Cluster::BucketsOnNode(int node) const {
  std::vector<BucketId> out;
  const int first = node * options_.partitions_per_node;
  const int last = first + options_.partitions_per_node;
  for (int b = 0; b < options_.num_buckets; ++b) {
    if (bucket_map_[b] >= first && bucket_map_[b] < last) out.push_back(b);
  }
  return out;
}

int64_t Cluster::TotalDataBytes() const {
  int64_t total = 0;
  for (const Partition& p : partitions_) total += p.data_bytes();
  return total;
}

int64_t Cluster::TotalRowCount() const {
  int64_t total = 0;
  for (const Partition& p : partitions_) total += p.row_count();
  return total;
}

int64_t Cluster::NodeDataBytes(int node) const {
  int64_t total = 0;
  const int first = node * options_.partitions_per_node;
  for (int p = first; p < first + options_.partitions_per_node; ++p) {
    total += partitions_[p].data_bytes();
  }
  return total;
}

}  // namespace pstore
