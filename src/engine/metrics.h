#ifndef PSTORE_ENGINE_METRICS_H_
#define PSTORE_ENGINE_METRICS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/sim_time.h"

namespace pstore {

// Fixed-footprint log-bucketed latency histogram for one metrics window.
// 8 sub-buckets per octave from 100 us up to ~6000 s: small enough
// (128 x 4 bytes) to keep one per second for multi-day experiments,
// accurate enough (~9% relative error) for percentile curves and 500 ms
// SLA accounting.
class WindowHistogram {
 public:
  static constexpr int kNumBuckets = 128;

  void Record(SimTime latency) { Record(latency, 1); }
  // Records `weight` samples at `latency` in one call. Bucket counters
  // saturate at UINT32_MAX instead of wrapping, so multi-day high-TPS
  // runs degrade gracefully (quantiles drift toward the maximum) rather
  // than silently corrupting the distribution.
  void Record(SimTime latency, int64_t weight);
  int64_t count() const { return count_; }
  // Latency (in SimTime us) at the given quantile; upper bucket edge.
  SimTime ValueAtQuantile(double q) const;

  // Adds `other`'s distribution into this histogram (bucketwise, with
  // the same saturating arithmetic as Record). Saturating addition of
  // non-negative values yields min(UINT32_MAX, true sum) under any
  // grouping, so merging is associative and commutative: per-shard
  // histograms merge to the same result as recording into one.
  void MergeFrom(const WindowHistogram& other);

 private:
  static int BucketFor(SimTime latency);
  static SimTime UpperEdge(int bucket);

  std::array<uint32_t, kNumBuckets> buckets_ = {};
  int64_t count_ = 0;
  SimTime max_ = 0;
};

// Per-window summary produced by MetricsCollector::Finalize().
struct WindowStats {
  double start_seconds = 0.0;
  int64_t submitted = 0;
  int64_t completed = 0;
  // Transactions failed fast with kUnavailable (owning node crashed).
  // These never complete, so they are invisible to the latency
  // percentiles; availability SLA accounting must look here.
  int64_t unavailable = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  int machines = 0;
  bool migrating = false;
  // An injected fault (node outage, straggler, degraded network) was
  // active at some point inside the window.
  bool fault = false;
};

// Counts of windows whose per-window percentile latency exceeded the SLA
// threshold (Table 2's definition of SLA violations: seconds in which the
// 50th/95th/99th percentile latency exceeds 500 ms).
struct SlaViolations {
  int64_t p50 = 0;
  int64_t p95 = 0;
  int64_t p99 = 0;
};

// SLA violations split by what the system was doing during the violating
// window: an injected fault was active (fault wins when both apply), a
// reconfiguration was in flight, or neither (pure misprediction /
// capacity shortfall). total = during_fault + during_migration + baseline
// per percentile.
struct SlaAttribution {
  SlaViolations total;
  SlaViolations during_fault;
  SlaViolations during_migration;
  SlaViolations baseline;
};

// Collects per-window (default 1 s) latency distributions, submission and
// completion counts, the machines-allocated step series and the
// migration-active step series for one experiment run.
class MetricsCollector {
 public:
  explicit MetricsCollector(double window_seconds = 1.0);

  // Records a transaction submitted at `submit` completing at
  // `completion`; the latency lands in the window containing completion.
  void RecordTxn(SimTime submit, SimTime completion);

  // Records a transaction failed fast as unavailable at `now` (it has no
  // completion and therefore no latency sample).
  void RecordUnavailable(SimTime now);

  // Step-series updates.
  void RecordMachines(SimTime now, int machines);
  void RecordMigrationActive(SimTime now, bool active);
  // Fault step series: true while at least one injected fault is active.
  void RecordFaultActive(SimTime now, bool active);

  // Adds `other`'s per-window txn counters and latency histograms into
  // this collector. Both must use the same window duration, and `other`
  // must carry no step series (machines/migration/fault live only in
  // the control-plane collector; per-shard collectors hold txn data
  // exclusively). Used to fold per-shard metrics after a sharded run.
  void MergeFrom(const MetricsCollector& other);

  // Summarizes all windows up to `end`. Call once after the run.
  std::vector<WindowStats> Finalize(SimTime end) const;

  // SLA accounting over finalized windows. Idle windows (no submitted
  // transactions) are skipped; a window with submissions but zero
  // completions — a total outage, every arrival rejected unavailable —
  // violates every percentile.
  static SlaViolations CountViolations(const std::vector<WindowStats>& windows,
                                       double threshold_ms = 500.0);

  // Like CountViolations, additionally splitting each violated window by
  // its fault/migrating flags.
  static SlaAttribution AttributeViolations(
      const std::vector<WindowStats>& windows, double threshold_ms = 500.0);

  // Time-weighted average of the machines-allocated step series on
  // [0, end].
  double AverageMachines(SimTime end) const;

  double window_seconds() const { return window_seconds_; }

 private:
  size_t WindowIndex(SimTime t) const;
  void EnsureWindow(size_t index);

  double window_seconds_;
  SimTime window_duration_;
  std::vector<WindowHistogram> latency_;
  std::vector<int64_t> submitted_;
  std::vector<int64_t> completed_;
  std::vector<int64_t> unavailable_;
  std::vector<std::pair<SimTime, int>> machine_steps_;
  std::vector<std::pair<SimTime, bool>> migration_steps_;
  std::vector<std::pair<SimTime, bool>> fault_steps_;
};

}  // namespace pstore

#endif  // PSTORE_ENGINE_METRICS_H_
