#ifndef PSTORE_ENGINE_MURMUR_HASH_H_
#define PSTORE_ENGINE_MURMUR_HASH_H_

#include <cstddef>
#include <cstdint>

namespace pstore {

// MurmurHash2, 64-bit version (MurmurHash64A by Austin Appleby, public
// domain). The paper hashes partitioning keys to partitions with
// MurmurHash 2.0 (§8.1); we use the same function so the uniformity
// properties measured there carry over.
uint64_t MurmurHash64A(const void* key, size_t len, uint64_t seed);

// Convenience overload for integer partitioning keys.
inline uint64_t MurmurHash64(uint64_t key, uint64_t seed = 0x9747b28c) {
  return MurmurHash64A(&key, sizeof(key), seed);
}

}  // namespace pstore

#endif  // PSTORE_ENGINE_MURMUR_HASH_H_
