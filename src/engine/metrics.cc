#include "engine/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/sim_time.h"

namespace pstore {
namespace {

// Windows histogram layout: sub-buckets per octave and the smallest
// latency with full resolution.
constexpr int kSubBucketsPerOctave = 8;
constexpr SimTime kBaseLatency = 100;  // 100 us

}  // namespace

int WindowHistogram::BucketFor(SimTime latency) {
  if (latency < kBaseLatency) return 0;
  const double octaves =
      std::log2(static_cast<double>(latency) /
                static_cast<double>(kBaseLatency));
  const int bucket = static_cast<int>(octaves * kSubBucketsPerOctave) + 1;
  return std::min(bucket, kNumBuckets - 1);
}

SimTime WindowHistogram::UpperEdge(int bucket) {
  if (bucket <= 0) return kBaseLatency - 1;
  const double octaves =
      static_cast<double>(bucket) / kSubBucketsPerOctave;
  return static_cast<SimTime>(static_cast<double>(kBaseLatency) *
                              std::pow(2.0, octaves));
}

void WindowHistogram::Record(SimTime latency, int64_t weight) {
  if (weight <= 0) return;
  if (latency < 0) latency = 0;
  uint32_t& bucket = buckets_[static_cast<size_t>(BucketFor(latency))];
  const uint64_t kSaturated = std::numeric_limits<uint32_t>::max();
  const uint64_t sum = static_cast<uint64_t>(bucket) +
                       static_cast<uint64_t>(weight);
  bucket = static_cast<uint32_t>(std::min(sum, kSaturated));
  count_ += weight;
  max_ = std::max(max_, latency);
}

SimTime WindowHistogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Bucket counters saturate (see Record) while count_ does not, so the
  // stored bucket mass can be smaller than count_. Rank within the
  // stored mass, the same saturating space the scan accumulates in —
  // ranking by count_ walks past the saturated buckets and quantiles
  // collapse toward max_ (all of them, once the excess exceeds the mass
  // above the saturated bucket).
  int64_t stored = 0;
  for (int i = 0; i < kNumBuckets; ++i) stored += buckets_[i];
  const int64_t target = std::min(
      stored, std::max<int64_t>(
                  1, static_cast<int64_t>(
                         q * static_cast<double>(stored) + 0.5)));
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) return std::min(UpperEdge(i), max_);
  }
  return max_;
}

void WindowHistogram::MergeFrom(const WindowHistogram& other) {
  const uint64_t kSaturated = std::numeric_limits<uint32_t>::max();
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t sum = static_cast<uint64_t>(buckets_[i]) +
                         static_cast<uint64_t>(other.buckets_[i]);
    buckets_[i] = static_cast<uint32_t>(std::min(sum, kSaturated));
  }
  count_ += other.count_;
  max_ = std::max(max_, other.max_);
}

MetricsCollector::MetricsCollector(double window_seconds)
    : window_seconds_(window_seconds),
      window_duration_(FromSeconds(window_seconds)) {
  PSTORE_CHECK(window_duration_ > 0);
}

size_t MetricsCollector::WindowIndex(SimTime t) const {
  if (t < 0) t = 0;
  return static_cast<size_t>(t / window_duration_);
}

void MetricsCollector::EnsureWindow(size_t index) {
  if (index >= latency_.size()) {
    latency_.resize(index + 1);
    submitted_.resize(index + 1, 0);
    completed_.resize(index + 1, 0);
    unavailable_.resize(index + 1, 0);
  }
}

void MetricsCollector::RecordTxn(SimTime submit, SimTime completion) {
  PSTORE_CHECK(completion >= submit);
  const size_t submit_window = WindowIndex(submit);
  const size_t complete_window = WindowIndex(completion);
  EnsureWindow(std::max(submit_window, complete_window));
  ++submitted_[submit_window];
  ++completed_[complete_window];
  latency_[complete_window].Record(completion - submit);
}

void MetricsCollector::RecordUnavailable(SimTime now) {
  const size_t window = WindowIndex(now);
  EnsureWindow(window);
  ++submitted_[window];
  ++unavailable_[window];
}

void MetricsCollector::MergeFrom(const MetricsCollector& other) {
  PSTORE_CHECK(window_duration_ == other.window_duration_);
  // Step series live only in the control-plane collector; a per-shard
  // collector that grew one indicates mis-wired sharding glue.
  PSTORE_CHECK(other.machine_steps_.empty());
  PSTORE_CHECK(other.migration_steps_.empty());
  PSTORE_CHECK(other.fault_steps_.empty());
  if (other.latency_.empty()) return;
  EnsureWindow(other.latency_.size() - 1);
  for (size_t i = 0; i < other.latency_.size(); ++i) {
    latency_[i].MergeFrom(other.latency_[i]);
    submitted_[i] += other.submitted_[i];
    completed_[i] += other.completed_[i];
    unavailable_[i] += other.unavailable_[i];
  }
}

void MetricsCollector::RecordMachines(SimTime now, int machines) {
  machine_steps_.emplace_back(now, machines);
}

void MetricsCollector::RecordMigrationActive(SimTime now, bool active) {
  migration_steps_.emplace_back(now, active);
}

void MetricsCollector::RecordFaultActive(SimTime now, bool active) {
  fault_steps_.emplace_back(now, active);
}

std::vector<WindowStats> MetricsCollector::Finalize(SimTime end) const {
  const size_t num_windows = WindowIndex(end > 0 ? end - 1 : 0) + 1;
  std::vector<WindowStats> out(num_windows);

  size_t machine_idx = 0;
  int machines = machine_steps_.empty() ? 0 : machine_steps_.front().second;
  size_t migration_idx = 0;
  bool migrating = false;
  size_t fault_idx = 0;
  bool fault = false;

  for (size_t w = 0; w < num_windows; ++w) {
    WindowStats& stats = out[w];
    const SimTime window_start = static_cast<SimTime>(w) * window_duration_;
    const SimTime window_end = window_start + window_duration_;
    stats.start_seconds = ToSeconds(window_start);
    if (w < latency_.size()) {
      stats.submitted = submitted_[w];
      stats.completed = completed_[w];
      stats.unavailable = unavailable_[w];
      stats.p50_ms = ToSeconds(latency_[w].ValueAtQuantile(0.50)) * 1e3;
      stats.p95_ms = ToSeconds(latency_[w].ValueAtQuantile(0.95)) * 1e3;
      stats.p99_ms = ToSeconds(latency_[w].ValueAtQuantile(0.99)) * 1e3;
    }
    // Step series: value in effect at the end of the window.
    while (machine_idx < machine_steps_.size() &&
           machine_steps_[machine_idx].first < window_end) {
      machines = machine_steps_[machine_idx].second;
      ++machine_idx;
    }
    stats.machines = machines;
    // A window counts as migrating if migration was active at any point
    // inside it (approximated by: active at window end or a toggle
    // occurred within the window). Without the toggle term a migration
    // that starts and finishes inside one window would be invisible to
    // Table 2's during_migration attribution.
    bool migration_toggled = false;
    while (migration_idx < migration_steps_.size() &&
           migration_steps_[migration_idx].first < window_end) {
      migrating = migration_steps_[migration_idx].second;
      migration_toggled = true;
      ++migration_idx;
    }
    stats.migrating = migrating || migration_toggled;
    // Same approximation for the fault flag: active at window end, or a
    // fault began/ended inside the window.
    bool fault_toggled = false;
    while (fault_idx < fault_steps_.size() &&
           fault_steps_[fault_idx].first < window_end) {
      fault = fault_steps_[fault_idx].second;
      fault_toggled = true;
      ++fault_idx;
    }
    stats.fault = fault || fault_toggled;
  }
  return out;
}

SlaViolations MetricsCollector::CountViolations(
    const std::vector<WindowStats>& windows, double threshold_ms) {
  SlaViolations v;
  for (const WindowStats& w : windows) {
    // A window where traffic arrived but nothing completed is a total
    // outage — the worst SLA outcome, not a pass. It has no latency
    // samples, so it violates every percentile by definition. Windows
    // with no traffic at all are genuinely idle and skipped.
    const bool outage = w.submitted > 0 && w.completed == 0;
    if (w.completed == 0 && !outage) continue;
    if (outage || w.p50_ms > threshold_ms) ++v.p50;
    if (outage || w.p95_ms > threshold_ms) ++v.p95;
    if (outage || w.p99_ms > threshold_ms) ++v.p99;
  }
  return v;
}

SlaAttribution MetricsCollector::AttributeViolations(
    const std::vector<WindowStats>& windows, double threshold_ms) {
  SlaAttribution out;
  for (const WindowStats& w : windows) {
    // Total-outage windows (submitted > 0, completed == 0) violate every
    // percentile; they land in the fault bucket when w.fault is set,
    // which is the common cause (the node hosting every bucket is down).
    const bool outage = w.submitted > 0 && w.completed == 0;
    if (w.completed == 0 && !outage) continue;
    SlaViolations* bucket = w.fault ? &out.during_fault
                           : w.migrating ? &out.during_migration
                                         : &out.baseline;
    if (outage || w.p50_ms > threshold_ms) {
      ++out.total.p50;
      ++bucket->p50;
    }
    if (outage || w.p95_ms > threshold_ms) {
      ++out.total.p95;
      ++bucket->p95;
    }
    if (outage || w.p99_ms > threshold_ms) {
      ++out.total.p99;
      ++bucket->p99;
    }
  }
  return out;
}

double MetricsCollector::AverageMachines(SimTime end) const {
  if (machine_steps_.empty() || end <= 0) return 0.0;
  double weighted = 0.0;
  SimTime prev_time = 0;
  int prev_value = machine_steps_.front().second;
  for (const auto& [time, value] : machine_steps_) {
    if (time >= end) break;
    weighted += ToSeconds(time - prev_time) * prev_value;
    prev_time = time;
    prev_value = value;
  }
  weighted += ToSeconds(end - prev_time) * prev_value;
  return weighted / ToSeconds(end);
}

}  // namespace pstore
