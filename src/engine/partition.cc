#include "engine/partition.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/sim_time.h"
#include "engine/table.h"

namespace pstore {

SimTime Partition::Submit(SimTime now, SimTime service_time) {
  PSTORE_CHECK(service_time >= 0);
  const SimTime start = std::max(now, busy_until_);
  busy_until_ = start + service_time;
  total_busy_time_ += service_time;
  ++jobs_executed_;
  return busy_until_;
}

BucketData* Partition::FindBucket(BucketId bucket) {
  auto it = buckets_.find(bucket);
  return it == buckets_.end() ? nullptr : &it->second;
}

const BucketData* Partition::FindBucket(BucketId bucket) const {
  auto it = buckets_.find(bucket);
  return it == buckets_.end() ? nullptr : &it->second;
}

void Partition::Put(BucketId bucket, TableId table, uint64_t key,
                    const Row& row) {
  PSTORE_CHECK(table < kMaxTables);
  BucketData& data = buckets_[bucket];
  auto [it, inserted] = data.tables[table].try_emplace(key, row);
  if (inserted) {
    ++data.rows;
    ++row_count_;
    data.bytes += row.payload_bytes;
    data_bytes_ += row.payload_bytes;
  } else {
    const int64_t delta = static_cast<int64_t>(row.payload_bytes) -
                          static_cast<int64_t>(it->second.payload_bytes);
    data.bytes += delta;
    data_bytes_ += delta;
    it->second = row;
  }
}

const Row* Partition::Get(BucketId bucket, TableId table,
                          uint64_t key) const {
  PSTORE_CHECK(table < kMaxTables);
  const BucketData* data = FindBucket(bucket);
  if (data == nullptr) return nullptr;
  const auto it = data->tables[table].find(key);
  return it == data->tables[table].end() ? nullptr : &it->second;
}

Row* Partition::GetMutable(BucketId bucket, TableId table, uint64_t key) {
  PSTORE_CHECK(table < kMaxTables);
  BucketData* data = FindBucket(bucket);
  if (data == nullptr) return nullptr;
  auto it = data->tables[table].find(key);
  return it == data->tables[table].end() ? nullptr : &it->second;
}

bool Partition::Erase(BucketId bucket, TableId table, uint64_t key) {
  PSTORE_CHECK(table < kMaxTables);
  BucketData* data = FindBucket(bucket);
  if (data == nullptr) return false;
  auto it = data->tables[table].find(key);
  if (it == data->tables[table].end()) return false;
  --data->rows;
  --row_count_;
  data->bytes -= it->second.payload_bytes;
  data_bytes_ -= it->second.payload_bytes;
  data->tables[table].erase(it);
  return true;
}

BucketData Partition::ExtractBucket(BucketId bucket) {
  auto it = buckets_.find(bucket);
  PSTORE_CHECK_MSG(it != buckets_.end(), "bucket " << bucket << " not here");
  BucketData data = std::move(it->second);
  buckets_.erase(it);
  row_count_ -= data.rows;
  data_bytes_ -= data.bytes;
  PSTORE_CHECK(row_count_ >= 0 && data_bytes_ >= 0);
  return data;
}

void Partition::InsertBucket(BucketId bucket, BucketData data) {
  row_count_ += data.rows;
  data_bytes_ += data.bytes;
  const bool inserted =
      buckets_.emplace(bucket, std::move(data)).second;
  PSTORE_CHECK_MSG(inserted, "bucket " << bucket << " already present");
}

int64_t Partition::BucketBytes(BucketId bucket) const {
  const BucketData* data = FindBucket(bucket);
  return data == nullptr ? 0 : data->bytes;
}

std::vector<BucketId> Partition::SortedBucketIds() const {
  std::vector<BucketId> ids;
  ids.reserve(buckets_.size());
  // Key extraction only; the sort below erases the hash order.
  // pstore-analyze: allow(nondet-iteration)
  for (const auto& [bucket, data] : buckets_) ids.push_back(bucket);
  std::sort(ids.begin(), ids.end());
  return ids;
}

BucketId Partition::HottestBucket(int64_t* accesses) const {
  BucketId hottest = -1;
  int64_t best = 0;
  // Ascending-id scan with a strict `>` makes ties deterministic: the
  // lowest bucket id wins no matter how the hash table is laid out.
  for (const BucketId bucket : SortedBucketIds()) {
    const int64_t count = buckets_.at(bucket).accesses;
    if (count > best) {
      best = count;
      hottest = bucket;
    }
  }
  if (accesses != nullptr) *accesses = best;
  return hottest;
}

BucketId Partition::HottestBucketBelow(int64_t cap,
                                       int64_t* accesses) const {
  BucketId best_bucket = -1;
  int64_t best = 0;
  // Same deterministic tie-break as HottestBucket: lowest id wins.
  for (const BucketId bucket : SortedBucketIds()) {
    const int64_t count = buckets_.at(bucket).accesses;
    if (count > best && count <= cap) {
      best = count;
      best_bucket = bucket;
    }
  }
  if (accesses != nullptr) *accesses = best;
  return best_bucket;
}

int64_t Partition::TotalAccesses() const {
  int64_t total = 0;
  // Commutative sum: the traversal order cannot affect the result.
  // pstore-analyze: allow(nondet-iteration)
  for (const auto& [bucket, data] : buckets_) total += data.accesses;
  return total;
}

void Partition::ResetAccessCounts() {
  // Order-independent reset of every counter.
  // pstore-analyze: allow(nondet-iteration)
  for (auto& [bucket, data] : buckets_) data.accesses = 0;
}

}  // namespace pstore
