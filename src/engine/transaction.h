#ifndef PSTORE_ENGINE_TRANSACTION_H_
#define PSTORE_ENGINE_TRANSACTION_H_

#include <cstdint>

#include "engine/partition.h"

namespace pstore {

// Identifier of a registered stored procedure.
using ProcedureId = uint16_t;

inline constexpr int kMaxProcedures = 64;

// Maximum number of partitioning keys a single transaction may touch.
inline constexpr int kMaxTxnKeys = 4;

// A transaction request: a stored procedure invocation routed by its
// partitioning key(s) (paper §2: "transactions are routed to specific
// partitions based on the partitioning keys they access"). The B2W
// workload accesses one key per transaction; multi-key requests become
// distributed transactions when their keys land on different partitions
// (used to probe the §4.2 "few distributed transactions" assumption).
struct TxnRequest {
  ProcedureId procedure = 0;
  uint64_t key = 0;  // keys[0], kept for the common single-key case
  // Procedure-specific argument (e.g., a quantity or line id).
  uint32_t arg = 0;
  // Additional keys for multi-key procedures (0 for single-key).
  int num_extra_keys = 0;
  uint64_t extra_keys[kMaxTxnKeys - 1] = {};
};

enum class TxnStatus : uint8_t {
  kCommitted = 0,
  // Aborted by procedure logic (e.g., reserving out-of-stock items).
  kAborted,
  // The procedure id was not registered.
  kUnknownProcedure,
  // A partition the transaction needs lives on a crashed node; the
  // request fails fast without executing (fault-injection drills).
  kUnavailable,
};

// Outcome of executing a transaction's logic (the timing outcome —
// completion time and latency — is tracked by the metrics collector).
struct TxnResult {
  TxnStatus status = TxnStatus::kCommitted;
  // Procedure-specific output value (e.g., a quantity read).
  int64_t value = 0;
};

// Execution context handed to stored procedures: the partition currently
// owning the key's bucket plus the routing information.
struct TxnContext {
  Partition* partition = nullptr;
  BucketId bucket = 0;
  uint64_t key = 0;
  uint32_t arg = 0;
};

// Stored procedures are plain functions for a lean dispatch path.
using ProcedureHandler = TxnResult (*)(const TxnContext&);

// Multi-key stored procedures receive one context per key, in request
// order. If all keys land on the same partition the transaction executes
// as a cheap single-partition one; otherwise it is distributed and pays
// two-phase-commit overhead on every participant.
using MultiProcedureHandler = TxnResult (*)(const TxnContext* contexts,
                                            int num_keys);

}  // namespace pstore

#endif  // PSTORE_ENGINE_TRANSACTION_H_
