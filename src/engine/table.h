#ifndef PSTORE_ENGINE_TABLE_H_
#define PSTORE_ENGINE_TABLE_H_

#include <cstdint>

namespace pstore {

// Identifier of a horizontally-partitioned table. The engine is
// schema-lite: tables are declared by id and rows are fixed-shape
// records, which keeps the per-transaction hot path to a couple of hash
// probes while still letting stored procedures implement real
// read-modify-write logic.
using TableId = uint8_t;

// Maximum number of distinct tables a cluster can host.
inline constexpr int kMaxTables = 8;

// A stored row. `payload_bytes` is the nominal on-wire size of the row,
// used for migration accounting (how many bytes a bucket holds). The
// four integer fields carry procedure-specific state (quantities,
// statuses, totals).
struct Row {
  uint32_t payload_bytes = 0;
  int64_t f0 = 0;
  int64_t f1 = 0;
  int64_t f2 = 0;
  int64_t f3 = 0;
};

}  // namespace pstore

#endif  // PSTORE_ENGINE_TABLE_H_
