#include "engine/workload_driver.h"

#include <utility>

#include "common/logging.h"
#include "common/sim_time.h"
#include "common/time_series.h"
#include "engine/event_loop.h"
#include "engine/transaction.h"
#include "engine/txn_executor.h"
#include "obs/tracer.h"

namespace pstore {

WorkloadDriver::WorkloadDriver(EventLoop* loop, TxnExecutor* executor,
                               TimeSeries trace, TxnFactory factory,
                               const DriverOptions& options)
    : loop_(loop),
      executor_(executor),
      trace_(std::move(trace)),
      factory_(std::move(factory)),
      options_(options),
      rng_(options.seed) {
  PSTORE_CHECK(loop_ != nullptr && executor_ != nullptr);
  PSTORE_CHECK(factory_ != nullptr);
  PSTORE_CHECK(options_.slot_sim_seconds > 0.0);
  PSTORE_CHECK(options_.rate_factor > 0.0);
}

double WorkloadDriver::OfferedRate(SimTime t) const {
  const double seconds = ToSeconds(t);
  const size_t slot =
      options_.start_slot +
      static_cast<size_t>(seconds / options_.slot_sim_seconds);
  if (slot >= trace_.size()) return 0.0;
  return trace_[slot] * options_.rate_factor;
}

void WorkloadDriver::Start(SimTime end_time) {
  end_time_ = end_time;
  loop_->ScheduleAt(loop_->now(), [this] { Tick(); });
}

void WorkloadDriver::Tick() {
  const SimTime tick_start = loop_->now();
  if (tick_start >= end_time_) return;
  const SimTime tick_end = tick_start + kSecond;

  const double rate = OfferedRate(tick_start);
  int64_t arrivals = 0;
  if (rate > 0.0) {
    // Exact Poisson process within the tick: exponential gaps, arrivals
    // generated in time order.
    const double mean_gap_seconds = 1.0 / rate;
    SimTime t = tick_start + FromSeconds(rng_.NextExponential(mean_gap_seconds));
    while (t < tick_end && t < end_time_) {
      const TxnRequest request = factory_(rng_);
      executor_->Submit(request, t);
      ++arrivals_generated_;
      ++arrivals;
      t += FromSeconds(rng_.NextExponential(mean_gap_seconds));
    }
  }
  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kEngine, tick_start,
               "engine.slot",
               .With("rate", rate).With("arrivals", arrivals));
  loop_->ScheduleAt(tick_end, [this] { Tick(); });
}

}  // namespace pstore
