#include "engine/workload_driver.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/sim_time.h"
#include "common/time_series.h"
#include "engine/event_loop.h"
#include "engine/transaction.h"
#include "engine/txn_executor.h"
#include "obs/tracer.h"

namespace pstore {

WorkloadDriver::WorkloadDriver(EventLoop* loop, TxnExecutor* executor,
                               TimeSeries trace, TxnFactory factory,
                               const DriverOptions& options)
    : loop_(loop),
      executor_(executor),
      trace_(std::move(trace)),
      factory_(std::move(factory)),
      options_(options),
      rng_(options.seed) {
  PSTORE_CHECK(loop_ != nullptr && executor_ != nullptr);
  PSTORE_CHECK(factory_ != nullptr);
  PSTORE_CHECK(options_.slot_sim_seconds > 0.0);
  PSTORE_CHECK(options_.rate_factor > 0.0);
}

double WorkloadDriver::OfferedRate(SimTime t) const {
  const double seconds = ToSeconds(t);
  const size_t slot =
      options_.start_slot +
      static_cast<size_t>(seconds / options_.slot_sim_seconds);
  if (slot >= trace_.size()) return 0.0;
  return trace_[slot] * options_.rate_factor;
}

SimTime WorkloadDriver::NextSlotBoundary(SimTime t) const {
  const double seconds = ToSeconds(t);
  double m = std::floor(seconds / options_.slot_sim_seconds) + 1.0;
  SimTime boundary = FromSeconds(m * options_.slot_sim_seconds);
  // Float rounding can land the boundary at or before `t`; step forward
  // until it is strictly after so Tick's segment loop always progresses.
  while (boundary <= t) {
    m += 1.0;
    boundary = FromSeconds(m * options_.slot_sim_seconds);
  }
  return boundary;
}

void WorkloadDriver::Start(SimTime end_time) {
  end_time_ = end_time;
  loop_->ScheduleAt(loop_->now(), [this] { Tick(); });
}

void WorkloadDriver::Tick() {
  const SimTime tick_start = loop_->now();
  if (tick_start >= end_time_) return;
  const SimTime tick_end = tick_start + kSecond;

  const bool sharded = executor_->sharding_enabled();
  // Piecewise-constant Poisson process: the offered rate changes at
  // trace-slot boundaries, which fall inside a tick whenever
  // slot_sim_seconds is fractional — sampling once at tick_start would
  // mis-rate the remainder of such ticks. Each constant-rate segment
  // draws its own exponential gaps (restarting at the boundary is valid
  // by memorylessness). For whole-second slot sizes a tick is a single
  // segment and the draw sequence is exactly the historical one.
  int64_t arrivals = 0;
  SimTime seg_start = tick_start;
  while (seg_start < tick_end) {
    const SimTime seg_end = std::min(tick_end, NextSlotBoundary(seg_start));
    const double rate = OfferedRate(seg_start);
    if (rate > 0.0) {
      const double mean_gap_seconds = 1.0 / rate;
      SimTime t =
          seg_start + FromSeconds(rng_.NextExponential(mean_gap_seconds));
      while (t < seg_end && t < end_time_) {
        const TxnRequest request = factory_(rng_);
        if (sharded) {
          executor_->SubmitSharded(request, t);
        } else {
          executor_->Submit(request, t);
        }
        ++arrivals_generated_;
        ++arrivals;
        t += FromSeconds(rng_.NextExponential(mean_gap_seconds));
      }
    }
    seg_start = seg_end;
  }
  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kEngine, tick_start,
               "engine.slot",
               .With("rate", OfferedRate(tick_start))
                   .With("arrivals", arrivals));
  loop_->ScheduleAt(tick_end, [this] { Tick(); });
}

}  // namespace pstore
