#include "engine/sharded_loop.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/sim_time.h"
#include "engine/event_loop.h"

namespace pstore {

ShardedEngine::ShardedEngine(EventLoop* control, int num_shards, int threads)
    : control_(control),
      num_shards_(num_shards),
      pool_(threads),
      queues_(static_cast<size_t>(num_shards)) {
  PSTORE_CHECK(control != nullptr);
  PSTORE_CHECK(num_shards > 0);
  const size_t pairs =
      static_cast<size_t>(num_shards) * static_cast<size_t>(num_shards + 1);
  mailboxes_.reserve(pairs);
  for (size_t i = 0; i < pairs; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void ShardedEngine::Post(int shard, SimTime when, Task task) {
  PSTORE_DCHECK(shard >= 0 && shard < num_shards_);
  // Post is control-plane API; shard tasks communicate via Send.
  PSTORE_DCHECK(!in_parallel_phase_.load());
  PSTORE_CHECK(task != nullptr);
  queues_[static_cast<size_t>(shard)].push_back(Job{when, std::move(task)});
  ++pending_tasks_;
}

void ShardedEngine::Send(int source, int target, SimTime when, Task task) {
  PSTORE_DCHECK(source >= 0 && source < num_shards_);
  PSTORE_DCHECK(target >= kControlPlane && target < num_shards_);
  PSTORE_CHECK(task != nullptr);
  Mailbox& box = mailbox(source, target);
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.entries.push_back(
        Envelope{when, source, target, box.next_seq++, std::move(task)});
  }
  pending_messages_.fetch_add(1);
}

bool ShardedEngine::RunShardPhase() {
  if (pending_tasks_ == 0) return false;
  // Post is forbidden during the phase and Send targets mailboxes, so
  // no queue grows while workers iterate it; the count taken here is
  // exact.
  tasks_run_ += pending_tasks_;
  pending_tasks_ = 0;
  in_parallel_phase_.store(true);
  pool_.ParallelFor(static_cast<size_t>(num_shards_), [this](size_t shard) {
    std::vector<Job>& queue = queues_[shard];
    for (Job& job : queue) job.fn();
    queue.clear();
  });
  in_parallel_phase_.store(false);
  return true;
}

bool ShardedEngine::DrainMailboxes() {
  const int64_t pending = pending_messages_.exchange(0);
  if (pending == 0) return false;
  // Collect every envelope, then impose the global delivery order
  // (time, source shard, seq, target). The key is unique — seq is
  // strictly increasing per (source, target) pair — so the order does
  // not depend on which mailbox was scanned first, and the pair-local
  // seq assignment is itself deterministic because each shard executes
  // its queue sequentially.
  std::vector<Envelope> batch;
  batch.reserve(static_cast<size_t>(pending));
  for (std::unique_ptr<Mailbox>& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    for (Envelope& e : box->entries) batch.push_back(std::move(e));
    box->entries.clear();
  }
  std::sort(batch.begin(), batch.end(),
            [](const Envelope& a, const Envelope& b) {
              if (a.when != b.when) return a.when < b.when;
              if (a.source != b.source) return a.source < b.source;
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.target < b.target;
            });
  for (Envelope& e : batch) {
    if (e.target == kControlPlane) {
      e.fn();
    } else {
      Post(e.target, e.when, std::move(e.fn));
    }
  }
  messages_delivered_ += static_cast<int64_t>(batch.size());
  return true;
}

void ShardedEngine::Flush() {
  if (idle()) return;
  ++barriers_;
  // Fixpoint: a delivered message may enqueue further shard work (a
  // forwarded participant, a chained completion), which may in turn
  // send more messages. Iterate until a round does nothing.
  bool progressed = true;
  while (progressed) {
    const bool ran = RunShardPhase();
    const bool delivered = DrainMailboxes();
    progressed = ran || delivered;
  }
}

void ShardedEngine::InstallBarrierHook() {
  control_->set_pre_event_hook([this] { Flush(); });
}

}  // namespace pstore
