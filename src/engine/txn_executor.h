#ifndef PSTORE_ENGINE_TXN_EXECUTOR_H_
#define PSTORE_ENGINE_TXN_EXECUTOR_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "engine/cluster.h"
#include "engine/metrics.h"
#include "engine/transaction.h"
#include "obs/tracer.h"

namespace pstore {

class ShardedEngine;

// Execution-cost model for transactions. The paper adds a small
// artificial delay per transaction so that a 6-partition server
// saturates at ~438 txn/s (§7, §8.1); the default mean service time of
// 6/438 s per partition reproduces that operating point.
struct ExecutorOptions {
  double mean_service_seconds = 6.0 / 438.0;
  // Multi-partition (distributed) transactions pay two-phase-commit
  // overhead: every participant's service time is multiplied by
  // (1 + two_pc_overhead), and the result is only visible after an
  // extra coordination delay. This is the cost that makes "few
  // distributed transactions" (§4.2) a requirement for linear
  // scalability.
  double two_pc_overhead = 1.0;
  double coordination_delay_seconds = 0.002;
  uint64_t seed = 99;
};

// Routes single-partition transactions to the partition owning their
// key's bucket, runs the stored-procedure logic against that partition's
// storage, charges the partition an exponentially-distributed service
// time, and records the latency with the metrics collector.
class TxnExecutor {
 public:
  TxnExecutor(Cluster* cluster, MetricsCollector* metrics,
              const ExecutorOptions& options);
  TxnExecutor(const TxnExecutor&) = delete;
  TxnExecutor& operator=(const TxnExecutor&) = delete;

  // Registers the handler for a procedure id. `service_scale` multiplies
  // the mean service time for this procedure (heavier procedures > 1).
  Status RegisterProcedure(ProcedureId id, ProcedureHandler handler,
                           double service_scale = 1.0);

  // Registers a multi-key procedure: requests must carry extra keys.
  Status RegisterMultiProcedure(ProcedureId id, MultiProcedureHandler handler,
                                double service_scale = 1.0);

  // Executes one transaction submitted at simulated time `now`. Returns
  // the procedure's logical result; timing lands in the metrics.
  TxnResult Submit(const TxnRequest& request, SimTime now);

  // --- Node-sharded execution (see engine/sharded_loop.h) ---------------

  // Routes subsequent SubmitSharded calls through `engine`: per-node
  // transaction work is deferred to the owning node's shard and runs in
  // parallel between control events; cross-node multi-key transactions
  // synchronize with engine->Flush() and take the classic inline path.
  // Requires a non-serial engine — with 1 thread callers keep using
  // Submit(), the byte-identical golden path. Call before the run
  // starts, once.
  void EnableSharding(ShardedEngine* engine);
  bool sharding_enabled() const { return engine_ != nullptr; }

  // Sharded counterpart of Submit(): the control-plane skeleton (RNG
  // draws, routing, health checks, unavailable accounting) runs inline
  // in monolithic submission order, and the node-local body (handler,
  // FIFO service accounting, per-shard metrics) is deferred to the
  // owning shard, executing no later than the next control event. The
  // logical TxnResult is therefore not returned; outcome counters on
  // this object exclude shard-side outcomes until FoldShardStats().
  void SubmitSharded(const TxnRequest& request, SimTime now);

  // Folds per-shard metrics and outcome counters into the main
  // collector/counters so accessors report exactly what a serial run
  // would. Call exactly once, after the final engine Flush().
  void FoldShardStats();

  int64_t submitted_count() const { return submitted_count_; }
  int64_t committed_count() const { return committed_count_; }
  int64_t aborted_count() const { return aborted_count_; }
  // Multi-key transactions whose keys spanned > 1 partition.
  int64_t distributed_count() const { return distributed_count_; }
  // Transactions rejected because a needed node was down (a subset of
  // aborted_count); nonzero only under fault injection.
  int64_t unavailable_count() const { return unavailable_count_; }

  // Per-procedure outcome counters (commits and aborts), for workload
  // mix reporting.
  struct ProcedureStats {
    int64_t committed = 0;
    int64_t aborted = 0;
  };
  const ProcedureStats& procedure_stats(ProcedureId id) const {
    return procedure_stats_[id];
  }

  Cluster* cluster() { return cluster_; }

  // Observability: emits one engine.txn event per submitted transaction
  // under the kVerbose category (off in the default trace mask — this is
  // the per-transaction firehose).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  // Outcome counters and metrics accumulated by one shard's deferred
  // bodies; written only by tasks running on that shard, folded into
  // the main counters by FoldShardStats().
  struct ShardState {
    explicit ShardState(double window_seconds) : metrics(window_seconds) {}
    MetricsCollector metrics;
    int64_t committed = 0;
    int64_t aborted = 0;
    std::array<ProcedureStats, kMaxProcedures> procedure_stats = {};
  };

  TxnResult SubmitMulti(const TxnRequest& request, SimTime now);
  void SubmitMultiSharded(const TxnRequest& request, SimTime now);
  void CountOutcome(ProcedureId id, const TxnResult& result);
  static void CountShardOutcome(ShardState& shard, ProcedureId id,
                                const TxnResult& result);
  // Sends the kVerbose engine.txn event through the mailbox so the
  // single-threaded tracer only ever runs on the control thread.
  void SendTxnTrace(int shard, SimTime now, ProcedureId proc,
                    const TxnResult& result, bool distributed,
                    SimTime completion);

  Cluster* cluster_;
  MetricsCollector* metrics_;
  ExecutorOptions options_;
  Rng rng_;
  std::array<ProcedureHandler, kMaxProcedures> handlers_ = {};
  std::array<MultiProcedureHandler, kMaxProcedures> multi_handlers_ = {};
  std::array<double, kMaxProcedures> service_scale_ = {};
  int64_t submitted_count_ = 0;
  int64_t committed_count_ = 0;
  int64_t aborted_count_ = 0;
  int64_t distributed_count_ = 0;
  int64_t unavailable_count_ = 0;
  std::array<ProcedureStats, kMaxProcedures> procedure_stats_ = {};
  obs::Tracer* tracer_ = nullptr;
  ShardedEngine* engine_ = nullptr;  // null = classic serial execution
  std::vector<ShardState> shards_;
  bool folded_ = false;
};

}  // namespace pstore

#endif  // PSTORE_ENGINE_TXN_EXECUTOR_H_
