#ifndef PSTORE_ENGINE_SHARDED_LOOP_H_
#define PSTORE_ENGINE_SHARDED_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "engine/event_loop.h"

namespace pstore {

// Node-partitioned data plane for the discrete-event engine.
//
// The engine's event population splits cleanly in two. *Control-plane*
// events — driver generation ticks, controller monitoring and planning,
// migration chunk transfers, fault toggles — are few (several per
// simulated second) and observe global cluster state. *Data-plane* work
// — executing a transaction against the partitions of one node — is the
// bulk of every run and touches only that node's state. ShardedEngine
// keeps the control plane on the existing serial EventLoop and gives
// each node a shard queue whose tasks run in parallel on a deterministic
// ThreadPool.
//
// Synchronization is conservative time windows: a window spans the gap
// between consecutive control events, and every shard advances through
// the whole window before the next control event runs (the barrier is
// installed as the EventLoop's pre-event hook). This is safe because
// every cross-node interaction in this engine — 2PC coordination
// (coordination_delay_seconds), migration chunk arrivals
// (chunk_spacing_seconds), fault transitions — is itself initiated by a
// control event, so the window length never exceeds the minimum
// cross-node latency (the classic lookahead argument).
//
// Determinism contract, relied on by the single-run golden tests:
//  * Tasks are posted from the control thread in monolithic submission
//    order and each shard executes its queue FIFO, so per-partition
//    state (FIFO service math, storage mutations) evolves exactly as in
//    the serial engine.
//  * Cross-shard effects travel through per-(source, target) mailboxes
//    and are delivered at the barrier in (time, source shard, seq)
//    order — independent of thread count and OS scheduling.
//  * With threads == 1 the ThreadPool runs bodies inline in shard order
//    with no synchronization: the serial path stays plain serial code.
class ShardedEngine {
 public:
  using Task = std::function<void()>;

  // Mailbox target addressing the control plane (delivery runs on the
  // control thread at the barrier instead of on a shard).
  static constexpr int kControlPlane = -1;

  // `control` is the serial loop carrying the control plane; `threads`
  // sizes the worker pool (1 = fully inline).
  ShardedEngine(EventLoop* control, int num_shards, int threads);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  int num_shards() const { return num_shards_; }
  int threads() const { return pool_.thread_count(); }
  // True when the pool is inline-only; integration glue uses this to
  // keep the threads == 1 path byte-identical to the classic engine.
  bool serial() const { return pool_.thread_count() == 1; }

  // Enqueues `task` on `shard`'s queue, stamped with simulated time
  // `when`. Control-plane thread only; must not be called while a
  // barrier's parallel phase is running.
  void Post(int shard, SimTime when, Task task);

  // Sends a task from shard `source` (call this only from inside a task
  // running on that shard) to `target` — another shard or kControlPlane.
  // Delivery happens at the next barrier: control-plane messages run on
  // the control thread in (when, source, seq) order; shard messages are
  // re-enqueued on the target's queue in that same order.
  void Send(int source, int target, SimTime when, Task task);

  // Window barrier: drains every shard queue (parallel phase), then
  // delivers mailbox messages, repeating until no work remains (a
  // delivered message may enqueue further shard work). No-op when idle,
  // so installing it before every control event is cheap.
  void Flush();

  // Installs Flush() as `control`'s pre-event hook, so every
  // control-plane event observes fully-advanced shards.
  void InstallBarrierHook();

  bool idle() const {
    return pending_tasks_ == 0 && pending_messages_.load() == 0;
  }

  // Telemetry for benches and tests.
  int64_t tasks_run() const { return tasks_run_; }
  int64_t messages_delivered() const { return messages_delivered_; }
  int64_t barriers() const { return barriers_; }

 private:
  struct Job {
    SimTime when = 0;
    Task fn;
  };

  // One cross-shard message, carried by its pair's mailbox until the
  // barrier. `seq` is assigned per pair under the pair's mutex; since a
  // pair's messages originate from one shard's FIFO task execution, the
  // numbering is deterministic for any thread count.
  struct Envelope {
    SimTime when = 0;
    int source = 0;
    int target = 0;
    uint64_t seq = 0;
    Task fn;
  };

  struct Mailbox {
    std::mutex mu;
    uint64_t next_seq PSTORE_GUARDED_BY(mu) = 0;
    std::vector<Envelope> entries PSTORE_GUARDED_BY(mu);
  };

  Mailbox& mailbox(int source, int target) {
    return *mailboxes_[static_cast<size_t>(source) *
                           static_cast<size_t>(num_shards_ + 1) +
                       static_cast<size_t>(target + 1)];
  }

  // Runs every shard queue to exhaustion; returns whether any task ran.
  bool RunShardPhase();
  // Collects and delivers all mailbox entries in (when, source, seq)
  // order; returns whether any message was delivered.
  bool DrainMailboxes();

  EventLoop* control_;
  const int num_shards_;
  ThreadPool pool_;
  // Per-shard FIFO queues. Owned by the control thread; during a
  // parallel phase each worker reads exactly one shard's queue.
  std::vector<std::vector<Job>> queues_;
  // Per-(source, target) mailboxes; target kControlPlane is slot 0.
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  int64_t pending_tasks_ = 0;
  std::atomic<int64_t> pending_messages_{0};
  std::atomic<bool> in_parallel_phase_{false};
  int64_t tasks_run_ = 0;
  int64_t messages_delivered_ = 0;
  int64_t barriers_ = 0;
};

}  // namespace pstore

#endif  // PSTORE_ENGINE_SHARDED_LOOP_H_
