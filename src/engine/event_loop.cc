#include "engine/event_loop.h"

#include <utility>

#include "common/logging.h"
#include "common/sim_time.h"

namespace pstore {

void EventLoop::ScheduleAt(SimTime when, Callback callback) {
  PSTORE_CHECK(callback != nullptr);
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, std::move(callback)});
}

void EventLoop::ScheduleAfter(SimTime delay, Callback callback) {
  PSTORE_CHECK(delay >= 0);
  ScheduleAt(now_ + delay, std::move(callback));
}

void EventLoop::RunUntil(SimTime end) {
  PSTORE_CHECK(end >= now_);
  while (!queue_.empty() && queue_.top().when <= end) {
    // Move the callback out before popping; pop invalidates the top.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.when;
    if (pre_event_hook_) pre_event_hook_();
    event.callback();
  }
  now_ = end;
}

void EventLoop::RunToCompletion() {
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.when;
    if (pre_event_hook_) pre_event_hook_();
    event.callback();
  }
}

}  // namespace pstore
