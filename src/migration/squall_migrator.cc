#include "migration/squall_migrator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "obs/tracer.h"
#include "planner/migration_schedule.h"
#include "planner/validate.h"

namespace pstore {

double SustainedPairRate(const MigrationOptions& options,
                         double rate_multiplier) {
  const double chunk = static_cast<double>(options.chunk_bytes);
  const double cycle_seconds =
      chunk / options.net_rate_bytes_per_sec + options.chunk_spacing_seconds;
  return chunk / cycle_seconds * rate_multiplier;
}

double SingleThreadFullMigrationSeconds(int64_t db_bytes,
                                        const MigrationOptions& options) {
  return static_cast<double>(db_bytes) / SustainedPairRate(options, 1.0);
}

MigrationManager::MigrationManager(EventLoop* loop, Cluster* cluster,
                                   MetricsCollector* metrics,
                                   const MigrationOptions& options)
    : loop_(loop), cluster_(cluster), metrics_(metrics), options_(options) {
  PSTORE_CHECK(loop_ != nullptr && cluster_ != nullptr);
  PSTORE_CHECK(options_.net_rate_bytes_per_sec > 0.0);
  PSTORE_CHECK(options_.extract_rate_bytes_per_sec > 0.0);
  PSTORE_CHECK(options_.chunk_bytes > 0);
  PSTORE_CHECK(options_.chunk_spacing_seconds >= 0.0);
}

double MigrationManager::FractionMoved() const {
  if (!in_progress_ || planned_bytes_ == 0) return 1.0;
  return std::min(1.0, static_cast<double>(moved_bytes_) /
                           static_cast<double>(planned_bytes_));
}

void MigrationManager::SetMachines(NodeCount count) {
  if (count.value() > cluster_->active_nodes()) {
    PSTORE_CHECK_OK(cluster_->ActivateNodes(count.value()));
  } else if (count.value() < cluster_->active_nodes()) {
    PSTORE_CHECK_OK(cluster_->DeactivateNodes(count.value()));
  } else {
    return;
  }
  if (metrics_ != nullptr) {
    metrics_->RecordMachines(loop_->now(), count.value());
  }
}

Status MigrationManager::ValidateTarget(NodeCount target_nodes,
                                        double rate_multiplier) const {
  if (in_progress_) {
    return Status::FailedPrecondition("reconfiguration already in progress");
  }
  if (target_nodes.value() == cluster_->active_nodes()) {
    return Status::InvalidArgument("target equals current machine count");
  }
  if (target_nodes < NodeCount(1) ||
      target_nodes.value() > cluster_->options().max_nodes) {
    return Status::OutOfRange("target node count " +
                              std::to_string(target_nodes.value()) +
                              " outside [1, max_nodes]");
  }
  if (rate_multiplier <= 0.0) {
    return Status::InvalidArgument("rate multiplier must be positive");
  }
  return Status::OK();
}

Status MigrationManager::StartReconfiguration(NodeCount target_nodes,
                                              double rate_multiplier,
                                              DoneCallback done) {
  RETURN_IF_ERROR(ValidateTarget(target_nodes, rate_multiplier));
  const int before = cluster_->active_nodes();
  StatusOr<MigrationSchedule> schedule =
      BuildMigrationSchedule(NodeCount(before), target_nodes);
  if (!schedule.ok()) return schedule.status();
  // Debug builds re-verify the §4.4.1 invariants on the exact schedule
  // this reconfiguration will execute.
  PSTORE_DCHECK_OK(ScheduleValidator().Validate(*schedule));

  in_progress_ = true;
  target_nodes_ = target_nodes;
  rate_multiplier_ = rate_multiplier;
  done_ = std::move(done);
  schedule_ = std::move(*schedule);
  current_round_ = 0;
  moved_bytes_ = 0;

  // Total bytes this reconfiguration will move: the fraction of the
  // database in flight (1 - B/A or 1 - A/B) times its size.
  const int64_t db_bytes = cluster_->TotalDataBytes();
  planned_bytes_ = static_cast<int64_t>(
      schedule_.TotalFractionMoved() * static_cast<double>(db_bytes) + 0.5);

  // Count how many transfers each machine performs as sender, and the
  // bytes each source partition should hold when the move completes
  // (1/A of the database spread over its partitions for survivors, zero
  // for machines being drained).
  const int p = cluster_->partitions_per_node();
  const int total_partitions =
      cluster_->options().max_nodes * p;
  remaining_sends_.assign(total_partitions, 0);
  final_target_bytes_.assign(total_partitions, 0);
  remaining_weight_.assign(total_partitions, 1.0);
  for (const ScheduleRound& round : schedule_.rounds) {
    for (const TransferPair& pair : round.transfers) {
      for (int i = 0; i < p; ++i) {
        ++remaining_sends_[pair.sender.value() * p + i];
      }
    }
  }
  const bool scale_out = target_nodes.value() > before;
  const int64_t survivor_partition_bytes =
      db_bytes / (static_cast<int64_t>(target_nodes.value()) * p);
  for (int node = 0; node < cluster_->options().max_nodes; ++node) {
    const bool survives = scale_out || node < target_nodes.value();
    for (int i = 0; i < p; ++i) {
      final_target_bytes_[node * p + i] =
          survives ? survivor_partition_bytes : 0;
    }
  }

  // Deficit weights: how much of the in-flight data each receiver
  // partition should absorb, normalized per partition index (every
  // sender's partition i talks to every receiver's partition i exactly
  // once). Weighting by deficit corrects pre-existing imbalance among
  // scale-in survivors; for empty scale-out receivers it degenerates to
  // the uniform 1/delta split.
  deficit_weight_.assign(total_partitions, 0.0);
  const int first_receiver = scale_out ? before : 0;
  const int last_receiver = target_nodes.value();
  for (int i = 0; i < p; ++i) {
    double total_deficit = 0.0;
    for (int node = first_receiver; node < last_receiver; ++node) {
      const int partition = node * p + i;
      const double deficit = std::max<double>(
          0.0, static_cast<double>(final_target_bytes_[partition]) -
                   static_cast<double>(
                       cluster_->partition(partition).data_bytes()));
      deficit_weight_[partition] = deficit;
      total_deficit += deficit;
    }
    const int receivers = last_receiver - first_receiver;
    for (int node = first_receiver; node < last_receiver; ++node) {
      const int partition = node * p + i;
      deficit_weight_[partition] =
          total_deficit > 0.0
              ? deficit_weight_[partition] / total_deficit
              : 1.0 / std::max(1, receivers);
    }
  }

  if (metrics_ != nullptr) metrics_->RecordMigrationActive(loop_->now(), true);
  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kMigration, loop_->now(),
               "migration.start",
               .With("from", before)
                   .With("to", target_nodes.value())
                   .With("planned_bytes", planned_bytes_)
                   .With("rate", rate_multiplier)
                   .With("rounds", schedule_.rounds.size()));
  StartRound(0);
  return Status::OK();
}

void MigrationManager::StartRound(size_t round_index) {
  PSTORE_CHECK(round_index < schedule_.rounds.size());
  current_round_ = round_index;
  const ScheduleRound& round = schedule_.rounds[round_index];
  const bool scale_out = schedule_.IsScaleOut();
  const int p = cluster_->partitions_per_node();

  // Just-in-time allocation: on scale-out new machines come up at the
  // start of the round that first fills them.
  if (scale_out &&
      round.machines_allocated.value() > cluster_->active_nodes()) {
    SetMachines(round.machines_allocated);
  }

  // Build one stream per (pair, partition index): partition i of the
  // sender feeds partition i of the receiver.
  streams_.clear();
  streams_.reserve(round.transfers.size() * static_cast<size_t>(p));
  for (const TransferPair& pair : round.transfers) {
    for (int i = 0; i < p; ++i) {
      Stream stream;
      stream.from_partition = PartitionId(pair.sender.value() * p + i);
      stream.to_partition = PartitionId(pair.receiver.value() * p + i);
      streams_.push_back(stream);
    }
  }

  // Assign buckets to streams. Each stream moves an equal share of what
  // its source partition still has to give: (current - final target) /
  // remaining sends. Dividing by the *remaining* send count makes the
  // allocation self-correcting under bucket-granularity rounding — in
  // particular a draining partition's last stream always takes
  // everything left, so released machines end up truly empty.
  for (Stream& stream : streams_) {
    Partition& source = cluster_->partition(stream.from_partition.value());
    const int sends_left = remaining_sends_[stream.from_partition.value()];
    PSTORE_CHECK(sends_left >= 1);
    const int64_t surplus = std::max<int64_t>(
        0, source.data_bytes() -
               final_target_bytes_[stream.from_partition.value()]);
    // Deficit-weighted share of the remaining surplus: this receiver's
    // weight over the total weight of receivers this sender has not
    // served yet. Both the surplus and the weight pool shrink as rounds
    // complete, so bucket-granularity rounding self-corrects.
    const double weight = deficit_weight_[stream.to_partition.value()];
    const double pool =
        std::max(remaining_weight_[stream.from_partition.value()], 1e-12);
    const int64_t target_bytes = static_cast<int64_t>(
        static_cast<double>(surplus) * std::min(1.0, weight / pool) + 0.5);
    remaining_weight_[stream.from_partition.value()] =
        std::max(0.0, pool - weight);
    --remaining_sends_[stream.from_partition.value()];
    const bool take_all =
        sends_left == 1 && !scale_out &&
        final_target_bytes_[stream.from_partition.value()] == 0;

    const std::vector<BucketId> available =
        cluster_->BucketsOnPartition(stream.from_partition.value());
    int64_t taken = 0;
    stream.buckets.reserve(available.size());
    for (BucketId bucket : available) {
      const int64_t bytes = std::max<int64_t>(1, source.BucketBytes(bucket));
      if (!take_all) {
        if (taken >= target_bytes) break;
        // Round to nearest: skip the final bucket when overshooting by
        // more than stopping short would undershoot. Systematic
        // overshoot would otherwise starve the last receivers.
        if (taken + bytes - target_bytes > target_bytes - taken) break;
      }
      stream.buckets.push_back(bucket);
      taken += bytes;
    }
    if (!stream.buckets.empty()) {
      stream.bytes_left_in_bucket =
          std::max<int64_t>(1, source.BucketBytes(stream.buckets[0]));
    }
  }

  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kMigration, loop_->now(),
               "migration.round",
               .With("round", round_index)
                   .With("streams", streams_.size())
                   .With("machines", cluster_->active_nodes()));

  // Kick off every stream.
  streams_active_ = 0;
  const uint64_t epoch = epoch_;
  for (size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i].buckets.empty()) continue;
    ++streams_active_;
    loop_->ScheduleAt(loop_->now(), [this, i, epoch] {
      if (epoch != epoch_) return;
      TransferChunk(i);
    });
  }
  if (streams_active_ == 0) FinishRound();
}

void MigrationManager::ScheduleNextChunk(size_t stream_index, SimTime at) {
  const uint64_t epoch = epoch_;
  loop_->ScheduleAt(at, [this, stream_index, epoch] {
    if (epoch != epoch_) return;
    TransferChunk(stream_index);
  });
}

void MigrationManager::TransferChunk(size_t stream_index) {
  Stream& stream = streams_[stream_index];
  PSTORE_CHECK(stream.next_bucket < stream.buckets.size());
  const int from_partition = stream.from_partition.value();
  const int to_partition = stream.to_partition.value();
  const int from_node = cluster_->NodeOfPartition(from_partition);
  const int to_node = cluster_->NodeOfPartition(to_partition);

  // Fault pre-checks: a crashed endpoint or a dead link means the chunk
  // cannot even start; back off and retry.
  double fault_multiplier = 1.0;
  if (fault_hook_ != nullptr) {
    fault_multiplier = fault_hook_->ChunkRateMultiplier(NodeId(from_node),
                                                        NodeId(to_node));
  }
  if (!cluster_->IsNodeUp(from_node) || !cluster_->IsNodeUp(to_node) ||
      fault_multiplier <= 0.0) {
    RetryChunk(stream_index,
               Status::Unavailable("chunk endpoint down (nodes " +
                                   std::to_string(from_node) + " -> " +
                                   std::to_string(to_node) + ")"));
    return;
  }

  // Plan the chunk on locals: the stream cursor commits only in the
  // successful completion event below, so a chunk that fails in flight
  // is simply replanned from the same position. The actual handoff also
  // happens at completion, so mid-transfer transactions keep executing
  // at the source.
  int64_t chunk = 0;
  std::vector<BucketId> handoff;
  handoff.reserve(stream.buckets.size() - stream.next_bucket);
  size_t next_bucket = stream.next_bucket;
  int64_t bytes_left = stream.bytes_left_in_bucket;
  while (chunk < options_.chunk_bytes && next_bucket < stream.buckets.size()) {
    const int64_t take = std::min(options_.chunk_bytes - chunk, bytes_left);
    chunk += take;
    bytes_left -= take;
    if (bytes_left == 0) {
      handoff.push_back(stream.buckets[next_bucket]);
      ++next_bucket;
      if (next_bucket < stream.buckets.size()) {
        bytes_left = std::max<int64_t>(
            1, cluster_->partition(from_partition)
                   .BucketBytes(stream.buckets[next_bucket]));
      }
    }
  }
  const bool stream_done = next_bucket >= stream.buckets.size();

  // The transfer occupies the wire for chunk/net_rate (stretched by an
  // active straggler or network-degradation fault). When it lands, the
  // extraction/loading work blocks each endpoint partition for
  // chunk/extract_rate of service time, competing with transactions —
  // the per-chunk latency bump of Fig. 8. The block is charged at
  // completion time (not reserved in advance), so transactions arriving
  // during the wire transfer are not queued behind it.
  const double transfer_seconds =
      static_cast<double>(chunk) /
      (options_.net_rate_bytes_per_sec * rate_multiplier_ * fault_multiplier);
  const SimTime completion = loop_->now() + FromSeconds(transfer_seconds);
  const SimTime block = FromSeconds(static_cast<double>(chunk) /
                                    options_.extract_rate_bytes_per_sec);
  const uint64_t epoch = epoch_;
  loop_->ScheduleAt(
      completion, [this, epoch, stream_index, chunk, block, from_partition,
                   to_partition, from_node, to_node, stream_done, next_bucket,
                   bytes_left, handoff = std::move(handoff)] {
        if (epoch != epoch_) return;
        // Completion checks: an endpoint crashed mid-transfer, or the
        // fault schedule aborts this transfer. Nothing was committed,
        // so the retry replans the identical chunk.
        if (!cluster_->IsNodeUp(from_node) || !cluster_->IsNodeUp(to_node)) {
          RetryChunk(stream_index,
                     Status::Unavailable("chunk endpoint crashed in flight"));
          return;
        }
        if (fault_hook_ != nullptr &&
            fault_hook_->TakeChunkAbort(NodeId(from_node), NodeId(to_node))) {
          ++chunks_aborted_;
          RetryChunk(stream_index, Status::Aborted("injected chunk abort"));
          return;
        }
        Stream& done_stream = streams_[stream_index];
        done_stream.next_bucket = next_bucket;
        done_stream.bytes_left_in_bucket = bytes_left;
        done_stream.attempts = 0;
        for (const BucketId bucket : handoff) {
          cluster_->MoveBucket(bucket, to_partition);
        }
        cluster_->partition(from_partition).Submit(loop_->now(), block);
        cluster_->partition(to_partition).Submit(loop_->now(), block);
        moved_bytes_ += chunk;
        total_bytes_moved_ += chunk;
        PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kMigration,
                     loop_->now(), "migration.chunk",
                     .With("from", from_partition)
                         .With("to", to_partition)
                         .With("bytes", chunk)
                         .With("handoffs", handoff.size())
                         .With("stream_done", stream_done));
        if (stream_done) {
          if (--streams_active_ == 0) FinishRound();
          return;
        }
        const double spacing =
            options_.chunk_spacing_seconds / rate_multiplier_;
        ScheduleNextChunk(stream_index, loop_->now() + FromSeconds(spacing));
      });
}

void MigrationManager::RetryChunk(size_t stream_index, const Status& cause) {
  Stream& stream = streams_[stream_index];
  if (stream.attempts >= options_.max_chunk_retries) {
    AbortReconfiguration(Status::Aborted(
        "chunk retry budget (" + std::to_string(options_.max_chunk_retries) +
        ") exhausted: " + cause.ToString()));
    return;
  }
  // Exponential backoff derived from the attempt count, so no extra
  // per-stream state needs resetting on success.
  const double backoff = std::min(
      options_.max_backoff_seconds,
      options_.retry_backoff_seconds *
          std::pow(options_.retry_backoff_multiplier, stream.attempts));
  ++stream.attempts;
  ++chunk_retries_;
  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kMigration, loop_->now(),
               "migration.retry",
               .With("from", stream.from_partition.value())
                   .With("to", stream.to_partition.value())
                   .With("attempts", stream.attempts)
                   .With("backoff_s", backoff)
                   .With("cause", cause.ToString()));
  ScheduleNextChunk(stream_index, loop_->now() + FromSeconds(backoff));
}

void MigrationManager::AbortReconfiguration(const Status& cause) {
  PSTORE_CHECK(in_progress_);
  in_progress_ = false;
  ++reconfigurations_failed_;
  last_failure_ = cause;
  // Bumping the epoch cancels every pending chunk event of the other
  // streams. The cluster is left in a consistent intermediate state:
  // bucket routing always matches where the data actually is, and any
  // machines brought up mid-move stay up (the controller owns the
  // decision to re-plan from here).
  ++epoch_;
  streams_.clear();
  if (metrics_ != nullptr) {
    metrics_->RecordMigrationActive(loop_->now(), false);
  }
  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kMigration, loop_->now(),
               "migration.abort",
               .With("moved_bytes", moved_bytes_)
                   .With("cause", cause.ToString()));
  if (done_) {
    DoneCallback done = std::move(done_);
    done_ = nullptr;
    done(cause);
  }
}

void MigrationManager::FinishRound() {
  const bool scale_out = schedule_.IsScaleOut();
  const size_t next = current_round_ + 1;
  if (next < schedule_.rounds.size()) {
    // On scale-in, drained machines are released as soon as the next
    // round needs fewer of them.
    if (!scale_out) {
      SetMachines(schedule_.rounds[next].machines_allocated);
    }
    StartRound(next);
    return;
  }
  FinishReconfiguration();
}

void MigrationManager::FinishReconfiguration() {
  SetMachines(target_nodes_);
  in_progress_ = false;
  ++reconfigurations_completed_;
  ++epoch_;
  streams_.clear();
  if (metrics_ != nullptr) {
    metrics_->RecordMigrationActive(loop_->now(), false);
  }
  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kMigration, loop_->now(),
               "migration.done",
               .With("bytes", moved_bytes_)
                   .With("machines", target_nodes_.value()));
  if (done_) {
    DoneCallback done = std::move(done_);
    done_ = nullptr;
    done(Status::OK());
  }
}

}  // namespace pstore
