#ifndef PSTORE_MIGRATION_SQUALL_MIGRATOR_H_
#define PSTORE_MIGRATION_SQUALL_MIGRATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "obs/tracer.h"
#include "planner/migration_schedule.h"

namespace pstore {

// Cost model of chunked live migration, mirroring Squall's behaviour
// (paper §8.1, Fig. 8): data moves between one sender and one receiver
// partition in chunks; each chunk briefly blocks both partitions (the
// extraction/loading work competes with transaction execution), and
// chunks are spaced apart so the sustained rate stays gentle.
struct MigrationOptions {
  // Bytes per second while a chunk is actively being transferred.
  double net_rate_bytes_per_sec = 500e3;
  // Idle gap between consecutive chunks of one stream, in seconds.
  double chunk_spacing_seconds = 2.0;
  // Rate at which extraction/loading work blocks each endpoint
  // partition: each chunk blocks sender and receiver for
  // chunk_bytes / extract_rate seconds of service time.
  double extract_rate_bytes_per_sec = 20e6;
  // Maximum chunk size in bytes. Larger chunks migrate faster (the
  // fixed spacing amortizes) but block partitions longer per chunk,
  // spiking tail latency — the Fig. 8 tradeoff.
  int64_t chunk_bytes = 1000 * 1000;
  // Failure recovery: a chunk that cannot start (endpoint down, link
  // dead) or fails in flight is retried with exponential backoff. Once a
  // single stream exhausts its retry budget the whole reconfiguration
  // aborts with kAborted, leaving routing consistent with the data moved
  // so far.
  int max_chunk_retries = 8;
  double retry_backoff_seconds = 0.5;
  double retry_backoff_multiplier = 2.0;
  double max_backoff_seconds = 30.0;
};

// Injection seam for fault drills: the migrator consults the hook
// before starting and after landing each chunk. Implemented by
// FaultInjector (src/fault/), keeping the dependency pointed
// fault -> migration.
class MigrationFaultHook {
 public:
  virtual ~MigrationFaultHook() = default;
  // Multiplier applied to the wire rate for a chunk between the two
  // nodes: 1.0 healthy, in (0,1) degraded or straggling, <= 0 link down
  // (the chunk cannot start and is retried with backoff).
  virtual double ChunkRateMultiplier(NodeId from_node, NodeId to_node) = 0;
  // Returns true to fail the chunk that just finished its wire transfer
  // (consumed: one pending abort fails one chunk).
  virtual bool TakeChunkAbort(NodeId from_node, NodeId to_node) = 0;
};

// Sustained per-pair migration rate in bytes/s implied by the options:
// chunk / (chunk/net_rate + spacing), times `rate_multiplier`.
double SustainedPairRate(const MigrationOptions& options,
                         double rate_multiplier = 1.0);

// Time to migrate the entire database once with a single sender-receiver
// pair — the paper's parameter D (§4.1) — for the given database size.
double SingleThreadFullMigrationSeconds(int64_t db_bytes,
                                        const MigrationOptions& options);

// Executes reconfigurations against a simulated cluster following the
// round-based parallel schedule of §4.4.1: rounds run sequentially, the
// sender->receiver pairs within a round run concurrently (one stream per
// partition index per pair), machines are allocated/deallocated just in
// time, and every bucket is handed off (rerouted) the moment its last
// byte arrives, so transactions always find their data.
class MigrationManager {
 public:
  // Runs when the reconfiguration ends: OK after the last bucket lands,
  // kAborted when a stream exhausted its retry budget.
  using DoneCallback = std::function<void(const Status&)>;

  MigrationManager(EventLoop* loop, Cluster* cluster,
                   MetricsCollector* metrics,
                   const MigrationOptions& options);
  MigrationManager(const MigrationManager&) = delete;
  MigrationManager& operator=(const MigrationManager&) = delete;

  // Begins reconfiguring the cluster to `target_nodes` machines.
  // `rate_multiplier` scales the migration rate (1.0 normally; the
  // reactive fallback uses 8.0, Fig. 11). `done` runs when the last
  // bucket lands. Fails if a reconfiguration is already in progress or
  // target_nodes equals the current size or is out of range.
  Status StartReconfiguration(NodeCount target_nodes, double rate_multiplier,
                              DoneCallback done);

  bool InProgress() const { return in_progress_; }
  NodeCount target_nodes() const { return target_nodes_; }

  // Fraction (0..1) of the planned bytes already moved in the current
  // reconfiguration; 1.0 when idle.
  double FractionMoved() const;

  // Total bytes moved across all reconfigurations.
  int64_t total_bytes_moved() const { return total_bytes_moved_; }
  int64_t reconfigurations_completed() const {
    return reconfigurations_completed_;
  }
  int64_t reconfigurations_failed() const { return reconfigurations_failed_; }
  // Chunks that had to be rescheduled after a fault (backoff retries).
  ChunkCount chunk_retries() const { return ChunkCount(chunk_retries_); }
  // Chunks failed by an injected transfer abort (a subset of retries).
  ChunkCount chunks_aborted() const { return ChunkCount(chunks_aborted_); }
  // Status of the most recent failed reconfiguration (OK if none).
  const Status& last_failure() const { return last_failure_; }

  // Installs (or clears, with nullptr) the fault hook consulted around
  // every chunk transfer.
  void set_fault_hook(MigrationFaultHook* hook) { fault_hook_ = hook; }

  // Installs (or clears) the tracer receiving migration.* events:
  // start/round/chunk/retry/abort/done, one event per chunk landed.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  const MigrationOptions& options() const { return options_; }

 private:
  // One pair's per-partition-index chunk stream within a round.
  struct Stream {
    PartitionId from_partition{0};
    PartitionId to_partition{0};
    std::vector<BucketId> buckets;  // buckets to move, in order
    size_t next_bucket = 0;
    int64_t bytes_left_in_bucket = 0;  // of buckets[next_bucket]
    // Consecutive failed attempts for the current chunk; reset when a
    // chunk lands. Backoff grows exponentially with this count.
    int attempts = 0;
  };

  Status ValidateTarget(NodeCount target_nodes, double rate_multiplier) const;
  void StartRound(size_t round_index);
  void ScheduleNextChunk(size_t stream_index, SimTime at);
  void TransferChunk(size_t stream_index);
  // Reschedules the stream's current chunk after backoff, or aborts the
  // reconfiguration when the retry budget is exhausted.
  void RetryChunk(size_t stream_index, const Status& cause);
  void AbortReconfiguration(const Status& cause);
  void FinishRound();
  void FinishReconfiguration();
  void SetMachines(NodeCount count);

  EventLoop* loop_;
  Cluster* cluster_;
  MetricsCollector* metrics_;
  MigrationOptions options_;

  bool in_progress_ = false;
  NodeCount target_nodes_{0};
  double rate_multiplier_ = 1.0;
  DoneCallback done_;
  MigrationSchedule schedule_;
  size_t current_round_ = 0;
  std::vector<Stream> streams_;
  // Per source partition: transfers it still participates in as sender,
  // and the bytes it should end the reconfiguration with. Each stream
  // moves a deficit-weighted share of its sender's remaining surplus
  // (every sender serves every receiver exactly once, so weighting by
  // the receiver's byte deficit lands each receiver on its target even
  // when the cluster starts unbalanced), and a draining sender's last
  // stream takes everything left.
  std::vector<int> remaining_sends_;
  std::vector<int64_t> final_target_bytes_;
  // Receiver-partition deficit weights, normalized per partition index.
  std::vector<double> deficit_weight_;
  // Per sender partition: total weight of the receivers not yet served
  // (starts at 1.0; stream quotas divide by this so rounding drift
  // self-corrects round over round).
  std::vector<double> remaining_weight_;
  int streams_active_ = 0;
  int64_t planned_bytes_ = 0;
  int64_t moved_bytes_ = 0;
  int64_t total_bytes_moved_ = 0;
  int64_t reconfigurations_completed_ = 0;
  int64_t reconfigurations_failed_ = 0;
  int64_t chunk_retries_ = 0;
  int64_t chunks_aborted_ = 0;
  Status last_failure_ = Status::OK();
  MigrationFaultHook* fault_hook_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  uint64_t epoch_ = 0;  // guards stale chunk events after completion
};

}  // namespace pstore

#endif  // PSTORE_MIGRATION_SQUALL_MIGRATOR_H_
