#ifndef PSTORE_SIM_RUN_SPEC_H_
#define PSTORE_SIM_RUN_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/time_series.h"
#include "obs/tracer.h"
#include "prediction/predictor.h"
#include "sim/capacity_simulator.h"
#include "trace/b2w_trace_generator.h"
#include "trace/spike_injector.h"
#include "trace/wikipedia_trace_generator.h"

namespace pstore {

// The allocation strategies the capacity simulator can drive (paper
// §8.3, Fig. 12). The predictive-oracle variant is not a separate value:
// it is kPredictive with SimOptions::inflation = 1.0 and a perfect
// predictor.
enum class Strategy {
  kPredictive,
  kReactive,
  kSimple,
  kStatic,
};

// Short lowercase name as accepted by --strategy ("pstore", "reactive",
// "simple", "static").
const char* StrategyName(Strategy strategy);

// Parses a --strategy value; accepts "pstore" or "predictive" for
// kPredictive. Returns kInvalidArgument on anything else.
StatusOr<Strategy> ParseStrategy(const std::string& name);

// How a run obtains its load trace. Every sweep task builds (or copies)
// its own TimeSeries from this description, so tasks never share mutable
// workload state; generation is seeded and therefore bit-reproducible.
struct WorkloadSpec {
  enum class Kind {
    kProvided,      // borrow an existing series (e.g. loaded from CSV)
    kB2wSynthetic,  // GenerateB2wTrace(b2w)
    kWikipedia,     // GenerateWikipediaTrace(wikipedia)
    kYcsbSteady,    // steady YCSB-style rate with seeded noise and drift
    kStep,          // base_rate, jumping to peak_rate at step_at_slot
  };
  Kind kind = Kind::kB2wSynthetic;

  // kProvided: borrowed, must outlive the run; not modified.
  const TimeSeries* provided = nullptr;

  // kB2wSynthetic:
  B2wTraceOptions b2w;

  // kWikipedia:
  WikipediaTraceOptions wikipedia;

  // kYcsbSteady: YCSB drives a constant offered rate; the per-slot
  // multiplicative noise plus a slow mean-reverting drift model the
  // client-side jitter a real benchmark run shows. Deterministic in
  // ycsb_seed.
  double ycsb_slot_seconds = 60.0;
  size_t ycsb_slots = 0;
  double ycsb_rate = 0.0;
  double ycsb_noise_sigma = 0.05;
  double ycsb_drift_sigma = 0.08;
  double ycsb_drift_relaxation_slots = 240.0;
  uint64_t ycsb_seed = 13;

  // kStep:
  double step_slot_seconds = 60.0;
  size_t step_slots = 0;
  size_t step_at_slot = 0;
  double base_rate = 0.0;
  double peak_rate = 0.0;

  // Elementwise multiplier applied to the built trace (1.0 = none).
  double scale = 1.0;

  // Optional unexpected flash-crowd spike (Fig. 11), multiplied into the
  // scaled trace.
  bool inject_spike = false;
  SpikeOptions spike;
};

// Materializes the trace a WorkloadSpec describes. Pure function of the
// spec (seeds included), so equal specs give bit-identical traces.
StatusOr<TimeSeries> BuildWorkloadTrace(const WorkloadSpec& workload);

// One complete description of a capacity-simulator run: the workload,
// the simulator options, the strategy plus its knobs, and the trace
// sink. This is the single entry point pstore_simulate, pstore_chaos
// and the fig09/fig11/fig12/fig13/table2 benches construct — and the
// unit of work RunSweep evaluates in parallel.
struct RunSpec {
  // Identifies the run in CSV output and sweep telemetry.
  std::string label;

  WorkloadSpec workload;
  SimOptions sim;

  Strategy strategy = Strategy::kPredictive;
  // Strategy knobs; only the one matching `strategy` is read.
  ReactiveSimParams reactive;
  SimpleSimParams simple;
  int static_nodes = 10;

  // Required (fitted) for kPredictive, ignored otherwise. Borrowed and
  // read-only; prediction is const, so one fitted predictor may be
  // shared by many specs in a sweep.
  const LoadPredictor* predictor = nullptr;

  // Alternative to `predictor`: a predictor spec string (see
  // prediction/predictor_spec.h, e.g. "spar(n=7,m=6)" or
  // "ensemble(spar,ar,hw)"). When `predictor` is null and this is
  // non-empty, RunOne materializes the model per task — built with the
  // run's coarse period/horizon as contextual defaults and fitted on the
  // pre-eval prefix of the coarse trace — so sweep tasks stay
  // independent even with stateful (adaptive) models.
  std::string predictor_spec;

  // Convenience: when nonzero, overrides workload.b2w.seed so sweeps
  // over seeds need not reach into the workload description.
  uint64_t seed = 0;

  // Per-run structured trace sink. Runs executed concurrently must not
  // share a Tracer (it is not thread-safe); RunSweep rejects sweeps in
  // which two specs alias one.
  obs::Tracer* tracer = nullptr;
};

// Executes one spec serially: builds the workload trace, constructs the
// CapacitySimulator and dispatches on the strategy.
StatusOr<SimResult> RunOne(const RunSpec& spec);

struct SweepOptions {
  // Worker threads; < 1 means hardware concurrency. Ignored when `pool`
  // is set.
  int threads = 0;
  // Optional caller-owned pool to run on (reused across sweeps).
  ThreadPool* pool = nullptr;
  // Sweep-level telemetry: one sweep.task event per spec (index, label,
  // wall_us) and a closing sweep.done (tasks, threads, wall_us,
  // serial_wall_us). Events are emitted from the calling thread after
  // the join, in spec order, so this tracer may be one of the per-spec
  // tracers' sibling or any other single-threaded sink.
  obs::Tracer* tracer = nullptr;
};

struct SweepResult {
  // By spec index — never by completion order.
  std::vector<SimResult> results;
  // Per-task wall time, by spec index (telemetry only: wall times are
  // scheduling-dependent and are deliberately excluded from CSV output).
  std::vector<double> task_wall_us;
  double wall_us = 0.0;
  int threads = 1;
};

// Evaluates independent specs concurrently and collects results by spec
// index, so the output is bit-identical for any thread count. Each task
// owns its trace, simulator, planner and RNG state; the only shared
// inputs (predictors, provided traces) are read-only. On failure the
// error of the lowest-index failing spec is returned.
StatusOr<SweepResult> RunSweep(const std::vector<RunSpec>& specs,
                               const SweepOptions& options = {});

// Renders a sweep as deterministic CSV (header plus one row per spec,
// doubles in %.17g): label, strategy, headline SimResult fields. Wall
// times are excluded on purpose — this is the artifact the golden test
// byte-compares across thread counts.
std::string SweepCsvRows(const std::vector<RunSpec>& specs,
                         const SweepResult& sweep);

}  // namespace pstore

#endif  // PSTORE_SIM_RUN_SPEC_H_
