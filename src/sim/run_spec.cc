#include "sim/run_spec.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <utility>
#include <string>
#include <vector>

#include <memory>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/time_series.h"
#include "obs/tracer.h"
#include "obs/wall_timer.h"
#include "prediction/predictor.h"
#include "prediction/predictor_spec.h"
#include "sim/capacity_simulator.h"
#include "trace/b2w_trace_generator.h"
#include "trace/spike_injector.h"
#include "trace/wikipedia_trace_generator.h"

namespace pstore {
namespace {

void AppendDouble(std::string* out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  *out += buffer;
}

}  // namespace

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kPredictive:
      return "pstore";
    case Strategy::kReactive:
      return "reactive";
    case Strategy::kSimple:
      return "simple";
    case Strategy::kStatic:
      return "static";
  }
  return "unknown";
}

StatusOr<Strategy> ParseStrategy(const std::string& name) {
  if (name == "pstore" || name == "predictive") return Strategy::kPredictive;
  if (name == "reactive") return Strategy::kReactive;
  if (name == "simple") return Strategy::kSimple;
  if (name == "static") return Strategy::kStatic;
  return Status::InvalidArgument(
      "unknown strategy (pstore|reactive|simple|static): " + name);
}

StatusOr<TimeSeries> BuildWorkloadTrace(const WorkloadSpec& workload) {
  TimeSeries trace;
  switch (workload.kind) {
    case WorkloadSpec::Kind::kProvided: {
      if (workload.provided == nullptr) {
        return Status::InvalidArgument(
            "kProvided workload without a provided series");
      }
      trace = *workload.provided;
      break;
    }
    case WorkloadSpec::Kind::kB2wSynthetic: {
      trace = GenerateB2wTrace(workload.b2w);
      break;
    }
    case WorkloadSpec::Kind::kWikipedia: {
      trace = GenerateWikipediaTrace(workload.wikipedia);
      break;
    }
    case WorkloadSpec::Kind::kYcsbSteady: {
      if (workload.ycsb_slots == 0) {
        return Status::InvalidArgument(
            "kYcsbSteady workload with ycsb_slots == 0");
      }
      if (workload.ycsb_rate <= 0.0) {
        return Status::InvalidArgument(
            "kYcsbSteady workload with ycsb_rate <= 0");
      }
      trace = TimeSeries(workload.ycsb_slot_seconds);
      Rng rng(workload.ycsb_seed);
      // Mean-reverting drift (discretized OU process) multiplied by
      // per-slot noise around the constant offered rate.
      const double relax =
          workload.ycsb_drift_relaxation_slots > 1.0
              ? 1.0 / workload.ycsb_drift_relaxation_slots
              : 1.0;
      double drift = 0.0;
      for (size_t i = 0; i < workload.ycsb_slots; ++i) {
        drift += relax * (0.0 - drift) +
                 workload.ycsb_drift_sigma * std::sqrt(2.0 * relax) *
                     rng.NextGaussian();
        const double noise =
            1.0 + workload.ycsb_noise_sigma * rng.NextGaussian();
        const double rate = workload.ycsb_rate * (1.0 + drift) * noise;
        trace.Append(rate > 0.0 ? rate : 0.0);
      }
      break;
    }
    case WorkloadSpec::Kind::kStep: {
      if (workload.step_slots == 0) {
        return Status::InvalidArgument("kStep workload with step_slots == 0");
      }
      trace = TimeSeries(workload.step_slot_seconds);
      for (size_t i = 0; i < workload.step_slots; ++i) {
        trace.Append(i < workload.step_at_slot ? workload.base_rate
                                               : workload.peak_rate);
      }
      break;
    }
  }
  if (workload.scale != 1.0) trace = trace.Scaled(workload.scale);
  if (workload.inject_spike) trace = InjectSpike(trace, workload.spike);
  return trace;
}

StatusOr<SimResult> RunOne(const RunSpec& spec) {
  WorkloadSpec workload = spec.workload;
  if (spec.seed != 0) {
    // Override the seed of whichever generator the spec uses.
    workload.b2w.seed = spec.seed;
    workload.wikipedia.seed = spec.seed;
    workload.ycsb_seed = spec.seed;
  }
  StatusOr<TimeSeries> trace = BuildWorkloadTrace(workload);
  if (!trace.ok()) return trace.status();

  CapacitySimulator sim(spec.sim);
  sim.set_tracer(spec.tracer);
  switch (spec.strategy) {
    case Strategy::kPredictive: {
      if (spec.predictor != nullptr) {
        return sim.RunPredictive(*trace, *spec.predictor);
      }
      if (spec.predictor_spec.empty()) {
        return Status::InvalidArgument("spec '" + spec.label +
                                       "': kPredictive needs a predictor");
      }
      // Materialize the spec'd model per task: built against the run's
      // coarse planning granularity and fitted on the pre-eval prefix,
      // mirroring what the tools did by hand before the spec grammar.
      const int factor = spec.sim.plan_slot_factor;
      const TimeSeries coarse =
          trace->DownsampleMean(static_cast<size_t>(factor));
      const size_t slots_per_day = static_cast<size_t>(
          86400.0 / trace->slot_seconds() + 0.5);
      PredictorContext context;
      context.period =
          std::max<size_t>(1, slots_per_day / static_cast<size_t>(factor));
      context.max_tau = static_cast<size_t>(spec.sim.horizon_plan_slots);
      StatusOr<std::unique_ptr<LoadPredictor>> made =
          MakePredictor(spec.predictor_spec, context);
      if (!made.ok()) {
        return Status::InvalidArgument("spec '" + spec.label + "': " +
                                       made.status().message());
      }
      const Status fit = (*made)->Fit(coarse.Slice(
          0, spec.sim.eval_begin / static_cast<size_t>(factor)));
      if (!fit.ok()) {
        return Status::InvalidArgument("spec '" + spec.label + "': " +
                                       (*made)->name() +
                                       " fit: " + fit.message());
      }
      return sim.RunPredictive(*trace, **made);
    }
    case Strategy::kReactive:
      return sim.RunReactive(*trace, spec.reactive);
    case Strategy::kSimple:
      return sim.RunSimple(*trace, spec.simple);
    case Strategy::kStatic:
      return sim.RunStatic(*trace, spec.static_nodes);
  }
  return Status::InvalidArgument("unknown strategy");
}

StatusOr<SweepResult> RunSweep(const std::vector<RunSpec>& specs,
                               const SweepOptions& options) {
  // Reject ill-formed sweeps up front (deterministically, before any
  // task runs): a missing predictor or two tasks aliasing one Tracer.
  for (size_t i = 0; i < specs.size(); ++i) {
    if (specs[i].strategy == Strategy::kPredictive &&
        specs[i].predictor == nullptr && specs[i].predictor_spec.empty()) {
      return Status::InvalidArgument("spec '" + specs[i].label +
                                     "': kPredictive needs a predictor");
    }
    if (specs[i].tracer == nullptr) continue;
    for (size_t j = i + 1; j < specs.size(); ++j) {
      if (specs[j].tracer == specs[i].tracer) {
        return Status::InvalidArgument(
            "specs '" + specs[i].label + "' and '" + specs[j].label +
            "' share a Tracer; concurrent tasks need distinct sinks");
      }
    }
  }

  ThreadPool* pool = options.pool;
  ThreadPool own_pool(pool != nullptr ? 1
                                      : ResolveThreadCount(options.threads));
  if (pool == nullptr) pool = &own_pool;

  SweepResult sweep;
  sweep.threads = pool->thread_count();
  sweep.results.resize(specs.size());
  sweep.task_wall_us.assign(specs.size(), 0.0);

  obs::WallTimer sweep_timer;
  const Status run_status =
      pool->ParallelForStatus(specs.size(), [&](size_t i) -> Status {
        obs::WallTimer task_timer;
        StatusOr<SimResult> result = RunOne(specs[i]);
        sweep.task_wall_us[i] =
            static_cast<double>(task_timer.ElapsedMicros());
        if (!result.ok()) return result.status();
        sweep.results[i] = *std::move(result);
        return Status::OK();
      });
  sweep.wall_us = static_cast<double>(sweep_timer.ElapsedMicros());
  if (!run_status.ok()) return run_status;

  // Sweep telemetry is emitted post-join from this thread, in spec
  // order, so the (single-threaded) tracer never sees concurrency.
  double serial_wall_us = 0.0;
  for (double task_wall : sweep.task_wall_us) serial_wall_us += task_wall;
  for (size_t i = 0; i < specs.size(); ++i) {
    PSTORE_TRACE(options.tracer, ::pstore::obs::TraceCategory::kReport, 0,
                 "sweep.task",
                 .With("index", static_cast<int64_t>(i))
                     .With("label", specs[i].label)
                     .With("strategy", StrategyName(specs[i].strategy))
                     .With("wall_us", sweep.task_wall_us[i]));
  }
  PSTORE_TRACE(options.tracer, ::pstore::obs::TraceCategory::kReport, 0,
               "sweep.done",
               .With("tasks", static_cast<int64_t>(specs.size()))
                   .With("threads", sweep.threads)
                   .With("wall_us", sweep.wall_us)
                   .With("serial_wall_us", serial_wall_us));
  return sweep;
}

std::string SweepCsvRows(const std::vector<RunSpec>& specs,
                         const SweepResult& sweep) {
  std::string out =
      "label,strategy,machine_slots,insufficient_slots,"
      "insufficient_fraction,insufficient_during_move_slots,move_slots,"
      "fault_slots,insufficient_during_fault_slots,reconfigurations\n";
  const size_t rows = std::min(specs.size(), sweep.results.size());
  for (size_t i = 0; i < rows; ++i) {
    const SimResult& r = sweep.results[i];
    out += specs[i].label;
    out += ',';
    out += StrategyName(specs[i].strategy);
    out += ',';
    AppendDouble(&out, r.machine_slots);
    out += ',';
    out += std::to_string(r.insufficient_slots);
    out += ',';
    AppendDouble(&out, r.insufficient_fraction);
    out += ',';
    out += std::to_string(r.insufficient_during_move_slots);
    out += ',';
    out += std::to_string(r.move_slots);
    out += ',';
    out += std::to_string(r.fault_slots);
    out += ',';
    out += std::to_string(r.insufficient_during_fault_slots);
    out += ',';
    out += std::to_string(r.reconfigurations);
    out += '\n';
  }
  return out;
}

}  // namespace pstore
