#include "sim/capacity_simulator.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

#include "common/check.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "common/time_series.h"
#include "obs/tracer.h"
#include "obs/wall_timer.h"
#include "planner/dp_planner.h"
#include "planner/move.h"
#include "planner/move_model.h"
#include "planner/move_model_table.h"

namespace pstore {
namespace {

// The planner-facing parameters derived from the simulator options;
// shared by the per-run state machine and the simulator's precomputed
// move model table (which must be built from the identical params).
PlannerParams PlanParamsFor(const SimOptions& options) {
  PlannerParams params;
  params.target_rate_per_node = options.q;
  params.max_rate_per_node = options.q_hat;
  params.d_slots =
      options.d_fine_slots / static_cast<double>(options.plan_slot_factor);
  params.partitions_per_node = options.partitions_per_node;
  params.assume_instant_capacity = options.naive_capacity_planner;
  return params;
}

}  // namespace

// Shared per-run state machine: advances fine slot by fine slot, tracks
// the in-flight move, and accounts cost and violations. Strategies hook
// in via a decision callback invoked after each slot's accounting.
class CapacitySimulator::Run {
 public:
  Run(const SimOptions& options, const TimeSeries& fine_trace,
      obs::Tracer* tracer)
      : options_(options), trace_(fine_trace), tracer_(tracer) {
    // Serving capacity is governed by Q-hat; provisioning by Q.
    serve_params_.target_rate_per_node = options.q_hat;
    serve_params_.d_slots = options.d_fine_slots;
    serve_params_.partitions_per_node = options.partitions_per_node;
    plan_params_ = PlanParamsFor(options);
    nodes_ = options.initial_nodes;
  }

  // decide(fine_slot) may call StartMove.
  SimResult Execute(const std::function<void(size_t)>& decide) {
    SimResult result;
    const size_t end = trace_.size();
    PSTORE_CHECK(options_.eval_begin < end);
    result.effective_capacity.reserve(end - options_.eval_begin);
    result.machines.reserve(end - options_.eval_begin);
    for (size_t t = options_.eval_begin; t < end; ++t) {
      fine_slot_ = t;
      // Complete a move whose duration has elapsed.
      if (move_active_ && static_cast<double>(t) >= move_end_) {
        nodes_ = move_to_;
        move_active_ = false;
        PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kSim, TsAt(t),
                     "sim.move.done", .With("machines", nodes_));
      }
      decide(t);
      // Account this slot.
      double eff_cap;
      int machines;
      if (move_active_) {
        const double f =
            std::clamp((static_cast<double>(t) + 1.0 - move_start_) /
                           (move_end_ - move_start_),
                       0.0, 1.0);
        eff_cap = EffectiveCapacity(NodeCount(move_from_), NodeCount(move_to_),
                                    f, serve_params_);
        machines =
            MachinesAllocatedAt(NodeCount(move_from_), NodeCount(move_to_), f)
                .value();
      } else {
        eff_cap = options_.q_hat * nodes_;
        machines = nodes_;
      }
      // Injected faults degrade whatever capacity the strategy thinks it
      // has; overlapping windows compound by taking the minimum.
      double fault_multiplier = 1.0;
      for (const CapacityFault& fault : options_.faults) {
        if (t >= fault.begin_fine_slot && t < fault.end_fine_slot) {
          fault_multiplier = std::min(
              fault_multiplier, std::max(0.0, fault.capacity_multiplier));
        }
      }
      eff_cap *= fault_multiplier;
      result.machine_slots += machines;
      if (move_active_) ++result.move_slots;
      if (fault_multiplier < 1.0) ++result.fault_slots;
      if (trace_[t] > eff_cap) {
        ++result.insufficient_slots;
        if (move_active_) ++result.insufficient_during_move_slots;
        if (fault_multiplier < 1.0) ++result.insufficient_during_fault_slots;
        PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kSim, TsAt(t),
                     "sim.insufficient",
                     .With("load", trace_[t])
                         .With("capacity", eff_cap)
                         .With("migrating", move_active_)
                         .With("fault", fault_multiplier < 1.0));
      }
      result.effective_capacity.push_back(eff_cap);
      result.machines.push_back(machines);
    }
    result.insufficient_fraction =
        static_cast<double>(result.insufficient_slots) /
        static_cast<double>(end - options_.eval_begin);
    result.reconfigurations = reconfigurations_;
    return result;
  }

  bool move_active() const { return move_active_; }
  int nodes() const { return nodes_; }
  obs::Tracer* tracer() const { return tracer_; }

  // Simulated timestamp of a fine slot, for trace events.
  SimTime TsAt(size_t t) const {
    return FromSeconds(static_cast<double>(t) * options_.fine_slot_sim_seconds);
  }

  // How much larger the database (and therefore any migration) is at the
  // current slot, relative to the start of the trace.
  double DbGrowthFactor() const {
    return 1.0 + options_.d_growth_per_day *
                     (static_cast<double>(fine_slot_) / 1440.0);
  }

  // Starts a move of `duration_plan_slots` planning slots (already the
  // ceil'd DP duration, computed with the planner's — possibly stale —
  // D) from the current node count to `target`. The *actual* duration
  // scales with the true database size.
  void StartMove(int target, int duration_plan_slots) {
    PSTORE_CHECK(!move_active_);
    PSTORE_CHECK(target >= 1 && target != nodes_);
    move_active_ = true;
    move_from_ = nodes_;
    move_to_ = target;
    move_start_ = static_cast<double>(fine_slot_);
    double actual_slots = static_cast<double>(duration_plan_slots) *
                          options_.plan_slot_factor;
    if (options_.d_growth_per_day > 0.0 && !options_.refresh_d) {
      // The planner believed the original D; reality is bigger.
      actual_slots *= DbGrowthFactor();
    }
    move_end_ = move_start_ + actual_slots;
    ++reconfigurations_;
    PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kSim, TsAt(fine_slot_),
                 "sim.move.start",
                 .With("from", move_from_)
                     .With("to", move_to_)
                     .With("fine_slots", actual_slots));
  }

  const PlannerParams& plan_params() const { return plan_params_; }

 private:
  const SimOptions& options_;
  const TimeSeries& trace_;
  PlannerParams serve_params_;
  PlannerParams plan_params_;
  int nodes_ = 1;
  size_t fine_slot_ = 0;
  bool move_active_ = false;
  int move_from_ = 0;
  int move_to_ = 0;
  double move_start_ = 0.0;
  double move_end_ = 0.0;
  int reconfigurations_ = 0;
  obs::Tracer* tracer_ = nullptr;
};

CapacitySimulator::CapacitySimulator(const SimOptions& options)
    : options_(options) {
  PSTORE_CHECK(options_.plan_slot_factor >= 1);
  PSTORE_CHECK(options_.q > 0.0 && options_.q_hat >= options_.q);
  PSTORE_CHECK(options_.d_fine_slots > 0.0);
  PSTORE_CHECK(options_.initial_nodes >= 1);
  move_table_ = std::make_unique<const MoveModelTable>(
      PlanParamsFor(options_),
      NodeCount(std::max(options_.max_nodes, options_.initial_nodes)));
}

StatusOr<SimResult> CapacitySimulator::RunPredictive(
    const TimeSeries& fine_trace, const LoadPredictor& predictor) const {
  if (fine_trace.size() <= options_.eval_begin) {
    return Status::InvalidArgument("trace shorter than eval_begin");
  }
  const TimeSeries coarse =
      fine_trace.DownsampleMean(options_.plan_slot_factor);
  Run run(options_, fine_trace, tracer_);
  const int factor = options_.plan_slot_factor;
  int scale_in_votes = 0;

  auto decide = [&](size_t t) {
    if (t % static_cast<size_t>(factor) != 0) return;  // plan boundaries
    const size_t coarse_now = t / factor;
    if (coarse_now + 1 >= coarse.size()) return;
    PSTORE_TRACE(run.tracer(), ::pstore::obs::TraceCategory::kSim, run.TsAt(t),
                 "sim.cycle",
                 .With("load", coarse[coarse_now])
                     .With("machines", run.nodes())
                     .With("migrating", run.move_active()));
    if (run.move_active()) return;

    // The planner's D: re-discovered as the database grows (the paper's
    // prescription) or frozen at its original value for the stale-D
    // ablation.
    PlannerParams plan_params = run.plan_params();
    if (options_.d_growth_per_day > 0.0 && options_.refresh_d) {
      plan_params.d_slots *=
          1.0 + options_.d_growth_per_day *
                    (static_cast<double>(t) / 1440.0);
    }
    DpPlanner planner(plan_params);
    // The precomputed table matches unless refresh_d just rescaled D.
    if (move_table_->MatchesParams(plan_params)) {
      planner.set_move_table(move_table_.get());
    }

    // Forecast the horizon at planning granularity.
    const TimeSeries history = coarse.Slice(0, coarse_now + 1);
    obs::WallTimer forecast_timer;
    StatusOr<std::vector<double>> forecast = predictor.PredictHorizon(
        history, static_cast<size_t>(options_.horizon_plan_slots));
    if (!forecast.ok()) return;

    std::vector<double> load;
    load.reserve(options_.horizon_plan_slots + 1);
    load.push_back(coarse[coarse_now]);  // measured current load
    for (double v : *forecast) {
      load.push_back(std::max(0.0, v * options_.inflation));
    }
    PSTORE_TRACE(run.tracer(), ::pstore::obs::TraceCategory::kSim, run.TsAt(t),
                 "sim.forecast",
                 .With("horizon", options_.horizon_plan_slots)
                     .With("pred_next", load.size() > 1 ? load[1] : 0.0)
                     .With("pred_peak",
                           *std::max_element(load.begin(), load.end()))
                     .With("wall_us", forecast_timer.ElapsedMicros()));

    StatusOr<PlanResult> plan =
        planner.BestMoves(load, NodeCount(run.nodes()));
    if (!plan.ok()) {
      // No feasible plan: react by scaling straight to the needed size
      // at the regular migration rate (paper §4.3.1 option 2).
      const double peak = *std::max_element(load.begin(), load.end());
      const int target =
          std::min(options_.max_nodes, planner.NodesFor(peak).value());
      if (target != run.nodes()) {
        scale_in_votes = 0;
        PSTORE_TRACE(run.tracer(), ::pstore::obs::TraceCategory::kSim,
                     run.TsAt(t), "sim.action",
                     .With("kind", "reactive_fallback").With("target", target));
        run.StartMove(target, planner.MoveSlots(NodeCount(run.nodes()),
                                                NodeCount(target)));
      }
      return;
    }
    const Move* first = plan->FirstReconfiguration();
    if (first == nullptr || first->start_slot > TimeStep(0)) {
      if (first == nullptr || first->nodes_after >= first->nodes_before) {
        scale_in_votes = 0;
      }
      return;
    }
    if (first->nodes_after < first->nodes_before) {
      if (++scale_in_votes < options_.scale_in_confirm_cycles) return;
    }
    scale_in_votes = 0;
    PSTORE_TRACE(run.tracer(), ::pstore::obs::TraceCategory::kSim, run.TsAt(t),
                 "sim.action",
                 .With("kind", "start_move")
                     .With("target", first->nodes_after.value()));
    run.StartMove(first->nodes_after.value(),
                  planner.MoveSlots(first->nodes_before, first->nodes_after));
  };
  return run.Execute(decide);
}

StatusOr<SimResult> CapacitySimulator::RunReactive(
    const TimeSeries& fine_trace, const ReactiveSimParams& params) const {
  if (fine_trace.size() <= options_.eval_begin) {
    return Status::InvalidArgument("trace shorter than eval_begin");
  }
  Run run(options_, fine_trace, tracer_);
  DpPlanner planner(run.plan_params());
  planner.set_move_table(move_table_.get());
  int low_slots = 0;
  int overload_slots = 0;

  auto decide = [&](size_t t) {
    if (run.move_active()) return;
    const double load = fine_trace[t];
    const int nodes = run.nodes();
    if (load > params.high_watermark * options_.q_hat * nodes) {
      low_slots = 0;
      if (++overload_slots < params.detection_slots) return;
      overload_slots = 0;
      const int target = std::min(
          options_.max_nodes,
          std::max(nodes + 1,
                   static_cast<int>(std::ceil(
                       load * (1.0 + params.headroom) / options_.q))));
      run.StartMove(target,
                    planner.MoveSlots(NodeCount(nodes), NodeCount(target)));
    } else if (nodes > 1 &&
               load < params.low_watermark * options_.q * (nodes - 1)) {
      overload_slots = 0;
      if (++low_slots >= params.low_slots_required) {
        low_slots = 0;
        run.StartMove(nodes - 1, planner.MoveSlots(NodeCount(nodes),
                                                   NodeCount(nodes - 1)));
      }
    } else {
      low_slots = 0;
      overload_slots = 0;
    }
  };
  return run.Execute(decide);
}

StatusOr<SimResult> CapacitySimulator::RunSimple(
    const TimeSeries& fine_trace, const SimpleSimParams& params) const {
  if (fine_trace.size() <= options_.eval_begin) {
    return Status::InvalidArgument("trace shorter than eval_begin");
  }
  Run run(options_, fine_trace, tracer_);
  DpPlanner planner(run.plan_params());
  planner.set_move_table(move_table_.get());

  auto decide = [&](size_t t) {
    if (run.move_active()) return;
    const int slot_of_day = static_cast<int>(t % params.slots_per_day);
    const bool daytime =
        slot_of_day >= params.up_slot && slot_of_day < params.down_slot;
    const int desired = daytime ? params.day_nodes : params.night_nodes;
    if (desired != run.nodes()) {
      run.StartMove(desired, planner.MoveSlots(NodeCount(run.nodes()),
                                               NodeCount(desired)));
    }
  };
  return run.Execute(decide);
}

StatusOr<SimResult> CapacitySimulator::RunStatic(
    const TimeSeries& fine_trace, int nodes) const {
  if (fine_trace.size() <= options_.eval_begin) {
    return Status::InvalidArgument("trace shorter than eval_begin");
  }
  if (nodes < 1) return Status::InvalidArgument("nodes must be >= 1");
  SimOptions fixed = options_;
  fixed.initial_nodes = nodes;
  CapacitySimulator sim(fixed);
  Run run(sim.options_, fine_trace, tracer_);
  return run.Execute([](size_t) {});
}

}  // namespace pstore
