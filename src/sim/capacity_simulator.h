#ifndef PSTORE_SIM_CAPACITY_SIMULATOR_H_
#define PSTORE_SIM_CAPACITY_SIMULATOR_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/time_series.h"
#include "obs/tracer.h"
#include "planner/move_model_table.h"
#include "prediction/predictor.h"

namespace pstore {

// Options of the long-horizon capacity simulator (paper §8.3): it steps
// through months of load at fine (per-minute) granularity, letting each
// allocation strategy decide when to reconfigure, and accounts cost
// (machine-slots, Eq. 1) and the time during which the offered load
// exceeded the effective capacity of the cluster — including the reduced
// capacity while data is in flight (Eq. 7).
// One coarse fault window for the capacity simulator: while the window
// is active the cluster's effective capacity is multiplied by
// `capacity_multiplier` (e.g. a crashed node out of n healthy ones is
// (n-1)/n). Overlapping windows compound by taking the minimum.
struct CapacityFault {
  size_t begin_fine_slot = 0;
  size_t end_fine_slot = 0;  // exclusive
  double capacity_multiplier = 1.0;
};

struct SimOptions {
  // Fine slots per planning slot (the paper plans at 5-minute granularity
  // over a 1-minute trace, so violations occur even under a perfect
  // predictor).
  int plan_slot_factor = 5;
  // Planner horizon, in planning slots.
  int horizon_plan_slots = 36;
  // Q and Q-hat, in the units of the trace (e.g. txn/s). Q governs
  // provisioning; Q-hat governs what the machines can actually serve,
  // i.e. what counts as insufficient capacity.
  double q = 285.0;
  double q_hat = 350.0;
  // D in fine slots (the paper's 77 minutes on a per-minute trace).
  double d_fine_slots = 77.0;
  int partitions_per_node = 6;
  int initial_nodes = 4;
  int max_nodes = 60;
  int scale_in_confirm_cycles = 3;
  // Multiplier applied to predictions before planning (§8.2: 15%).
  double inflation = 1.15;
  // Ablation: plan as if new machines were instantly at full capacity
  // (ignoring Eq. 7). Violations are always *measured* against the true
  // effective capacity.
  bool naive_capacity_planner = false;
  // Database growth, as a fraction of the original size per day: the
  // *actual* migration time D(t) grows accordingly (more data to move),
  // probing §4.2's "database size is not quickly changing" assumption.
  double d_growth_per_day = 0.0;
  // When true (the paper's prescription), the planner re-discovers D as
  // the database grows; when false it keeps planning with the original,
  // increasingly stale D.
  bool refresh_d = true;
  // Fine slot at which evaluation starts (history before it is the
  // predictor's warmup window).
  size_t eval_begin = 0;
  // Injected fault windows (see CapacityFault). Strategies do not see
  // them when planning; violations are measured against the degraded
  // capacity, so faults show up as fault-attributed insufficiency.
  std::vector<CapacityFault> faults;
  // Simulated duration of one fine slot, used only to timestamp trace
  // events (the paper's traces are per-minute).
  double fine_slot_sim_seconds = 60.0;
  // Worker threads for the node-sharded discrete-event engine
  // (engine/sharded_loop.h), used by engine-backed runs (bench_util's
  // RunEngineExperiment, pstore_chaos drills): 1 (the default) keeps the
  // classic serial EventLoop — the byte-identical golden path — and
  // values < 1 resolve to the hardware concurrency. Any value produces
  // bit-identical output; threads only change wall-clock time. The
  // analytic capacity simulator itself has no engine and ignores this.
  int engine_threads = 1;
};

// Reactive-baseline knobs (same semantics as ReactiveController: the
// default high watermark above 1.0 models reacting to detected stress —
// the system never calibrated Q-hat offline; lowering the watermark buys
// a proactive buffer at higher cost, tracing the Fig. 12 reactive curve).
struct ReactiveSimParams {
  double high_watermark = 1.1;
  double low_watermark = 0.7;
  int low_slots_required = 10;
  double headroom = 0.10;
  // Slots of sustained overload before the reconfiguration starts
  // (E-Store's detailed-monitoring phase).
  int detection_slots = 5;
};

// "Simple" time-of-day baseline knobs.
struct SimpleSimParams {
  int slots_per_day = 1440;
  int up_slot = 8 * 60;
  int down_slot = 23 * 60;
  int day_nodes = 10;
  int night_nodes = 3;
};

// Result of one simulated run over the evaluation window.
struct SimResult {
  // Sum over fine slots of machines allocated (the Eq. 1 cost).
  double machine_slots = 0.0;
  // Fine slots in which load exceeded the Q-hat effective capacity.
  int64_t insufficient_slots = 0;
  double insufficient_fraction = 0.0;
  // Subset of the above that occurred while a reconfiguration was in
  // flight, plus the total in-flight slot count (isolates the Eq. 7
  // effect for the effective-capacity ablation).
  int64_t insufficient_during_move_slots = 0;
  int64_t move_slots = 0;
  // Fine slots with an injected fault active, and the subset of
  // insufficient slots that had one (fault-attributed violations, kept
  // separate from the migration attribution above).
  int64_t fault_slots = 0;
  int64_t insufficient_during_fault_slots = 0;
  int reconfigurations = 0;
  // Per evaluated fine slot (for Fig. 13-style plots).
  std::vector<double> effective_capacity;
  std::vector<int> machines;
};

// Steps strategies over a fine-grained load trace. The same instance can
// run multiple strategies over the same trace for comparisons.
class CapacitySimulator {
 public:
  explicit CapacitySimulator(const SimOptions& options);

  // P-Store: plan with the DP over predictions from `predictor`, which
  // must be fitted on (a prefix of) the *planning-granularity* trace:
  // the mean-downsampled series of `fine_trace` by plan_slot_factor.
  // Pass inflation = 1.0 in options for the oracle variant.
  StatusOr<SimResult> RunPredictive(const TimeSeries& fine_trace,
                                    const LoadPredictor& predictor) const;

  // Reactive baseline: threshold-triggered scale-out/in.
  StatusOr<SimResult> RunReactive(const TimeSeries& fine_trace,
                                  const ReactiveSimParams& params) const;

  // Time-of-day baseline.
  StatusOr<SimResult> RunSimple(const TimeSeries& fine_trace,
                                const SimpleSimParams& params) const;

  // Fixed allocation.
  StatusOr<SimResult> RunStatic(const TimeSeries& fine_trace,
                                int nodes) const;

  const SimOptions& options() const { return options_; }

  // Observability: runs emit sim.cycle / sim.forecast / sim.action at
  // plan boundaries (RunPredictive), sim.move.start / sim.move.done for
  // reconfigurations, and sim.insufficient per violating fine slot.
  // Timestamps derive from the fine slot index and fine_slot_sim_seconds.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  class Run;  // defined in the .cc

  SimOptions options_;
  // T(B,A)/C(B,A)/avg-mach-alloc grid up to max_nodes, built once per
  // simulator from the planning params and attached (read-only) to
  // every DpPlanner the strategies construct — except when refresh_d
  // rescales D mid-run, which changes the params the table was built
  // from (the planner then recomputes directly).
  std::unique_ptr<const MoveModelTable> move_table_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace pstore

#endif  // PSTORE_SIM_CAPACITY_SIMULATOR_H_
