#include "fault/fault_schedule.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "sim/capacity_simulator.h"

namespace pstore {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash:
      return "node-crash";
    case FaultKind::kNodeRecover:
      return "node-recover";
    case FaultKind::kChunkAbort:
      return "chunk-abort";
    case FaultKind::kStragglerStart:
      return "straggler-start";
    case FaultKind::kStragglerEnd:
      return "straggler-end";
    case FaultKind::kNetworkDegrade:
      return "network-degrade";
    case FaultKind::kNetworkRestore:
      return "network-restore";
  }
  return "unknown";
}

FaultSchedule::FaultSchedule(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  // Stable sort keeps the scripted order of simultaneous events, so a
  // crash and its paired recovery at the same instant stay ordered.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

FaultSchedule FaultSchedule::Scripted(std::vector<FaultEvent> events) {
  return FaultSchedule(std::move(events));
}

namespace {

// Appends one Poisson arrival process of windowed faults: start events
// at exponential inter-arrivals, each paired with an end event after an
// exponential duration.
void AppendWindowedProcess(Rng* rng, double rate_per_hour,
                           double mean_duration_seconds,
                           double horizon_seconds, int max_node,
                           FaultKind start_kind, FaultKind end_kind,
                           double multiplier,
                           std::vector<FaultEvent>* events) {
  if (rate_per_hour <= 0.0) return;
  const double mean_gap = 3600.0 / rate_per_hour;
  double t = rng->NextExponential(mean_gap);
  while (t < horizon_seconds) {
    FaultEvent start;
    start.at = FromSeconds(t);
    start.kind = start_kind;
    start.node = static_cast<int>(
        rng->NextUint64(static_cast<uint64_t>(max_node) + 1));
    start.multiplier = multiplier;
    FaultEvent end = start;
    end.at = FromSeconds(t + rng->NextExponential(mean_duration_seconds));
    end.kind = end_kind;
    end.multiplier = 1.0;
    events->push_back(start);
    events->push_back(end);
    t += rng->NextExponential(mean_gap);
  }
}

}  // namespace

FaultSchedule FaultSchedule::SeededRandom(
    const FaultScheduleOptions& options) {
  PSTORE_CHECK(options.horizon_seconds > 0.0);
  PSTORE_CHECK(options.max_node >= 0);
  Rng rng(options.seed);
  std::vector<FaultEvent> events;

  AppendWindowedProcess(&rng, options.crash_rate_per_hour,
                        options.mean_outage_seconds, options.horizon_seconds,
                        options.max_node, FaultKind::kNodeCrash,
                        FaultKind::kNodeRecover, 1.0, &events);
  AppendWindowedProcess(&rng, options.straggler_rate_per_hour,
                        options.mean_straggler_seconds,
                        options.horizon_seconds, options.max_node,
                        FaultKind::kStragglerStart, FaultKind::kStragglerEnd,
                        options.straggler_multiplier, &events);
  // Network degradation is cluster-wide: the node draw keeps the stream
  // layout (and thus all later draws) aligned with the windowed helper.
  AppendWindowedProcess(&rng, options.degrade_rate_per_hour,
                        options.mean_degrade_seconds, options.horizon_seconds,
                        options.max_node, FaultKind::kNetworkDegrade,
                        FaultKind::kNetworkRestore,
                        options.degrade_multiplier, &events);
  if (options.chunk_abort_rate_per_hour > 0.0) {
    const double mean_gap = 3600.0 / options.chunk_abort_rate_per_hour;
    double t = rng.NextExponential(mean_gap);
    while (t < options.horizon_seconds) {
      FaultEvent abort;
      abort.at = FromSeconds(t);
      abort.kind = FaultKind::kChunkAbort;
      events.push_back(abort);
      t += rng.NextExponential(mean_gap);
    }
  }
  return FaultSchedule(std::move(events));
}

std::vector<CapacityFault> ToCapacityFaults(const FaultSchedule& schedule,
                                            double slot_seconds,
                                            int typical_nodes) {
  PSTORE_CHECK(slot_seconds > 0.0);
  PSTORE_CHECK(typical_nodes >= 1);
  const double n = static_cast<double>(typical_nodes);
  std::vector<CapacityFault> out;
  // Open windows per node: fine slot the fault began at, keyed by the
  // fault class so a crash and a straggler on the same node can coexist.
  struct Open {
    bool active = false;
    size_t begin = 0;
    double multiplier = 1.0;
  };
  std::vector<Open> crashes;
  std::vector<Open> stragglers;
  auto slot_of = [slot_seconds](SimTime at) {
    return static_cast<size_t>(ToSeconds(at) / slot_seconds);
  };
  auto ensure = [](std::vector<Open>* v, int node) -> Open& {
    PSTORE_CHECK(node >= 0);
    if (static_cast<size_t>(node) >= v->size()) v->resize(node + 1);
    return (*v)[node];
  };
  auto close = [&out](Open* open, size_t end_slot) {
    if (!open->active) return;
    CapacityFault fault;
    fault.begin_fine_slot = open->begin;
    // A fault shorter than one slot still costs that slot.
    fault.end_fine_slot = std::max(end_slot, open->begin + 1);
    fault.capacity_multiplier = open->multiplier;
    out.push_back(fault);
    open->active = false;
  };
  for (const FaultEvent& event : schedule.events()) {
    switch (event.kind) {
      case FaultKind::kNodeCrash: {
        Open& open = ensure(&crashes, event.node);
        open.active = true;
        open.begin = slot_of(event.at);
        open.multiplier = (n - 1.0) / n;
        break;
      }
      case FaultKind::kNodeRecover:
        close(&ensure(&crashes, event.node), slot_of(event.at));
        break;
      case FaultKind::kStragglerStart: {
        Open& open = ensure(&stragglers, event.node);
        open.active = true;
        open.begin = slot_of(event.at);
        open.multiplier = (n - 1.0 + event.multiplier) / n;
        break;
      }
      case FaultKind::kStragglerEnd:
        close(&ensure(&stragglers, event.node), slot_of(event.at));
        break;
      case FaultKind::kChunkAbort:
      case FaultKind::kNetworkDegrade:
      case FaultKind::kNetworkRestore:
        break;  // no serving-capacity footprint
    }
  }
  // Faults never closed (the schedule's horizon ended first) run forever
  // as far as the simulator cares.
  constexpr size_t kOpenEnded = static_cast<size_t>(-1);
  for (Open& open : crashes) close(&open, kOpenEnded);
  for (Open& open : stragglers) close(&open, kOpenEnded);
  return out;
}

}  // namespace pstore
