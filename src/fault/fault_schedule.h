#ifndef PSTORE_FAULT_FAULT_SCHEDULE_H_
#define PSTORE_FAULT_FAULT_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "sim/capacity_simulator.h"

namespace pstore {

// The fault taxonomy of the chaos drills. Windowed faults come in
// start/end pairs; kChunkAbort is a point event that fails the next
// in-flight migration chunk between any pair of nodes.
enum class FaultKind {
  kNodeCrash,       // node stops serving and sending/receiving chunks
  kNodeRecover,     // the crashed node comes back (data intact)
  kChunkAbort,      // one in-flight chunk transfer fails at completion
  kStragglerStart,  // node's migration rate is multiplied down
  kStragglerEnd,
  kNetworkDegrade,  // all chunk transfers slow down cluster-wide
  kNetworkRestore,
};

const char* FaultKindName(FaultKind kind);

// One scheduled fault, in simulated time.
struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kNodeCrash;
  // Target node for crash/recover/straggler events; ignored otherwise.
  int node = -1;
  // Rate multiplier in (0, 1] for straggler/degrade events. A value of
  // 0 would stall migration entirely; use kNodeCrash for that.
  double multiplier = 1.0;
};

// Knobs of the seeded-random fault stream. Rates are per hour of
// simulated time; durations are exponential with the given means. A rate
// of zero disables that fault class.
struct FaultScheduleOptions {
  uint64_t seed = 1;
  double horizon_seconds = 3600.0;
  // Nodes eligible for faults are drawn uniformly from [0, max_node].
  int max_node = 0;
  double crash_rate_per_hour = 0.0;
  double mean_outage_seconds = 120.0;
  double chunk_abort_rate_per_hour = 0.0;
  double straggler_rate_per_hour = 0.0;
  double straggler_multiplier = 0.25;
  double mean_straggler_seconds = 60.0;
  double degrade_rate_per_hour = 0.0;
  double degrade_multiplier = 0.5;
  double mean_degrade_seconds = 120.0;
};

// An immutable, time-ordered stream of fault events. Build one from an
// explicit script (deterministic drills) or from seeded-random arrival
// processes (identical seed => identical stream, bit for bit).
class FaultSchedule {
 public:
  FaultSchedule() = default;

  static FaultSchedule Scripted(std::vector<FaultEvent> events);
  static FaultSchedule SeededRandom(const FaultScheduleOptions& options);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

 private:
  explicit FaultSchedule(std::vector<FaultEvent> events);

  std::vector<FaultEvent> events_;
};

// Coarse translation of a fault schedule into capacity-multiplier
// windows for the long-horizon CapacitySimulator: a crashed node out of
// `typical_nodes` healthy ones removes 1/typical_nodes of capacity, a
// straggler serves at its multiplier, and network degradation (which
// slows migration but not serving) is dropped. Chunk aborts are point
// events with no capacity footprint and are likewise dropped.
std::vector<CapacityFault> ToCapacityFaults(const FaultSchedule& schedule,
                                            double slot_seconds,
                                            int typical_nodes);

}  // namespace pstore

#endif  // PSTORE_FAULT_FAULT_SCHEDULE_H_
