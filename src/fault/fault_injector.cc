#include "fault/fault_injector.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/strong_id.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "fault/fault_schedule.h"
#include "obs/tracer.h"

namespace pstore {

FaultInjector::FaultInjector(EventLoop* loop, Cluster* cluster,
                             MetricsCollector* metrics,
                             FaultSchedule schedule)
    : loop_(loop),
      cluster_(cluster),
      metrics_(metrics),
      schedule_(std::move(schedule)) {
  PSTORE_CHECK(loop_ != nullptr && cluster_ != nullptr);
  straggler_.assign(static_cast<size_t>(cluster_->options().max_nodes), 1.0);
}

void FaultInjector::Arm() {
  PSTORE_CHECK(!armed_);
  armed_ = true;
  for (const FaultEvent& event : schedule_.events()) {
    loop_->ScheduleAt(event.at, [this, event] { Apply(event); });
  }
}

void FaultInjector::AdjustActive(int delta) {
  const int before = active_faults_;
  active_faults_ += delta;
  PSTORE_CHECK(active_faults_ >= 0);
  if (before == 0 && active_faults_ > 0) {
    PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kFault, loop_->now(),
                 "fault.window", .With("active", true));
    if (metrics_ != nullptr) metrics_->RecordFaultActive(loop_->now(), true);
  } else if (before > 0 && active_faults_ == 0) {
    PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kFault, loop_->now(),
                 "fault.window", .With("active", false));
    if (metrics_ != nullptr) metrics_->RecordFaultActive(loop_->now(), false);
  }
}

void FaultInjector::Apply(const FaultEvent& event) {
  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kFault, loop_->now(),
               "fault.apply",
               .With("kind", FaultKindName(event.kind))
                   .With("node", event.node)
                   .With("multiplier", event.multiplier));
  switch (event.kind) {
    case FaultKind::kNodeCrash:
      // Crashing an already-down node is a no-op so the refcount stays
      // balanced under overlapping random windows.
      if (event.node >= 0 && cluster_->IsNodeUp(event.node)) {
        cluster_->MarkNodeDown(event.node);
        ++stats_.crashes;
        AdjustActive(+1);
      }
      break;
    case FaultKind::kNodeRecover:
      if (event.node >= 0 && !cluster_->IsNodeUp(event.node)) {
        cluster_->MarkNodeUp(event.node);
        ++stats_.recoveries;
        AdjustActive(-1);
      }
      break;
    case FaultKind::kChunkAbort:
      ++pending_chunk_aborts_;
      ++stats_.chunk_aborts_armed;
      break;
    case FaultKind::kStragglerStart:
      if (event.node >= 0 &&
          static_cast<size_t>(event.node) < straggler_.size() &&
          straggler_[event.node] >= 1.0) {
        straggler_[event.node] = std::clamp(event.multiplier, 0.01, 1.0);
        ++stats_.stragglers;
        AdjustActive(+1);
      }
      break;
    case FaultKind::kStragglerEnd:
      if (event.node >= 0 &&
          static_cast<size_t>(event.node) < straggler_.size() &&
          straggler_[event.node] < 1.0) {
        straggler_[event.node] = 1.0;
        AdjustActive(-1);
      }
      break;
    case FaultKind::kNetworkDegrade:
      if (network_multiplier_ >= 1.0) {
        network_multiplier_ = std::clamp(event.multiplier, 0.01, 1.0);
        ++stats_.degradations;
        AdjustActive(+1);
      }
      break;
    case FaultKind::kNetworkRestore:
      if (network_multiplier_ < 1.0) {
        network_multiplier_ = 1.0;
        AdjustActive(-1);
      }
      break;
  }
}

double FaultInjector::NodeMultiplier(int node) const {
  if (node < 0 || static_cast<size_t>(node) >= straggler_.size()) return 1.0;
  return straggler_[node];
}

double FaultInjector::ChunkRateMultiplier(NodeId from_node, NodeId to_node) {
  // A transfer is as slow as its slower endpoint, and the cluster-wide
  // network state applies on top.
  return network_multiplier_ * std::min(NodeMultiplier(from_node.value()),
                                        NodeMultiplier(to_node.value()));
}

bool FaultInjector::TakeChunkAbort(NodeId /*from_node*/, NodeId /*to_node*/) {
  if (pending_chunk_aborts_ == 0) return false;
  --pending_chunk_aborts_;
  ++stats_.chunk_aborts_consumed;
  return true;
}

}  // namespace pstore
