#ifndef PSTORE_FAULT_FAULT_INJECTOR_H_
#define PSTORE_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/strong_id.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "fault/fault_schedule.h"
#include "migration/squall_migrator.h"
#include "obs/tracer.h"

namespace pstore {

// Drives a FaultSchedule against a live engine run: node crashes and
// recoveries toggle Cluster node health (failing transactions fast and
// stalling that node's chunk transfers), stragglers and network
// degradation slow chunk transfers through the MigrationFaultHook, and
// chunk aborts fail in-flight transfers. Also feeds the fault-active
// step series to the MetricsCollector so SLA violations can be
// attributed to faults.
//
// Install it with migration.set_fault_hook(&injector) and call Arm()
// once before running the loop. The injector must outlive the run.
class FaultInjector final : public MigrationFaultHook {
 public:
  struct Stats {
    int64_t crashes = 0;
    int64_t recoveries = 0;
    int64_t stragglers = 0;
    int64_t degradations = 0;
    int64_t chunk_aborts_armed = 0;
    int64_t chunk_aborts_consumed = 0;
  };

  // `metrics` may be null (no fault step series is recorded then).
  FaultInjector(EventLoop* loop, Cluster* cluster, MetricsCollector* metrics,
                FaultSchedule schedule);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules every event of the schedule on the loop. Call once.
  void Arm();

  // MigrationFaultHook: combined rate multiplier for a chunk between the
  // two nodes (cluster-wide network state times the slower endpoint).
  double ChunkRateMultiplier(NodeId from_node, NodeId to_node) override;
  // Consumes one pending chunk abort, if armed.
  bool TakeChunkAbort(NodeId from_node, NodeId to_node) override;

  const Stats& stats() const { return stats_; }
  const FaultSchedule& schedule() const { return schedule_; }

  // Observability: emits fault.apply per delivered schedule event and
  // fault.window {active} when the active-fault count crosses zero.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  void Apply(const FaultEvent& event);
  // Maintains the active-fault refcount and emits metrics transitions
  // when it crosses zero.
  void AdjustActive(int delta);
  double NodeMultiplier(int node) const;

  EventLoop* loop_;
  Cluster* cluster_;
  MetricsCollector* metrics_;
  FaultSchedule schedule_;
  std::vector<double> straggler_;  // per-node rate multiplier, 1.0 = healthy
  double network_multiplier_ = 1.0;
  int pending_chunk_aborts_ = 0;
  int active_faults_ = 0;
  bool armed_ = false;
  Stats stats_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace pstore

#endif  // PSTORE_FAULT_FAULT_INJECTOR_H_
