#include "obs/run_report.h"

#include <cmath>
#include <cstdarg>
#include <cstddef>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/csv_writer.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "obs/trace_reader.h"

namespace pstore {
namespace obs {
namespace {

bool IsCycleEvent(const ParsedTraceEvent& event) {
  return event.name == "controller.cycle" || event.name == "sim.cycle";
}

bool IsForecastEvent(const ParsedTraceEvent& event) {
  return event.name == "predictor.forecast" || event.name == "sim.forecast";
}

bool IsActionEvent(const ParsedTraceEvent& event) {
  return event.name == "controller.action" || event.name == "sim.action";
}

std::string FormatNumber(double value) {
  char buf[64];
  if (std::floor(value) == value && std::fabs(value) < 9e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  }
  return std::string(buf);
}

std::string FormatFieldValue(const TraceFieldValue& value) {
  switch (value.kind) {
    case TraceFieldValue::Kind::kNumber:
      return FormatNumber(value.number);
    case TraceFieldValue::Kind::kBool:
      return value.bool_value ? "true" : "false";
    case TraceFieldValue::Kind::kString:
      return value.text;
  }
  return "";
}

void AppendLine(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendLine(std::string* out, const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  out->append(buf);
  out->push_back('\n');
}

}  // namespace

StatusOr<RunReport> BuildRunReport(
    const std::vector<ParsedTraceEvent>& events) {
  RunReport report;
  report.events = static_cast<int64_t>(events.size());

  std::map<std::string, WallRollup> wall;
  SimTime max_ts = 0;

  for (const ParsedTraceEvent& event : events) {
    if (event.ts > max_ts) max_ts = event.ts;

    if (const TraceFieldValue* wall_us = event.Find("wall_us");
        wall_us != nullptr &&
        wall_us->kind == TraceFieldValue::Kind::kNumber) {
      WallRollup& rollup = wall[event.name];
      rollup.name = event.name;
      ++rollup.count;
      const int64_t us = static_cast<int64_t>(wall_us->number);
      rollup.total_us += us;
      if (us > rollup.max_us) rollup.max_us = us;
    }

    if (IsCycleEvent(event)) {
      CycleRow row;
      row.t_seconds = ToSeconds(event.ts);
      row.load = event.Number("load", 0.0);
      row.machines = event.Int("machines", 0);
      row.migrating = event.Bool("migrating", false);
      report.cycles.push_back(row);
      continue;
    }

    CycleRow* cycle = report.cycles.empty() ? nullptr
                                            : &report.cycles.back();
    if (IsForecastEvent(event)) {
      if (cycle != nullptr) {
        cycle->has_forecast = true;
        cycle->pred_next = event.Number("pred_next", 0.0);
      }
      continue;
    }
    if (IsActionEvent(event)) {
      if (cycle != nullptr) {
        cycle->action = event.Str("kind", "");
        cycle->action_target = event.Int("target", 0);
      }
      continue;
    }
    if (event.name == "planner.plan") {
      ++report.plans;
      if (!event.Bool("feasible", true)) ++report.infeasible_plans;
      continue;
    }
    if (event.name == "migration.start" || event.name == "sim.move.start") {
      ++report.moves_started;
      continue;
    }
    if (event.name == "migration.done" || event.name == "sim.move.done") {
      ++report.moves_completed;
      continue;
    }
    if (event.name == "migration.abort") {
      ++report.moves_aborted;
      continue;
    }
    if (event.name == "migration.chunk") {
      ++report.chunks;
      report.bytes_moved += event.Int("bytes", 0);
      if (cycle != nullptr) ++cycle->chunks;
      continue;
    }
    if (event.name == "migration.retry") {
      ++report.chunk_retries;
      if (cycle != nullptr) ++cycle->chunk_retries;
      continue;
    }
    if (event.name == "fault.window") {
      if (event.Bool("active", false)) ++report.fault_windows;
      continue;
    }
    if (event.name == "sim.insufficient") {
      ++report.insufficient_slots;
      continue;
    }
    if (event.name == "sla.window") {
      ++report.sla_violations;
      if (event.Bool("fault", false)) {
        ++report.sla_during_fault;
      } else if (event.Bool("migrating", false)) {
        ++report.sla_during_migration;
      } else {
        ++report.sla_baseline;
      }
      continue;
    }
    if (event.name == "sweep.task") {
      SweepTaskRow task_row;
      task_row.label = event.Str("label", "");
      task_row.strategy = event.Str("strategy", "");
      task_row.wall_us = event.Number("wall_us", 0.0);
      report.sweep.task_rows.push_back(std::move(task_row));
      continue;
    }
    if (event.name == "sweep.done") {
      report.has_sweep = true;
      report.sweep.tasks = event.Int("tasks", 0);
      report.sweep.threads = event.Int("threads", 0);
      report.sweep.wall_us = event.Number("wall_us", 0.0);
      report.sweep.serial_wall_us = event.Number("serial_wall_us", 0.0);
      // With no tasks the speedup/efficiency ratios are meaningless
      // (0/0 or wall-time noise); leave them zero and let the renderer
      // say so instead of printing a bogus efficiency row.
      if (report.sweep.tasks > 0) {
        if (report.sweep.wall_us > 0.0) {
          report.sweep.speedup =
              report.sweep.serial_wall_us / report.sweep.wall_us;
        }
        if (report.sweep.threads > 0) {
          report.sweep.efficiency =
              report.sweep.speedup /
              static_cast<double>(report.sweep.threads);
        }
      }
      continue;
    }
    if (event.name == "fleet.cycle") {
      report.has_fleet = true;
      ++report.fleet.cycles;
      const int64_t machines = event.Int("machines", 0);
      if (machines > report.fleet.peak_machines) {
        report.fleet.peak_machines = machines;
      }
      report.fleet.violation_slot_tenants +=
          event.Int("violation_slot_tenants", 0);
      continue;
    }
    if (event.name == "fleet.pack") {
      report.has_fleet = true;
      ++report.fleet.packs;
      if (event.Bool("repacked", false)) ++report.fleet.repacks;
      if (event.Bool("spike_replan", false)) ++report.fleet.spike_replans;
      report.fleet.moved_partitions += event.Int("moved_partitions", 0);
      const int64_t machines = event.Int("machines_after", 0);
      if (machines > report.fleet.peak_machines) {
        report.fleet.peak_machines = machines;
      }
      continue;
    }
    if (event.name == "fleet.tenant_move") {
      report.has_fleet = true;
      ++report.fleet.tenant_moves;
      continue;
    }
    if (event.name == "run.summary") {
      for (const auto& [key, value] : event.fields) {
        report.summary.emplace_back(key, FormatFieldValue(value));
      }
      continue;
    }
  }

  report.duration_seconds = ToSeconds(max_ts);

  double abs_error_sum = 0.0;
  double rel_error_sum = 0.0;
  for (size_t i = 0; i + 1 < report.cycles.size(); ++i) {
    if (!report.cycles[i].has_forecast) continue;
    const double actual = report.cycles[i + 1].load;
    if (std::fabs(actual) <= 1e-9) continue;
    const double error = std::fabs(report.cycles[i].pred_next - actual);
    abs_error_sum += error;
    rel_error_sum += error / std::fabs(actual);
    ++report.forecast_samples;
  }
  if (report.forecast_samples > 0) {
    report.forecast_mae =
        abs_error_sum / static_cast<double>(report.forecast_samples);
    report.forecast_mre =
        rel_error_sum / static_cast<double>(report.forecast_samples);
  }

  report.wall.reserve(wall.size());
  for (auto& [name, rollup] : wall) {
    (void)name;
    report.wall.push_back(std::move(rollup));
  }
  return report;
}

std::string RenderRunReport(const RunReport& report, int64_t max_rows) {
  std::string out;
  AppendLine(&out, "== run summary ==");
  AppendLine(&out, "events: %lld   duration: %.1f s   cycles: %zu",
             static_cast<long long>(report.events), report.duration_seconds,
             report.cycles.size());
  AppendLine(&out, "plans: %lld (infeasible %lld)",
             static_cast<long long>(report.plans),
             static_cast<long long>(report.infeasible_plans));
  AppendLine(&out,
             "moves: started %lld, completed %lld, aborted %lld; "
             "chunks %lld (retries %lld), bytes %lld",
             static_cast<long long>(report.moves_started),
             static_cast<long long>(report.moves_completed),
             static_cast<long long>(report.moves_aborted),
             static_cast<long long>(report.chunks),
             static_cast<long long>(report.chunk_retries),
             static_cast<long long>(report.bytes_moved));
  if (report.forecast_samples > 0) {
    AppendLine(&out, "forecast: samples %lld, MAE %.4g, MRE %.2f%%",
               static_cast<long long>(report.forecast_samples),
               report.forecast_mae, 100.0 * report.forecast_mre);
  }
  AppendLine(&out,
             "fault windows: %lld   insufficient-capacity slots: %lld",
             static_cast<long long>(report.fault_windows),
             static_cast<long long>(report.insufficient_slots));
  AppendLine(&out,
             "SLA-violating windows: %lld (fault %lld, migration %lld, "
             "baseline %lld)",
             static_cast<long long>(report.sla_violations),
             static_cast<long long>(report.sla_during_fault),
             static_cast<long long>(report.sla_during_migration),
             static_cast<long long>(report.sla_baseline));
  for (const WallRollup& rollup : report.wall) {
    AppendLine(&out, "wall %-24s count %-6lld total %lld us, max %lld us",
               rollup.name.c_str(), static_cast<long long>(rollup.count),
               static_cast<long long>(rollup.total_us),
               static_cast<long long>(rollup.max_us));
  }
  if (report.has_sweep && report.sweep.tasks == 0) {
    AppendLine(&out,
               "sweep: 0 tasks on %lld threads (no sweep.task events; "
               "parallel efficiency not meaningful)",
               static_cast<long long>(report.sweep.threads));
  } else if (report.has_sweep) {
    AppendLine(&out,
               "sweep: %lld tasks on %lld threads — wall %.1f ms, "
               "serial-equivalent %.1f ms, speedup %.2fx, parallel "
               "efficiency %.0f%%",
               static_cast<long long>(report.sweep.tasks),
               static_cast<long long>(report.sweep.threads),
               report.sweep.wall_us / 1000.0,
               report.sweep.serial_wall_us / 1000.0, report.sweep.speedup,
               100.0 * report.sweep.efficiency);
    for (const SweepTaskRow& task_row : report.sweep.task_rows) {
      AppendLine(&out, "  sweep task %-28s %-10s %10.1f ms",
                 task_row.label.c_str(), task_row.strategy.c_str(),
                 task_row.wall_us / 1000.0);
    }
  }
  if (report.has_fleet) {
    AppendLine(&out,
               "fleet: %lld cycles, peak %lld machines, %lld packs "
               "(%lld repacks, %lld spike re-plans), %lld partition "
               "moves across %lld tenant-move events, %lld violation "
               "slot-tenants",
               static_cast<long long>(report.fleet.cycles),
               static_cast<long long>(report.fleet.peak_machines),
               static_cast<long long>(report.fleet.packs),
               static_cast<long long>(report.fleet.repacks),
               static_cast<long long>(report.fleet.spike_replans),
               static_cast<long long>(report.fleet.moved_partitions),
               static_cast<long long>(report.fleet.tenant_moves),
               static_cast<long long>(report.fleet.violation_slot_tenants));
  }
  for (const auto& [key, value] : report.summary) {
    AppendLine(&out, "summary %s = %s", key.c_str(), value.c_str());
  }

  if (max_rows == 0 || report.cycles.empty()) return out;
  size_t rows = report.cycles.size();
  if (max_rows > 0 && static_cast<size_t>(max_rows) < rows) {
    rows = static_cast<size_t>(max_rows);
  }
  out.push_back('\n');
  AppendLine(&out, "== timeline (%zu of %zu cycles) ==", rows,
             report.cycles.size());
  AppendLine(&out, "%10s %10s %10s %8s %5s %6s %7s  %s", "t_s", "load",
             "pred_next", "machines", "migr", "chunks", "retries", "action");
  for (size_t i = 0; i < rows; ++i) {
    const CycleRow& row = report.cycles[i];
    char pred[32];
    if (row.has_forecast) {
      std::snprintf(pred, sizeof(pred), "%10.1f", row.pred_next);
    } else {
      std::snprintf(pred, sizeof(pred), "%10s", "-");
    }
    std::string action = row.action;
    if (!action.empty() && row.action_target > 0) {
      action.push_back('(');
      action += std::to_string(row.action_target);
      action.push_back(')');
    }
    AppendLine(&out, "%10.1f %10.1f %s %8lld %5s %6lld %7lld  %s",
               row.t_seconds, row.load, pred,
               static_cast<long long>(row.machines),
               row.migrating ? "yes" : "no",
               static_cast<long long>(row.chunks),
               static_cast<long long>(row.chunk_retries), action.c_str());
  }
  if (rows < report.cycles.size()) {
    AppendLine(&out, "... %zu more cycles (use --max-rows)",
               report.cycles.size() - rows);
  }
  return out;
}

Status WriteCycleCsv(const RunReport& report, const std::string& path) {
  CsvWriter csv(path);
  csv.WriteRow({"t_s", "load", "pred_next", "machines", "migrating",
                "chunks", "retries", "action", "target"});
  char buf[64];
  for (const CycleRow& row : report.cycles) {
    std::vector<std::string> cells;
    std::snprintf(buf, sizeof(buf), "%.6g", row.t_seconds);
    cells.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.6g", row.load);
    cells.emplace_back(buf);
    if (row.has_forecast) {
      std::snprintf(buf, sizeof(buf), "%.6g", row.pred_next);
      cells.emplace_back(buf);
    } else {
      cells.emplace_back("");
    }
    cells.emplace_back(std::to_string(row.machines));
    cells.emplace_back(row.migrating ? "1" : "0");
    cells.emplace_back(std::to_string(row.chunks));
    cells.emplace_back(std::to_string(row.chunk_retries));
    cells.emplace_back(row.action);
    cells.emplace_back(std::to_string(row.action_target));
    csv.WriteRow(cells);
  }
  return csv.Close();
}

}  // namespace obs
}  // namespace pstore
