#include "obs/trace_reader.h"

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"

namespace pstore {
namespace obs {
namespace {

// Cursor over one line. Parse helpers return false on malformed input
// and leave an explanation in *error.
struct Cursor {
  const std::string& line;
  size_t pos = 0;
  std::string error;

  explicit Cursor(const std::string& text) : line(text) {}

  bool AtEnd() const { return pos >= line.size(); }
  char Peek() const { return AtEnd() ? '\0' : line[pos]; }

  bool Expect(char c) {
    if (Peek() != c) {
      error = std::string("expected '") + c + "' at offset " +
              std::to_string(pos);
      return false;
    }
    ++pos;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Expect('"')) return false;
    out->clear();
    while (!AtEnd() && line[pos] != '"') {
      char c = line[pos];
      if (c == '\\') {
        ++pos;
        if (AtEnd()) break;
        switch (line[pos]) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            if (pos + 4 >= line.size()) {
              error = "truncated \\u escape";
              return false;
            }
            const std::string hex = line.substr(pos + 1, 4);
            char* end = nullptr;
            const long code = std::strtol(hex.c_str(), &end, 16);
            if (end == nullptr || *end != '\0') {
              error = "bad \\u escape '" + hex + "'";
              return false;
            }
            // The serializer only emits \u00XX for control bytes.
            out->push_back(static_cast<char>(code & 0xff));
            pos += 4;
            break;
          }
          default:
            error = std::string("unknown escape '\\") + line[pos] + "'";
            return false;
        }
        ++pos;
      } else {
        out->push_back(c);
        ++pos;
      }
    }
    return Expect('"');
  }

  bool ParseValue(TraceFieldValue* out) {
    const char c = Peek();
    if (c == '"') {
      out->kind = TraceFieldValue::Kind::kString;
      return ParseString(&out->text);
    }
    if (line.compare(pos, 4, "true") == 0) {
      out->kind = TraceFieldValue::Kind::kBool;
      out->bool_value = true;
      pos += 4;
      return true;
    }
    if (line.compare(pos, 5, "false") == 0) {
      out->kind = TraceFieldValue::Kind::kBool;
      out->bool_value = false;
      pos += 5;
      return true;
    }
    // Number: strtod consumes exactly the JSON number grammar we emit.
    const char* start = line.c_str() + pos;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) {
      error = "expected a value at offset " + std::to_string(pos);
      return false;
    }
    out->kind = TraceFieldValue::Kind::kNumber;
    out->number = value;
    pos += static_cast<size_t>(end - start);
    return true;
  }
};

}  // namespace

const TraceFieldValue* ParsedTraceEvent::Find(const std::string& key) const {
  for (const auto& [name_key, value] : fields) {
    if (name_key == key) return &value;
  }
  return nullptr;
}

double ParsedTraceEvent::Number(const std::string& key,
                                double fallback) const {
  const TraceFieldValue* value = Find(key);
  if (value == nullptr || value->kind != TraceFieldValue::Kind::kNumber) {
    return fallback;
  }
  return value->number;
}

int64_t ParsedTraceEvent::Int(const std::string& key, int64_t fallback) const {
  const TraceFieldValue* value = Find(key);
  if (value == nullptr || value->kind != TraceFieldValue::Kind::kNumber) {
    return fallback;
  }
  return static_cast<int64_t>(value->number);
}

bool ParsedTraceEvent::Bool(const std::string& key, bool fallback) const {
  const TraceFieldValue* value = Find(key);
  if (value == nullptr || value->kind != TraceFieldValue::Kind::kBool) {
    return fallback;
  }
  return value->bool_value;
}

std::string ParsedTraceEvent::Str(const std::string& key,
                                  const std::string& fallback) const {
  const TraceFieldValue* value = Find(key);
  if (value == nullptr || value->kind != TraceFieldValue::Kind::kString) {
    return fallback;
  }
  return value->text;
}

StatusOr<ParsedTraceEvent> ParseTraceLine(const std::string& line) {
  Cursor cursor(line);
  ParsedTraceEvent event;
  if (!cursor.Expect('{')) {
    return Status::InvalidArgument("trace line: " + cursor.error);
  }
  bool first = true;
  while (cursor.Peek() != '}') {
    if (!first && !cursor.Expect(',')) {
      return Status::InvalidArgument("trace line: " + cursor.error);
    }
    first = false;
    std::string key;
    TraceFieldValue value;
    if (!cursor.ParseString(&key) || !cursor.Expect(':') ||
        !cursor.ParseValue(&value)) {
      return Status::InvalidArgument("trace line: " + cursor.error);
    }
    if (key == "ts" && value.kind == TraceFieldValue::Kind::kNumber) {
      event.ts = static_cast<SimTime>(value.number);
    } else if (key == "cat" &&
               value.kind == TraceFieldValue::Kind::kString) {
      event.cat = std::move(value.text);
    } else if (key == "name" &&
               value.kind == TraceFieldValue::Kind::kString) {
      event.name = std::move(value.text);
    } else {
      event.fields.emplace_back(std::move(key), std::move(value));
    }
  }
  if (!cursor.Expect('}')) {
    return Status::InvalidArgument("trace line: " + cursor.error);
  }
  if (event.name.empty()) {
    return Status::InvalidArgument("trace line: missing \"name\"");
  }
  return event;
}

StatusOr<std::vector<ParsedTraceEvent>> ReadTraceFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::NotFound("cannot open trace file '" + path + "'");
  }
  std::vector<ParsedTraceEvent> events;
  std::string line;
  int64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    StatusOr<ParsedTraceEvent> event = ParseTraceLine(line);
    if (!event.ok()) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) + ": " +
          event.status().message());
    }
    events.push_back(std::move(event.value()));
  }
  if (in.bad()) {
    return Status::Internal("error reading trace file '" + path + "'");
  }
  return events;
}

}  // namespace obs
}  // namespace pstore
