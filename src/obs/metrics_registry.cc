#include "obs/metrics_registry.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/csv_writer.h"
#include "common/status.h"
#include "obs/trace_event.h"

namespace pstore {
namespace obs {
namespace {

void AppendInt(int64_t value, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out->append(buf);
}

void AppendDouble(double value, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out->append(buf);
}

void AppendKey(const std::string& name, std::string* out) {
  out->push_back('"');
  AppendJsonEscaped(name, out);
  out->append("\":");
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    AppendKey(name, &out);
    AppendInt(counter.value(), &out);
  }
  out.append("},\"gauges\":{");
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out.push_back(',');
    first = false;
    AppendKey(name, &out);
    AppendDouble(gauge.value(), &out);
  }
  out.append("},\"timers\":{");
  first = true;
  for (const auto& [name, timer] : timers_) {
    if (!first) out.push_back(',');
    first = false;
    AppendKey(name, &out);
    out.append("{\"count\":");
    AppendInt(timer.count(), &out);
    out.append(",\"total_us\":");
    AppendInt(timer.total_us(), &out);
    out.append(",\"max_us\":");
    AppendInt(timer.max_us(), &out);
    out.push_back('}');
  }
  out.append("}}\n");
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) {
    return Status::InvalidArgument("cannot open metrics file '" + path + "'");
  }
  const std::string json = ToJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  if (!out.good()) {
    return Status::Internal("metrics write to '" + path + "' failed");
  }
  return Status::OK();
}

Status MetricsRegistry::WriteCsv(const std::string& path) const {
  CsvWriter csv(path);
  csv.WriteRow({"name", "type", "value"});
  char buf[64];
  auto format_int = [&buf](int64_t value) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return std::string(buf);
  };
  for (const auto& [name, counter] : counters_) {
    csv.WriteRow({name, "counter", format_int(counter.value())});
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%.10g", gauge.value());
    csv.WriteRow({name, "gauge", std::string(buf)});
  }
  for (const auto& [name, timer] : timers_) {
    csv.WriteRow({name + ".count", "timer", format_int(timer.count())});
    csv.WriteRow({name + ".total_us", "timer", format_int(timer.total_us())});
    csv.WriteRow({name + ".max_us", "timer", format_int(timer.max_us())});
  }
  return csv.Close();
}

}  // namespace obs
}  // namespace pstore
