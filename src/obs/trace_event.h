#ifndef PSTORE_OBS_TRACE_EVENT_H_
#define PSTORE_OBS_TRACE_EVENT_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/sim_time.h"

namespace pstore {
namespace obs {

// Trace categories form a bitmask so a Tracer can cheaply gate whole
// subsystems. kVerbose is reserved for per-transaction firehose events
// and is excluded from the default mask: enabling tracing on a run must
// not turn every Submit() into an I/O call.
enum class TraceCategory : uint32_t {
  kController = 1u << 0,
  kPredictor = 1u << 1,
  kPlanner = 1u << 2,
  kMigration = 1u << 3,
  kEngine = 1u << 4,
  kFault = 1u << 5,
  kSim = 1u << 6,
  kReport = 1u << 7,
  kVerbose = 1u << 8,
  kFleet = 1u << 9,
};

// Everything except the per-transaction firehose.
constexpr uint32_t kDefaultTraceMask =
    static_cast<uint32_t>(TraceCategory::kController) |
    static_cast<uint32_t>(TraceCategory::kPredictor) |
    static_cast<uint32_t>(TraceCategory::kPlanner) |
    static_cast<uint32_t>(TraceCategory::kMigration) |
    static_cast<uint32_t>(TraceCategory::kEngine) |
    static_cast<uint32_t>(TraceCategory::kFault) |
    static_cast<uint32_t>(TraceCategory::kSim) |
    static_cast<uint32_t>(TraceCategory::kReport) |
    static_cast<uint32_t>(TraceCategory::kFleet);

constexpr uint32_t kAllTraceMask =
    kDefaultTraceMask | static_cast<uint32_t>(TraceCategory::kVerbose);

// Short lowercase label used as the "cat" field of serialized events.
const char* TraceCategoryName(TraceCategory category);

// One structured trace event: a category, a simulation timestamp, a
// dotted event name ("migration.chunk"), and a flat list of typed
// key/value fields. Keys are string literals owned by the call site;
// "ts", "cat" and "name" are reserved for the envelope. Events are
// built fluently:
//
//   TraceEvent(TraceCategory::kMigration, now, "migration.chunk")
//       .With("from", 3).With("bytes", chunk_bytes)
//
// and are cheap enough to construct on instrumented paths that already
// write to a sink; the fast path for disabled tracing never constructs
// one (see PSTORE_TRACE in obs/tracer.h).
class TraceEvent {
 public:
  enum class FieldKind { kInt, kDouble, kBool, kString };

  struct Field {
    const char* key;
    FieldKind kind;
    int64_t int_value;
    double double_value;
    bool bool_value;
    std::string string_value;
  };

  TraceEvent(TraceCategory category, SimTime ts, const char* name)
      : category_(category), ts_(ts), name_(name) {
    fields_.reserve(8);
  }

  template <typename T,
            typename std::enable_if<std::is_integral<T>::value &&
                                        !std::is_same<T, bool>::value,
                                    int>::type = 0>
  TraceEvent& With(const char* key, T value) {
    Field f;
    f.key = key;
    f.kind = FieldKind::kInt;
    f.int_value = static_cast<int64_t>(value);
    f.double_value = 0.0;
    f.bool_value = false;
    fields_.push_back(std::move(f));
    return *this;
  }

  TraceEvent& With(const char* key, double value) {
    Field f;
    f.key = key;
    f.kind = FieldKind::kDouble;
    f.int_value = 0;
    f.double_value = value;
    f.bool_value = false;
    fields_.push_back(std::move(f));
    return *this;
  }

  TraceEvent& With(const char* key, bool value) {
    Field f;
    f.key = key;
    f.kind = FieldKind::kBool;
    f.int_value = 0;
    f.double_value = 0.0;
    f.bool_value = value;
    fields_.push_back(std::move(f));
    return *this;
  }

  TraceEvent& With(const char* key, const char* value) {
    return With(key, std::string(value));
  }

  TraceEvent& With(const char* key, std::string value) {
    Field f;
    f.key = key;
    f.kind = FieldKind::kString;
    f.int_value = 0;
    f.double_value = 0.0;
    f.bool_value = false;
    f.string_value = std::move(value);
    fields_.push_back(std::move(f));
    return *this;
  }

  TraceCategory category() const { return category_; }
  SimTime ts() const { return ts_; }
  const char* name() const { return name_; }
  const std::vector<Field>& fields() const { return fields_; }

  // Appends this event as one JSONL line (including the trailing
  // newline): {"ts":...,"cat":"...","name":"...",<fields>...}.
  void AppendJsonl(std::string* out) const;

 private:
  TraceCategory category_;
  SimTime ts_;
  const char* name_;
  std::vector<Field> fields_;
};

// JSON string escaping shared by the trace and metrics serializers.
void AppendJsonEscaped(const std::string& text, std::string* out);

}  // namespace obs
}  // namespace pstore

#endif  // PSTORE_OBS_TRACE_EVENT_H_
