#ifndef PSTORE_OBS_WALL_TIMER_H_
#define PSTORE_OBS_WALL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace pstore {
namespace obs {

// Measures real (wall-clock) time spent inside an instrumented span,
// e.g. one planner search or one predictor refit. This is the one
// deliberate non-determinism in traces: simulation fields are
// reproducible across runs, wall_us fields are not, and the run report
// only ever aggregates them.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  int64_t ElapsedMicros() const {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace pstore

#endif  // PSTORE_OBS_WALL_TIMER_H_
