#ifndef PSTORE_OBS_TRACER_H_
#define PSTORE_OBS_TRACER_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "common/status.h"
// Re-exported: the PSTORE_TRACE macro below expands to TraceEvent and
// TraceCategory at every instrumentation site.
#include "obs/trace_event.h"  // IWYU pragma: export

namespace pstore {
namespace obs {

// Where emitted trace events go. Sinks own their I/O failure state and
// surface it from Close(); Write() itself stays cheap and unchecked so
// the instrumented hot paths never branch on stream health.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Write(const TraceEvent& event) = 0;
  virtual Status Close() = 0;
};

// Counts events and drops them. Used by tests and by the tracing
// overhead benchmarks, where file I/O would dominate the measurement.
class CountingTraceSink : public TraceSink {
 public:
  void Write(const TraceEvent& event) override {
    (void)event;
    ++count_;
  }
  Status Close() override { return Status::OK(); }
  int64_t count() const { return count_; }

 private:
  int64_t count_ = 0;
};

// Serializes events as JSON Lines into a file, one object per event:
//   {"ts":<us>,"cat":"<category>","name":"<event>",<fields>...}
// Lines are buffered and flushed in batches; Close() flushes the tail
// and reports any write failure seen during the run.
class JsonlTraceSink : public TraceSink {
 public:
  static StatusOr<std::unique_ptr<JsonlTraceSink>> Open(
      const std::string& path);

  void Write(const TraceEvent& event) override;
  Status Close() override;

 private:
  explicit JsonlTraceSink(const std::string& path);
  void FlushBuffer();

  std::string path_;
  std::ofstream out_;
  std::string buffer_;
  bool write_failed_ = false;
  bool closed_ = false;
};

// The tracing front end held (as a nullable pointer) by instrumented
// subsystems. enabled() is the fast path: a null check plus a bitmask
// test, inlined at every instrumentation site via PSTORE_TRACE below.
// Event construction and sink I/O happen only when the category is on.
class Tracer {
 public:
  Tracer() = default;

  // Convenience: opens `path` and installs a JSONL sink.
  Status OpenJsonl(const std::string& path);

  void SetSink(std::unique_ptr<TraceSink> sink) { sink_ = std::move(sink); }

  bool enabled(TraceCategory category) const {
    return sink_ != nullptr &&
           (mask_ & static_cast<uint32_t>(category)) != 0u;
  }

  void Enable(TraceCategory category) {
    mask_ |= static_cast<uint32_t>(category);
  }
  void Disable(TraceCategory category) {
    mask_ &= ~static_cast<uint32_t>(category);
  }

  void Emit(const TraceEvent& event);
  int64_t events_emitted() const { return events_emitted_; }

  // Closes the sink (if any) and surfaces its I/O outcome. Idempotent.
  Status Close();

 private:
  std::unique_ptr<TraceSink> sink_;
  uint32_t mask_ = kDefaultTraceMask;
  int64_t events_emitted_ = 0;
};

}  // namespace obs
}  // namespace pstore

// Instrumentation entry point. `tracer` is a (possibly null)
// pstore::obs::Tracer*; the trailing variadic part is a fluent .With()
// chain appended to the event builder:
//
//   PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kMigration,
//                loop_->now(), "migration.chunk",
//                .With("from", from).With("bytes", bytes));
//
// When the build defines PSTORE_TRACE_DISABLED (-DPSTORE_TRACING=OFF)
// the macro still type-checks its arguments inside an unevaluated
// sizeof, so no code is generated and no operand is evaluated.
#if defined(PSTORE_TRACE_DISABLED)
#define PSTORE_TRACE(tracer, category, ts, name, ...)               \
  do {                                                              \
    (void)sizeof((tracer),                                          \
                 ::pstore::obs::TraceEvent((category), (ts), (name)) \
                     __VA_ARGS__);                                  \
  } while (0)
#else
#define PSTORE_TRACE(tracer, category, ts, name, ...)                \
  do {                                                               \
    ::pstore::obs::Tracer* pstore_trace_tracer_ = (tracer);          \
    if (pstore_trace_tracer_ != nullptr &&                           \
        pstore_trace_tracer_->enabled(category)) {                   \
      pstore_trace_tracer_->Emit(                                    \
          ::pstore::obs::TraceEvent((category), (ts), (name))        \
              __VA_ARGS__);                                          \
    }                                                                \
  } while (0)
#endif

#endif  // PSTORE_OBS_TRACER_H_
