#ifndef PSTORE_OBS_RUN_REPORT_H_
#define PSTORE_OBS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/trace_reader.h"

namespace pstore {
namespace obs {

// One controller/simulator cycle reconstructed from the trace: the
// cycle event itself plus everything that happened before the next
// cycle (forecast, planner decision, migration activity).
struct CycleRow {
  double t_seconds = 0.0;
  double load = 0.0;
  bool has_forecast = false;
  double pred_next = 0.0;
  int64_t machines = 0;
  bool migrating = false;
  // Last planner/controller decision in the cycle, e.g. "start_move"
  // with its target machine count; empty when the cycle only observed.
  std::string action;
  int64_t action_target = 0;
  int64_t chunks = 0;
  int64_t chunk_retries = 0;
};

// Wall-clock rollup for one span-emitting event name.
struct WallRollup {
  std::string name;
  int64_t count = 0;
  int64_t total_us = 0;
  int64_t max_us = 0;
};

// One parallel-sweep task, from a sweep.task event (RunSweep emits one
// per spec, in spec order).
struct SweepTaskRow {
  std::string label;
  std::string strategy;
  double wall_us = 0.0;
};

// Parallel-sweep rollup from the closing sweep.done event: wall_us is
// the sweep's elapsed time, serial_wall_us the sum of per-task times
// (what one thread would have paid), speedup their ratio, and
// efficiency = speedup / threads (1.0 = perfectly parallel).
struct SweepStats {
  int64_t tasks = 0;
  int64_t threads = 0;
  double wall_us = 0.0;
  double serial_wall_us = 0.0;
  double speedup = 0.0;
  double efficiency = 0.0;
  std::vector<SweepTaskRow> task_rows;
};

// Fleet-provisioning rollup from fleet.cycle / fleet.pack /
// fleet.tenant_move events (FleetController and FleetSimulator).
struct FleetStats {
  int64_t cycles = 0;        // fleet.cycle events
  int64_t packs = 0;         // fleet.pack events
  int64_t repacks = 0;       // packs that adopted a from-scratch repack
  int64_t spike_replans = 0; // packs re-planned on an observed spike
  int64_t peak_machines = 0;
  int64_t moved_partitions = 0;  // summed over fleet.pack
  int64_t tenant_moves = 0;      // fleet.tenant_move events
  int64_t violation_slot_tenants = 0;  // summed over fleet.cycle
};

// Aggregated view of one traced run.
struct RunReport {
  int64_t events = 0;
  double duration_seconds = 0.0;
  std::vector<CycleRow> cycles;

  int64_t plans = 0;
  int64_t infeasible_plans = 0;

  int64_t moves_started = 0;
  int64_t moves_completed = 0;
  int64_t moves_aborted = 0;
  int64_t chunks = 0;
  int64_t chunk_retries = 0;
  int64_t bytes_moved = 0;

  int64_t fault_windows = 0;
  int64_t insufficient_slots = 0;

  // Windows whose sla.window events mark an SLA violation, split by
  // what the system was doing (mirrors SlaAttribution).
  int64_t sla_violations = 0;
  int64_t sla_during_fault = 0;
  int64_t sla_during_migration = 0;
  int64_t sla_baseline = 0;

  // One-cycle-ahead forecast error: cycle i's pred_next against cycle
  // i+1's observed load. MRE skips actuals below 1e-9.
  int64_t forecast_samples = 0;
  double forecast_mae = 0.0;
  double forecast_mre = 0.0;

  std::vector<WallRollup> wall;

  // Present when the trace contains a RunSweep's sweep.done event.
  bool has_sweep = false;
  SweepStats sweep;

  // Present when the trace contains fleet.* events.
  bool has_fleet = false;
  FleetStats fleet;

  // Fields of the trailing run.summary event, verbatim, in file order.
  std::vector<std::pair<std::string, std::string>> summary;
};

// Aggregates a parsed trace (file order) into a RunReport.
StatusOr<RunReport> BuildRunReport(
    const std::vector<ParsedTraceEvent>& events);

// Renders the report as a human-readable summary plus a per-cycle
// timeline capped at `max_rows` rows (0 = summary only, negative =
// unlimited).
std::string RenderRunReport(const RunReport& report, int64_t max_rows);

// Writes the per-cycle timeline as CSV.
Status WriteCycleCsv(const RunReport& report, const std::string& path);

}  // namespace obs
}  // namespace pstore

#endif  // PSTORE_OBS_RUN_REPORT_H_
