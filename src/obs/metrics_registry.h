#ifndef PSTORE_OBS_METRICS_REGISTRY_H_
#define PSTORE_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace pstore {
namespace obs {

// Monotone event count (transactions committed, chunks moved, replans).
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Last-write-wins instantaneous value (average machines, forecast MAE).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Accumulates wall-clock span durations (planner searches, refits).
class Timer {
 public:
  void Observe(int64_t micros) {
    ++count_;
    total_us_ += micros;
    if (micros > max_us_) max_us_ = micros;
  }
  int64_t count() const { return count_; }
  int64_t total_us() const { return total_us_; }
  int64_t max_us() const { return max_us_; }

 private:
  int64_t count_ = 0;
  int64_t total_us_ = 0;
  int64_t max_us_ = 0;
};

// A registry of named counters/gauges/timers for one run. Names are
// dotted lowercase paths, "<subsystem>.<what>[_<unit>]", e.g.
// "migration.chunks_moved", "planner.search_us", "sim.avg_machines".
// Get* creates on first use and returns a stable pointer (storage is a
// node-based map), so call sites can cache the pointer outside loops.
// Exporters are Status-returning: a run's numbers that fail to land on
// disk must be loud.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name) { return &counters_[name]; }
  Gauge* GetGauge(const std::string& name) { return &gauges_[name]; }
  Timer* GetTimer(const std::string& name) { return &timers_[name]; }

  // Renders the whole registry as one JSON object:
  //   {"counters":{...},"gauges":{...},
  //    "timers":{"name":{"count":N,"total_us":T,"max_us":M},...}}
  // Keys are emitted in sorted (map) order, so output is deterministic.
  std::string ToJson() const;

  // Writes ToJson() to `path`.
  Status WriteJson(const std::string& path) const;

  // Writes rows of name,type,value; timers expand to three rows
  // (<name>.count, <name>.total_us, <name>.max_us).
  Status WriteCsv(const std::string& path) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Timer> timers_;
};

}  // namespace obs
}  // namespace pstore

#endif  // PSTORE_OBS_METRICS_REGISTRY_H_
