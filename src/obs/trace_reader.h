#ifndef PSTORE_OBS_TRACE_READER_H_
#define PSTORE_OBS_TRACE_READER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"

namespace pstore {
namespace obs {

// A field value parsed back from a JSONL trace. Numbers are held as
// doubles: every value the serializer emits (SimTime microseconds,
// byte counts, percentiles) fits a double's 53-bit integer range.
struct TraceFieldValue {
  enum class Kind { kNumber, kBool, kString };
  Kind kind = Kind::kNumber;
  double number = 0.0;
  bool bool_value = false;
  std::string text;
};

// One parsed trace event: the envelope (ts/cat/name) plus the flat
// field list in file order.
struct ParsedTraceEvent {
  SimTime ts = 0;
  std::string cat;
  std::string name;
  std::vector<std::pair<std::string, TraceFieldValue>> fields;

  const TraceFieldValue* Find(const std::string& key) const;
  double Number(const std::string& key, double fallback) const;
  int64_t Int(const std::string& key, int64_t fallback) const;
  bool Bool(const std::string& key, bool fallback) const;
  std::string Str(const std::string& key, const std::string& fallback) const;
};

// Parses one JSONL line produced by JsonlTraceSink. This is a reader
// for our own flat output, not a general JSON parser: values are
// numbers, booleans, or strings — no nesting, no null.
StatusOr<ParsedTraceEvent> ParseTraceLine(const std::string& line);

// Reads a whole trace file, in file order. Blank lines are skipped;
// any malformed line fails the read with its line number.
StatusOr<std::vector<ParsedTraceEvent>> ReadTraceFile(
    const std::string& path);

}  // namespace obs
}  // namespace pstore

#endif  // PSTORE_OBS_TRACE_READER_H_
