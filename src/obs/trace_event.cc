#include "obs/trace_event.h"

#include <cstdio>

namespace pstore {
namespace obs {
namespace {

void AppendDouble(double value, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out->append(buf);
}

void AppendInt(int64_t value, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out->append(buf);
}

}  // namespace

const char* TraceCategoryName(TraceCategory category) {
  switch (category) {
    case TraceCategory::kController:
      return "controller";
    case TraceCategory::kPredictor:
      return "predictor";
    case TraceCategory::kPlanner:
      return "planner";
    case TraceCategory::kMigration:
      return "migration";
    case TraceCategory::kEngine:
      return "engine";
    case TraceCategory::kFault:
      return "fault";
    case TraceCategory::kSim:
      return "sim";
    case TraceCategory::kReport:
      return "report";
    case TraceCategory::kVerbose:
      return "verbose";
    case TraceCategory::kFleet:
      return "fleet";
  }
  return "unknown";
}

void AppendJsonEscaped(const std::string& text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void TraceEvent::AppendJsonl(std::string* out) const {
  out->append("{\"ts\":");
  AppendInt(ts_, out);
  out->append(",\"cat\":\"");
  out->append(TraceCategoryName(category_));
  out->append("\",\"name\":\"");
  AppendJsonEscaped(name_, out);
  out->push_back('"');
  for (const Field& field : fields_) {
    out->append(",\"");
    AppendJsonEscaped(field.key, out);
    out->append("\":");
    switch (field.kind) {
      case FieldKind::kInt:
        AppendInt(field.int_value, out);
        break;
      case FieldKind::kDouble:
        AppendDouble(field.double_value, out);
        break;
      case FieldKind::kBool:
        out->append(field.bool_value ? "true" : "false");
        break;
      case FieldKind::kString:
        out->push_back('"');
        AppendJsonEscaped(field.string_value, out);
        out->push_back('"');
        break;
    }
  }
  out->append("}\n");
}

}  // namespace obs
}  // namespace pstore
