#include "obs/tracer.h"

#include <cstddef>
#include <memory>
#include <string>
#include <utility>

#include "common/status.h"
#include "obs/trace_event.h"

namespace pstore {
namespace obs {
namespace {

// Flush the JSONL buffer once it crosses this size; large enough to
// amortize stream writes, small enough that a crashed run still leaves
// a mostly-complete trace on disk.
constexpr std::size_t kFlushThreshold = 64 * 1024;

}  // namespace

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : path_(path), out_(path) {
  buffer_.reserve(2 * kFlushThreshold);
}

StatusOr<std::unique_ptr<JsonlTraceSink>> JsonlTraceSink::Open(
    const std::string& path) {
  std::unique_ptr<JsonlTraceSink> sink(new JsonlTraceSink(path));
  if (!sink->out_.good()) {
    return Status::InvalidArgument("cannot open trace file '" + path + "'");
  }
  return sink;
}

void JsonlTraceSink::Write(const TraceEvent& event) {
  if (closed_) return;
  event.AppendJsonl(&buffer_);
  if (buffer_.size() >= kFlushThreshold) FlushBuffer();
}

void JsonlTraceSink::FlushBuffer() {
  if (!buffer_.empty()) {
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  if (!out_.good()) write_failed_ = true;
}

Status JsonlTraceSink::Close() {
  if (closed_) {
    if (write_failed_) {
      return Status::Internal("trace write to '" + path_ + "' failed");
    }
    return Status::OK();
  }
  closed_ = true;
  FlushBuffer();
  out_.flush();
  if (!out_.good()) write_failed_ = true;
  out_.close();
  if (out_.fail()) write_failed_ = true;
  if (write_failed_) {
    return Status::Internal("trace write to '" + path_ + "' failed");
  }
  return Status::OK();
}

Status Tracer::OpenJsonl(const std::string& path) {
  StatusOr<std::unique_ptr<JsonlTraceSink>> sink = JsonlTraceSink::Open(path);
  if (!sink.ok()) return sink.status();
  sink_ = std::move(sink.value());
  return Status::OK();
}

void Tracer::Emit(const TraceEvent& event) {
  if (sink_ == nullptr) return;
  sink_->Write(event);
  ++events_emitted_;
}

Status Tracer::Close() {
  if (sink_ == nullptr) return Status::OK();
  return sink_->Close();
}

}  // namespace obs
}  // namespace pstore
