#ifndef PSTORE_COMMON_THREAD_POOL_H_
#define PSTORE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace pstore {

// A small fixed-size thread pool for deterministic fan-out/fan-in
// parallelism. The design goal is reproducibility, not generality:
// ParallelFor hands out loop indices, callers write results *by index*
// into pre-sized storage, and the reduction therefore observes results
// in index order regardless of which worker ran which index or how the
// OS scheduled them. Given bodies that are themselves deterministic
// functions of their index, outputs are bit-identical for any thread
// count — the property the sweep golden tests assert.
//
// The calling thread participates in every batch, so a pool constructed
// with `threads` == 1 spawns no workers and runs bodies inline with no
// synchronization at all: the single-threaded path is plain serial code.
//
// One batch runs at a time; ParallelFor is not reentrant (a body must
// not call back into the same pool) and the pool must not be shared by
// concurrent ParallelFor callers. Per-task isolation is the caller's
// contract: bodies for distinct indices must not share mutable state.
class ThreadPool {
 public:
  // Spawns `threads` - 1 workers (values < 1 clamp to 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return threads_; }

  // std::thread::hardware_concurrency(), clamped to at least 1.
  static int HardwareConcurrency();

  // Runs body(i) for every i in [0, count), distributing indices across
  // the pool, and blocks until all complete. If one or more bodies
  // throw, the exception thrown by the *lowest* index is rethrown here
  // (after every claimed body finished), so failure is as deterministic
  // as success; the remaining indices still run.
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

  // As ParallelFor, for Status-returning bodies: returns OK if every
  // body succeeded, otherwise the error of the lowest failing index.
  Status ParallelForStatus(size_t count,
                           const std::function<Status(size_t)>& body);

 private:
  // State of one ParallelFor batch, shared between the caller and the
  // workers. `next` hands out indices; the caller waits until
  // `completed` reaches `count` and every worker detached (`attached`
  // back to 0), because the Batch lives on the caller's stack.
  struct Batch {
    const std::function<void(size_t)>* body = nullptr;
    size_t count = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    int attached PSTORE_GUARDED_BY(mu_) = 0;  // ThreadPool::mu_
    size_t error_index PSTORE_GUARDED_BY(error_mu) = 0;
    std::exception_ptr error PSTORE_GUARDED_BY(error_mu);
    std::mutex error_mu;
  };

  void WorkerLoop();
  // Claims and runs indices of `batch` until they are exhausted,
  // capturing the lowest-index exception.
  static void DrainBatch(Batch* batch);

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: a new batch is available
  std::condition_variable done_cv_;  // caller: batch fully completed
  Batch* batch_ PSTORE_GUARDED_BY(mu_) = nullptr;  // null when idle
  uint64_t generation_ PSTORE_GUARDED_BY(mu_) = 0;  // bumped per batch
  bool shutdown_ PSTORE_GUARDED_BY(mu_) = false;
};

// Resolves a --threads style request: values < 1 mean "use the
// hardware", anything else is taken literally.
int ResolveThreadCount(int64_t requested);

}  // namespace pstore

#endif  // PSTORE_COMMON_THREAD_POOL_H_
