#include "common/linalg.h"

#include <cmath>

#include "common/logging.h"
#include "common/status.h"

namespace pstore {

Matrix Matrix::TransposeTimesSelf() const {
  Matrix out(cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    for (size_t i = 0; i < cols_; ++i) {
      const double ri = row[i];
      if (ri == 0.0) continue;
      for (size_t j = i; j < cols_; ++j) {
        out.At(i, j) += ri * row[j];
      }
    }
  }
  // Mirror the upper triangle.
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = 0; j < i; ++j) {
      out.At(i, j) = out.At(j, i);
    }
  }
  return out;
}

std::vector<double> Matrix::TransposeTimesVector(
    const std::vector<double>& v) const {
  PSTORE_CHECK(v.size() == rows_);
  std::vector<double> out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    const double* row = &data_[r * cols_];
    const double vr = v[r];
    if (vr == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) {
      out[c] += row[c] * vr;
    }
  }
  return out;
}

StatusOr<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                                const std::vector<double>& b) {
  const size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    return Status::InvalidArgument("SolveLinearSystem: shape mismatch");
  }
  // Work on an augmented copy.
  Matrix m(n, n + 1);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) m.At(r, c) = a.At(r, c);
    m.At(r, n) = b[r];
  }
  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t pivot = col;
    double best = std::abs(m.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(m.At(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::FailedPrecondition("SolveLinearSystem: singular matrix");
    }
    if (pivot != col) {
      for (size_t c = col; c <= n; ++c) {
        std::swap(m.At(col, c), m.At(pivot, c));
      }
    }
    const double inv = 1.0 / m.At(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = m.At(r, col) * inv;
      if (factor == 0.0) continue;
      for (size_t c = col; c <= n; ++c) {
        m.At(r, c) -= factor * m.At(col, c);
      }
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double acc = m.At(ri, n);
    for (size_t c = ri + 1; c < n; ++c) acc -= m.At(ri, c) * x[c];
    x[ri] = acc / m.At(ri, ri);
  }
  return x;
}

StatusOr<std::vector<double>> SolveLeastSquares(const Matrix& a,
                                                const std::vector<double>& b,
                                                double ridge) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("SolveLeastSquares: shape mismatch");
  }
  if (a.rows() < a.cols()) {
    return Status::InvalidArgument(
        "SolveLeastSquares: fewer rows than unknowns");
  }
  Matrix ata = a.TransposeTimesSelf();
  // Scale the ridge by the matrix magnitude so it is unit-free.
  double diag_max = 0.0;
  for (size_t i = 0; i < ata.rows(); ++i) {
    diag_max = std::max(diag_max, std::abs(ata.At(i, i)));
  }
  const double damping = ridge * (diag_max > 0.0 ? diag_max : 1.0);
  for (size_t i = 0; i < ata.rows(); ++i) {
    ata.At(i, i) += damping;
  }
  return SolveLinearSystem(ata, a.TransposeTimesVector(b));
}

}  // namespace pstore
