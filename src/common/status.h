#ifndef PSTORE_COMMON_STATUS_H_
#define PSTORE_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace pstore {

// Error codes used across the library. Modeled after the common database
// practice (e.g., RocksDB's Status) of returning recoverable errors by
// value instead of throwing exceptions across API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInfeasible,   // planner: no feasible move sequence exists
  kInternal,
  kUnavailable,  // transient: a node or link is down, retrying may succeed
  kAborted,      // the operation was given up (e.g., retry budget exhausted)
};

// A Status carries a code and, for errors, a human-readable message.
// The OK status carries no message and is cheap to copy. Marked
// [[nodiscard]] so that silently dropping an error at a call site is a
// compile-time warning (an error under the tidy preset); discard
// deliberately with a (void) cast and a comment.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// StatusOr<T> holds either a value or an error status. Callers must check
// ok() before dereferencing. [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pstore

// Evaluates `expr` (a Status expression) and returns it from the calling
// function if it is an error. The calling function must itself return
// Status.
#define RETURN_IF_ERROR(expr)                                       \
  do {                                                              \
    ::pstore::Status pstore_return_if_error_status_ = (expr);       \
    if (!pstore_return_if_error_status_.ok()) {                     \
      return pstore_return_if_error_status_;                       \
    }                                                               \
  } while (0)

#endif  // PSTORE_COMMON_STATUS_H_
