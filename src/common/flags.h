#ifndef PSTORE_COMMON_FLAGS_H_
#define PSTORE_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace pstore {

// Minimal command-line flag parser for the repo's CLI tools. Accepts
// "--name=value", "--name value", and bare "--name" (boolean true);
// everything else is a positional argument. No registration needed:
// tools query parsed flags with typed getters and defaults.
class FlagParser {
 public:
  // Parses argv (excluding argv[0]). Returns an error on malformed
  // input such as a value-expecting flag at the end ("--x" followed by
  // nothing is fine: it becomes boolean true).
  Status Parse(int argc, const char* const* argv);

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  // Every value given for a repeatable flag ("--rule=a --rule=b"), in
  // command-line order; empty when the flag is absent. The scalar
  // getters see only the last occurrence.
  std::vector<std::string> GetStrings(const std::string& name) const;
  // Return kInvalidArgument if the flag is present but not parseable.
  StatusOr<int64_t> GetInt(const std::string& name,
                           int64_t default_value) const;
  StatusOr<double> GetDouble(const std::string& name,
                             double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // All parsed flags, for validation ("unknown flag" messages).
  const std::map<std::string, std::string>& flags() const { return flags_; }

 private:
  std::map<std::string, std::string> flags_;
  // Every (name, value) occurrence in command-line order, for
  // repeatable flags.
  std::vector<std::pair<std::string, std::string>> occurrences_;
  std::vector<std::string> positional_;
};

}  // namespace pstore

#endif  // PSTORE_COMMON_FLAGS_H_
