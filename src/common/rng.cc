#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace pstore {
namespace {

// SplitMix64 step, used only to expand the user seed into generator state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  PSTORE_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  // Guard against log(0).
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextExponential(double mean) {
  PSTORE_CHECK(mean > 0.0);
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  return -mean * std::log(u);
}

int64_t Rng::NextPoisson(double mean) {
  PSTORE_CHECK(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double product = NextDouble();
    int64_t count = 0;
    while (product > limit) {
      product *= NextDouble();
      ++count;
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for the
  // large per-slot arrival counts used by trace generators.
  const double value = mean + std::sqrt(mean) * NextGaussian() + 0.5;
  return value < 0.0 ? 0 : static_cast<int64_t>(value);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace pstore
