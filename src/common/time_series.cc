#include "common/time_series.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/status.h"

namespace pstore {

TimeSeries TimeSeries::Slice(size_t begin, size_t end) const {
  PSTORE_CHECK(begin <= end && end <= values_.size());
  return TimeSeries(slot_seconds_,
                    std::vector<double>(values_.begin() + begin,
                                        values_.begin() + end));
}

TimeSeries TimeSeries::DownsampleSum(size_t factor) const {
  PSTORE_CHECK(factor >= 1);
  TimeSeries out(slot_seconds_ * static_cast<double>(factor));
  for (size_t i = 0; i + factor <= values_.size(); i += factor) {
    double sum = 0.0;
    for (size_t j = 0; j < factor; ++j) sum += values_[i + j];
    out.Append(sum);
  }
  return out;
}

TimeSeries TimeSeries::DownsampleMean(size_t factor) const {
  TimeSeries out = DownsampleSum(factor);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] /= static_cast<double>(factor);
  }
  return out;
}

TimeSeries TimeSeries::Scaled(double factor) const {
  TimeSeries out(slot_seconds_, values_);
  for (auto& v : out.values_) v *= factor;
  return out;
}

double TimeSeries::Min() const {
  PSTORE_CHECK(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double TimeSeries::Max() const {
  PSTORE_CHECK(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double TimeSeries::Mean() const {
  PSTORE_CHECK(!values_.empty());
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double TimeSeries::StdDev() const {
  PSTORE_CHECK(!values_.empty());
  const double mean = Mean();
  double sq = 0.0;
  for (double v : values_) sq += (v - mean) * (v - mean);
  return std::sqrt(sq / static_cast<double>(values_.size()));
}

StatusOr<double> MeanRelativeError(const std::vector<double>& actual,
                                   const std::vector<double>& predicted,
                                   double min_actual) {
  if (actual.size() != predicted.size()) {
    return Status::InvalidArgument("series lengths differ");
  }
  double sum = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < actual.size(); ++i) {
    if (std::abs(actual[i]) < min_actual) continue;
    sum += std::abs(predicted[i] - actual[i]) / std::abs(actual[i]);
    ++used;
  }
  if (used == 0) return Status::InvalidArgument("no usable samples");
  return sum / static_cast<double>(used);
}

StatusOr<double> MeanAbsoluteError(const std::vector<double>& actual,
                                   const std::vector<double>& predicted) {
  if (actual.size() != predicted.size() || actual.empty()) {
    return Status::InvalidArgument("series lengths differ or empty");
  }
  double sum = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    sum += std::abs(predicted[i] - actual[i]);
  }
  return sum / static_cast<double>(actual.size());
}

StatusOr<double> RootMeanSquaredError(const std::vector<double>& actual,
                                      const std::vector<double>& predicted) {
  if (actual.size() != predicted.size() || actual.empty()) {
    return Status::InvalidArgument("series lengths differ or empty");
  }
  double sum = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    const double d = predicted[i] - actual[i];
    sum += d * d;
  }
  return std::sqrt(sum / static_cast<double>(actual.size()));
}

StatusOr<double> Autocorrelation(const TimeSeries& series, size_t lag) {
  const size_t n = series.size();
  if (lag < 1 || lag >= n) {
    return Status::InvalidArgument("lag must be in [1, size)");
  }
  const double mean = series.Mean();
  double denom = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = series[i] - mean;
    denom += d * d;
  }
  if (denom <= 0.0) {
    return Status::InvalidArgument("constant series has no autocorrelation");
  }
  double numer = 0.0;
  for (size_t i = 0; i + lag < n; ++i) {
    numer += (series[i] - mean) * (series[i + lag] - mean);
  }
  return numer / denom;
}

StatusOr<size_t> DetectPeriod(const TimeSeries& series, size_t min_lag,
                              size_t max_lag) {
  if (min_lag < 1 || min_lag > max_lag) {
    return Status::InvalidArgument("need 1 <= min_lag <= max_lag");
  }
  if (max_lag >= series.size() / 2) {
    return Status::InvalidArgument("max_lag too large for series length");
  }
  std::vector<double> acf(max_lag + 1, 0.0);
  for (size_t lag = min_lag; lag <= max_lag; ++lag) {
    StatusOr<double> ac = Autocorrelation(series, lag);
    if (!ac.ok()) return ac.status();
    acf[lag] = *ac;
  }
  // The ACF always starts high at short lags and decays; the period is
  // the peak *after the first dip*, not the raw maximum. Find the first
  // local minimum, then the global maximum beyond it.
  size_t dip = max_lag;
  for (size_t lag = min_lag + 1; lag <= max_lag; ++lag) {
    if (acf[lag] > acf[lag - 1] + 1e-9) {
      dip = lag - 1;
      break;
    }
  }
  size_t best_lag = min_lag;
  double best = -2.0;
  for (size_t lag = dip; lag <= max_lag; ++lag) {
    if (acf[lag] > best) {
      best = acf[lag];
      best_lag = lag;
    }
  }
  return best_lag;
}

}  // namespace pstore
