#ifndef PSTORE_COMMON_SIM_TIME_H_
#define PSTORE_COMMON_SIM_TIME_H_

#include <cstdint>

namespace pstore {

// Simulated time, in microseconds since the start of the experiment.
// All engine and controller code runs on simulated time so experiments
// covering days of workload execute in seconds and are fully deterministic.
using SimTime = int64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;
inline constexpr SimTime kMinute = 60 * kSecond;
inline constexpr SimTime kHour = 60 * kMinute;
inline constexpr SimTime kDay = 24 * kHour;

// Converts simulated time to floating-point seconds (for reporting).
inline double ToSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

// Converts floating-point seconds to simulated time (rounds toward zero).
inline SimTime FromSeconds(double seconds) {
  return static_cast<SimTime>(seconds * static_cast<double>(kSecond));
}

}  // namespace pstore

#endif  // PSTORE_COMMON_SIM_TIME_H_
