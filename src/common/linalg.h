#ifndef PSTORE_COMMON_LINALG_H_
#define PSTORE_COMMON_LINALG_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace pstore {

// Minimal dense row-major matrix of doubles, sized for the small systems
// the predictors solve (tens of coefficients).
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  // Returns A^T * A (cols x cols).
  Matrix TransposeTimesSelf() const;

  // Returns A^T * v. Requires v.size() == rows().
  std::vector<double> TransposeTimesVector(const std::vector<double>& v) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

// Solves the square linear system A x = b using Gaussian elimination with
// partial pivoting. Returns kInvalidArgument on shape mismatch and
// kFailedPrecondition if A is (numerically) singular.
StatusOr<std::vector<double>> SolveLinearSystem(const Matrix& a,
                                                const std::vector<double>& b);

// Solves the least-squares problem min ||A x - b||_2 via the normal
// equations with Tikhonov damping `ridge` (>= 0) on the diagonal. The
// small ridge keeps the solve stable when regressors are collinear, which
// happens on strongly periodic load traces.
StatusOr<std::vector<double>> SolveLeastSquares(const Matrix& a,
                                                const std::vector<double>& b,
                                                double ridge = 1e-8);

}  // namespace pstore

#endif  // PSTORE_COMMON_LINALG_H_
