#ifndef PSTORE_COMMON_CSV_WRITER_H_
#define PSTORE_COMMON_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace pstore {

// Small CSV emitter used by the benchmark harnesses to persist the series
// behind each figure. Writing is best-effort: benches print their tables
// to stdout regardless, and CSV output is an optional extra for plotting.
class CsvWriter {
 public:
  // Opens `path` for writing, creating parent directories is NOT attempted;
  // callers pass paths inside an existing directory. Check ok() after
  // construction.
  explicit CsvWriter(const std::string& path);

  bool ok() const { return out_.good(); }

  // Writes a header or data row; values are joined with commas. Strings
  // containing commas/quotes are quoted per RFC 4180.
  void WriteRow(const std::vector<std::string>& cells);

  // Convenience: formats doubles with %.6g.
  void WriteNumericRow(const std::vector<double>& cells);

 private:
  std::ofstream out_;
};

}  // namespace pstore

#endif  // PSTORE_COMMON_CSV_WRITER_H_
