#ifndef PSTORE_COMMON_CSV_WRITER_H_
#define PSTORE_COMMON_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace pstore {

// Small CSV emitter used by the benchmark harnesses to persist the series
// behind each figure. Row writes are buffered and individually
// best-effort, but every writer must be Close()d: Close() flushes and
// surfaces any I/O failure (ENOSPC, a bad path, a row dropped mid-run)
// as a Status so a truncated result file cannot masquerade as a
// complete run.
class CsvWriter {
 public:
  // Opens `path` for writing, creating parent directories is NOT attempted;
  // callers pass paths inside an existing directory. Check ok() after
  // construction (or rely on Close() reporting the failure).
  explicit CsvWriter(const std::string& path);

  bool ok() const { return out_.good(); }
  const std::string& path() const { return path_; }

  // Writes a header or data row; values are joined with commas. Strings
  // containing commas/quotes are quoted per RFC 4180.
  void WriteRow(const std::vector<std::string>& cells);

  // Convenience: formats doubles with %.6g.
  void WriteNumericRow(const std::vector<double>& cells);

  // Flushes and closes the file. Returns an error if the file never
  // opened, any row write failed, or the final flush fails. Idempotent:
  // a second call reports the sticky outcome of the first.
  Status Close();

 private:
  std::string path_;
  std::ofstream out_;
  bool closed_ = false;
  bool write_failed_ = false;
};

}  // namespace pstore

#endif  // PSTORE_COMMON_CSV_WRITER_H_
