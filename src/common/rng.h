#ifndef PSTORE_COMMON_RNG_H_
#define PSTORE_COMMON_RNG_H_

#include <cstdint>

namespace pstore {

// Deterministic pseudo-random number generator (xoshiro256**), seeded via
// SplitMix64. Used everywhere instead of std::mt19937 so that experiment
// results are bit-identical across standard library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextUint64();

  // Uniform in [0, n). Requires n > 0.
  uint64_t NextUint64(uint64_t n);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Standard normal via Box-Muller (caches the second value).
  double NextGaussian();

  // Exponential with the given mean. Requires mean > 0.
  double NextExponential(double mean);

  // Poisson-distributed count with the given mean. Uses inversion for
  // small means and a normal approximation for large ones.
  int64_t NextPoisson(double mean);

  // Bernoulli trial with probability p of returning true.
  bool NextBool(double p);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace pstore

#endif  // PSTORE_COMMON_RNG_H_
