#ifndef PSTORE_COMMON_LOGGING_H_
#define PSTORE_COMMON_LOGGING_H_

// The PSTORE_CHECK / PSTORE_DCHECK families live in common/check.h; this
// header remains as the historical include point for them.
#include "common/check.h"  // IWYU pragma: export

#endif  // PSTORE_COMMON_LOGGING_H_
