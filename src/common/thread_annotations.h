#ifndef PSTORE_COMMON_THREAD_ANNOTATIONS_H_
#define PSTORE_COMMON_THREAD_ANNOTATIONS_H_

// Thread-safety annotation macros, in the spirit of clang's
// -Wthread-safety attribute set but with a project-local spelling so
// that pstore_analyze's token-level "guarded-by" rule can enforce the
// discipline on every compiler, not just clang.
//
//   class Counter {
//    private:
//     std::mutex mu_;
//     int64_t value_ PSTORE_GUARDED_BY(mu_) = 0;
//   };
//
// Contract enforced by the analyzer (and, under clang with
// PSTORE_THREAD_SAFETY_ANALYSIS defined, by the compiler too):
//   * every class owning a std::mutex annotates at least one member
//     with PSTORE_GUARDED_BY(that mutex), and
//   * every method that touches an annotated member also names its
//     mutex (taking the lock, or asserting it is held).

#if defined(PSTORE_THREAD_SAFETY_ANALYSIS) && defined(__clang__)
#define PSTORE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PSTORE_THREAD_ANNOTATION(x)
#endif

// Marks a data member as protected by the given mutex: the member may
// only be read or written while that mutex is held.
#define PSTORE_GUARDED_BY(x) PSTORE_THREAD_ANNOTATION(guarded_by(x))

#endif  // PSTORE_COMMON_THREAD_ANNOTATIONS_H_
