#ifndef PSTORE_COMMON_CHECK_H_
#define PSTORE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/status.h"

namespace pstore {
namespace internal_logging {

// Terminates the process after printing a fatal invariant-violation
// message. Used by the PSTORE_CHECK family below; invariant violations are
// programming errors, not recoverable conditions, so we abort.
[[noreturn]] inline void FatalCheckFailure(const char* file, int line,
                                           const char* expr,
                                           const std::string& extra) {
  std::fprintf(stderr, "FATAL %s:%d: check failed: %s %s\n", file, line, expr,
               extra.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_logging

// Debug-check gate: PSTORE_DCHECK* are compiled in every build type (so
// they cannot bit-rot) but evaluated only when NDEBUG is off — the `tidy`
// and plain Debug configurations. Release and sanitizer builds pay
// nothing; the branch folds away on the constant.
#ifdef NDEBUG
inline constexpr bool kDebugChecksEnabled = false;
#else
inline constexpr bool kDebugChecksEnabled = true;
#endif

}  // namespace pstore

// Unconditional invariant check. Active in all build types: the library's
// correctness arguments (planner feasibility, migration invariants) rely
// on these holding, and the cost is negligible relative to the work done.
#define PSTORE_CHECK(expr)                                                 \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::pstore::internal_logging::FatalCheckFailure(__FILE__, __LINE__,    \
                                                    #expr, "");            \
    }                                                                      \
  } while (0)

#define PSTORE_CHECK_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream pstore_check_oss_;                                \
      pstore_check_oss_ << msg;                                            \
      ::pstore::internal_logging::FatalCheckFailure(                       \
          __FILE__, __LINE__, #expr, pstore_check_oss_.str());             \
    }                                                                      \
  } while (0)

#define PSTORE_CHECK_OK(status_expr)                                       \
  do {                                                                     \
    const ::pstore::Status pstore_check_status_ = (status_expr);           \
    if (!pstore_check_status_.ok()) {                                      \
      ::pstore::internal_logging::FatalCheckFailure(                       \
          __FILE__, __LINE__, #status_expr,                                \
          pstore_check_status_.ToString());                                \
    }                                                                      \
  } while (0)

// Debug-only variants: expensive mechanical verification (schedule and
// plan validators, O(n) scans) that debug builds run on every emitted
// artifact and release builds skip.
#define PSTORE_DCHECK(expr)                                                \
  do {                                                                     \
    if (::pstore::kDebugChecksEnabled && !(expr)) {                        \
      ::pstore::internal_logging::FatalCheckFailure(__FILE__, __LINE__,    \
                                                    #expr, "");            \
    }                                                                      \
  } while (0)

#define PSTORE_DCHECK_MSG(expr, msg)                                       \
  do {                                                                     \
    if (::pstore::kDebugChecksEnabled && !(expr)) {                        \
      std::ostringstream pstore_check_oss_;                                \
      pstore_check_oss_ << msg;                                            \
      ::pstore::internal_logging::FatalCheckFailure(                       \
          __FILE__, __LINE__, #expr, pstore_check_oss_.str());             \
    }                                                                      \
  } while (0)

#define PSTORE_DCHECK_OK(status_expr)                                      \
  do {                                                                     \
    if (::pstore::kDebugChecksEnabled) {                                   \
      PSTORE_CHECK_OK(status_expr);                                        \
    }                                                                      \
  } while (0)

#endif  // PSTORE_COMMON_CHECK_H_
