#ifndef PSTORE_COMMON_TIME_SERIES_H_
#define PSTORE_COMMON_TIME_SERIES_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace pstore {

// A regularly-sampled univariate time series (e.g., requests per minute).
// The slot duration is carried alongside the samples so that consumers
// (predictors, planners) can convert between slot indices and wall time.
class TimeSeries {
 public:
  TimeSeries() : slot_seconds_(60.0) {}
  explicit TimeSeries(double slot_seconds) : slot_seconds_(slot_seconds) {}
  TimeSeries(double slot_seconds, std::vector<double> values)
      : slot_seconds_(slot_seconds), values_(std::move(values)) {}

  double slot_seconds() const { return slot_seconds_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double operator[](size_t i) const { return values_[i]; }
  double& operator[](size_t i) { return values_[i]; }

  const std::vector<double>& values() const { return values_; }

  void Append(double value) { values_.push_back(value); }

  // Returns the sub-series [begin, end). Requires begin <= end <= size().
  TimeSeries Slice(size_t begin, size_t end) const;

  // Returns a series whose slot duration is `factor` times coarser, each
  // new sample being the sum of `factor` consecutive samples. A trailing
  // partial window is dropped. Requires factor >= 1.
  TimeSeries DownsampleSum(size_t factor) const;

  // Same, but each new sample is the mean of the window.
  TimeSeries DownsampleMean(size_t factor) const;

  // Elementwise scale (returns a new series).
  TimeSeries Scaled(double factor) const;

  double Min() const;
  double Max() const;
  double Mean() const;
  double StdDev() const;

 private:
  double slot_seconds_;
  std::vector<double> values_;
};

// Mean relative error of predictions vs. actuals, skipping slots where the
// actual value is below `min_actual` (to avoid division blow-ups on near-
// zero load). The two series must have equal length.
StatusOr<double> MeanRelativeError(const std::vector<double>& actual,
                                   const std::vector<double>& predicted,
                                   double min_actual = 1e-9);

// Mean absolute error. The two series must have equal length and be
// non-empty.
StatusOr<double> MeanAbsoluteError(const std::vector<double>& actual,
                                   const std::vector<double>& predicted);

// Root mean squared error. Same preconditions as MeanAbsoluteError.
StatusOr<double> RootMeanSquaredError(const std::vector<double>& actual,
                                      const std::vector<double>& predicted);

// Sample autocorrelation of the series at the given lag, in [-1, 1].
// Requires 1 <= lag < series.size() and a non-constant series.
StatusOr<double> Autocorrelation(const TimeSeries& series, size_t lag);

// Finds the lag in [min_lag, max_lag] with the highest autocorrelation —
// a cheap periodicity detector for picking a predictor's period from a
// raw trace. Requires max_lag < series.size() / 2 for a stable estimate.
StatusOr<size_t> DetectPeriod(const TimeSeries& series, size_t min_lag,
                              size_t max_lag);

}  // namespace pstore

#endif  // PSTORE_COMMON_TIME_SERIES_H_
