#include "common/histogram.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace pstore {
namespace {

// Values below 2^kLinearBits get exact (width-1) buckets; above that, each
// power-of-two octave is split into 2^kLinearBits sub-buckets, bounding the
// relative quantile error at ~1/64.
constexpr int kLinearBits = 6;
constexpr int64_t kLinearMax = int64_t{1} << kLinearBits;  // 64

}  // namespace

Histogram::Histogram() = default;

int Histogram::BucketFor(int64_t value) {
  if (value < 0) value = 0;
  if (value < kLinearMax) return static_cast<int>(value);
  const int msb = 63 - std::countl_zero(static_cast<uint64_t>(value));
  const int shift = msb - kLinearBits;
  const int sub =
      static_cast<int>((value - (int64_t{1} << msb)) >> shift);
  return static_cast<int>(kLinearMax) + (msb - kLinearBits) * 64 + sub;
}

int64_t Histogram::BucketUpperEdge(int bucket) {
  if (bucket < kLinearMax) return bucket;
  const int rel = bucket - static_cast<int>(kLinearMax);
  const int oct = rel / 64 + kLinearBits;
  const int sub = rel % 64;
  const int shift = oct - kLinearBits;
  const int64_t lower =
      (int64_t{1} << oct) + (static_cast<int64_t>(sub) << shift);
  return lower + (int64_t{1} << shift) - 1;
}

void Histogram::Record(int64_t value) { RecordMultiple(value, 1); }

void Histogram::RecordMultiple(int64_t value, int64_t count) {
  PSTORE_CHECK(count >= 0);
  if (count == 0) return;
  if (value < 0) value = 0;
  const int bucket = BucketFor(value);
  if (static_cast<size_t>(bucket) >= buckets_.size()) {
    buckets_.resize(bucket + 1, 0);
  }
  buckets_[bucket] += count;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += value * count;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

int64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

int64_t Histogram::ValueAtQuantile(double quantile) const {
  if (count_ == 0) return 0;
  quantile = std::clamp(quantile, 0.0, 1.0);
  // Number of values that must be <= the answer.
  const int64_t target = std::max<int64_t>(
      1, static_cast<int64_t>(quantile * static_cast<double>(count_) + 0.5));
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::min(BucketUpperEdge(static_cast<int>(i)), max_);
    }
  }
  return max_;
}

}  // namespace pstore
