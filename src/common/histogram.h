#ifndef PSTORE_COMMON_HISTOGRAM_H_
#define PSTORE_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace pstore {

// Log-bucketed histogram of non-negative values (typically latencies in
// microseconds). Buckets grow geometrically so that percentile estimates
// keep a bounded relative error (~2%) over many orders of magnitude,
// similar in spirit to HdrHistogram. Recording is O(1); percentile
// queries are O(#buckets).
class Histogram {
 public:
  Histogram();

  // Records a single value. Negative values are clamped to zero.
  void Record(int64_t value);

  // Records `count` occurrences of `value`.
  void RecordMultiple(int64_t value, int64_t count);

  // Merges another histogram into this one.
  void Merge(const Histogram& other);

  // Removes all recorded values.
  void Reset();

  int64_t count() const { return count_; }
  int64_t min() const;
  int64_t max() const { return max_; }
  double mean() const;

  // Returns the smallest recorded value v such that at least
  // `quantile` (in [0,1]) of recorded values are <= v. Returns 0 for an
  // empty histogram. The result is the upper edge of the containing
  // bucket, so it over-estimates by at most one bucket width.
  int64_t ValueAtQuantile(double quantile) const;

 private:
  // Maps a value to its bucket index.
  static int BucketFor(int64_t value);
  // Upper edge (inclusive representative value) for a bucket.
  static int64_t BucketUpperEdge(int bucket);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace pstore

#endif  // PSTORE_COMMON_HISTOGRAM_H_
