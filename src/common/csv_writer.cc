#include "common/csv_writer.h"

#include <cstdio>

#include "common/status.h"

namespace pstore {
namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string Quote(const std::string& cell) {
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (!out_.good()) {
    write_failed_ = true;
    return;
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << (NeedsQuoting(cells[i]) ? Quote(cells[i]) : cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::WriteNumericRow(const std::vector<double>& cells) {
  if (!out_.good()) {
    write_failed_ = true;
    return;
  }
  char buf[64];
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    std::snprintf(buf, sizeof(buf), "%.6g", cells[i]);
    out_ << buf;
  }
  out_ << '\n';
}

Status CsvWriter::Close() {
  if (closed_) {
    if (write_failed_) {
      return Status::Internal("csv write to '" + path_ + "' failed");
    }
    return Status::OK();
  }
  closed_ = true;
  if (write_failed_ || !out_.good()) {
    write_failed_ = true;
    out_.close();
    return Status::Internal("csv write to '" + path_ +
                            "' failed (bad path or interrupted write)");
  }
  out_.flush();
  if (!out_.good()) {
    write_failed_ = true;
    out_.close();
    return Status::Internal("csv flush of '" + path_ + "' failed");
  }
  out_.close();
  if (out_.fail()) {
    write_failed_ = true;
    return Status::Internal("closing csv '" + path_ + "' failed");
  }
  return Status::OK();
}

}  // namespace pstore
