#include "common/csv_writer.h"

#include <cstdio>

namespace pstore {
namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string Quote(const std::string& cell) {
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  if (!out_.good()) return;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << (NeedsQuoting(cells[i]) ? Quote(cells[i]) : cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::WriteNumericRow(const std::vector<double>& cells) {
  if (!out_.good()) return;
  char buf[64];
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    std::snprintf(buf, sizeof(buf), "%.6g", cells[i]);
    out_ << buf;
  }
  out_ << '\n';
}

}  // namespace pstore
