#ifndef PSTORE_COMMON_ZIPF_H_
#define PSTORE_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace pstore {

// Zipf-distributed sampler over [0, n): rank r is drawn with probability
// proportional to 1 / (r+1)^theta. theta = 0 is uniform; theta ~ 0.99 is
// the classic YCSB default; larger is more skewed. Uses the
// precomputed-CDF + binary-search method (O(log n) per sample, O(n)
// setup), which is exact and fast enough for n up to a few million.
//
// Hot ranks are scattered over the key space by a multiplicative hash so
// that "popular" keys do not cluster in contiguous buckets.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  // Draws a rank in [0, n): rank 0 is the most popular.
  uint64_t NextRank(Rng& rng) const;

  // Draws a key in [0, n): the rank scattered over the key space, so
  // popularity is spread across buckets/partitions.
  uint64_t NextKey(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace pstore

#endif  // PSTORE_COMMON_ZIPF_H_
