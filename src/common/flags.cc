#include "common/flags.h"

#include <cstdlib>

#include "common/status.h"

namespace pstore {

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a flag");
    }
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      occurrences_.emplace_back(body.substr(0, eq), body.substr(eq + 1));
      continue;
    }
    // "--name value" when the next token is not itself a flag;
    // otherwise boolean true.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[i + 1];
      occurrences_.emplace_back(body, argv[i + 1]);
      ++i;
    } else {
      flags_[body] = "true";
      occurrences_.emplace_back(body, "true");
    }
  }
  return Status::OK();
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

std::vector<std::string> FlagParser::GetStrings(
    const std::string& name) const {
  std::vector<std::string> values;
  for (const auto& occurrence : occurrences_) {
    if (occurrence.first == name) values.push_back(occurrence.second);
  }
  return values;
}

StatusOr<int64_t> FlagParser::GetInt(const std::string& name,
                                     int64_t default_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name + " is not an integer: " +
                                   it->second);
  }
  return static_cast<int64_t>(value);
}

StatusOr<double> FlagParser::GetDouble(const std::string& name,
                                       double default_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag --" + name + " is not a number: " +
                                   it->second);
  }
  return value;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

}  // namespace pstore
