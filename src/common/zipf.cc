#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace pstore {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  PSTORE_CHECK(n_ >= 1);
  PSTORE_CHECK(theta_ >= 0.0);
  cdf_.resize(n_);
  double sum = 0.0;
  for (uint64_t r = 0; r < n_; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), theta_);
    cdf_[r] = sum;
  }
  for (double& v : cdf_) v /= sum;
}

uint64_t ZipfGenerator::NextRank(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

uint64_t ZipfGenerator::NextKey(Rng& rng) const {
  // Fibonacci-hash scatter: bijective over 2^64, then reduced mod n.
  // Collisions from the mod reduction only merge popularity mass, never
  // lose keys.
  const uint64_t rank = NextRank(rng);
  return (rank * 0x9e3779b97f4a7c15ULL) % n_;
}

}  // namespace pstore
