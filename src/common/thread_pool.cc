#include "common/thread_pool.h"

#include <algorithm>
#include <limits>

#include "common/status.h"

namespace pstore {

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::HardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0u ? 1 : static_cast<int>(hw);
}

void ThreadPool::DrainBatch(Batch* batch) {
  for (;;) {
    const size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->count) break;
    try {
      (*batch->body)(i);
    } catch (...) {
      // Keep the lowest-index exception so which error surfaces does
      // not depend on scheduling.
      std::lock_guard<std::mutex> lock(batch->error_mu);
      if (batch->error == nullptr || i < batch->error_index) {
        batch->error = std::current_exception();
        batch->error_index = i;
      }
    }
    batch->completed.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      batch = batch_;  // may already be gone if the batch finished fast
      if (batch != nullptr) ++batch->attached;
    }
    if (batch == nullptr) continue;
    DrainBatch(batch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --batch->attached;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty()) {
    // Purely serial, but with the same failure semantics as the pooled
    // path: every index runs, then the lowest-index exception surfaces.
    std::exception_ptr error;
    for (size_t i = 0; i < count; ++i) {
      try {
        body(i);
      } catch (...) {
        if (error == nullptr) error = std::current_exception();
      }
    }
    if (error != nullptr) std::rethrow_exception(error);
    return;
  }
  Batch batch;
  batch.body = &body;
  batch.count = count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &batch;
    ++generation_;
  }
  work_cv_.notify_all();
  DrainBatch(&batch);
  {
    // The batch lives on this stack frame: wait until every index ran
    // *and* no worker still holds a pointer to it.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return batch.completed.load(std::memory_order_acquire) == count &&
             batch.attached == 0;
    });
    batch_ = nullptr;
  }
  if (batch.error != nullptr) std::rethrow_exception(batch.error);
}

Status ThreadPool::ParallelForStatus(
    size_t count, const std::function<Status(size_t)>& body) {
  std::mutex mu;
  Status first = Status::OK();
  size_t first_index = std::numeric_limits<size_t>::max();
  ParallelFor(count, [&](size_t i) {
    Status status = body(i);
    if (status.ok()) return;
    std::lock_guard<std::mutex> lock(mu);
    if (i < first_index) {
      first = std::move(status);
      first_index = i;
    }
  });
  return first;
}

int ResolveThreadCount(int64_t requested) {
  if (requested < 1) return ThreadPool::HardwareConcurrency();
  const int64_t cap = 256;  // sanity bound for a flag-supplied value
  return static_cast<int>(std::min(requested, cap));
}

}  // namespace pstore
