#ifndef PSTORE_COMMON_STRONG_ID_H_
#define PSTORE_COMMON_STRONG_ID_H_

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace pstore {

// Zero-cost strongly-typed integer wrapper. Each alias below gets its own
// incompatible type, so swapping a node count for a node index (or a slot
// index for a chunk count) is a compile error instead of a silently wrong
// plan. The representation is a single integer; every operation inlines
// to the raw arithmetic.
//
// Conversions are explicit in both directions: construct with
// `NodeCount(4)`, extract with `.value()`. Typed arithmetic keeps units
// honest: adding a raw offset to an id/count/step yields the same strong
// type, while subtracting two values of the same strong type yields a raw
// distance (there is no "NodeId + NodeId" — that has no meaning).
template <typename Tag, typename Rep>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  constexpr Rep value() const { return value_; }

  friend constexpr bool operator==(StrongId, StrongId) = default;
  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  // Advance / rewind by a raw offset, staying in the same unit.
  friend constexpr StrongId operator+(StrongId a, Rep d) {
    return StrongId(a.value_ + d);
  }
  friend constexpr StrongId operator-(StrongId a, Rep d) {
    return StrongId(a.value_ - d);
  }
  // Distance between two values of the same unit, as a raw integer.
  friend constexpr Rep operator-(StrongId a, StrongId b) {
    return a.value_ - b.value_;
  }

  constexpr StrongId& operator++() {
    ++value_;
    return *this;
  }
  constexpr StrongId& operator--() {
    --value_;
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  Rep value_{};
};

// Cluster-global machine index in [0, max_nodes). For a scale-out from B
// to A machines, ids [0, B) are the original nodes and [B, A) the new
// ones; for a scale-in from B to A, ids [0, A) survive.
using NodeId = StrongId<struct NodeIdTag, int>;

// Index of a data partition in [0, max_nodes * partitions_per_node).
// Partition p lives on node p / partitions_per_node.
using PartitionId = StrongId<struct PartitionIdTag, int>;

// A number of machines (cluster size, allocation level) — never an index.
using NodeCount = StrongId<struct NodeCountTag, int>;

// A planning-slot index on the prediction horizon, slot 0 being "now".
// Distinct from SimTime (microseconds) and from raw slot durations.
using TimeStep = StrongId<struct TimeStepTag, int>;

// A number of migration chunks (retry/abort accounting).
using ChunkCount = StrongId<struct ChunkCountTag, std::int64_t>;

// Index of a tenant in a fleet, in [0, tenant count). Fleet-layer APIs
// key per-tenant state (workload, forecaster, placement) by this id.
using TenantId = StrongId<struct TenantIdTag, int>;

// Index of a machine in the shared fleet pool, in [0, pool size).
// Distinct from NodeId: a fleet machine hosts partitions of *many*
// tenants, while NodeId indexes one tenant's private cluster.
using MachineId = StrongId<struct MachineIdTag, int>;

}  // namespace pstore

template <typename Tag, typename Rep>
struct std::hash<pstore::StrongId<Tag, Rep>> {
  std::size_t operator()(pstore::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};

#endif  // PSTORE_COMMON_STRONG_ID_H_
