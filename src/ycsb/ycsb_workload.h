#ifndef PSTORE_YCSB_YCSB_WORKLOAD_H_
#define PSTORE_YCSB_YCSB_WORKLOAD_H_

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "common/status.h"
#include "common/zipf.h"
#include "engine/cluster.h"
#include "engine/table.h"
#include "engine/transaction.h"
#include "engine/txn_executor.h"

namespace pstore {
namespace ycsb {

// A YCSB-style key/value workload on the engine: single-row reads,
// updates, inserts and read-modify-writes over a keyspace with
// configurable Zipfian popularity skew. E-Store and Clay evaluate on
// exactly this kind of workload; here it drives the skew/load-balancing
// extension (the paper's future-work direction of combining predictive
// provisioning with skew management).
enum Procedure : ProcedureId {
  kRead = 32,  // offset so they can coexist with the B2W procedures
  kUpdate,
  kInsert,
  kReadModifyWrite,
  // Two-key transfer (subtract at key 0, add at key 1): becomes a
  // distributed transaction when the keys land on different partitions.
  kMultiTransfer,
  kEnd,
};

inline constexpr TableId kUserTable = 7;
inline constexpr uint64_t kYcsbKeyBase = 0x7ULL << 60;

inline uint64_t UserKey(uint64_t index) { return kYcsbKeyBase | index; }

// Standard mixes: A = 50/50 read/update, B = 95/5 read/update,
// C = read-only, F = read-modify-write.
enum class Mix { kA, kB, kC, kF };

struct YcsbWorkloadOptions {
  uint64_t record_count = 100000;
  uint32_t record_bytes = 1024;
  Mix mix = Mix::kB;
  // Zipfian skew of key popularity; 0 = uniform, 0.99 = YCSB default.
  double zipf_theta = 0.0;
  // Fraction of transactions that are two-key transfers (potentially
  // distributed). The paper assumes this is near zero (§4.2); raising
  // it probes how that assumption degrades scalability.
  double multi_key_fraction = 0.0;
  uint64_t seed = 31;
};

// Generates YCSB transactions and pre-loads the user table.
class Workload {
 public:
  explicit Workload(const YcsbWorkloadOptions& options);
  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  // Registers the four procedures with the executor.
  static Status RegisterProcedures(TxnExecutor* executor);

  // Pre-populates the user table, bypassing the execution queues.
  Status LoadInitialData(Cluster* cluster) const;

  // Produces the next transaction according to the mix and skew.
  TxnRequest NextTransaction(Rng& rng);

  const YcsbWorkloadOptions& options() const { return options_; }

 private:
  uint64_t NextKeyIndex(Rng& rng);

  YcsbWorkloadOptions options_;
  std::unique_ptr<ZipfGenerator> zipf_;  // null when theta == 0
  uint64_t insert_cursor_ = 0;
};

}  // namespace ycsb
}  // namespace pstore

#endif  // PSTORE_YCSB_YCSB_WORKLOAD_H_
