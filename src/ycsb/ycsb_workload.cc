#include "ycsb/ycsb_workload.h"

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/zipf.h"
#include "engine/cluster.h"
#include "engine/partition.h"
#include "engine/table.h"
#include "engine/transaction.h"
#include "engine/txn_executor.h"

namespace pstore {
namespace ycsb {
namespace {

TxnResult Commit(int64_t value = 0) {
  return TxnResult{TxnStatus::kCommitted, value};
}
TxnResult Abort() { return TxnResult{TxnStatus::kAborted, 0}; }

TxnResult Read(const TxnContext& ctx) {
  const Row* row = ctx.partition->Get(ctx.bucket, kUserTable, ctx.key);
  if (row == nullptr) return Abort();
  return Commit(row->f0);
}

TxnResult Update(const TxnContext& ctx) {
  Row* row = ctx.partition->GetMutable(ctx.bucket, kUserTable, ctx.key);
  if (row == nullptr) return Abort();
  row->f0 += 1;  // version counter
  row->f1 = ctx.arg;
  return Commit(row->f0);
}

TxnResult Insert(const TxnContext& ctx) {
  Row row;
  row.payload_bytes = ctx.arg == 0 ? 1024 : ctx.arg;
  row.f0 = 1;
  ctx.partition->Put(ctx.bucket, kUserTable, ctx.key, row);
  return Commit();
}

TxnResult ReadModifyWrite(const TxnContext& ctx) {
  Row* row = ctx.partition->GetMutable(ctx.bucket, kUserTable, ctx.key);
  if (row == nullptr) return Abort();
  const int64_t read_value = row->f1;
  row->f0 += 1;
  row->f1 = read_value ^ static_cast<int64_t>(ctx.arg);
  return Commit(read_value);
}

// Atomic two-key transfer: moves `arg` units of f2 from the first key to
// the second. Aborts (changing nothing) if either row is missing or the
// source has insufficient balance.
TxnResult MultiTransfer(const TxnContext* contexts, int num_keys) {
  if (num_keys < 2) return Abort();
  Row* from = contexts[0].partition->GetMutable(contexts[0].bucket,
                                                kUserTable, contexts[0].key);
  Row* to = contexts[1].partition->GetMutable(contexts[1].bucket, kUserTable,
                                              contexts[1].key);
  if (from == nullptr || to == nullptr) return Abort();
  const int64_t amount = contexts[0].arg % 100;
  if (from->f2 < amount) return Abort();
  from->f2 -= amount;
  to->f2 += amount;
  return Commit(amount);
}

}  // namespace

Workload::Workload(const YcsbWorkloadOptions& options) : options_(options) {
  PSTORE_CHECK(options_.record_count >= 1);
  if (options_.zipf_theta > 0.0) {
    zipf_ = std::make_unique<ZipfGenerator>(options_.record_count,
                                            options_.zipf_theta);
  }
}

Status Workload::RegisterProcedures(TxnExecutor* executor) {
  if (executor == nullptr) return Status::InvalidArgument("null executor");
  struct Entry {
    ProcedureId id;
    ProcedureHandler handler;
    double scale;
  };
  const Entry entries[] = {
      {kRead, Read, 0.7},
      {kUpdate, Update, 1.0},
      {kInsert, Insert, 1.1},
      {kReadModifyWrite, ReadModifyWrite, 1.2},
  };
  for (const Entry& entry : entries) {
    const Status status =
        executor->RegisterProcedure(entry.id, entry.handler, entry.scale);
    if (!status.ok()) return status;
  }
  return executor->RegisterMultiProcedure(kMultiTransfer, MultiTransfer, 1.0);
}

Status Workload::LoadInitialData(Cluster* cluster) const {
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  Row row;
  row.payload_bytes = options_.record_bytes;
  row.f0 = 1;
  row.f2 = 1000;  // balance for two-key transfers
  for (uint64_t i = 0; i < options_.record_count; ++i) {
    const uint64_t key = UserKey(i);
    const BucketId bucket = cluster->BucketForKey(key);
    cluster->partition(cluster->PartitionOfBucket(bucket))
        .Put(bucket, kUserTable, key, row);
  }
  return Status::OK();
}

uint64_t Workload::NextKeyIndex(Rng& rng) {
  if (zipf_ != nullptr) return zipf_->NextKey(rng);
  return rng.NextUint64(options_.record_count);
}

TxnRequest Workload::NextTransaction(Rng& rng) {
  TxnRequest request;
  request.arg = static_cast<uint32_t>(rng.NextUint64(1 << 16));
  if (options_.multi_key_fraction > 0.0 &&
      rng.NextBool(options_.multi_key_fraction)) {
    request.procedure = kMultiTransfer;
    request.key = UserKey(NextKeyIndex(rng));
    request.num_extra_keys = 1;
    uint64_t other = NextKeyIndex(rng);
    if (UserKey(other) == request.key) {
      other = (other + 1) % options_.record_count;
    }
    request.extra_keys[0] = UserKey(other);
    return request;
  }
  const double roll = rng.NextDouble();
  switch (options_.mix) {
    case Mix::kA:
      request.procedure = roll < 0.5 ? kRead : kUpdate;
      break;
    case Mix::kB:
      request.procedure = roll < 0.95 ? kRead : kUpdate;
      break;
    case Mix::kC:
      request.procedure = kRead;
      break;
    case Mix::kF:
      request.procedure = roll < 0.5 ? kRead : kReadModifyWrite;
      break;
  }
  // A small insert share keeps the table churning (keys recycle).
  if (roll > 0.98 && options_.mix != Mix::kC) {
    request.procedure = kInsert;
    request.key = UserKey(insert_cursor_);
    insert_cursor_ = (insert_cursor_ + 1) % options_.record_count;
    request.arg = options_.record_bytes;
    return request;
  }
  request.key = UserKey(NextKeyIndex(rng));
  return request;
}

}  // namespace ycsb
}  // namespace pstore
