#include "b2w/workload.h"

#include "b2w/procedures.h"
#include "b2w/schema.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "engine/cluster.h"
#include "engine/partition.h"
#include "engine/table.h"
#include "engine/transaction.h"

namespace pstore {
namespace b2w {
namespace {

double TotalWeight(const MixWeights& mix) {
  return mix.add_line_to_cart + mix.get_cart + mix.delete_line_from_cart +
         mix.delete_cart + mix.reserve_cart + mix.create_checkout +
         mix.add_line_to_checkout + mix.create_checkout_payment +
         mix.get_checkout + mix.delete_line_from_checkout +
         mix.delete_checkout;
}

}  // namespace

Workload::Workload(const B2wWorkloadOptions& options) : options_(options) {
  PSTORE_CHECK(options_.cart_pool >= 1);
  PSTORE_CHECK(options_.checkout_pool >= 1);
  total_weight_ = TotalWeight(mix_);
}

Status Workload::LoadInitialData(Cluster* cluster) {
  if (cluster == nullptr) {
    return Status::InvalidArgument("null cluster");
  }
  auto put = [cluster](TableId table, uint64_t key, const Row& row) {
    const BucketId bucket = cluster->BucketForKey(key);
    cluster->partition(cluster->PartitionOfBucket(bucket))
        .Put(bucket, table, key, row);
  };

  for (uint64_t i = 0; i < options_.cart_pool; ++i) {
    Row cart;
    cart.f0 = options_.initial_cart_lines;
    cart.f1 = static_cast<int64_t>(CartStatus::kActive);
    cart.f2 = 1999 * static_cast<int64_t>(options_.initial_cart_lines);
    cart.payload_bytes =
        kCartBaseBytes + kCartLineBytes * options_.initial_cart_lines;
    put(kCartTable, CartKey(i), cart);
  }
  for (uint64_t i = 0; i < options_.checkout_pool; ++i) {
    Row checkout;
    checkout.f0 = options_.initial_checkout_lines;
    checkout.f1 = 0;
    checkout.f2 = 1999 * static_cast<int64_t>(options_.initial_checkout_lines);
    checkout.f3 = static_cast<int64_t>(CheckoutStatus::kOpen);
    checkout.payload_bytes =
        kCheckoutBaseBytes +
        kCheckoutLineBytes * options_.initial_checkout_lines;
    put(kCheckoutTable, CheckoutKey(i), checkout);
  }
  if (options_.load_stock) {
    for (uint64_t i = 0; i < options_.stock_pool; ++i) {
      Row stock;
      stock.f0 = 100;  // available
      stock.f1 = 0;    // reserved
      stock.f2 = 0;    // purchased
      stock.payload_bytes = kStockRowBytes;
      put(kStockTable, StockKey(i), stock);
    }
  }
  return Status::OK();
}

uint64_t Workload::RandomCartIndex(Rng& rng) const {
  return rng.NextUint64(options_.cart_pool);
}

uint64_t Workload::RandomCheckoutIndex(Rng& rng) const {
  return rng.NextUint64(options_.checkout_pool);
}

TxnRequest Workload::NextTransaction(Rng& rng) {
  const double roll = rng.NextDouble() * total_weight_;
  const uint32_t price = 500 + static_cast<uint32_t>(rng.NextUint64(9500));
  double acc = 0.0;

  TxnRequest request;
  auto hit = [&](double weight) {
    acc += weight;
    return roll < acc;
  };

  if (hit(mix_.add_line_to_cart)) {
    request.procedure = kAddLineToCart;
    // ~25% of AddLineToCart calls start a fresh cart, recycling the
    // oldest pool slot so the database size stays steady.
    if (rng.NextBool(0.25)) {
      request.key = CartKey(next_cart_slot_);
      next_cart_slot_ = (next_cart_slot_ + 1) % options_.cart_pool;
      request.arg = kNewCartFlag | price;
    } else {
      request.key = CartKey(RandomCartIndex(rng));
      request.arg = price;
    }
    return request;
  }
  if (hit(mix_.get_cart)) {
    request.procedure = kGetCart;
    request.key = CartKey(RandomCartIndex(rng));
    return request;
  }
  if (hit(mix_.delete_line_from_cart)) {
    request.procedure = kDeleteLineFromCart;
    request.key = CartKey(RandomCartIndex(rng));
    return request;
  }
  if (hit(mix_.delete_cart)) {
    request.procedure = kDeleteCart;
    request.key = CartKey(RandomCartIndex(rng));
    return request;
  }
  if (hit(mix_.reserve_cart)) {
    request.procedure = kReserveCart;
    request.key = CartKey(RandomCartIndex(rng));
    return request;
  }
  if (hit(mix_.create_checkout)) {
    request.procedure = kCreateCheckout;
    request.key = CheckoutKey(next_checkout_slot_);
    next_checkout_slot_ = (next_checkout_slot_ + 1) % options_.checkout_pool;
    return request;
  }
  if (hit(mix_.add_line_to_checkout)) {
    request.procedure = kAddLineToCheckout;
    request.key = CheckoutKey(RandomCheckoutIndex(rng));
    request.arg = price;
    return request;
  }
  if (hit(mix_.create_checkout_payment)) {
    request.procedure = kCreateCheckoutPayment;
    request.key = CheckoutKey(RandomCheckoutIndex(rng));
    return request;
  }
  if (hit(mix_.get_checkout)) {
    request.procedure = kGetCheckout;
    request.key = CheckoutKey(RandomCheckoutIndex(rng));
    return request;
  }
  if (hit(mix_.delete_line_from_checkout)) {
    request.procedure = kDeleteLineFromCheckout;
    request.key = CheckoutKey(RandomCheckoutIndex(rng));
    return request;
  }
  request.procedure = kDeleteCheckout;
  request.key = CheckoutKey(RandomCheckoutIndex(rng));
  return request;
}

}  // namespace b2w
}  // namespace pstore
