#ifndef PSTORE_B2W_PROCEDURES_H_
#define PSTORE_B2W_PROCEDURES_H_

#include "common/status.h"
#include "engine/transaction.h"
#include "engine/txn_executor.h"

namespace pstore {
namespace b2w {

// The 19 stored procedures of the B2W benchmark (paper Table 4). All are
// single-partition transactions keyed on a cart id, checkout id, stock
// sku, or stock-transaction id.
enum Procedure : ProcedureId {
  kAddLineToCart = 0,
  kDeleteLineFromCart,
  kGetCart,
  kDeleteCart,
  kGetStock,
  kGetStockQuantity,
  kReserveStock,
  kPurchaseStock,
  kCancelStockReservation,
  kCreateStockTransaction,
  kReserveCart,
  kGetStockTransaction,
  kUpdateStockTransaction,
  kCreateCheckout,
  kCreateCheckoutPayment,
  kAddLineToCheckout,
  kDeleteLineFromCheckout,
  kGetCheckout,
  kDeleteCheckout,
  kNumProcedures,
};

// Human-readable procedure name for reports.
const char* ProcedureName(ProcedureId id);

// Argument flag for AddLineToCart: start a fresh cart rather than append
// to an existing one (the driver uses this to recycle the cart pool).
inline constexpr uint32_t kNewCartFlag = 0x80000000u;

// Argument values for UpdateStockTransaction.
inline constexpr uint32_t kMarkPurchased = 1;
inline constexpr uint32_t kMarkCancelled = 2;

// Registers all 19 procedures with the executor, with per-procedure
// service-time scales (reads are cheaper than writes).
Status RegisterProcedures(TxnExecutor* executor);

}  // namespace b2w
}  // namespace pstore

#endif  // PSTORE_B2W_PROCEDURES_H_
