#ifndef PSTORE_B2W_WORKLOAD_H_
#define PSTORE_B2W_WORKLOAD_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "engine/cluster.h"
#include "engine/transaction.h"

namespace pstore {
namespace b2w {

// Configuration of the trace-driven B2W workload.
struct B2wWorkloadOptions {
  // Live entity pools. Ids are recycled (a "new" cart overwrites the
  // oldest slot), so the database size stays steady — matching the
  // paper's assumption that only active data is kept (§4.2) and its
  // 1106 MB cart+checkout database (§8.1). The defaults give ~1.1 GB of
  // nominal data.
  uint64_t cart_pool = 300000;
  uint64_t checkout_pool = 120000;
  // Stock items; loaded only when load_stock is true (the elasticity
  // experiments replay cart+checkout traffic only, §7).
  uint64_t stock_pool = 50000;
  bool load_stock = false;
  // Initial lines per cart/checkout when pre-loading.
  int initial_cart_lines = 2;
  int initial_checkout_lines = 2;
  uint64_t seed = 17;
};

// Per-procedure weights of the transaction mix (cart and checkout
// operations only — the stock database lives on a separate cluster in
// production, §7). Values are relative weights.
struct MixWeights {
  double add_line_to_cart = 30;
  double get_cart = 24;
  double delete_line_from_cart = 5;
  double delete_cart = 3;
  double reserve_cart = 5;
  double create_checkout = 6;
  double add_line_to_checkout = 9;
  double create_checkout_payment = 6;
  double get_checkout = 8;
  double delete_line_from_checkout = 2;
  double delete_checkout = 2;
};

// Generates the B2W transaction stream and pre-loads the database. One
// instance is shared by the workload driver (as its transaction factory)
// across an experiment.
class Workload {
 public:
  explicit Workload(const B2wWorkloadOptions& options);
  Workload(const Workload& other) = delete;
  Workload& operator=(const Workload&) = delete;

  // Pre-populates the cluster with the cart/checkout (and optionally
  // stock) pools, bypassing the execution queues. Call once, before the
  // driver starts.
  Status LoadInitialData(Cluster* cluster);

  // Produces the next transaction according to the mix. `rng` is the
  // driver's generator, so replays are deterministic.
  TxnRequest NextTransaction(Rng& rng);

  const B2wWorkloadOptions& options() const { return options_; }
  const MixWeights& mix() const { return mix_; }

 private:
  // Picks a live id (uniform over the pool — B2W cart keys are randomly
  // generated, giving the near-uniform partition load measured in §8.1).
  uint64_t RandomCartIndex(Rng& rng) const;
  uint64_t RandomCheckoutIndex(Rng& rng) const;

  B2wWorkloadOptions options_;
  MixWeights mix_;
  double total_weight_ = 0.0;
  // Rolling slot for cart recycling: "new" carts overwrite this index.
  uint64_t next_cart_slot_ = 0;
  uint64_t next_checkout_slot_ = 0;
};

}  // namespace b2w
}  // namespace pstore

#endif  // PSTORE_B2W_WORKLOAD_H_
