#ifndef PSTORE_B2W_SESSION_WORKLOAD_H_
#define PSTORE_B2W_SESSION_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "engine/cluster.h"
#include "engine/transaction.h"

namespace pstore {
namespace b2w {

// Options of the session-driven B2W workload.
struct SessionWorkloadOptions {
  // Entity pools (ids are recycled, keeping the database size steady).
  uint64_t cart_pool = 300000;
  uint64_t checkout_pool = 120000;
  // Upper bound on concurrently active shopping sessions.
  size_t max_sessions = 50000;
  // Probability that the next transaction starts a new session rather
  // than advancing an existing one.
  double new_session_probability = 0.10;
  // Per-step probability that a shopping session is abandoned (cart
  // deleted, session ends) — the e-commerce reality the paper's intro
  // cites.
  double abandon_probability = 0.03;
  // Probability that a shopping step decides to head to checkout.
  double checkout_probability = 0.12;
  // Pre-load shape.
  int initial_cart_lines = 2;
  int initial_checkout_lines = 2;
};

// A customer-session state machine over the B2W procedures: sessions
// browse (add/remove/read cart lines), then either abandon or run the
// checkout funnel in order (ReserveCart -> CreateCheckout -> add lines ->
// CreateCheckoutPayment -> GetCheckout -> DeleteCart). Compared to the
// i.i.d. mix in Workload, operations on one entity are properly
// sequenced, so aborts only come from genuine races (e.g., operating on
// a cart slot recycled by another session) — matching how the original
// benchmark replays real session logs (paper Appendix C).
class SessionWorkload {
 public:
  explicit SessionWorkload(const SessionWorkloadOptions& options);
  SessionWorkload(const SessionWorkload&) = delete;
  SessionWorkload& operator=(const SessionWorkload&) = delete;

  // Pre-populates the cart/checkout pools (same layout as Workload).
  Status LoadInitialData(Cluster* cluster) const;

  // Produces the next transaction: starts, advances, or completes a
  // session.
  TxnRequest NextTransaction(Rng& rng);

  size_t active_sessions() const { return sessions_.size(); }
  int64_t sessions_started() const { return sessions_started_; }
  int64_t sessions_checked_out() const { return sessions_checked_out_; }
  int64_t sessions_abandoned() const { return sessions_abandoned_; }

 private:
  enum class Phase : uint8_t {
    kShopping,
    kReserve,          // emit ReserveCart
    kCreateCheckout,   // emit CreateCheckout
    kCheckoutLines,    // emit AddLineToCheckout x cart lines
    kPayment,          // emit CreateCheckoutPayment
    kReview,           // emit GetCheckout
    kCleanup,          // emit DeleteCart, then the session ends
  };
  struct Session {
    uint64_t cart_index = 0;
    uint64_t checkout_index = 0;
    int cart_lines = 0;
    int checkout_lines_added = 0;
    Phase phase = Phase::kShopping;
  };

  TxnRequest StartSession(Rng& rng);
  TxnRequest AdvanceSession(size_t index, Rng& rng);
  void EndSession(size_t index);

  SessionWorkloadOptions options_;
  std::vector<Session> sessions_;
  uint64_t next_cart_slot_ = 0;
  uint64_t next_checkout_slot_ = 0;
  int64_t sessions_started_ = 0;
  int64_t sessions_checked_out_ = 0;
  int64_t sessions_abandoned_ = 0;
};

}  // namespace b2w
}  // namespace pstore

#endif  // PSTORE_B2W_SESSION_WORKLOAD_H_
