#include "b2w/procedures.h"

#include "b2w/schema.h"
#include "common/status.h"
#include "engine/table.h"
#include "engine/transaction.h"
#include "engine/txn_executor.h"

namespace pstore {
namespace b2w {
namespace {

TxnResult Commit(int64_t value = 0) {
  return TxnResult{TxnStatus::kCommitted, value};
}
TxnResult Abort() { return TxnResult{TxnStatus::kAborted, 0}; }

// ---- Cart procedures ----------------------------------------------------

// Add a new item to the shopping cart; create the cart if it doesn't
// exist yet (or if the caller asked for a fresh cart).
TxnResult AddLineToCart(const TxnContext& ctx) {
  Row* row = ctx.partition->GetMutable(ctx.bucket, kCartTable, ctx.key);
  const bool fresh = row == nullptr || (ctx.arg & kNewCartFlag) != 0;
  const int64_t price_cents = ctx.arg & 0xffff;
  if (fresh) {
    Row cart;
    cart.payload_bytes = kCartBaseBytes + kCartLineBytes;
    cart.f0 = 1;  // one line
    cart.f1 = static_cast<int64_t>(CartStatus::kActive);
    cart.f2 = price_cents;
    ctx.partition->Put(ctx.bucket, kCartTable, ctx.key, cart);
    return Commit(1);
  }
  Row cart = *row;
  cart.f0 += 1;
  cart.f2 += price_cents;
  cart.payload_bytes += kCartLineBytes;
  ctx.partition->Put(ctx.bucket, kCartTable, ctx.key, cart);
  return Commit(cart.f0);
}

// Remove an item from the cart.
TxnResult DeleteLineFromCart(const TxnContext& ctx) {
  Row* row = ctx.partition->GetMutable(ctx.bucket, kCartTable, ctx.key);
  if (row == nullptr || row->f0 <= 0) return Abort();
  Row cart = *row;
  cart.f0 -= 1;
  cart.payload_bytes -= kCartLineBytes;
  ctx.partition->Put(ctx.bucket, kCartTable, ctx.key, cart);
  return Commit(cart.f0);
}

// Retrieve the items currently in the cart.
TxnResult GetCart(const TxnContext& ctx) {
  const Row* row = ctx.partition->Get(ctx.bucket, kCartTable, ctx.key);
  if (row == nullptr) return Abort();
  return Commit(row->f0);
}

// Delete the shopping cart.
TxnResult DeleteCart(const TxnContext& ctx) {
  return ctx.partition->Erase(ctx.bucket, kCartTable, ctx.key) ? Commit()
                                                               : Abort();
}

// Mark the items in the shopping cart as reserved.
TxnResult ReserveCart(const TxnContext& ctx) {
  Row* row = ctx.partition->GetMutable(ctx.bucket, kCartTable, ctx.key);
  if (row == nullptr) return Abort();
  row->f1 = static_cast<int64_t>(CartStatus::kReserved);
  return Commit(row->f0);
}

// ---- Stock procedures -----------------------------------------------------

// Retrieve the stock inventory information.
TxnResult GetStock(const TxnContext& ctx) {
  const Row* row = ctx.partition->Get(ctx.bucket, kStockTable, ctx.key);
  if (row == nullptr) return Abort();
  return Commit(row->f0 + row->f1);
}

// Determine availability of an item.
TxnResult GetStockQuantity(const TxnContext& ctx) {
  const Row* row = ctx.partition->Get(ctx.bucket, kStockTable, ctx.key);
  if (row == nullptr) return Abort();
  return Commit(row->f0);
}

// Update the stock inventory to mark an item as reserved.
TxnResult ReserveStock(const TxnContext& ctx) {
  Row* row = ctx.partition->GetMutable(ctx.bucket, kStockTable, ctx.key);
  const int64_t qty = ctx.arg == 0 ? 1 : ctx.arg;
  if (row == nullptr || row->f0 < qty) return Abort();
  row->f0 -= qty;
  row->f1 += qty;
  return Commit(row->f0);
}

// Update the stock inventory to mark an item as purchased.
TxnResult PurchaseStock(const TxnContext& ctx) {
  Row* row = ctx.partition->GetMutable(ctx.bucket, kStockTable, ctx.key);
  const int64_t qty = ctx.arg == 0 ? 1 : ctx.arg;
  if (row == nullptr || row->f1 < qty) return Abort();
  row->f1 -= qty;
  row->f2 += qty;
  return Commit(row->f2);
}

// Cancel the stock reservation to make an item available again.
TxnResult CancelStockReservation(const TxnContext& ctx) {
  Row* row = ctx.partition->GetMutable(ctx.bucket, kStockTable, ctx.key);
  const int64_t qty = ctx.arg == 0 ? 1 : ctx.arg;
  if (row == nullptr || row->f1 < qty) return Abort();
  row->f1 -= qty;
  row->f0 += qty;
  return Commit(row->f0);
}

// ---- Stock-transaction procedures ---------------------------------------

// Create a stock transaction indicating that an item has been reserved.
TxnResult CreateStockTransaction(const TxnContext& ctx) {
  Row txn;
  txn.payload_bytes = kStockTxnRowBytes;
  txn.f0 = static_cast<int64_t>(StockTxnStatus::kReserved);
  ctx.partition->Put(ctx.bucket, kStockTxnTable, ctx.key, txn);
  return Commit();
}

// Retrieve the stock transaction.
TxnResult GetStockTransaction(const TxnContext& ctx) {
  const Row* row = ctx.partition->Get(ctx.bucket, kStockTxnTable, ctx.key);
  if (row == nullptr) return Abort();
  return Commit(row->f0);
}

// Change the status of a stock transaction to purchased or cancelled.
TxnResult UpdateStockTransaction(const TxnContext& ctx) {
  Row* row = ctx.partition->GetMutable(ctx.bucket, kStockTxnTable, ctx.key);
  if (row == nullptr) return Abort();
  if (ctx.arg == kMarkPurchased) {
    row->f0 = static_cast<int64_t>(StockTxnStatus::kPurchased);
  } else if (ctx.arg == kMarkCancelled) {
    row->f0 = static_cast<int64_t>(StockTxnStatus::kCancelled);
  } else {
    return Abort();
  }
  return Commit(row->f0);
}

// ---- Checkout procedures ---------------------------------------------------

// Start the checkout process.
TxnResult CreateCheckout(const TxnContext& ctx) {
  Row checkout;
  checkout.payload_bytes = kCheckoutBaseBytes;
  checkout.f0 = 0;
  checkout.f1 = 0;
  checkout.f3 = static_cast<int64_t>(CheckoutStatus::kOpen);
  ctx.partition->Put(ctx.bucket, kCheckoutTable, ctx.key, checkout);
  return Commit();
}

// Add payment information to the checkout.
TxnResult CreateCheckoutPayment(const TxnContext& ctx) {
  Row* row = ctx.partition->GetMutable(ctx.bucket, kCheckoutTable, ctx.key);
  if (row == nullptr) return Abort();
  row->f1 = 1;
  row->f3 = static_cast<int64_t>(CheckoutStatus::kPaid);
  return Commit();
}

// Add a new item to the checkout object.
TxnResult AddLineToCheckout(const TxnContext& ctx) {
  Row* row = ctx.partition->GetMutable(ctx.bucket, kCheckoutTable, ctx.key);
  if (row == nullptr) return Abort();
  Row checkout = *row;
  checkout.f0 += 1;
  checkout.f2 += ctx.arg & 0xffff;
  checkout.payload_bytes += kCheckoutLineBytes;
  ctx.partition->Put(ctx.bucket, kCheckoutTable, ctx.key, checkout);
  return Commit(checkout.f0);
}

// Remove an item from the checkout object.
TxnResult DeleteLineFromCheckout(const TxnContext& ctx) {
  Row* row = ctx.partition->GetMutable(ctx.bucket, kCheckoutTable, ctx.key);
  if (row == nullptr || row->f0 <= 0) return Abort();
  Row checkout = *row;
  checkout.f0 -= 1;
  checkout.payload_bytes -= kCheckoutLineBytes;
  ctx.partition->Put(ctx.bucket, kCheckoutTable, ctx.key, checkout);
  return Commit(checkout.f0);
}

// Retrieve the checkout object.
TxnResult GetCheckout(const TxnContext& ctx) {
  const Row* row = ctx.partition->Get(ctx.bucket, kCheckoutTable, ctx.key);
  if (row == nullptr) return Abort();
  return Commit(row->f0);
}

// Delete the checkout object.
TxnResult DeleteCheckout(const TxnContext& ctx) {
  return ctx.partition->Erase(ctx.bucket, kCheckoutTable, ctx.key) ? Commit()
                                                                   : Abort();
}

}  // namespace

const char* ProcedureName(ProcedureId id) {
  switch (id) {
    case kAddLineToCart: return "AddLineToCart";
    case kDeleteLineFromCart: return "DeleteLineFromCart";
    case kGetCart: return "GetCart";
    case kDeleteCart: return "DeleteCart";
    case kGetStock: return "GetStock";
    case kGetStockQuantity: return "GetStockQuantity";
    case kReserveStock: return "ReserveStock";
    case kPurchaseStock: return "PurchaseStock";
    case kCancelStockReservation: return "CancelStockReservation";
    case kCreateStockTransaction: return "CreateStockTransaction";
    case kReserveCart: return "ReserveCart";
    case kGetStockTransaction: return "GetStockTransaction";
    case kUpdateStockTransaction: return "UpdateStockTransaction";
    case kCreateCheckout: return "CreateCheckout";
    case kCreateCheckoutPayment: return "CreateCheckoutPayment";
    case kAddLineToCheckout: return "AddLineToCheckout";
    case kDeleteLineFromCheckout: return "DeleteLineFromCheckout";
    case kGetCheckout: return "GetCheckout";
    case kDeleteCheckout: return "DeleteCheckout";
    default: return "Unknown";
  }
}

Status RegisterProcedures(TxnExecutor* executor) {
  struct Entry {
    ProcedureId id;
    ProcedureHandler handler;
    double scale;
  };
  // Reads are lighter than writes; creation of large objects is heavier.
  const Entry entries[] = {
      {kAddLineToCart, AddLineToCart, 1.1},
      {kDeleteLineFromCart, DeleteLineFromCart, 1.0},
      {kGetCart, GetCart, 0.8},
      {kDeleteCart, DeleteCart, 0.9},
      {kGetStock, GetStock, 0.8},
      {kGetStockQuantity, GetStockQuantity, 0.7},
      {kReserveStock, ReserveStock, 1.0},
      {kPurchaseStock, PurchaseStock, 1.0},
      {kCancelStockReservation, CancelStockReservation, 1.0},
      {kCreateStockTransaction, CreateStockTransaction, 1.1},
      {kReserveCart, ReserveCart, 1.0},
      {kGetStockTransaction, GetStockTransaction, 0.8},
      {kUpdateStockTransaction, UpdateStockTransaction, 1.0},
      {kCreateCheckout, CreateCheckout, 1.2},
      {kCreateCheckoutPayment, CreateCheckoutPayment, 1.0},
      {kAddLineToCheckout, AddLineToCheckout, 1.0},
      {kDeleteLineFromCheckout, DeleteLineFromCheckout, 1.0},
      {kGetCheckout, GetCheckout, 0.8},
      {kDeleteCheckout, DeleteCheckout, 0.9},
  };
  for (const Entry& entry : entries) {
    const Status status =
        executor->RegisterProcedure(entry.id, entry.handler, entry.scale);
    if (!status.ok()) return status;
  }
  return Status::OK();
}

}  // namespace b2w
}  // namespace pstore
