#include "b2w/session_workload.h"

#include "b2w/procedures.h"
#include "b2w/schema.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "engine/cluster.h"
#include "engine/partition.h"
#include "engine/table.h"
#include "engine/transaction.h"

namespace pstore {
namespace b2w {

SessionWorkload::SessionWorkload(const SessionWorkloadOptions& options)
    : options_(options) {
  PSTORE_CHECK(options_.cart_pool >= 1);
  PSTORE_CHECK(options_.checkout_pool >= 1);
  PSTORE_CHECK(options_.max_sessions >= 1);
  sessions_.reserve(options_.max_sessions);
}

Status SessionWorkload::LoadInitialData(Cluster* cluster) const {
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  auto put = [cluster](TableId table, uint64_t key, const Row& row) {
    const BucketId bucket = cluster->BucketForKey(key);
    cluster->partition(cluster->PartitionOfBucket(bucket))
        .Put(bucket, table, key, row);
  };
  for (uint64_t i = 0; i < options_.cart_pool; ++i) {
    Row cart;
    cart.f0 = options_.initial_cart_lines;
    cart.f1 = static_cast<int64_t>(CartStatus::kActive);
    cart.f2 = 1999 * options_.initial_cart_lines;
    cart.payload_bytes =
        kCartBaseBytes + kCartLineBytes * options_.initial_cart_lines;
    put(kCartTable, CartKey(i), cart);
  }
  for (uint64_t i = 0; i < options_.checkout_pool; ++i) {
    Row checkout;
    checkout.f0 = options_.initial_checkout_lines;
    checkout.f2 = 1999 * options_.initial_checkout_lines;
    checkout.f3 = static_cast<int64_t>(CheckoutStatus::kOpen);
    checkout.payload_bytes =
        kCheckoutBaseBytes +
        kCheckoutLineBytes * options_.initial_checkout_lines;
    put(kCheckoutTable, CheckoutKey(i), checkout);
  }
  return Status::OK();
}

TxnRequest SessionWorkload::StartSession(Rng& rng) {
  Session session;
  session.cart_index = next_cart_slot_;
  next_cart_slot_ = (next_cart_slot_ + 1) % options_.cart_pool;
  session.cart_lines = 1;
  sessions_.push_back(session);
  ++sessions_started_;

  TxnRequest request;
  request.procedure = kAddLineToCart;
  request.key = CartKey(session.cart_index);
  request.arg = kNewCartFlag |
                (500 + static_cast<uint32_t>(rng.NextUint64(9500)));
  return request;
}

void SessionWorkload::EndSession(size_t index) {
  sessions_[index] = sessions_.back();
  sessions_.pop_back();
}

TxnRequest SessionWorkload::AdvanceSession(size_t index, Rng& rng) {
  Session& session = sessions_[index];
  TxnRequest request;
  const uint32_t price = 500 + static_cast<uint32_t>(rng.NextUint64(9500));

  switch (session.phase) {
    case Phase::kShopping: {
      if (rng.NextBool(options_.abandon_probability)) {
        request.procedure = kDeleteCart;
        request.key = CartKey(session.cart_index);
        ++sessions_abandoned_;
        EndSession(index);
        return request;
      }
      if (rng.NextBool(options_.checkout_probability)) {
        session.phase = Phase::kReserve;
        return AdvanceSession(index, rng);
      }
      const double roll = rng.NextDouble();
      if (roll < 0.60) {
        request.procedure = kAddLineToCart;
        request.key = CartKey(session.cart_index);
        request.arg = price;
        ++session.cart_lines;
      } else if (roll < 0.88 || session.cart_lines <= 1) {
        request.procedure = kGetCart;
        request.key = CartKey(session.cart_index);
      } else {
        request.procedure = kDeleteLineFromCart;
        request.key = CartKey(session.cart_index);
        --session.cart_lines;
      }
      return request;
    }
    case Phase::kReserve:
      request.procedure = kReserveCart;
      request.key = CartKey(session.cart_index);
      session.checkout_index = next_checkout_slot_;
      next_checkout_slot_ =
          (next_checkout_slot_ + 1) % options_.checkout_pool;
      session.phase = Phase::kCreateCheckout;
      return request;
    case Phase::kCreateCheckout:
      request.procedure = kCreateCheckout;
      request.key = CheckoutKey(session.checkout_index);
      session.checkout_lines_added = 0;
      session.phase = Phase::kCheckoutLines;
      return request;
    case Phase::kCheckoutLines:
      request.procedure = kAddLineToCheckout;
      request.key = CheckoutKey(session.checkout_index);
      request.arg = price;
      ++session.checkout_lines_added;
      if (session.checkout_lines_added >= session.cart_lines) {
        session.phase = Phase::kPayment;
      }
      return request;
    case Phase::kPayment:
      request.procedure = kCreateCheckoutPayment;
      request.key = CheckoutKey(session.checkout_index);
      session.phase = Phase::kReview;
      return request;
    case Phase::kReview:
      request.procedure = kGetCheckout;
      request.key = CheckoutKey(session.checkout_index);
      session.phase = Phase::kCleanup;
      return request;
    case Phase::kCleanup:
      request.procedure = kDeleteCart;
      request.key = CartKey(session.cart_index);
      ++sessions_checked_out_;
      EndSession(index);
      return request;
  }
  PSTORE_CHECK(false);
}

TxnRequest SessionWorkload::NextTransaction(Rng& rng) {
  const bool start_new =
      sessions_.empty() || (sessions_.size() < options_.max_sessions &&
                            rng.NextBool(options_.new_session_probability));
  if (start_new) return StartSession(rng);
  const size_t index = rng.NextUint64(sessions_.size());
  return AdvanceSession(index, rng);
}

}  // namespace b2w
}  // namespace pstore
