#ifndef PSTORE_B2W_SCHEMA_H_
#define PSTORE_B2W_SCHEMA_H_

#include <cstdint>

#include "engine/table.h"

namespace pstore {
namespace b2w {

// Tables of the B2W benchmark (paper Fig. 14: a simplified database of
// shopping carts, checkouts, stock items and stock transactions). Each
// table is partitioned on its single key column.
inline constexpr TableId kCartTable = 0;
inline constexpr TableId kCheckoutTable = 1;
inline constexpr TableId kStockTable = 2;
inline constexpr TableId kStockTxnTable = 3;

// Key-space tags: the high nibble of a key identifies its entity type so
// the four id spaces never collide while sharing the 64-bit key space.
inline constexpr uint64_t kCartKeyBase = 0x1ULL << 60;
inline constexpr uint64_t kCheckoutKeyBase = 0x2ULL << 60;
inline constexpr uint64_t kStockKeyBase = 0x3ULL << 60;
inline constexpr uint64_t kStockTxnKeyBase = 0x4ULL << 60;

inline uint64_t CartKey(uint64_t index) { return kCartKeyBase | index; }
inline uint64_t CheckoutKey(uint64_t index) {
  return kCheckoutKeyBase | index;
}
inline uint64_t StockKey(uint64_t index) { return kStockKeyBase | index; }
inline uint64_t StockTxnKey(uint64_t index) {
  return kStockTxnKeyBase | index;
}

// Row field meanings.
//
// CART rows:      f0 = line count, f1 = status, f2 = total cents.
// CHECKOUT rows:  f0 = line count, f1 = payment attached (0/1),
//                 f2 = total cents, f3 = status.
// STOCK rows:     f0 = available qty, f1 = reserved qty,
//                 f2 = purchased qty.
// STOCK_TXN rows: f0 = status.

enum class CartStatus : int64_t { kActive = 0, kReserved = 1 };
enum class CheckoutStatus : int64_t { kOpen = 0, kPaid = 1 };
enum class StockTxnStatus : int64_t {
  kReserved = 0,
  kPurchased = 1,
  kCancelled = 2,
};

// Nominal row sizes used for migration accounting. B2W's cart and
// checkout objects are sizeable JSON documents; each added line grows
// them.
inline constexpr uint32_t kCartBaseBytes = 2048;
inline constexpr uint32_t kCartLineBytes = 512;
inline constexpr uint32_t kCheckoutBaseBytes = 1536;
inline constexpr uint32_t kCheckoutLineBytes = 256;
inline constexpr uint32_t kStockRowBytes = 256;
inline constexpr uint32_t kStockTxnRowBytes = 512;

}  // namespace b2w
}  // namespace pstore

#endif  // PSTORE_B2W_SCHEMA_H_
