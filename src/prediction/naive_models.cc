#include "prediction/naive_models.h"

#include "common/logging.h"
#include "common/status.h"
#include "common/time_series.h"

namespace pstore {

SeasonalNaivePredictor::SeasonalNaivePredictor(size_t period)
    : period_(period) {
  PSTORE_CHECK(period_ >= 1);
}

Status SeasonalNaivePredictor::Fit(const TimeSeries& training) {
  if (training.size() < period_) {
    return Status::InvalidArgument("SeasonalNaive: series shorter than period");
  }
  return Status::OK();
}

StatusOr<double> SeasonalNaivePredictor::PredictAhead(
    const TimeSeries& history, size_t tau) const {
  if (tau == 0) return Status::InvalidArgument("tau must be >= 1");
  if (tau > period_) {
    return Status::OutOfRange("SeasonalNaive: tau exceeds the period");
  }
  const size_t t = history.size() - 1;
  const size_t target = t + tau;
  if (target < period_ || history.size() < period_ - tau + 1) {
    return Status::InvalidArgument("SeasonalNaive: history too short");
  }
  return history[target - period_];
}

Status LastValuePredictor::Fit(const TimeSeries& training) {
  (void)training;
  return Status::OK();
}

StatusOr<double> LastValuePredictor::PredictAhead(const TimeSeries& history,
                                                  size_t tau) const {
  if (tau == 0) return Status::InvalidArgument("tau must be >= 1");
  if (history.empty()) {
    return Status::InvalidArgument("LastValue: empty history");
  }
  return history[history.size() - 1];
}

OraclePredictor::OraclePredictor(TimeSeries truth)
    : truth_(std::move(truth)) {}

Status OraclePredictor::Fit(const TimeSeries& training) {
  (void)training;
  return Status::OK();
}

StatusOr<double> OraclePredictor::PredictAhead(const TimeSeries& history,
                                               size_t tau) const {
  if (tau == 0) return Status::InvalidArgument("tau must be >= 1");
  const size_t target = history.size() - 1 + tau;
  if (history.empty() || target >= truth_.size()) {
    return Status::OutOfRange("Oracle: target beyond reference series");
  }
  return truth_[target];
}

}  // namespace pstore
