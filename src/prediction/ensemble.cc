#include "prediction/ensemble.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/predictor.h"
#include "prediction/residual_tracker.h"

namespace pstore {
namespace {

// Keeps inverse-error weights finite when a member scores ~zero error.
constexpr double kScoreEpsilon = 1e-6;

}  // namespace

EnsemblePredictor::EnsemblePredictor(const EnsembleOptions& options)
    : options_(options) {
  PSTORE_CHECK(options_.epoch_slots >= 1);
  PSTORE_CHECK(options_.score_window >= 1);
  PSTORE_CHECK(options_.weight_floor >= 0.0 && options_.weight_floor < 1.0);
}

void EnsemblePredictor::AddMember(std::unique_ptr<LoadPredictor> model) {
  PSTORE_CHECK(model != nullptr);
  PSTORE_CHECK(!fitted_);
  Member member{std::move(model), false,
                RollingResidualTracker(options_.score_window),
                0.0, false, 0.0, 0.0, false};
  members_.push_back(std::move(member));
}

Status EnsemblePredictor::Fit(const TimeSeries& training) {
  if (members_.empty()) {
    return Status::FailedPrecondition("ensemble has no members");
  }
  size_t fitted_members = 0;
  for (Member& member : members_) {
    member.fitted = member.model->Fit(training).ok();
    member.window.Reset();
    member.has_pending = false;
    member.weight = 0.0;
    member.score = 0.0;
    member.has_score = false;
    if (member.fitted) ++fitted_members;
  }
  if (fitted_members == 0) {
    return Status::FailedPrecondition(
        "no ensemble member could fit the training series");
  }
  // Initial scores: walk-forward one-step backtest over the tail of the
  // training window, so the first served forecast already comes from the
  // best member instead of member order. All members score on the same
  // slots, so MRE sample sets match; an all-idle tail falls back to MAE.
  const size_t tail =
      std::min(options_.score_window, training.size() / 4);
  if (tail >= 2) {
    const size_t begin = training.size() - tail;
    for (Member& member : members_) {
      if (!member.fitted) continue;
      StatusOr<EvaluationResult> eval =
          EvaluatePredictor(*member.model, training, begin, 1);
      if (!eval.ok()) continue;
      member.score = eval->mre_samples > 0 ? eval->mre : eval->mae;
      member.has_score = true;
    }
  }
  fitted_ = true;
  active_ = 0;
  switches_ = 0;
  last_history_size_ = 0;
  slots_since_rescore_ = 0;
  // Seed active/weights from the initial scores (not counted as a
  // switch: nothing was being served yet).
  double best = std::numeric_limits<double>::infinity();
  bool found = false;
  for (size_t i = 0; i < members_.size(); ++i) {
    const Member& member = members_[i];
    if (!member.fitted) continue;
    if (!found && !member.has_score) {
      active_ = i;  // placeholder until a scored member appears
    }
    if (member.has_score && member.score < best) {
      best = member.score;
      active_ = i;
      found = true;
    }
  }
  if (!found) {
    for (size_t i = 0; i < members_.size(); ++i) {
      if (members_[i].fitted) {
        active_ = i;
        break;
      }
    }
  }
  double total = 0.0;
  for (Member& member : members_) {
    if (!member.fitted) continue;
    member.weight =
        1.0 / (kScoreEpsilon + (member.has_score ? member.score : 1.0));
    total += member.weight;
  }
  if (total > 0.0) {
    double floored_total = 0.0;
    for (Member& member : members_) {
      if (!member.fitted) continue;
      member.weight =
          std::max(member.weight / total, options_.weight_floor);
      floored_total += member.weight;
    }
    for (Member& member : members_) {
      if (member.fitted) member.weight /= floored_total;
    }
  }
  return Status::OK();
}

bool EnsemblePredictor::Rescore() {
  const size_t min_samples =
      std::max<size_t>(1, options_.score_window / 4);
  for (Member& member : members_) {
    if (!member.fitted) continue;
    if (member.window.count() >= min_samples) {
      member.score = member.window.mean();
      member.has_score = true;
    }
  }
  size_t new_active = active_;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < members_.size(); ++i) {
    const Member& member = members_[i];
    if (!member.fitted || !member.has_score) continue;
    if (member.score < best) {
      best = member.score;
      new_active = i;
    }
  }
  bool changed = false;
  if (new_active != active_) {
    active_ = new_active;
    ++switches_;
    changed = true;
  }
  double total = 0.0;
  for (Member& member : members_) {
    if (!member.fitted) continue;
    member.weight =
        1.0 / (kScoreEpsilon + (member.has_score ? member.score : 1.0));
    total += member.weight;
  }
  if (total > 0.0) {
    double floored_total = 0.0;
    for (Member& member : members_) {
      if (!member.fitted) continue;
      member.weight =
          std::max(member.weight / total, options_.weight_floor);
      floored_total += member.weight;
    }
    for (Member& member : members_) {
      if (member.fitted) member.weight /= floored_total;
    }
    if (options_.mode == EnsembleMode::kWeight) changed = true;
  }
  return changed;
}

StatusOr<bool> EnsemblePredictor::Update(const TimeSeries& history) {
  if (!fitted_) return false;
  if (history.size() <= last_history_size_) {
    if (history.size() < last_history_size_) {
      for (Member& member : members_) member.has_pending = false;
    }
    last_history_size_ = history.size();
    return false;
  }
  const size_t grown = history.size() - last_history_size_;
  if (grown == 1 && last_history_size_ > 0) {
    const double actual = history[history.size() - 1];
    for (Member& member : members_) {
      if (member.fitted && member.has_pending) {
        member.window.Add(actual, member.pending);
      }
    }
  }
  bool changed = false;
  // Let adaptive members (e.g. a shift-aware wrapper inside the pool)
  // see the new observations too.
  for (Member& member : members_) {
    if (!member.fitted) continue;
    StatusOr<bool> inner = member.model->Update(history);
    if (inner.ok() && *inner) changed = true;
  }
  slots_since_rescore_ += grown;
  if (slots_since_rescore_ >= options_.epoch_slots) {
    if (Rescore()) changed = true;
    slots_since_rescore_ = 0;
  }
  for (Member& member : members_) {
    member.has_pending = false;
    if (!member.fitted) continue;
    StatusOr<double> next = member.model->PredictAhead(history, 1);
    if (next.ok()) {
      member.pending = *next;
      member.has_pending = true;
    }
  }
  last_history_size_ = history.size();
  return changed;
}

StatusOr<double> EnsemblePredictor::PredictAhead(const TimeSeries& history,
                                                 size_t tau) const {
  if (!fitted_) return Status::FailedPrecondition("ensemble is not fitted");
  if (options_.mode == EnsembleMode::kSwitch) {
    // Serve from the active member; if it cannot predict this tau (e.g.
    // SPAR past its max_tau), fall through to the remaining fitted
    // members by score then index — deterministic and total.
    Status last_error = Status::FailedPrecondition("no fitted member");
    const Member& preferred = members_[active_];
    if (preferred.fitted) {
      StatusOr<double> value = preferred.model->PredictAhead(history, tau);
      if (value.ok()) return value;
      last_error = value.status();
    }
    std::vector<std::pair<double, size_t>> order;
    order.reserve(members_.size());
    for (size_t i = 0; i < members_.size(); ++i) {
      if (i == active_ || !members_[i].fitted) continue;
      order.emplace_back(
          members_[i].has_score
              ? members_[i].score
              : std::numeric_limits<double>::infinity(),
          i);
    }
    std::sort(order.begin(), order.end());
    for (const std::pair<double, size_t>& candidate : order) {
      StatusOr<double> value =
          members_[candidate.second].model->PredictAhead(history, tau);
      if (value.ok()) return value;
      last_error = value.status();
    }
    return last_error;
  }
  double sum = 0.0;
  double used_weight = 0.0;
  Status last_error = Status::FailedPrecondition("no fitted member");
  for (const Member& member : members_) {
    if (!member.fitted || member.weight <= 0.0) continue;
    StatusOr<double> value = member.model->PredictAhead(history, tau);
    if (!value.ok()) {
      last_error = value.status();
      continue;
    }
    sum += member.weight * *value;
    used_weight += member.weight;
  }
  if (used_weight <= 0.0) return last_error;
  return sum / used_weight;
}

StatusOr<std::vector<double>> EnsemblePredictor::PredictHorizon(
    const TimeSeries& history, size_t horizon) const {
  if (!fitted_) return Status::FailedPrecondition("ensemble is not fitted");
  if (horizon == 0) return Status::InvalidArgument("horizon must be >= 1");
  if (options_.mode == EnsembleMode::kSwitch) {
    Status last_error = Status::FailedPrecondition("no fitted member");
    const Member& preferred = members_[active_];
    if (preferred.fitted) {
      StatusOr<std::vector<double>> values =
          preferred.model->PredictHorizon(history, horizon);
      if (values.ok()) return values;
      last_error = values.status();
    }
    std::vector<std::pair<double, size_t>> order;
    order.reserve(members_.size());
    for (size_t i = 0; i < members_.size(); ++i) {
      if (i == active_ || !members_[i].fitted) continue;
      order.emplace_back(
          members_[i].has_score
              ? members_[i].score
              : std::numeric_limits<double>::infinity(),
          i);
    }
    std::sort(order.begin(), order.end());
    for (const std::pair<double, size_t>& candidate : order) {
      StatusOr<std::vector<double>> values =
          members_[candidate.second].model->PredictHorizon(history, horizon);
      if (values.ok()) return values;
      last_error = values.status();
    }
    return last_error;
  }
  std::vector<double> sum(horizon, 0.0);
  double used_weight = 0.0;
  Status last_error = Status::FailedPrecondition("no fitted member");
  for (const Member& member : members_) {
    if (!member.fitted || member.weight <= 0.0) continue;
    StatusOr<std::vector<double>> values =
        member.model->PredictHorizon(history, horizon);
    if (!values.ok()) {
      last_error = values.status();
      continue;
    }
    for (size_t i = 0; i < horizon; ++i) {
      sum[i] += member.weight * (*values)[i];
    }
    used_weight += member.weight;
  }
  if (used_weight <= 0.0) return last_error;
  for (double& value : sum) value /= used_weight;
  return sum;
}

std::string EnsemblePredictor::active_name() const {
  if (!fitted_) return name();
  if (options_.mode == EnsembleMode::kWeight) return "Ensemble(weighted)";
  return members_[active_].model->active_name();
}

std::vector<double> EnsemblePredictor::weights() const {
  std::vector<double> out;
  out.reserve(members_.size());
  for (const Member& member : members_) out.push_back(member.weight);
  return out;
}

}  // namespace pstore
