#include "prediction/refit_policy.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/status.h"
#include "prediction/predictor.h"
#include "prediction/predictor_spec.h"
#include "prediction/residual_tracker.h"

namespace pstore {

IntervalRefitPolicy::IntervalRefitPolicy(size_t interval)
    : interval_(interval) {
  PSTORE_CHECK(interval_ >= 1);
}

bool IntervalRefitPolicy::ShouldRefit(const RefitSignal& signal) {
  return signal.slots_since_fit >= interval_;
}

void IntervalRefitPolicy::OnRefit(bool ok) { (void)ok; }

ShiftRefitPolicy::ShiftRefitPolicy(const ShiftRefitPolicyOptions& options)
    : options_(options), recent_(std::max<size_t>(1, options.window)) {
  PSTORE_CHECK(options_.threshold > 1.0);
  PSTORE_CHECK(options_.min_mre >= 0.0);
  PSTORE_CHECK(options_.max_interval >= 1);
  if (options_.baseline_halflife == 0) {
    options_.baseline_halflife = 8 * std::max<size_t>(1, options_.window);
  }
  slots_since_trigger_ = options_.cooldown;  // no initial cooldown
}

bool ShiftRefitPolicy::ShouldRefit(const RefitSignal& signal) {
  ++slots_since_trigger_;
  if (signal.has_residual) {
    recent_.Add(signal.actual, signal.predicted);
    // Slow EWMA baseline of the same relative residual. Before the EWMA
    // has enough samples the plain mean is used, so early residuals do
    // not anchor the baseline at zero.
    const double denom = std::max(std::abs(signal.actual), kMreMinActual);
    const double residual = std::abs(signal.predicted - signal.actual) / denom;
    if (std::abs(signal.actual) >= kMreMinActual) {
      ++baseline_samples_;
      const double alpha =
          1.0 / static_cast<double>(std::min(baseline_samples_,
                                             options_.baseline_halflife));
      baseline_ += alpha * (residual - baseline_);
    }
  }
  // Backstop cadence, and initial fits before the model ever converged.
  if (!signal.fitted) return signal.slots_since_fit >= options_.cooldown;
  if (signal.slots_since_fit >= options_.max_interval) return true;
  // Shift trigger: fast window elevated well above the slow baseline.
  if (slots_since_trigger_ < options_.cooldown) return false;
  if (recent_.count() < std::max<size_t>(1, recent_.capacity() / 2)) {
    return false;
  }
  const double recent = recent_.mean();
  if (recent < options_.min_mre) return false;
  if (recent <= options_.threshold * baseline_) return false;
  ++triggered_refits_;
  slots_since_trigger_ = 0;
  return true;
}

void ShiftRefitPolicy::OnRefit(bool ok) {
  if (!ok) return;
  // The model changed: the old residual window no longer describes it.
  recent_.Reset();
}

StatusOr<std::unique_ptr<RefitPolicy>> ParseRefitPolicy(
    const std::string& text) {
  StatusOr<PredictorSpec> spec = ParsePredictorSpec(text);
  if (!spec.ok()) return spec.status();
  if (!spec->children.empty()) {
    return Status::InvalidArgument("refit policy '" + spec->kind +
                                   "' takes no child specs");
  }
  if (spec->kind == "interval") {
    size_t slots = 7 * 1440;
    StatusOr<bool> used = ConsumeSpecParam(&*spec, "slots", &slots);
    if (!used.ok()) return used.status();
    if (slots == 0) {
      return Status::InvalidArgument("interval refit policy needs slots >= 1");
    }
    Status leftover = CheckSpecParamsConsumed(*spec);
    if (!leftover.ok()) return leftover;
    return std::unique_ptr<RefitPolicy>(new IntervalRefitPolicy(slots));
  }
  if (spec->kind == "shift") {
    ShiftRefitPolicyOptions options;
    Status status =
        ConsumeSpecParam(&*spec, "window", &options.window).status();
    if (status.ok()) {
      status = ConsumeSpecParam(&*spec, "threshold", &options.threshold)
                   .status();
    }
    if (status.ok()) {
      status =
          ConsumeSpecParam(&*spec, "min_mre", &options.min_mre).status();
    }
    if (status.ok()) {
      status =
          ConsumeSpecParam(&*spec, "cooldown", &options.cooldown).status();
    }
    if (status.ok()) {
      status = ConsumeSpecParam(&*spec, "max_interval",
                                &options.max_interval)
                   .status();
    }
    if (!status.ok()) return status;
    if (options.window == 0 || options.threshold <= 1.0) {
      return Status::InvalidArgument(
          "shift refit policy needs window >= 1 and threshold > 1");
    }
    Status leftover = CheckSpecParamsConsumed(*spec);
    if (!leftover.ok()) return leftover;
    return std::unique_ptr<RefitPolicy>(new ShiftRefitPolicy(options));
  }
  return Status::InvalidArgument("unknown refit policy '" + spec->kind +
                                 "' (expected interval or shift)");
}

}  // namespace pstore
