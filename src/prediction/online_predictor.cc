#include "prediction/online_predictor.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "common/time_series.h"
#include "obs/tracer.h"
#include "obs/wall_timer.h"
#include "prediction/refit_policy.h"

namespace pstore {

OnlinePredictor::OnlinePredictor(std::unique_ptr<LoadPredictor> model,
                                 const OnlinePredictorOptions& options)
    : OnlinePredictor(std::move(model), options, nullptr) {}

OnlinePredictor::OnlinePredictor(std::unique_ptr<LoadPredictor> model,
                                 const OnlinePredictorOptions& options,
                                 std::unique_ptr<RefitPolicy> policy)
    : model_(std::move(model)),
      options_(options),
      policy_(std::move(policy)) {
  PSTORE_CHECK(model_ != nullptr);
  PSTORE_CHECK(options_.refit_interval >= 1);
  PSTORE_CHECK(options_.training_window >= 2);
  PSTORE_CHECK(options_.inflation > 0.0);
  PSTORE_CHECK(options_.auto_inflation_quantile > 0.0 &&
               options_.auto_inflation_quantile <= 1.0);
  if (policy_ == nullptr) {
    policy_ = std::unique_ptr<RefitPolicy>(
        new IntervalRefitPolicy(options_.refit_interval));
  }
  effective_inflation_ = options_.inflation;
}

void OnlinePredictor::CalibrateInflation(const TimeSeries& training) {
  // Walk forward over the last day(ish) of the training window: ratios
  // actual / predicted at the calibration horizon. The effective
  // inflation is the chosen quantile of those ratios (at least 1.0).
  const size_t tau = std::max<size_t>(1, options_.auto_inflation_tau);
  if (training.size() < 2 * tau + 4) return;
  // Stride the samples across the second half of the training window so
  // the buffer sees day-scale variation, not just the last few hours.
  const size_t begin = training.size() / 2;
  const size_t span = training.size() - tau - begin;
  const size_t samples = std::min<size_t>(512, span);
  const size_t stride = std::max<size_t>(1, span / samples);
  std::vector<double> ratios;
  ratios.reserve(samples);
  for (size_t t = begin; t + tau < training.size(); t += stride) {
    StatusOr<double> prediction =
        model_->PredictAhead(training.Slice(0, t + 1), tau);
    if (!prediction.ok() || *prediction <= 0.0) continue;
    ratios.push_back(training[t + tau] / *prediction);
  }
  if (ratios.size() < 32) return;  // not enough signal; keep previous
  std::sort(ratios.begin(), ratios.end());
  const size_t index = std::min(
      ratios.size() - 1,
      static_cast<size_t>(options_.auto_inflation_quantile *
                          static_cast<double>(ratios.size())));
  effective_inflation_ = std::max(1.0, ratios[index]);
}

TimeSeries OnlinePredictor::TrainingSlice() const {
  if (history_.size() <= options_.training_window) return history_;
  return history_.Slice(history_.size() - options_.training_window,
                        history_.size());
}

Status OnlinePredictor::Warmup(const TimeSeries& history) {
  history_ = history;
  const TimeSeries training = TrainingSlice();
  obs::WallTimer timer;
  const Status status = model_->Fit(training);
  fitted_ = status.ok();
  observations_since_fit_ = 0;
  ++refits_;
  policy_->OnRefit(status.ok());
  if (fitted_ && options_.auto_inflation) CalibrateInflation(training);
  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kPredictor,
               trace_now_ ? trace_now_() : 0, "predictor.fit",
               .With("n", training.size())
                   .With("ok", status.ok())
                   .With("inflation", effective_inflation_)
                   .With("warmup", true)
                   .With("wall_us", timer.ElapsedMicros()));
  return status;
}

void OnlinePredictor::Observe(double value) {
  RefitSignal signal;
  // Residual-watching policies (shift detection) need the one-step
  // forecast the model would have made for this slot; others skip the
  // extra model call entirely.
  if (policy_->wants_residuals() && fitted_ && !history_.empty()) {
    StatusOr<double> predicted = model_->PredictAhead(history_, 1);
    if (predicted.ok()) {
      signal.has_residual = true;
      signal.actual = value;
      signal.predicted = *predicted;
    }
  }
  history_.Append(value);
  ++observations_since_fit_;
  // v2 online hook: adaptive models (shift-aware, ensembles) track
  // their own rolling state from the growing history.
  (void)model_->Update(history_);
  signal.slots_since_fit = observations_since_fit_;
  signal.fitted = fitted_;
  if (policy_->ShouldRefit(signal)) {
    Refit();
  }
}

void OnlinePredictor::Refit() {
  observations_since_fit_ = 0;
  ++refits_;
  const TimeSeries training = TrainingSlice();
  obs::WallTimer timer;
  const Status status = model_->Fit(training);
  if (status.ok()) {
    fitted_ = true;
    if (options_.auto_inflation) CalibrateInflation(training);
  }
  policy_->OnRefit(status.ok());
  // On failure (e.g., not enough history yet) we keep the previous fit if
  // any; the controller keeps running either way.
  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kPredictor,
               trace_now_ ? trace_now_() : 0, "predictor.fit",
               .With("n", training.size())
                   .With("ok", status.ok())
                   .With("inflation", effective_inflation_)
                   .With("warmup", false)
                   .With("wall_us", timer.ElapsedMicros()));
}

StatusOr<std::vector<double>> OnlinePredictor::PredictHorizon(
    size_t horizon) const {
  if (horizon == 0) return Status::InvalidArgument("horizon must be >= 1");
  obs::WallTimer timer;
  std::vector<double> out;
  if (fitted_) {
    StatusOr<std::vector<double>> forecast =
        model_->PredictHorizon(history_, horizon);
    if (forecast.ok()) {
      out = std::move(*forecast);
    }
  }
  if (out.empty()) {
    // Fallback: flat continuation of the last observation.
    if (history_.empty()) {
      return Status::FailedPrecondition("no history to predict from");
    }
    out.assign(horizon, history_[history_.size() - 1]);
  }
  for (double& v : out) {
    v = std::max(0.0, v * effective_inflation_);
  }
  // Overlay manually-planned events: the forecast's first element is
  // the slot right after the last observation.
  calendar_.ApplyToForecast(history_.size(), &out);
  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kPredictor,
               trace_now_ ? trace_now_() : 0, "predictor.forecast",
               .With("horizon", horizon)
                   .With("pred_next", out.empty() ? 0.0 : out.front())
                   .With("pred_peak",
                         out.empty()
                             ? 0.0
                             : *std::max_element(out.begin(), out.end()))
                   .With("fitted", fitted_)
                   .With("wall_us", timer.ElapsedMicros()));
  return out;
}

}  // namespace pstore
