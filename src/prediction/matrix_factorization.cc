#include "prediction/matrix_factorization.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "common/linalg.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/time_series.h"

namespace pstore {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

// Minimum observed slots in the current day before the projection is
// trusted over the template mean.
size_t MinProjectionObservations(size_t rank) {
  return std::max<size_t>(2 * rank, 8);
}

}  // namespace

MatrixFactorizationPredictor::MatrixFactorizationPredictor(
    const MatrixFactorizationOptions& options)
    : options_(options) {
  PSTORE_CHECK(options_.period >= 2);
  PSTORE_CHECK(options_.rank >= 1);
  PSTORE_CHECK(options_.iterations >= 1);
  PSTORE_CHECK(options_.ridge > 0.0);
  PSTORE_CHECK(options_.u_lookback >= 1);
}

Status MatrixFactorizationPredictor::Fit(const TimeSeries& training) {
  const size_t period = options_.period;
  const size_t rows = training.size() / period;
  if (rows < 2) {
    return Status::InvalidArgument(
        "matrix factorization needs at least 2 full periods of training "
        "data");
  }
  // Day x slot matrix over the leading rows*period slots; phases are
  // anchored at index 0, so training windows must start at a period
  // boundary of the prediction timeline (every harness here fits on
  // prefixes, which trivially qualify).
  const size_t rank = std::min(options_.rank, std::min(rows, period));

  // Deterministic harmonic initialization of the slot factors: a DC
  // column plus cos/sin pairs of increasing frequency. No RNG — fits are
  // reproducible and the first ALS sweep starts from the Fourier basis
  // any daily load shape is close to.
  std::vector<double> v(period * rank, 0.0);
  for (size_t c = 0; c < period; ++c) {
    for (size_t j = 0; j < rank; ++j) {
      if (j == 0) {
        v[c * rank + j] = 1.0;
      } else {
        const double freq = static_cast<double>((j + 1) / 2);
        const double angle = kTwoPi * freq * static_cast<double>(c) /
                             static_cast<double>(period);
        v[c * rank + j] = (j % 2 == 1) ? std::cos(angle) : std::sin(angle);
      }
    }
  }

  std::vector<double> u(rows * rank, 0.0);
  std::vector<double> b(period, 0.0);
  for (size_t sweep = 0; sweep < options_.iterations; ++sweep) {
    // U-step: one ridge least-squares per day against the slot factors.
    Matrix a_v(period, rank);
    for (size_t c = 0; c < period; ++c) {
      for (size_t j = 0; j < rank; ++j) a_v.At(c, j) = v[c * rank + j];
    }
    for (size_t d = 0; d < rows; ++d) {
      b.resize(period);
      for (size_t c = 0; c < period; ++c) b[c] = training[d * period + c];
      StatusOr<std::vector<double>> solved =
          SolveLeastSquares(a_v, b, options_.ridge);
      if (!solved.ok()) return solved.status();
      for (size_t j = 0; j < rank; ++j) u[d * rank + j] = (*solved)[j];
    }
    // V-step: one ridge least-squares per slot against the day factors.
    Matrix a_u(rows, rank);
    for (size_t d = 0; d < rows; ++d) {
      for (size_t j = 0; j < rank; ++j) a_u.At(d, j) = u[d * rank + j];
    }
    for (size_t c = 0; c < period; ++c) {
      b.resize(rows);
      for (size_t d = 0; d < rows; ++d) b[d] = training[d * period + c];
      StatusOr<std::vector<double>> solved =
          SolveLeastSquares(a_u, b, options_.ridge);
      if (!solved.ok()) return solved.status();
      for (size_t j = 0; j < rank; ++j) v[c * rank + j] = (*solved)[j];
    }
  }

  v_ = std::move(v);
  u_mean_.assign(rank, 0.0);
  const size_t lookback = std::min(options_.u_lookback, rows);
  for (size_t d = rows - lookback; d < rows; ++d) {
    for (size_t j = 0; j < rank; ++j) u_mean_[j] += u[d * rank + j];
  }
  for (size_t j = 0; j < rank; ++j) {
    u_mean_[j] /= static_cast<double>(lookback);
  }
  fitted_ = true;
  return Status::OK();
}

std::vector<double> MatrixFactorizationPredictor::SlotFactors(
    size_t slot) const {
  PSTORE_CHECK(fitted_);
  const size_t rank = u_mean_.size();
  const size_t c = slot % options_.period;
  return std::vector<double>(v_.begin() + static_cast<ptrdiff_t>(c * rank),
                             v_.begin() +
                                 static_cast<ptrdiff_t>((c + 1) * rank));
}

StatusOr<std::vector<double>>
MatrixFactorizationPredictor::CurrentDayCoefficients(
    const TimeSeries& history) const {
  const size_t period = options_.period;
  const size_t rank = u_mean_.size();
  const size_t obs = history.size() % period;
  if (obs < MinProjectionObservations(rank)) return u_mean_;
  const size_t day_begin = history.size() - obs;
  // Ridge projection toward the template mean:
  //   (A^T A + lambda I) u = A^T y + lambda u_mean
  // with A the slot factors of the observed prefix. lambda scales with
  // trace(A^T A) so the prior's pull is independent of load magnitude.
  Matrix normal(rank, rank);
  std::vector<double> rhs(rank, 0.0);
  for (size_t s = 0; s < obs; ++s) {
    const double y = history[day_begin + s];
    const double* row = &v_[s * rank];
    for (size_t i = 0; i < rank; ++i) {
      rhs[i] += row[i] * y;
      for (size_t j = i; j < rank; ++j) {
        normal.At(i, j) += row[i] * row[j];
      }
    }
  }
  double trace = 0.0;
  for (size_t i = 0; i < rank; ++i) trace += normal.At(i, i);
  const double lambda =
      options_.ridge * (1.0 + trace / static_cast<double>(rank));
  for (size_t i = 0; i < rank; ++i) {
    for (size_t j = 0; j < i; ++j) normal.At(i, j) = normal.At(j, i);
    normal.At(i, i) += lambda;
    rhs[i] += lambda * u_mean_[i];
  }
  StatusOr<std::vector<double>> solved = SolveLinearSystem(normal, rhs);
  if (!solved.ok()) return u_mean_;  // degenerate prefix: fall back
  return *solved;
}

double MatrixFactorizationPredictor::Forecast(
    const std::vector<double>& u_now, size_t next_index, size_t tau) const {
  const size_t period = options_.period;
  const size_t rank = u_mean_.size();
  const size_t target = next_index + tau - 1;
  // The projected coefficients describe the day containing `next_index`;
  // targets past its end use the seasonal template.
  const bool same_day = target / period == next_index / period;
  const std::vector<double>& u = same_day ? u_now : u_mean_;
  const double* row = &v_[(target % period) * rank];
  double value = 0.0;
  for (size_t j = 0; j < rank; ++j) value += u[j] * row[j];
  return std::max(0.0, value);
}

StatusOr<double> MatrixFactorizationPredictor::PredictAhead(
    const TimeSeries& history, size_t tau) const {
  if (!fitted_) return Status::FailedPrecondition("model is not fitted");
  if (tau == 0) return Status::InvalidArgument("tau must be >= 1");
  StatusOr<std::vector<double>> u_now = CurrentDayCoefficients(history);
  if (!u_now.ok()) return u_now.status();
  return Forecast(*u_now, history.size(), tau);
}

StatusOr<std::vector<double>> MatrixFactorizationPredictor::PredictHorizon(
    const TimeSeries& history, size_t horizon) const {
  if (!fitted_) return Status::FailedPrecondition("model is not fitted");
  if (horizon == 0) return Status::InvalidArgument("horizon must be >= 1");
  StatusOr<std::vector<double>> u_now = CurrentDayCoefficients(history);
  if (!u_now.ok()) return u_now.status();
  std::vector<double> out;
  out.reserve(horizon);
  for (size_t tau = 1; tau <= horizon; ++tau) {
    out.push_back(Forecast(*u_now, history.size(), tau));
  }
  return out;
}

}  // namespace pstore
