#ifndef PSTORE_PREDICTION_SPAR_MODEL_H_
#define PSTORE_PREDICTION_SPAR_MODEL_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/time_series.h"
#include "prediction/predictor.h"

namespace pstore {

// Options for Sparse Periodic Auto-Regression (paper §5, Eq. 8).
struct SparOptions {
  // Period T in slots (1440 for per-minute data with a daily cycle, 24
  // for hourly data).
  size_t period = 1440;
  // n: number of previous periods in the periodic component. The paper
  // uses n = 7 (the previous week) for B2W.
  size_t num_periods = 7;
  // m: number of recent load offsets in the transient component. The
  // paper uses m = 30 (the previous 30 minutes) for B2W.
  size_t num_recent = 30;
  // Coefficients are fitted by least squares separately for each
  // forecasting period tau in [1, max_tau], since the optimal mix of the
  // periodic and transient components depends on how far ahead we look.
  size_t max_tau = 60;
  // Fit only every tau_stride-th tau (1, 1+stride, ...); queries use the
  // nearest fitted tau's coefficients. Coefficients vary slowly with
  // tau, so a stride of ~5 cuts fitting cost with little accuracy loss —
  // useful for long horizons refit online.
  size_t tau_stride = 1;
  // Tikhonov damping passed to the least-squares solve.
  double ridge = 1e-8;
};

// SPAR predictor: models the load tau slots ahead as a weighted sum of
// (a) the load at the same time-of-period in the previous n periods and
// (b) the offset of the last m observations from their per-period
// averages:
//
//   y(t+tau) = sum_{k=1..n} a_k y(t+tau-kT) + sum_{j=1..m} b_j dy(t-j)
//   dy(t-j)  = y(t-j) - (1/n) sum_{k=1..n} y(t-j-kT)
//
// Coefficients a_k, b_j are inferred with linear least squares over the
// training window (Eq. 8).
class SparPredictor : public LoadPredictor {
 public:
  explicit SparPredictor(const SparOptions& options);

  Status Fit(const TimeSeries& training) override;
  StatusOr<double> PredictAhead(const TimeSeries& history,
                                size_t tau) const override;
  std::string name() const override { return "SPAR"; }

  // Minimum history length required to form one prediction.
  size_t MinHistory() const;

  // Fitted coefficient vector [a_1..a_n, b_1..b_m] for the given tau.
  // Requires Fit() to have succeeded and 1 <= tau <= max_tau.
  const std::vector<double>& CoefficientsFor(size_t tau) const;

  // Persistence: the paper's §6 workflow learns parameters offline and
  // serves them online. SaveToFile writes a self-describing text format;
  // LoadFromFile restores a ready-to-predict model (options included).
  Status SaveToFile(const std::string& path) const;
  static StatusOr<SparPredictor> LoadFromFile(const std::string& path);

 private:
  // The tau whose coefficients were actually fitted that is nearest to
  // the requested one (identity when tau_stride == 1).
  size_t FittedTauFor(size_t tau) const;

  SparOptions options_;
  bool fitted_ = false;
  // coefficients_[tau - 1] holds [a_1..a_n, b_1..b_m] for that tau;
  // empty for taus skipped by tau_stride.
  std::vector<std::vector<double>> coefficients_;
};

}  // namespace pstore

#endif  // PSTORE_PREDICTION_SPAR_MODEL_H_
