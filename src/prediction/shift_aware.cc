#include "prediction/shift_aware.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/predictor.h"

namespace pstore {

ShiftAwarePredictor::ShiftAwarePredictor(std::unique_ptr<LoadPredictor> base,
                                         const ShiftAwareOptions& options)
    : base_(std::move(base)),
      options_(options),
      recent_(std::max<size_t>(1, options.residual_window)) {
  PSTORE_CHECK(base_ != nullptr);
  PSTORE_CHECK(options_.threshold > 1.0);
  PSTORE_CHECK(options_.min_mre >= 0.0);
}

std::string ShiftAwarePredictor::name() const {
  return "ShiftAware(" + base_->name() + ")";
}

void ShiftAwarePredictor::ComputeBaseline(const TimeSeries& training) {
  baseline_mre_ = 0.0;
  if (training.size() < 8) return;
  const size_t begin = training.size() / 2;
  const size_t span = training.size() - 1 - begin;
  if (span == 0) return;
  const size_t samples =
      std::min(std::max<size_t>(1, options_.baseline_samples), span);
  const size_t stride = std::max<size_t>(1, span / samples);
  double sum = 0.0;
  size_t used = 0;
  for (size_t t = begin; t + 1 < training.size(); t += stride) {
    const double actual = training[t + 1];
    if (std::abs(actual) < kMreMinActual) continue;
    StatusOr<double> prediction =
        base_->PredictAhead(training.Slice(0, t + 1), 1);
    if (!prediction.ok()) continue;
    sum += std::abs(*prediction - actual) / std::abs(actual);
    ++used;
  }
  if (used > 0) baseline_mre_ = sum / static_cast<double>(used);
}

Status ShiftAwarePredictor::Fit(const TimeSeries& training) {
  const Status status = base_->Fit(training);
  if (!status.ok()) return status;
  fitted_ = true;
  training_size_ = training.size();
  ComputeBaseline(training);
  recent_.Reset();
  has_pending_ = false;
  last_history_size_ = 0;
  slots_since_refit_ = 0;
  return Status::OK();
}

StatusOr<double> ShiftAwarePredictor::PredictAhead(const TimeSeries& history,
                                                   size_t tau) const {
  return base_->PredictAhead(history, tau);
}

StatusOr<std::vector<double>> ShiftAwarePredictor::PredictHorizon(
    const TimeSeries& history, size_t horizon) const {
  return base_->PredictHorizon(history, horizon);
}

Status ShiftAwarePredictor::RefitOn(const TimeSeries& history) {
  size_t window = options_.refit_window > 0 ? options_.refit_window
                                            : training_size_;
  window = std::min(window, history.size());
  const TimeSeries slice =
      history.Slice(history.size() - window, history.size());
  const Status status = base_->Fit(slice);
  if (status.ok()) {
    ++refits_;
    training_size_ = slice.size();
    ComputeBaseline(slice);
    recent_.Reset();
  }
  // Either way the cooldown restarts: a window too short to fit will not
  // grow enough to succeed within a slot or two.
  slots_since_refit_ = 0;
  return status;
}

StatusOr<bool> ShiftAwarePredictor::Update(const TimeSeries& history) {
  if (!fitted_) return false;
  if (history.size() <= last_history_size_) {
    // Walkers only ever extend the history; a shrink means a new
    // walk — drop the stale pending prediction.
    has_pending_ = history.size() < last_history_size_ ? false : has_pending_;
    last_history_size_ = history.size();
    return false;
  }
  const size_t grown = history.size() - last_history_size_;
  // Score the pending one-step prediction when exactly the slot it
  // targeted arrived; warmup jumps (grown > 1) are not scoreable.
  if (has_pending_ && grown == 1 && last_history_size_ > 0) {
    recent_.Add(history[history.size() - 1], pending_prediction_);
  }
  slots_since_refit_ += grown;
  bool changed = false;
  const bool warmed =
      recent_.count() >= std::max<size_t>(1, recent_.capacity() / 2);
  const double recent = recent_.mean();
  const bool shifted = warmed && recent >= options_.min_mre &&
                       recent > options_.threshold *
                                    std::max(baseline_mre_, kMreMinActual);
  if (shifted && slots_since_refit_ >= options_.cooldown) {
    changed = RefitOn(history).ok();
  }
  // Stage the one-step prediction for the next observed slot.
  StatusOr<double> next = base_->PredictAhead(history, 1);
  has_pending_ = next.ok();
  if (next.ok()) pending_prediction_ = *next;
  last_history_size_ = history.size();
  return changed;
}

}  // namespace pstore
