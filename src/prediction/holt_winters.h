#ifndef PSTORE_PREDICTION_HOLT_WINTERS_H_
#define PSTORE_PREDICTION_HOLT_WINTERS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/time_series.h"
#include "prediction/predictor.h"

namespace pstore {

// Options for additive Holt-Winters (triple exponential smoothing), a
// classic seasonal forecaster included as an additional baseline next to
// the paper's SPAR/ARMA/AR comparison.
struct HoltWintersOptions {
  // Seasonal period in slots (1440 for per-minute data, daily cycle).
  size_t period = 1440;
  // Smoothing factors; negative values mean "grid-search on the
  // training data" (coarse grid, minimizing one-step-ahead SSE).
  double alpha = -1.0;  // level
  double beta = -1.0;   // trend
  double gamma = -1.0;  // seasonal
};

// Additive Holt-Winters:
//   level_t  = alpha (y_t - season_{t-m}) + (1-alpha)(level + trend)
//   trend_t  = beta (level_t - level_{t-1}) + (1-beta) trend_{t-1}
//   season_t = gamma (y_t - level_t) + (1-gamma) season_{t-m}
//   y-hat_{t+h} = level_t + h trend_t + season_{t-m+1+((h-1) mod m)}
class HoltWintersPredictor : public LoadPredictor {
 public:
  explicit HoltWintersPredictor(const HoltWintersOptions& options);

  Status Fit(const TimeSeries& training) override;
  StatusOr<double> PredictAhead(const TimeSeries& history,
                                size_t tau) const override;
  // Runs the state recursion over the history once, then forecasts the
  // whole horizon — much cheaper than per-tau calls.
  StatusOr<std::vector<double>> PredictHorizon(
      const TimeSeries& history, size_t horizon) const override;
  std::string name() const override { return "HoltWinters"; }

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }
  double gamma() const { return gamma_; }

 private:
  struct State {
    double level = 0.0;
    double trend = 0.0;
    std::vector<double> season;  // circular, length = period
  };

  // Runs the smoothing recursion over `series`; returns the final state,
  // and (optionally) accumulates the one-step-ahead squared error.
  StatusOr<State> RunRecursion(const TimeSeries& series, double alpha,
                               double beta, double gamma,
                               double* sse) const;

  HoltWintersOptions options_;
  bool fitted_ = false;
  double alpha_ = 0.3;
  double beta_ = 0.05;
  double gamma_ = 0.3;
};

}  // namespace pstore

#endif  // PSTORE_PREDICTION_HOLT_WINTERS_H_
