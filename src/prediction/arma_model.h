#ifndef PSTORE_PREDICTION_ARMA_MODEL_H_
#define PSTORE_PREDICTION_ARMA_MODEL_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/time_series.h"
#include "prediction/predictor.h"

namespace pstore {

// Options for the ARMA(p, q) baseline.
struct ArmaOptions {
  size_t ar_order = 30;  // p
  size_t ma_order = 10;  // q
  // Order of the long auto-regression used to estimate innovations in the
  // Hannan-Rissanen procedure. Must be >= ar_order + ma_order.
  size_t long_ar_order = 60;
  double ridge = 1e-8;
};

// ARMA(p, q) fitted with the two-stage Hannan-Rissanen method:
//   1. Fit a long AR model and compute its residuals as innovation
//      estimates eps(t).
//   2. Regress y(t) on [1, y(t-1..t-p), eps(t-1..t-q)].
// Multi-step forecasts iterate the model with future innovations set to
// zero; innovations for observed history are re-estimated from the long
// AR model at prediction time.
class ArmaPredictor : public LoadPredictor {
 public:
  explicit ArmaPredictor(const ArmaOptions& options);

  Status Fit(const TimeSeries& training) override;
  StatusOr<double> PredictAhead(const TimeSeries& history,
                                size_t tau) const override;
  StatusOr<std::vector<double>> PredictHorizon(
      const TimeSeries& history, size_t horizon) const override;
  std::string name() const override { return "ARMA"; }

 private:
  // Residual of the long AR model at index `idx` of `series`.
  double LongArResidual(const TimeSeries& series, size_t idx) const;

  ArmaOptions options_;
  bool fitted_ = false;
  std::vector<double> long_ar_;  // [c, phi_1..phi_L]
  std::vector<double> coefficients_;  // [c, phi_1..phi_p, theta_1..theta_q]
};

}  // namespace pstore

#endif  // PSTORE_PREDICTION_ARMA_MODEL_H_
