#include "prediction/predictor.h"

#include <cmath>

#include "common/status.h"
#include "common/time_series.h"

namespace pstore {

StatusOr<std::vector<double>> LoadPredictor::PredictHorizon(
    const TimeSeries& history, size_t horizon) const {
  std::vector<double> out;
  out.reserve(horizon);
  for (size_t tau = 1; tau <= horizon; ++tau) {
    StatusOr<double> value = PredictAhead(history, tau);
    if (!value.ok()) return value.status();
    out.push_back(*value);
  }
  return out;
}

StatusOr<EvaluationResult> EvaluatePredictor(const LoadPredictor& model,
                                             const TimeSeries& series,
                                             size_t eval_begin, size_t tau) {
  if (tau == 0) return Status::InvalidArgument("tau must be >= 1");
  if (eval_begin + tau >= series.size()) {
    return Status::InvalidArgument("evaluation window is empty");
  }
  EvaluationResult result;
  result.predicted.reserve(series.size() - eval_begin - tau);
  result.actual.reserve(series.size() - eval_begin - tau);
  for (size_t t = eval_begin; t + tau < series.size(); ++t) {
    const TimeSeries history = series.Slice(0, t + 1);
    StatusOr<double> prediction = model.PredictAhead(history, tau);
    if (!prediction.ok()) return prediction.status();
    result.predicted.push_back(*prediction);
    result.actual.push_back(series[t + tau]);
  }
  // MRE with the pstore_report guard: slots whose actual load is below
  // kMreMinActual are skipped, and an all-idle window yields mre == 0
  // (with mre_samples == 0) instead of failing the whole evaluation.
  double rel_sum = 0.0;
  size_t rel_used = 0;
  for (size_t i = 0; i < result.actual.size(); ++i) {
    const double denom = std::abs(result.actual[i]);
    if (denom < kMreMinActual) continue;
    rel_sum += std::abs(result.predicted[i] - result.actual[i]) / denom;
    ++rel_used;
  }
  result.mre = rel_used > 0 ? rel_sum / static_cast<double>(rel_used) : 0.0;
  result.mre_samples = rel_used;
  StatusOr<double> mae = MeanAbsoluteError(result.actual, result.predicted);
  if (!mae.ok()) return mae.status();
  StatusOr<double> rmse =
      RootMeanSquaredError(result.actual, result.predicted);
  if (!rmse.ok()) return rmse.status();
  result.mae = *mae;
  result.rmse = *rmse;
  return result;
}

}  // namespace pstore
