#include "prediction/predictor.h"

#include "common/status.h"
#include "common/time_series.h"

namespace pstore {

StatusOr<std::vector<double>> LoadPredictor::PredictHorizon(
    const TimeSeries& history, size_t horizon) const {
  std::vector<double> out;
  out.reserve(horizon);
  for (size_t tau = 1; tau <= horizon; ++tau) {
    StatusOr<double> value = PredictAhead(history, tau);
    if (!value.ok()) return value.status();
    out.push_back(*value);
  }
  return out;
}

StatusOr<EvaluationResult> EvaluatePredictor(const LoadPredictor& model,
                                             const TimeSeries& series,
                                             size_t eval_begin, size_t tau) {
  if (tau == 0) return Status::InvalidArgument("tau must be >= 1");
  if (eval_begin + tau >= series.size()) {
    return Status::InvalidArgument("evaluation window is empty");
  }
  EvaluationResult result;
  for (size_t t = eval_begin; t + tau < series.size(); ++t) {
    const TimeSeries history = series.Slice(0, t + 1);
    StatusOr<double> prediction = model.PredictAhead(history, tau);
    if (!prediction.ok()) return prediction.status();
    result.predicted.push_back(*prediction);
    result.actual.push_back(series[t + tau]);
  }
  StatusOr<double> mre = MeanRelativeError(result.actual, result.predicted);
  if (!mre.ok()) return mre.status();
  StatusOr<double> mae = MeanAbsoluteError(result.actual, result.predicted);
  if (!mae.ok()) return mae.status();
  StatusOr<double> rmse =
      RootMeanSquaredError(result.actual, result.predicted);
  if (!rmse.ok()) return rmse.status();
  result.mre = *mre;
  result.mae = *mae;
  result.rmse = *rmse;
  return result;
}

}  // namespace pstore
