#ifndef PSTORE_PREDICTION_BACKTEST_H_
#define PSTORE_PREDICTION_BACKTEST_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_series.h"
#include "prediction/predictor_spec.h"

namespace pstore {

// Options for the walk-forward backtest harness.
struct BacktestOptions {
  // First scored slot; the model trains on [0, eval_begin). 0 means
  // "half the series".
  size_t eval_begin = 0;
  // Horizon tau scored alongside one-step (the planner's look-ahead).
  size_t horizon = 60;
  // Re-fit every model on the observed prefix every this many scored
  // slots (the online refit cadence); 0 disables harness-level refits
  // (adaptive models still re-fit themselves through Update()).
  size_t refit_epoch = 0;
  // Optional focus window [focus_begin, focus_end) scored separately —
  // e.g. the post-Black-Friday slots, to compare post-shift accuracy.
  size_t focus_begin = 0;
  size_t focus_end = 0;
  // Worker threads across models; results are bit-identical for any
  // value (deterministic by model index).
  int threads = 1;
};

// Per-model backtest scores. MRE fields use the kMreMinActual guard; all
// models score the same slots, so their *_mre_samples counts match and
// MREs are directly comparable.
struct BacktestModelResult {
  std::string spec;        // canonical spec string
  std::string model_name;  // model.name() after construction
  bool ok = false;         // fit + walk succeeded
  std::string error;       // first error when !ok

  size_t one_step_samples = 0;
  double one_step_mae = 0.0;
  double one_step_mre = 0.0;
  size_t one_step_mre_samples = 0;

  size_t horizon_samples = 0;
  double horizon_mae = 0.0;
  double horizon_mre = 0.0;
  size_t horizon_mre_samples = 0;

  // One-step metrics restricted to the focus window.
  size_t focus_samples = 0;
  double focus_mae = 0.0;
  double focus_mre = 0.0;
  size_t focus_mre_samples = 0;

  // Update() calls that reported a parameter change (re-fits and
  // ensemble re-selections).
  size_t updates_changed = 0;

  // 1-based rank by one-step error among ok models (MRE when the eval
  // window has non-idle slots, MAE otherwise; ties broken by input
  // order). 0 for failed models.
  size_t rank = 0;
};

struct BacktestResult {
  // Same order as the input specs.
  std::vector<BacktestModelResult> models;
};

// Scores every spec'd predictor on a rolling walk-forward pass (the
// EvaluatePredictor recipe, plus Update() hooks and periodic re-fits so
// adaptive models behave as they would online). Each model walks
// independently — models parallelize across `threads` with bit-identical
// results for any thread count.
//
// Per scored slot t (history = series[0, t)):
//   1. harness re-fit on the prefix when the refit epoch elapses
//   2. model.Update(history)
//   3. one-step: predict series[t] with tau = 1
//   4. horizon:  predict series[t + horizon - 1] with tau = horizon
//      (skipped near the end of the series)
StatusOr<BacktestResult> RunBacktest(const std::vector<PredictorSpec>& specs,
                                     const TimeSeries& series,
                                     const PredictorContext& context,
                                     const BacktestOptions& options);

// One CSV row per model (input order), %.17g doubles — byte-identical
// across thread counts; the determinism gate compares these bytes.
std::string BacktestCsvHeader();
std::string BacktestCsvRow(const BacktestModelResult& model);
std::string BacktestCsv(const BacktestResult& result);

}  // namespace pstore

#endif  // PSTORE_PREDICTION_BACKTEST_H_
