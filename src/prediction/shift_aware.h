#ifndef PSTORE_PREDICTION_SHIFT_AWARE_H_
#define PSTORE_PREDICTION_SHIFT_AWARE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_series.h"
#include "prediction/predictor.h"
#include "prediction/residual_tracker.h"

namespace pstore {

// Options for the Sibyl-style shift-aware wrapper.
struct ShiftAwareOptions {
  // Rolling window (slots) of one-step relative residuals watched for
  // degradation.
  size_t residual_window = 256;
  // Trigger a re-fit when the rolling residual mean exceeds `threshold`
  // times the baseline residual measured at fit time.
  double threshold = 2.0;
  // Never trigger while the rolling mean is below this floor.
  double min_mre = 0.10;
  // Minimum slots between triggered re-fits (also applied after a failed
  // re-fit attempt so a too-short window is not retried every slot).
  size_t cooldown = 1440;
  // Slots of recent history the re-fit trains on; 0 means "the same
  // length as the original training window".
  size_t refit_window = 0;
  // Walk-forward samples used to measure the baseline residual at fit
  // time (strided across the second half of the training window).
  size_t baseline_samples = 256;
};

// Wraps any LoadPredictor with distribution-shift detection (Sibyl's key
// result: cheap incremental re-fit beats static models on evolving
// workloads). Each Update() scores the previous one-step prediction
// against the newly observed slot; when the rolling relative residual
// rises `threshold`x above the fit-time baseline, the wrapped model is
// re-fitted on the most recent window so post-shift data dominates the
// new parameters. Prediction delegates to the wrapped model unchanged.
class ShiftAwarePredictor : public LoadPredictor {
 public:
  ShiftAwarePredictor(std::unique_ptr<LoadPredictor> base,
                      const ShiftAwareOptions& options);

  Status Fit(const TimeSeries& training) override;
  StatusOr<double> PredictAhead(const TimeSeries& history,
                                size_t tau) const override;
  StatusOr<std::vector<double>> PredictHorizon(
      const TimeSeries& history, size_t horizon) const override;
  StatusOr<bool> Update(const TimeSeries& history) override;
  std::string name() const override;
  std::string active_name() const override { return base_->active_name(); }

  // Introspection for tests, traces, and benches.
  size_t refits() const { return refits_; }
  double baseline_mre() const { return baseline_mre_; }
  double recent_mre() const { return recent_.mean(); }
  const LoadPredictor& base() const { return *base_; }

 private:
  // Measures the wrapped model's one-step relative residual by walking
  // forward over the tail of `training` (same recipe as the online
  // inflation calibration).
  void ComputeBaseline(const TimeSeries& training);
  // Re-fits on the trailing refit window of `history`.
  Status RefitOn(const TimeSeries& history);

  std::unique_ptr<LoadPredictor> base_;
  ShiftAwareOptions options_;
  bool fitted_ = false;
  size_t training_size_ = 0;
  double baseline_mre_ = 0.0;
  RollingResidualTracker recent_;
  // One-step prediction made at the previous Update, to be scored
  // against the next observed slot.
  double pending_prediction_ = 0.0;
  bool has_pending_ = false;
  size_t last_history_size_ = 0;
  size_t slots_since_refit_ = 0;
  size_t refits_ = 0;
};

}  // namespace pstore

#endif  // PSTORE_PREDICTION_SHIFT_AWARE_H_
