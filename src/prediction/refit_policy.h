#ifndef PSTORE_PREDICTION_REFIT_POLICY_H_
#define PSTORE_PREDICTION_REFIT_POLICY_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/status.h"
#include "prediction/residual_tracker.h"

namespace pstore {

// What the online harness knows at each observed slot; the policy decides
// whether the wrapped model should be refitted now.
struct RefitSignal {
  // Slots observed since the last (attempted) fit.
  size_t slots_since_fit = 0;
  // True once the wrapped model has at least one successful fit.
  bool fitted = false;
  // One-step residual for the slot that just arrived: the harness only
  // fills these in when the policy wants_residuals() (computing the
  // pending prediction costs a model call per slot).
  bool has_residual = false;
  double actual = 0.0;
  double predicted = 0.0;
};

// Decides *when* OnlinePredictor refits its wrapped model. The interval
// policy reproduces the historical refit_interval counter; the shift
// policy (Sibyl-style) watches rolling one-step residuals and refits as
// soon as they degrade past a multiple of their long-run baseline.
class RefitPolicy {
 public:
  virtual ~RefitPolicy() = default;

  // Called once per observed slot, after the observation is appended.
  virtual bool ShouldRefit(const RefitSignal& signal) = 0;

  // Notifies the policy that a refit was attempted (ok = fit succeeded).
  virtual void OnRefit(bool ok) = 0;

  // When true, the harness computes a one-step prediction before each
  // observation and reports it via RefitSignal.
  virtual bool wants_residuals() const { return false; }

  virtual std::string name() const = 0;
};

// Refits every `interval` observed slots — byte-identical to the
// pre-policy OnlinePredictorOptions::refit_interval behavior.
class IntervalRefitPolicy : public RefitPolicy {
 public:
  explicit IntervalRefitPolicy(size_t interval);

  bool ShouldRefit(const RefitSignal& signal) override;
  void OnRefit(bool ok) override;
  std::string name() const override { return "interval"; }

 private:
  size_t interval_;
};

struct ShiftRefitPolicyOptions {
  // Rolling window (slots) of one-step relative residuals.
  size_t window = 256;
  // Trigger when the window mean exceeds `threshold` times the long-run
  // baseline residual.
  double threshold = 2.0;
  // Never trigger while the window mean is below this floor — tiny
  // residuals fluctuating by 2x are not a shift.
  double min_mre = 0.10;
  // Minimum slots between shift-triggered refits.
  size_t cooldown = 1440;
  // Backstop: refit at least every `max_interval` slots even without a
  // detected shift (the paper's weekly cadence).
  size_t max_interval = 7 * 1440;
  // EWMA decay toward the long-run baseline, as an effective sample
  // count (larger = slower-moving baseline). 0 derives it from `window`.
  size_t baseline_halflife = 0;
};

// Shift-triggered refit (Sibyl-style): keeps a slow EWMA baseline of the
// one-step relative residual and a fast rolling window; when the window
// mean rises `threshold`x above the baseline (and above `min_mre`), the
// workload has shifted and the model is refitted on the recent window.
class ShiftRefitPolicy : public RefitPolicy {
 public:
  explicit ShiftRefitPolicy(const ShiftRefitPolicyOptions& options);

  bool ShouldRefit(const RefitSignal& signal) override;
  void OnRefit(bool ok) override;
  bool wants_residuals() const override { return true; }
  std::string name() const override { return "shift"; }

  // Introspection for tests and traces.
  double baseline() const { return baseline_; }
  double recent_mean() const { return recent_.mean(); }
  size_t triggered_refits() const { return triggered_refits_; }

 private:
  ShiftRefitPolicyOptions options_;
  RollingResidualTracker recent_;
  double baseline_ = 0.0;
  size_t baseline_samples_ = 0;
  size_t slots_since_trigger_ = 0;
  size_t triggered_refits_ = 0;
};

// Parses a refit-policy spec string:
//   "interval"                          (default 7*1440 slots)
//   "interval(slots=10080)"
//   "shift"                             (defaults above)
//   "shift(window=256,threshold=2.0,min_mre=0.1,cooldown=1440)"
StatusOr<std::unique_ptr<RefitPolicy>> ParseRefitPolicy(
    const std::string& text);

}  // namespace pstore

#endif  // PSTORE_PREDICTION_REFIT_POLICY_H_
