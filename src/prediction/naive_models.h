#ifndef PSTORE_PREDICTION_NAIVE_MODELS_H_
#define PSTORE_PREDICTION_NAIVE_MODELS_H_

#include <cstddef>

#include "common/status.h"
#include "common/time_series.h"
#include "prediction/predictor.h"

namespace pstore {

// Predicts y(t+tau) = y(t+tau-T): the value one period ago at the same
// time of day. The simplest periodic baseline; SPAR must beat it to be
// worth its extra machinery.
class SeasonalNaivePredictor : public LoadPredictor {
 public:
  explicit SeasonalNaivePredictor(size_t period);

  Status Fit(const TimeSeries& training) override;
  StatusOr<double> PredictAhead(const TimeSeries& history,
                                size_t tau) const override;
  std::string name() const override { return "SeasonalNaive"; }

 private:
  size_t period_;
};

// Predicts y(t+tau) = y(t): flat continuation of the last observation.
class LastValuePredictor : public LoadPredictor {
 public:
  Status Fit(const TimeSeries& training) override;
  StatusOr<double> PredictAhead(const TimeSeries& history,
                                size_t tau) const override;
  std::string name() const override { return "LastValue"; }
};

// Returns the true future values from a reference series. The history
// passed to PredictAhead must be a prefix of the reference series; the
// prediction for slot history.size()-1+tau is the reference value there.
// Used for the "P-Store Oracle" upper bound (Fig. 12).
class OraclePredictor : public LoadPredictor {
 public:
  explicit OraclePredictor(TimeSeries truth);

  Status Fit(const TimeSeries& training) override;
  StatusOr<double> PredictAhead(const TimeSeries& history,
                                size_t tau) const override;
  std::string name() const override { return "Oracle"; }

 private:
  TimeSeries truth_;
};

}  // namespace pstore

#endif  // PSTORE_PREDICTION_NAIVE_MODELS_H_
