#include "prediction/residual_tracker.h"

#include <cmath>

#include "common/logging.h"
#include "prediction/predictor.h"

namespace pstore {

RollingResidualTracker::RollingResidualTracker(size_t capacity)
    : ring_(capacity, 0.0) {
  PSTORE_CHECK(capacity >= 1);
}

void RollingResidualTracker::Add(double actual, double predicted) {
  const double denom = std::abs(actual);
  if (denom < kMreMinActual) return;
  const double residual = std::abs(predicted - actual) / denom;
  if (count_ == ring_.size()) {
    sum_ -= ring_[next_];
  } else {
    ++count_;
  }
  ring_[next_] = residual;
  sum_ += residual;
  next_ = (next_ + 1) % ring_.size();
}

double RollingResidualTracker::mean() const {
  if (count_ == 0) return 0.0;
  // Re-summing is O(window) but Add() keeps the running sum; the running
  // sum can drift after ~1e15 additions, far beyond any simulation here.
  return sum_ / static_cast<double>(count_);
}

void RollingResidualTracker::Reset() {
  next_ = 0;
  count_ = 0;
  sum_ = 0.0;
}

}  // namespace pstore
