#ifndef PSTORE_PREDICTION_PREDICTOR_SPEC_H_
#define PSTORE_PREDICTION_PREDICTOR_SPEC_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "prediction/predictor.h"

namespace pstore {

// Parsed form of the `--predictor` spec grammar shared by every tool and
// bench (the one way to name a predictor):
//
//   spec     := kind | kind '(' arg (',' arg)* ')'
//   arg      := key '=' value | spec          (nested spec = child model)
//   kind/key := [A-Za-z_][A-Za-z0-9_]*
//   value    := anything up to the next ',' or ')' (no nesting)
//
// Examples:
//   spar
//   spar(period=288,n=7,m=6,max_tau=30)
//   ar(p=8)
//   shift(spar,window=256,threshold=2)
//   ensemble(spar,ar(p=8),hw,mode=switch,epoch=1440)
//
// Whitespace around tokens is ignored. FormatPredictorSpec produces the
// canonical form (children first in order, then params sorted by key)
// and round-trips through ParsePredictorSpec.
struct PredictorSpec {
  std::string kind;
  std::vector<PredictorSpec> children;
  std::map<std::string, std::string> params;
};

StatusOr<PredictorSpec> ParsePredictorSpec(const std::string& text);
// Top-level comma-separated list ("spar,ar(p=8),ensemble(...)"): how
// benches name the whole comparison field in one flag.
StatusOr<std::vector<PredictorSpec>> ParsePredictorSpecList(
    const std::string& text);
std::string FormatPredictorSpec(const PredictorSpec& spec);

// Contextual defaults a caller supplies so spec strings stay short: a
// bare "spar" picks up the run's slot period and planning horizon rather
// than hard-coded per-minute constants.
struct PredictorContext {
  // Seasonal period in slots (fills spar/hw/mf/seasonal-naive `period`).
  size_t period = 1440;
  // Longest horizon the caller will request (fills spar `max_tau`).
  size_t max_tau = 60;
};

// Typed param accessors used by the factories (and the refit-policy
// parser). Consume* erases the key so CheckSpecParamsConsumed can reject
// typo'd or unsupported keys. Returns true iff the key was present; the
// output is left untouched when absent.
StatusOr<bool> ConsumeSpecParam(PredictorSpec* spec, const std::string& key,
                                size_t* out);
StatusOr<bool> ConsumeSpecParam(PredictorSpec* spec, const std::string& key,
                                double* out);
StatusOr<bool> ConsumeSpecParam(PredictorSpec* spec, const std::string& key,
                                std::string* out);
// Error iff any params remain unconsumed (lists them).
Status CheckSpecParamsConsumed(const PredictorSpec& spec);

// All kinds MakePredictor accepts, sorted (for error messages / --help).
std::vector<std::string> RegisteredPredictorKinds();

// Registry-backed factory: builds a ready-to-Fit predictor from a spec.
// Kinds and their params (all optional):
//   spar           period, n (periods), m (recent), max_tau, tau_stride,
//                  ridge
//   ar             p (order), ridge
//   arma           p, q, long_ar, ridge
//   hw             period, alpha, beta, gamma   (holt_winters alias)
//   seasonal_naive period                       (naive alias)
//   last_value     —
//   mf             period, rank, iters, ridge, lookback
//                  (matrix_factorization alias)
//   shift          one child (default spar), window, threshold, min_mre,
//                  cooldown, refit_window, baseline_samples
//   ensemble       children (default spar,ar,hw), mode=switch|weight,
//                  epoch, window, floor
// Unknown kinds and unknown/malformed params are errors.
StatusOr<std::unique_ptr<LoadPredictor>> MakePredictor(
    const PredictorSpec& spec, const PredictorContext& context);

// Convenience: parse + build in one call.
StatusOr<std::unique_ptr<LoadPredictor>> MakePredictor(
    const std::string& text, const PredictorContext& context);

}  // namespace pstore

#endif  // PSTORE_PREDICTION_PREDICTOR_SPEC_H_
