#include "prediction/event_calendar.h"

#include <algorithm>

#include "common/status.h"

namespace pstore {

Status EventCalendar::AddEvent(const PlannedEvent& event) {
  if (event.end_slot <= event.start_slot) {
    return Status::InvalidArgument("event window is empty");
  }
  if (event.multiplier <= 0.0) {
    return Status::InvalidArgument("event multiplier must be positive");
  }
  events_.push_back(event);
  return Status::OK();
}

double EventCalendar::MultiplierAt(size_t slot) const {
  double multiplier = 1.0;
  for (const PlannedEvent& event : events_) {
    if (slot >= event.start_slot && slot < event.end_slot) {
      multiplier *= event.multiplier;
    }
  }
  return multiplier;
}

void EventCalendar::ApplyToForecast(size_t first_slot,
                                    std::vector<double>* forecast) const {
  if (forecast == nullptr || events_.empty()) return;
  for (size_t i = 0; i < forecast->size(); ++i) {
    (*forecast)[i] *= MultiplierAt(first_slot + i);
  }
}

void EventCalendar::ExpireBefore(size_t slot) {
  events_.erase(std::remove_if(events_.begin(), events_.end(),
                               [slot](const PlannedEvent& event) {
                                 return event.end_slot <= slot;
                               }),
                events_.end());
}

}  // namespace pstore
