#include "prediction/ar_model.h"

#include <string>

#include "common/linalg.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/time_series.h"

namespace pstore {

ArPredictor::ArPredictor(const ArOptions& options) : options_(options) {
  PSTORE_CHECK(options_.order >= 1);
}

Status ArPredictor::Fit(const TimeSeries& training) {
  const size_t p = options_.order;
  if (training.size() < p + 2) {
    return Status::InvalidArgument("AR: training series too short");
  }
  const size_t rows = training.size() - p;
  Matrix a(rows, p + 1);
  std::vector<double> b(rows);
  for (size_t r = 0; r < rows; ++r) {
    const size_t target = p + r;
    a.At(r, 0) = 1.0;  // intercept
    for (size_t i = 1; i <= p; ++i) {
      a.At(r, i) = training[target - i];
    }
    b[r] = training[target];
  }
  StatusOr<std::vector<double>> solved =
      SolveLeastSquares(a, b, options_.ridge);
  if (!solved.ok()) return solved.status();
  coefficients_ = std::move(*solved);
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> ArPredictor::PredictAhead(const TimeSeries& history,
                                           size_t tau) const {
  StatusOr<std::vector<double>> horizon = PredictHorizon(history, tau);
  if (!horizon.ok()) return horizon.status();
  return horizon->back();
}

StatusOr<std::vector<double>> ArPredictor::PredictHorizon(
    const TimeSeries& history, size_t horizon) const {
  if (!fitted_) return Status::FailedPrecondition("AR: not fitted");
  if (horizon == 0) return Status::InvalidArgument("AR: horizon must be >=1");
  const size_t p = options_.order;
  if (history.size() < p) {
    return Status::InvalidArgument("AR: history too short");
  }
  // Rolling window of the most recent p values, newest last.
  std::vector<double> window(p);
  for (size_t i = 0; i < p; ++i) {
    window[i] = history[history.size() - p + i];
  }
  std::vector<double> out;
  out.reserve(horizon);
  for (size_t step = 0; step < horizon; ++step) {
    double next = coefficients_[0];
    for (size_t i = 1; i <= p; ++i) {
      next += coefficients_[i] * window[p - i];
    }
    out.push_back(next);
    // Fixed-size sliding window: the erase keeps capacity, so the
    // push_back never reallocates.
    window.erase(window.begin());
    window.push_back(next);  // pstore-analyze: allow(hot-path-perf)
  }
  return out;
}

}  // namespace pstore
