#include "prediction/holt_winters.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/status.h"
#include "common/time_series.h"

namespace pstore {

HoltWintersPredictor::HoltWintersPredictor(const HoltWintersOptions& options)
    : options_(options) {
  PSTORE_CHECK(options_.period >= 2);
}

StatusOr<HoltWintersPredictor::State> HoltWintersPredictor::RunRecursion(
    const TimeSeries& series, double alpha, double beta, double gamma,
    double* sse) const {
  const size_t m = options_.period;
  if (series.size() < 2 * m) {
    return Status::InvalidArgument(
        "HoltWinters: need at least two seasonal periods of data");
  }
  State state;
  // Initialization: level = mean of the first period; trend = average
  // per-slot change between the first two periods; seasonal indices =
  // first-period deviations from its mean.
  double first_mean = 0.0;
  double second_mean = 0.0;
  for (size_t i = 0; i < m; ++i) {
    first_mean += series[i];
    second_mean += series[m + i];
  }
  first_mean /= static_cast<double>(m);
  second_mean /= static_cast<double>(m);
  state.level = first_mean;
  state.trend = (second_mean - first_mean) / static_cast<double>(m);
  state.season.resize(m);
  for (size_t i = 0; i < m; ++i) {
    state.season[i] = series[i] - first_mean;
  }

  if (sse != nullptr) *sse = 0.0;
  for (size_t t = m; t < series.size(); ++t) {
    const size_t s_idx = t % m;
    const double forecast = state.level + state.trend + state.season[s_idx];
    if (sse != nullptr) {
      const double err = series[t] - forecast;
      *sse += err * err;
    }
    const double prev_level = state.level;
    state.level = alpha * (series[t] - state.season[s_idx]) +
                  (1.0 - alpha) * (state.level + state.trend);
    state.trend =
        beta * (state.level - prev_level) + (1.0 - beta) * state.trend;
    state.season[s_idx] = gamma * (series[t] - state.level) +
                          (1.0 - gamma) * state.season[s_idx];
  }
  return state;
}

Status HoltWintersPredictor::Fit(const TimeSeries& training) {
  const bool search = options_.alpha < 0.0 || options_.beta < 0.0 ||
                      options_.gamma < 0.0;
  if (!search) {
    alpha_ = options_.alpha;
    beta_ = options_.beta;
    gamma_ = options_.gamma;
    StatusOr<State> state =
        RunRecursion(training, alpha_, beta_, gamma_, nullptr);
    if (!state.ok()) return state.status();
    fitted_ = true;
    return Status::OK();
  }
  // Coarse grid search minimizing one-step-ahead SSE on the training
  // window. The grid is small because each evaluation is a full pass.
  const double alphas[] = {0.1, 0.3, 0.5, 0.8};
  const double betas[] = {0.0, 0.01, 0.05};
  const double gammas[] = {0.05, 0.2, 0.5};
  double best = std::numeric_limits<double>::infinity();
  Status last_error = Status::OK();
  for (const double a : alphas) {
    for (const double b : betas) {
      for (const double g : gammas) {
        double sse = 0.0;
        StatusOr<State> state = RunRecursion(training, a, b, g, &sse);
        if (!state.ok()) {
          last_error = state.status();
          continue;
        }
        if (sse < best) {
          best = sse;
          alpha_ = a;
          beta_ = b;
          gamma_ = g;
        }
      }
    }
  }
  if (!std::isfinite(best)) return last_error;
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> HoltWintersPredictor::PredictAhead(const TimeSeries& history,
                                                    size_t tau) const {
  StatusOr<std::vector<double>> horizon = PredictHorizon(history, tau);
  if (!horizon.ok()) return horizon.status();
  return horizon->back();
}

StatusOr<std::vector<double>> HoltWintersPredictor::PredictHorizon(
    const TimeSeries& history, size_t horizon) const {
  if (!fitted_) return Status::FailedPrecondition("HoltWinters: not fitted");
  if (horizon == 0) {
    return Status::InvalidArgument("HoltWinters: horizon must be >= 1");
  }
  StatusOr<State> state =
      RunRecursion(history, alpha_, beta_, gamma_, nullptr);
  if (!state.ok()) return state.status();
  const size_t m = options_.period;
  const size_t t = history.size();  // next index to be observed is t
  std::vector<double> out;
  out.reserve(horizon);
  for (size_t h = 1; h <= horizon; ++h) {
    const size_t s_idx = (t + h - 1) % m;
    out.push_back(state->level + static_cast<double>(h) * state->trend +
                  state->season[s_idx]);
  }
  return out;
}

}  // namespace pstore
