#ifndef PSTORE_PREDICTION_EVENT_CALENDAR_H_
#define PSTORE_PREDICTION_EVENT_CALENDAR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace pstore {

// A planned load event: between [start_slot, end_slot) (absolute slot
// indices on the predictor's timeline) demand is expected to be
// `multiplier` times the organic forecast. Used to encode known
// promotions, marketing pushes, or Black Friday itself.
struct PlannedEvent {
  std::string name;
  size_t start_slot = 0;
  size_t end_slot = 0;
  double multiplier = 1.0;
};

// The "manual provisioning" leg of the paper's composite strategy (§1:
// predictive + reactive + manual): operators register expected one-off
// events, and the calendar boosts the horizon forecasts so the planner
// provisions for them even though history says nothing about them.
class EventCalendar {
 public:
  EventCalendar() = default;

  // Registers an event. Fails if the window is empty or the multiplier
  // is not positive. Overlapping events compose multiplicatively.
  Status AddEvent(const PlannedEvent& event);

  // Combined multiplier in effect at the given absolute slot.
  double MultiplierAt(size_t slot) const;

  // Applies the calendar to a horizon forecast whose first element
  // corresponds to absolute slot `first_slot`.
  void ApplyToForecast(size_t first_slot, std::vector<double>* forecast) const;

  // Drops events that ended before `slot` (housekeeping).
  void ExpireBefore(size_t slot);

  size_t size() const { return events_.size(); }
  const std::vector<PlannedEvent>& events() const { return events_; }

 private:
  std::vector<PlannedEvent> events_;
};

}  // namespace pstore

#endif  // PSTORE_PREDICTION_EVENT_CALENDAR_H_
