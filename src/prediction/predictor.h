#ifndef PSTORE_PREDICTION_PREDICTOR_H_
#define PSTORE_PREDICTION_PREDICTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_series.h"

namespace pstore {

// Interface for aggregate-load time-series predictors (paper §5).
//
// Usage: Fit() once on a training window (e.g., 4 weeks of history), then
// call PredictAhead()/PredictHorizon() with the history available at
// decision time. The history passed at prediction time may extend past the
// training window; models only read the lags they need from its tail.
class LoadPredictor {
 public:
  virtual ~LoadPredictor() = default;

  // Learns model parameters from the training series. Returns an error if
  // the series is too short for the model's lag structure.
  virtual Status Fit(const TimeSeries& training) = 0;

  // Predicts the load `tau` slots past the end of `history` (tau >= 1).
  virtual StatusOr<double> PredictAhead(const TimeSeries& history,
                                        size_t tau) const = 0;

  // Predicts slots 1..horizon past the end of `history`. The default
  // implementation loops over PredictAhead.
  virtual StatusOr<std::vector<double>> PredictHorizon(
      const TimeSeries& history, size_t horizon) const;

  // Short human-readable model name ("SPAR", "AR", ...).
  virtual std::string name() const = 0;
};

// Walk-forward evaluation: for every slot t in [eval_begin, series.size()
// - tau), predicts series[t + tau] from series[0..t] and collects
// (actual, predicted) pairs. `eval_begin` must leave enough history for
// the model's lags.
struct EvaluationResult {
  std::vector<double> actual;
  std::vector<double> predicted;
  double mre = 0.0;   // mean relative error
  double mae = 0.0;   // mean absolute error
  double rmse = 0.0;  // root mean squared error
};

StatusOr<EvaluationResult> EvaluatePredictor(const LoadPredictor& model,
                                             const TimeSeries& series,
                                             size_t eval_begin, size_t tau);

}  // namespace pstore

#endif  // PSTORE_PREDICTION_PREDICTOR_H_
