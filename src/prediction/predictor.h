#ifndef PSTORE_PREDICTION_PREDICTOR_H_
#define PSTORE_PREDICTION_PREDICTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_series.h"

namespace pstore {

// Interface for aggregate-load time-series predictors (paper §5).
//
// Usage: Fit() once on a training window (e.g., 4 weeks of history), then
// call PredictAhead()/PredictHorizon() with the history available at
// decision time. The history passed at prediction time may extend past the
// training window; models only read the lags they need from its tail.
//
// v2 online contract: harnesses that walk a model forward through time
// (OnlinePredictor, BacktestHarness) call Update() whenever new
// observations extend the history, *before* asking for predictions from
// the longer history. Static models ignore it; adaptive models
// (ShiftAwarePredictor, EnsemblePredictor) use it to track rolling
// residuals and re-fit or re-select internally. Prediction itself stays
// const, so a *static* fitted model may still be shared read-only across
// sweep threads; adaptive models must be owned by a single walker.
class LoadPredictor {
 public:
  virtual ~LoadPredictor() = default;

  // Learns model parameters from the training series. Returns an error if
  // the series is too short for the model's lag structure.
  virtual Status Fit(const TimeSeries& training) = 0;

  // Predicts the load `tau` slots past the end of `history` (tau >= 1).
  virtual StatusOr<double> PredictAhead(const TimeSeries& history,
                                        size_t tau) const = 0;

  // Predicts slots 1..horizon past the end of `history`. The default
  // implementation loops over PredictAhead.
  virtual StatusOr<std::vector<double>> PredictHorizon(
      const TimeSeries& history, size_t horizon) const;

  // Online-adaptation hook: `history` is the full series observed so far
  // (a superset of every earlier Update call's argument). Returns true
  // when the call changed model parameters — a re-fit or a model
  // re-selection happened. Default: no-op.
  virtual StatusOr<bool> Update(const TimeSeries& history) {
    (void)history;
    return false;
  }

  // Short human-readable model name ("SPAR", "AR", ...).
  virtual std::string name() const = 0;

  // Name of the model currently serving predictions: equals name() for
  // plain models; an ensemble reports its active member.
  virtual std::string active_name() const { return name(); }
};

// Walk-forward evaluation: for every slot t in [eval_begin, series.size()
// - tau), predicts series[t + tau] from series[0..t] and collects
// (actual, predicted) pairs. `eval_begin` must leave enough history for
// the model's lags.
//
// MRE skips slots whose actual load is below `kMreMinActual` (the same
// guard pstore_report applies), so near-zero denominators cannot blow the
// metric up; a window that is entirely idle reports mre == 0 with
// mre_samples == 0 rather than failing the evaluation.
struct EvaluationResult {
  std::vector<double> actual;
  std::vector<double> predicted;
  double mre = 0.0;   // mean relative error
  double mae = 0.0;   // mean absolute error
  double rmse = 0.0;  // root mean squared error
  // Slots that actually contributed to `mre` (actual >= kMreMinActual).
  size_t mre_samples = 0;
};

// Slots with |actual| below this are excluded from MRE denominators
// (mirrors the pstore_report forecast-error guard).
inline constexpr double kMreMinActual = 1e-9;

StatusOr<EvaluationResult> EvaluatePredictor(const LoadPredictor& model,
                                             const TimeSeries& series,
                                             size_t eval_begin, size_t tau);

}  // namespace pstore

#endif  // PSTORE_PREDICTION_PREDICTOR_H_
