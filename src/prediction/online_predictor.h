#ifndef PSTORE_PREDICTION_ONLINE_PREDICTOR_H_
#define PSTORE_PREDICTION_ONLINE_PREDICTOR_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "common/time_series.h"
#include "obs/tracer.h"
#include "prediction/event_calendar.h"
#include "prediction/predictor.h"
#include "prediction/refit_policy.h"

namespace pstore {

// Options for the online (active-learning) prediction wrapper (paper §6:
// "P-Store has an active learning system ... constantly monitors the
// system over time and can actively learn the parameter values").
struct OnlinePredictorOptions {
  // Refit the underlying model every this many observed slots. The paper
  // found refitting SPAR once per week to be sufficient. Only consulted
  // when no explicit RefitPolicy is supplied: the default policy is
  // IntervalRefitPolicy(refit_interval). Prefer passing a policy over
  // poking this field.
  size_t refit_interval = 7 * 1440;
  // Number of most recent slots used as the training window when
  // refitting (the paper trains on 4 weeks).
  size_t training_window = 28 * 1440;
  // Multiplier applied to every prediction before it reaches the planner
  // ("we inflate all predictions by 15%", §8.2).
  double inflation = 1.15;
  // When true, the inflation is re-derived at every (re)fit from the
  // model's own training-residual distribution: the smallest multiplier
  // m such that m * prediction >= actual for `auto_inflation_quantile`
  // of the training points at the longest horizon. This replaces the
  // paper's hand-picked 15% with a data-driven buffer.
  bool auto_inflation = false;
  double auto_inflation_quantile = 0.98;
  // Horizon (in slots) at which residuals are measured for auto
  // inflation; errors grow with the horizon, so use the planner's.
  size_t auto_inflation_tau = 60;
};

// Maintains the observed load history, periodically refits the wrapped
// model, and serves inflated horizon forecasts to the controller. Before
// the first successful fit it falls back to flat last-value forecasts so
// the controller always has something to plan with.
class OnlinePredictor {
 public:
  // Refits on the interval policy derived from options.refit_interval.
  OnlinePredictor(std::unique_ptr<LoadPredictor> model,
                  const OnlinePredictorOptions& options);
  // Refits whenever `policy` says so (e.g. ShiftRefitPolicy re-fits the
  // moment rolling residuals betray a workload shift).
  OnlinePredictor(std::unique_ptr<LoadPredictor> model,
                  const OnlinePredictorOptions& options,
                  std::unique_ptr<RefitPolicy> policy);

  // Seeds the history with pre-recorded measurements (e.g., 4 weeks of
  // historical data) and fits the model on it.
  Status Warmup(const TimeSeries& history);

  // Appends one observed slot, forwards it to the model's Update() hook,
  // and refits when the policy asks for it.
  void Observe(double value);

  // Inflated forecast for slots 1..horizon past the last observation.
  StatusOr<std::vector<double>> PredictHorizon(size_t horizon) const;

  // True once the wrapped model has been fitted successfully.
  bool fitted() const { return fitted_; }

  const TimeSeries& history() const { return history_; }
  const LoadPredictor& model() const { return *model_; }
  const RefitPolicy& policy() const { return *policy_; }

  // Fit attempts so far (successful or not), including Warmup.
  size_t refits() const { return refits_; }
  // Name of the model currently serving forecasts (an ensemble reports
  // its active member) — the controller traces switches through this.
  std::string active_model_name() const { return model_->active_name(); }

  // Manual-provisioning calendar (paper §1's third technique): planned
  // events registered here multiply the horizon forecasts over their
  // windows, so the planner provisions for known one-off spikes that no
  // history-based model can foresee. Slots are absolute indices on this
  // predictor's timeline (history().size() is "now").
  EventCalendar& calendar() { return calendar_; }
  const EventCalendar& calendar() const { return calendar_; }

  // The inflation currently in effect (fixed, or the latest
  // auto-derived value).
  double effective_inflation() const { return effective_inflation_; }

  // Observability: when set, fits emit predictor.fit and horizon
  // forecasts emit predictor.forecast (both with wall time). `now_fn`
  // supplies the simulation timestamp of the emitting harness.
  void set_tracer(obs::Tracer* tracer, std::function<SimTime()> now_fn) {
    tracer_ = tracer;
    trace_now_ = std::move(now_fn);
  }

 private:
  void Refit();
  // The most recent training_window slots of history (or all of it).
  TimeSeries TrainingSlice() const;
  // Re-derives effective_inflation_ from walk-forward residuals on the
  // tail of the training data (auto_inflation mode).
  void CalibrateInflation(const TimeSeries& training);

  std::unique_ptr<LoadPredictor> model_;
  OnlinePredictorOptions options_;
  std::unique_ptr<RefitPolicy> policy_;
  EventCalendar calendar_;
  TimeSeries history_;
  size_t observations_since_fit_ = 0;
  size_t refits_ = 0;
  bool fitted_ = false;
  double effective_inflation_ = 1.0;
  obs::Tracer* tracer_ = nullptr;
  std::function<SimTime()> trace_now_;
};

}  // namespace pstore

#endif  // PSTORE_PREDICTION_ONLINE_PREDICTOR_H_
