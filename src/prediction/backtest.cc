#include "prediction/backtest.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/time_series.h"
#include "prediction/predictor.h"
#include "prediction/predictor_spec.h"

namespace pstore {
namespace {

// Accumulates MAE/MRE pairs with the kMreMinActual guard.
struct MetricAccumulator {
  double abs_sum = 0.0;
  size_t samples = 0;
  double rel_sum = 0.0;
  size_t rel_samples = 0;

  void Add(double actual, double predicted) {
    abs_sum += std::abs(predicted - actual);
    ++samples;
    const double denom = std::abs(actual);
    if (denom < kMreMinActual) return;
    rel_sum += std::abs(predicted - actual) / denom;
    ++rel_samples;
  }

  double mae() const {
    return samples > 0 ? abs_sum / static_cast<double>(samples) : 0.0;
  }
  double mre() const {
    return rel_samples > 0 ? rel_sum / static_cast<double>(rel_samples)
                           : 0.0;
  }
};

// Walks one model through the series; fills everything except rank.
BacktestModelResult BacktestOne(const PredictorSpec& spec,
                                const TimeSeries& series,
                                const PredictorContext& context,
                                const BacktestOptions& options,
                                size_t eval_begin) {
  BacktestModelResult result;
  result.spec = FormatPredictorSpec(spec);
  StatusOr<std::unique_ptr<LoadPredictor>> made =
      MakePredictor(spec, context);
  if (!made.ok()) {
    result.error = made.status().message();
    return result;
  }
  LoadPredictor& model = **made;
  result.model_name = model.name();
  {
    const Status fit = model.Fit(series.Slice(0, eval_begin));
    if (!fit.ok()) {
      result.error = fit.message();
      return result;
    }
  }
  MetricAccumulator one_step;
  MetricAccumulator horizon;
  MetricAccumulator focus;
  // Grown incrementally so the walk is O(n), not O(n^2) in slices.
  TimeSeries history = series.Slice(0, eval_begin);
  for (size_t t = eval_begin; t < series.size(); ++t) {
    if (options.refit_epoch > 0 && t > eval_begin &&
        (t - eval_begin) % options.refit_epoch == 0) {
      // Online cadence: re-fit on the observed prefix. Failures keep
      // the previous fit, exactly like OnlinePredictor.
      (void)model.Fit(history);
    }
    StatusOr<bool> updated = model.Update(history);
    if (updated.ok() && *updated) ++result.updates_changed;
    StatusOr<double> predicted = model.PredictAhead(history, 1);
    if (!predicted.ok()) {
      result.error = predicted.status().message();
      return result;
    }
    one_step.Add(series[t], *predicted);
    if (t >= options.focus_begin && t < options.focus_end) {
      focus.Add(series[t], *predicted);
    }
    if (options.horizon >= 1 && t + options.horizon - 1 < series.size()) {
      StatusOr<double> far = model.PredictAhead(history, options.horizon);
      if (!far.ok()) {
        result.error = far.status().message();
        return result;
      }
      horizon.Add(series[t + options.horizon - 1], *far);
    }
    history.Append(series[t]);
  }
  result.ok = true;
  result.one_step_samples = one_step.samples;
  result.one_step_mae = one_step.mae();
  result.one_step_mre = one_step.mre();
  result.one_step_mre_samples = one_step.rel_samples;
  result.horizon_samples = horizon.samples;
  result.horizon_mae = horizon.mae();
  result.horizon_mre = horizon.mre();
  result.horizon_mre_samples = horizon.rel_samples;
  result.focus_samples = focus.samples;
  result.focus_mae = focus.mae();
  result.focus_mre = focus.mre();
  result.focus_mre_samples = focus.rel_samples;
  return result;
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

StatusOr<BacktestResult> RunBacktest(const std::vector<PredictorSpec>& specs,
                                     const TimeSeries& series,
                                     const PredictorContext& context,
                                     const BacktestOptions& options) {
  if (specs.empty()) {
    return Status::InvalidArgument("backtest needs at least one spec");
  }
  const size_t eval_begin =
      options.eval_begin > 0 ? options.eval_begin : series.size() / 2;
  if (eval_begin == 0 || eval_begin >= series.size()) {
    return Status::InvalidArgument(
        "backtest eval window is empty (series too short?)");
  }
  if (options.focus_begin < options.focus_end &&
      (options.focus_begin < eval_begin ||
       options.focus_end > series.size())) {
    return Status::InvalidArgument(
        "backtest focus window must lie inside the eval window");
  }
  BacktestResult result;
  result.models.resize(specs.size());
  // One independent walk per model, written back by index: bit-identical
  // for any thread count (the determinism gate's contract).
  ThreadPool pool(ResolveThreadCount(options.threads));
  pool.ParallelFor(specs.size(), [&](size_t i) {
    result.models[i] =
        BacktestOne(specs[i], series, context, options, eval_begin);
  });
  // Rank ok models by one-step error. All models scored the same slots,
  // so either every ok model has MRE samples or none does — the metric
  // choice is consistent across the field.
  std::vector<std::pair<double, size_t>> order;
  order.reserve(result.models.size());
  for (size_t i = 0; i < result.models.size(); ++i) {
    const BacktestModelResult& model = result.models[i];
    if (!model.ok) continue;
    order.emplace_back(model.one_step_mre_samples > 0 ? model.one_step_mre
                                                      : model.one_step_mae,
                       i);
  }
  std::sort(order.begin(), order.end());
  for (size_t r = 0; r < order.size(); ++r) {
    result.models[order[r].second].rank = r + 1;
  }
  return result;
}

std::string BacktestCsvHeader() {
  return "spec,model,ok,rank,one_step_mae,one_step_mre,one_step_samples,"
         "horizon_mae,horizon_mre,horizon_samples,focus_mae,focus_mre,"
         "focus_samples,updates_changed";
}

std::string BacktestCsvRow(const BacktestModelResult& model) {
  std::string row;
  row += model.spec;
  row += ',';
  row += model.model_name;
  row += ',';
  row += model.ok ? '1' : '0';
  row += ',';
  row += std::to_string(model.rank);
  row += ',';
  row += FormatDouble(model.one_step_mae);
  row += ',';
  row += FormatDouble(model.one_step_mre);
  row += ',';
  row += std::to_string(model.one_step_samples);
  row += ',';
  row += FormatDouble(model.horizon_mae);
  row += ',';
  row += FormatDouble(model.horizon_mre);
  row += ',';
  row += std::to_string(model.horizon_samples);
  row += ',';
  row += FormatDouble(model.focus_mae);
  row += ',';
  row += FormatDouble(model.focus_mre);
  row += ',';
  row += std::to_string(model.focus_samples);
  row += ',';
  row += std::to_string(model.updates_changed);
  return row;
}

std::string BacktestCsv(const BacktestResult& result) {
  std::string csv = BacktestCsvHeader();
  csv += '\n';
  for (const BacktestModelResult& model : result.models) {
    csv += BacktestCsvRow(model);
    csv += '\n';
  }
  return csv;
}

}  // namespace pstore
