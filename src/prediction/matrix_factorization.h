#ifndef PSTORE_PREDICTION_MATRIX_FACTORIZATION_H_
#define PSTORE_PREDICTION_MATRIX_FACTORIZATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_series.h"
#include "prediction/predictor.h"

namespace pstore {

// Options for the tspDB-style matrix-factorization predictor.
struct MatrixFactorizationOptions {
  // Columns of the stacked matrix: slots per period (day).
  size_t period = 1440;
  // Rank k of the factorization (number of latent daily shapes).
  size_t rank = 4;
  // Alternating-least-squares sweeps.
  size_t iterations = 8;
  // Tikhonov damping for the ALS solves and the partial-day projection.
  double ridge = 1e-3;
  // Days averaged into the template coefficients used for
  // beyond-current-day forecasts.
  size_t u_lookback = 7;
};

// tspDB-style predictor: stacks the training series into a (day x slot)
// matrix Y, factorizes Y ~ U V^T by deterministic ALS (V initialized
// from a harmonic basis, so fits are reproducible without any RNG), and
// forecasts by projecting the observed prefix of the current day onto
// the slot factors:
//
//   u_now = argmin ||V_obs u - y_obs||^2 + ridge ||u - u_mean||^2
//   yhat(slot s) = <u_now, V[s]>         (current day)
//   yhat(slot s) = <u_mean, V[s]>        (beyond the current day)
//
// The ridge pulls u_now toward the mean of the last `u_lookback` day
// coefficients, so early in a day (few observations) the forecast is the
// learned seasonal template and it smoothly becomes data-driven as the
// day fills in. Denoising through the low-rank bottleneck is the tspDB
// claim: the k daily shapes filter slot-level noise that lag-based
// models chase.
class MatrixFactorizationPredictor : public LoadPredictor {
 public:
  explicit MatrixFactorizationPredictor(
      const MatrixFactorizationOptions& options);

  Status Fit(const TimeSeries& training) override;
  StatusOr<double> PredictAhead(const TimeSeries& history,
                                size_t tau) const override;
  // One projection for the whole horizon instead of one per tau.
  StatusOr<std::vector<double>> PredictHorizon(
      const TimeSeries& history, size_t horizon) const override;
  std::string name() const override { return "MatrixFactorization"; }

  // Fitted slot-factor row for `slot` (length rank); tests only.
  std::vector<double> SlotFactors(size_t slot) const;

 private:
  // Coefficients for the day containing the next unobserved slot:
  // projects the day's observed prefix when it has enough samples,
  // otherwise returns the template mean.
  StatusOr<std::vector<double>> CurrentDayCoefficients(
      const TimeSeries& history) const;
  double Forecast(const std::vector<double>& u_now, size_t next_index,
                  size_t tau) const;

  MatrixFactorizationOptions options_;
  bool fitted_ = false;
  // Slot factors, row-major: v_[s * rank + j], s in [0, period).
  std::vector<double> v_;
  // Mean of the last u_lookback day-coefficient rows.
  std::vector<double> u_mean_;
};

}  // namespace pstore

#endif  // PSTORE_PREDICTION_MATRIX_FACTORIZATION_H_
