#include "prediction/arma_model.h"

#include <algorithm>
#include <string>

#include "common/linalg.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/time_series.h"

namespace pstore {

ArmaPredictor::ArmaPredictor(const ArmaOptions& options) : options_(options) {
  PSTORE_CHECK(options_.ar_order >= 1);
  PSTORE_CHECK(options_.ma_order >= 1);
  PSTORE_CHECK(options_.long_ar_order >=
               options_.ar_order + options_.ma_order);
}

double ArmaPredictor::LongArResidual(const TimeSeries& series,
                                     size_t idx) const {
  const size_t lag = options_.long_ar_order;
  PSTORE_CHECK(idx >= lag);
  double fitted = long_ar_[0];
  for (size_t i = 1; i <= lag; ++i) {
    fitted += long_ar_[i] * series[idx - i];
  }
  return series[idx] - fitted;
}

Status ArmaPredictor::Fit(const TimeSeries& training) {
  const size_t p = options_.ar_order;
  const size_t q = options_.ma_order;
  const size_t lag = options_.long_ar_order;
  if (training.size() < lag + q + p + 2) {
    return Status::InvalidArgument("ARMA: training series too short");
  }

  // Stage 1: long auto-regression for innovation estimates.
  {
    const size_t rows = training.size() - lag;
    Matrix a(rows, lag + 1);
    std::vector<double> b(rows);
    for (size_t r = 0; r < rows; ++r) {
      const size_t target = lag + r;
      a.At(r, 0) = 1.0;
      for (size_t i = 1; i <= lag; ++i) {
        a.At(r, i) = training[target - i];
      }
      b[r] = training[target];
    }
    StatusOr<std::vector<double>> solved =
        SolveLeastSquares(a, b, options_.ridge);
    if (!solved.ok()) return solved.status();
    long_ar_ = std::move(*solved);
  }

  // Residuals for all indices where the long AR is defined.
  std::vector<double> eps(training.size(), 0.0);
  for (size_t idx = lag; idx < training.size(); ++idx) {
    eps[idx] = LongArResidual(training, idx);
  }

  // Stage 2: regress y(t) on AR lags and innovation lags.
  {
    const size_t first = lag + q;  // eps lags must be defined
    const size_t rows = training.size() - first;
    Matrix a(rows, 1 + p + q);
    std::vector<double> b(rows);
    for (size_t r = 0; r < rows; ++r) {
      const size_t target = first + r;
      a.At(r, 0) = 1.0;
      for (size_t i = 1; i <= p; ++i) {
        a.At(r, i) = training[target - i];
      }
      for (size_t j = 1; j <= q; ++j) {
        a.At(r, p + j) = eps[target - j];
      }
      b[r] = training[target];
    }
    StatusOr<std::vector<double>> solved =
        SolveLeastSquares(a, b, options_.ridge);
    if (!solved.ok()) return solved.status();
    coefficients_ = std::move(*solved);
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> ArmaPredictor::PredictAhead(const TimeSeries& history,
                                             size_t tau) const {
  StatusOr<std::vector<double>> horizon = PredictHorizon(history, tau);
  if (!horizon.ok()) return horizon.status();
  return horizon->back();
}

StatusOr<std::vector<double>> ArmaPredictor::PredictHorizon(
    const TimeSeries& history, size_t horizon) const {
  if (!fitted_) return Status::FailedPrecondition("ARMA: not fitted");
  if (horizon == 0) {
    return Status::InvalidArgument("ARMA: horizon must be >= 1");
  }
  const size_t p = options_.ar_order;
  const size_t q = options_.ma_order;
  const size_t lag = options_.long_ar_order;
  if (history.size() < lag + std::max(p, q) + 1) {
    return Status::InvalidArgument("ARMA: history too short");
  }

  // Estimated innovations for the last q observed slots (oldest first).
  std::vector<double> eps_window(q);
  for (size_t j = 0; j < q; ++j) {
    eps_window[j] = LongArResidual(history, history.size() - q + j);
  }
  // Most recent p observations (oldest first).
  std::vector<double> y_window(p);
  for (size_t i = 0; i < p; ++i) {
    y_window[i] = history[history.size() - p + i];
  }

  std::vector<double> out;
  out.reserve(horizon);
  for (size_t step = 0; step < horizon; ++step) {
    double next = coefficients_[0];
    for (size_t i = 1; i <= p; ++i) {
      next += coefficients_[i] * y_window[p - i];
    }
    for (size_t j = 1; j <= q; ++j) {
      next += coefficients_[p + j] * eps_window[q - j];
    }
    out.push_back(next);
    // Fixed-size sliding windows: the erases keep capacity, so the
    // push_backs never reallocate.
    y_window.erase(y_window.begin());
    y_window.push_back(next);  // pstore-analyze: allow(hot-path-perf)
    // Future innovations are unknown: expected value zero.
    eps_window.erase(eps_window.begin());
    eps_window.push_back(0.0);  // pstore-analyze: allow(hot-path-perf)
  }
  return out;
}

}  // namespace pstore
