#include "prediction/spar_model.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/linalg.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/time_series.h"

namespace pstore {
namespace {

// Computes dy(idx) = y(idx) - (1/n) sum_{k=1..n} y(idx - kT).
// Requires idx - n*period >= 0.
double RecentOffset(const TimeSeries& series, size_t idx, size_t period,
                    size_t num_periods) {
  double periodic_mean = 0.0;
  for (size_t k = 1; k <= num_periods; ++k) {
    periodic_mean += series[idx - k * period];
  }
  periodic_mean /= static_cast<double>(num_periods);
  return series[idx] - periodic_mean;
}

}  // namespace

SparPredictor::SparPredictor(const SparOptions& options) : options_(options) {
  PSTORE_CHECK(options_.period >= 1);
  PSTORE_CHECK(options_.num_periods >= 1);
  PSTORE_CHECK(options_.num_recent >= 1);
  PSTORE_CHECK(options_.max_tau >= 1);
  PSTORE_CHECK(options_.tau_stride >= 1);
}

size_t SparPredictor::FittedTauFor(size_t tau) const {
  if (options_.tau_stride == 1) return tau;
  // Fitted taus are 1, 1+stride, 1+2*stride, ...; snap to the nearest.
  const size_t stride = options_.tau_stride;
  const size_t index = (tau - 1 + stride / 2) / stride;
  size_t fitted = 1 + index * stride;
  if (fitted > options_.max_tau) fitted -= stride;
  return fitted;
}

size_t SparPredictor::MinHistory() const {
  // The most demanding lag is dy(t - m), which reaches back
  // m + n*T slots from "now" (index size-1).
  return options_.num_periods * options_.period + options_.num_recent + 1;
}

Status SparPredictor::Fit(const TimeSeries& training) {
  const size_t n = options_.num_periods;
  const size_t m = options_.num_recent;
  const size_t period = options_.period;
  const size_t cols = n + m;

  // dy(idx) is independent of tau; precompute it once for all valid idx.
  std::vector<double> offsets(training.size(), 0.0);
  const size_t first_offset_idx = n * period;
  if (first_offset_idx >= training.size()) {
    return Status::InvalidArgument("SPAR: training series too short");
  }
  for (size_t idx = first_offset_idx; idx < training.size(); ++idx) {
    offsets[idx] = RecentOffset(training, idx, period, n);
  }

  coefficients_.assign(options_.max_tau, {});
  for (size_t tau = 1; tau <= options_.max_tau;
       tau += options_.tau_stride) {
    // Predicted index p = t + tau. The features need:
    //   periodic: p - k*period      >= 0  for k <= n
    //   recent:   p - tau - j - n*period >= 0  for j <= m
    const size_t first_p = n * period + m + tau;
    if (first_p >= training.size()) {
      return Status::InvalidArgument(
          "SPAR: training series too short (" +
          std::to_string(training.size()) + " slots, need > " +
          std::to_string(first_p) + ")");
    }
    const size_t rows = training.size() - first_p;
    Matrix a(rows, cols);
    std::vector<double> b(rows);
    for (size_t r = 0; r < rows; ++r) {
      const size_t p = first_p + r;
      for (size_t k = 1; k <= n; ++k) {
        a.At(r, k - 1) = training[p - k * period];
      }
      const size_t t = p - tau;
      for (size_t j = 1; j <= m; ++j) {
        a.At(r, n + j - 1) = offsets[t - j];
      }
      b[r] = training[p];
    }
    StatusOr<std::vector<double>> solved =
        SolveLeastSquares(a, b, options_.ridge);
    if (!solved.ok()) return solved.status();
    coefficients_[tau - 1] = std::move(*solved);
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> SparPredictor::PredictAhead(const TimeSeries& history,
                                             size_t tau) const {
  if (!fitted_) return Status::FailedPrecondition("SPAR: not fitted");
  if (tau < 1 || tau > options_.max_tau) {
    return Status::OutOfRange("SPAR: tau " + std::to_string(tau) +
                              " outside fitted range [1, " +
                              std::to_string(options_.max_tau) + "]");
  }
  if (history.size() < MinHistory()) {
    return Status::InvalidArgument("SPAR: history too short");
  }
  const size_t n = options_.num_periods;
  const size_t m = options_.num_recent;
  const size_t period = options_.period;
  const std::vector<double>& coef = coefficients_[FittedTauFor(tau) - 1];
  PSTORE_CHECK(!coef.empty());

  // "Now" is the last observed index; the predicted index is t + tau.
  const size_t t = history.size() - 1;
  const size_t p = t + tau;
  // The periodic lags p - k*period must be observed, i.e. <= t. Since
  // tau <= max_tau <= period is not guaranteed, check explicitly.
  if (p < n * period || p - period > t) {
    return Status::InvalidArgument(
        "SPAR: tau exceeds one period; periodic lag unobserved");
  }
  double prediction = 0.0;
  for (size_t k = 1; k <= n; ++k) {
    prediction += coef[k - 1] * history[p - k * period];
  }
  for (size_t j = 1; j <= m; ++j) {
    prediction += coef[n + j - 1] * RecentOffset(history, t - j, period, n);
  }
  return prediction;
}

Status SparPredictor::SaveToFile(const std::string& path) const {
  if (!fitted_) {
    return Status::FailedPrecondition("SPAR: nothing to save (not fitted)");
  }
  std::ofstream out(path);
  if (!out.good()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << "SPARv1\n";
  out << options_.period << ' ' << options_.num_periods << ' '
      << options_.num_recent << ' ' << options_.max_tau << ' '
      << options_.tau_stride << '\n';
  char buf[32];
  for (size_t tau = 1; tau <= options_.max_tau; ++tau) {
    const std::vector<double>& coef = coefficients_[tau - 1];
    if (coef.empty()) continue;  // skipped by tau_stride
    out << tau;
    for (const double c : coef) {
      // Hex floats round-trip exactly.
      std::snprintf(buf, sizeof(buf), " %a", c);
      out << buf;
    }
    out << '\n';
  }
  out.flush();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

StatusOr<SparPredictor> SparPredictor::LoadFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return Status::NotFound("cannot open: " + path);
  std::string magic;
  if (!std::getline(in, magic) || magic != "SPARv1") {
    return Status::InvalidArgument("not a SPARv1 model file: " + path);
  }
  SparOptions options;
  {
    std::string line;
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("truncated model header: " + path);
    }
    std::istringstream header(line);
    if (!(header >> options.period >> options.num_periods >>
          options.num_recent >> options.max_tau >> options.tau_stride)) {
      return Status::InvalidArgument("malformed model header: " + path);
    }
  }
  if (options.period < 1 || options.num_periods < 1 ||
      options.num_recent < 1 || options.max_tau < 1 ||
      options.tau_stride < 1) {
    return Status::InvalidArgument("invalid model options: " + path);
  }
  SparPredictor model(options);
  model.coefficients_.assign(options.max_tau, {});
  const size_t cols = options.num_periods + options.num_recent;
  std::string line;
  size_t loaded = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    size_t tau = 0;
    if (!(row >> tau) || tau < 1 || tau > options.max_tau) {
      return Status::InvalidArgument("malformed coefficient row: " + path);
    }
    std::vector<double> coef;
    coef.reserve(cols);
    std::string token;
    while (row >> token) {
      coef.push_back(std::strtod(token.c_str(), nullptr));
    }
    if (coef.size() != cols) {
      return Status::InvalidArgument("coefficient count mismatch in " + path);
    }
    model.coefficients_[tau - 1] = std::move(coef);
    ++loaded;
  }
  if (loaded == 0) {
    return Status::InvalidArgument("model file has no coefficients: " + path);
  }
  // Every stride-aligned tau must be present.
  for (size_t tau = 1; tau <= options.max_tau; tau += options.tau_stride) {
    if (model.coefficients_[tau - 1].empty()) {
      return Status::InvalidArgument("missing coefficients for tau " +
                                     std::to_string(tau) + " in " + path);
    }
  }
  model.fitted_ = true;
  return model;
}

const std::vector<double>& SparPredictor::CoefficientsFor(size_t tau) const {
  PSTORE_CHECK(fitted_);
  PSTORE_CHECK(tau >= 1 && tau <= options_.max_tau);
  return coefficients_[FittedTauFor(tau) - 1];
}

}  // namespace pstore
