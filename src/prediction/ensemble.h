#ifndef PSTORE_PREDICTION_ENSEMBLE_H_
#define PSTORE_PREDICTION_ENSEMBLE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time_series.h"
#include "prediction/predictor.h"
#include "prediction/residual_tracker.h"

namespace pstore {

enum class EnsembleMode {
  // Serve every prediction from the single member with the lowest
  // rolling one-step error; re-selected each epoch.
  kSwitch,
  // Serve the inverse-error-weighted combination of all members.
  kWeight,
};

struct EnsembleOptions {
  EnsembleMode mode = EnsembleMode::kSwitch;
  // Re-selection (or re-weighting) cadence in observed slots.
  size_t epoch_slots = 288;
  // Rolling window of one-step relative residuals kept per member.
  size_t score_window = 288;
  // kWeight mode: members never drop below this share of the total
  // weight (so a temporarily bad model can recover).
  double weight_floor = 0.02;
};

// Model-selection ensemble (ROADMAP item 3): owns a pool of member
// predictors, scores each member's one-step forecasts on a rolling
// window as Update() walks the history forward, and once per epoch
// either switches to the best member (kSwitch) or re-derives
// inverse-error weights (kWeight). Members that fail to fit are carried
// unfitted and excluded until a later Update/Fit succeeds. Initial
// scores come from a walk-forward backtest over the tail of the
// training window, so the first epoch already starts from the best
// model rather than member order.
class EnsemblePredictor : public LoadPredictor {
 public:
  explicit EnsemblePredictor(const EnsembleOptions& options);

  // Adds a member; call before Fit. The ensemble owns the model.
  void AddMember(std::unique_ptr<LoadPredictor> model);
  size_t member_count() const { return members_.size(); }

  Status Fit(const TimeSeries& training) override;
  StatusOr<double> PredictAhead(const TimeSeries& history,
                                size_t tau) const override;
  StatusOr<std::vector<double>> PredictHorizon(
      const TimeSeries& history, size_t horizon) const override;
  StatusOr<bool> Update(const TimeSeries& history) override;
  std::string name() const override { return "Ensemble"; }
  // The member currently serving predictions (switch mode); the
  // ensemble itself in weight mode.
  std::string active_name() const override;

  // Introspection for tests, traces, and benches.
  size_t active_index() const { return active_; }
  size_t switches() const { return switches_; }
  // Current inverse-error member weights (normalized over fitted
  // members). Maintained in both modes; only kWeight serves from them —
  // kSwitch serves the active member but still tracks weights for
  // introspection.
  std::vector<double> weights() const;
  const LoadPredictor& member(size_t index) const {
    return *members_[index].model;
  }

 private:
  struct Member {
    std::unique_ptr<LoadPredictor> model;
    bool fitted = false;
    RollingResidualTracker window;
    // One-step prediction staged for the next observed slot.
    double pending = 0.0;
    bool has_pending = false;
    // Normalized weight (kWeight mode).
    double weight = 0.0;
    // Last known score (mean relative one-step error; lower is better).
    double score = 0.0;
    bool has_score = false;
  };

  // Recomputes active_/weights from the rolling windows (falls back to
  // the previous score where a window has no samples yet).
  bool Rescore();

  EnsembleOptions options_;
  std::vector<Member> members_;
  bool fitted_ = false;
  size_t active_ = 0;
  size_t switches_ = 0;
  size_t last_history_size_ = 0;
  size_t slots_since_rescore_ = 0;
};

}  // namespace pstore

#endif  // PSTORE_PREDICTION_ENSEMBLE_H_
