#ifndef PSTORE_PREDICTION_AR_MODEL_H_
#define PSTORE_PREDICTION_AR_MODEL_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/time_series.h"
#include "prediction/predictor.h"

namespace pstore {

// Options for the plain auto-regressive baseline (paper §5 compares SPAR
// against AR and ARMA).
struct ArOptions {
  // Number of lags p in y(t+1) = c + sum_{i=1..p} phi_i y(t+1-i).
  size_t order = 30;
  double ridge = 1e-8;
};

// AR(p) model fitted one-step-ahead by least squares; multi-step
// forecasts iterate the one-step model, feeding predictions back in.
class ArPredictor : public LoadPredictor {
 public:
  explicit ArPredictor(const ArOptions& options);

  Status Fit(const TimeSeries& training) override;
  StatusOr<double> PredictAhead(const TimeSeries& history,
                                size_t tau) const override;
  // Overridden so a horizon forecast iterates once instead of per-tau.
  StatusOr<std::vector<double>> PredictHorizon(
      const TimeSeries& history, size_t horizon) const override;
  std::string name() const override { return "AR"; }

  // Fitted [c, phi_1..phi_p]. Requires Fit() to have succeeded.
  const std::vector<double>& coefficients() const { return coefficients_; }

 private:
  ArOptions options_;
  bool fitted_ = false;
  std::vector<double> coefficients_;
};

}  // namespace pstore

#endif  // PSTORE_PREDICTION_AR_MODEL_H_
