#include "prediction/predictor_spec.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "prediction/ar_model.h"
#include "prediction/arma_model.h"
#include "prediction/ensemble.h"
#include "prediction/holt_winters.h"
#include "prediction/matrix_factorization.h"
#include "prediction/naive_models.h"
#include "prediction/shift_aware.h"
#include "prediction/spar_model.h"

namespace pstore {
namespace {

// ---------------------------------------------------------------------
// Grammar (see predictor_spec.h): recursive descent, no lookahead beyond
// one character.

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

class SpecParser {
 public:
  explicit SpecParser(const std::string& text) : text_(text) {}

  StatusOr<PredictorSpec> ParseOne() {
    StatusOr<PredictorSpec> spec = ParseSpec();
    if (!spec.ok()) return spec.status();
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing characters");
    }
    return spec;
  }

  StatusOr<std::vector<PredictorSpec>> ParseList() {
    std::vector<PredictorSpec> specs;
    while (true) {
      StatusOr<PredictorSpec> spec = ParseSpec();
      if (!spec.ok()) return spec.status();
      specs.push_back(std::move(*spec));
      SkipWhitespace();
      if (pos_ == text_.size()) break;
      if (text_[pos_] != ',') return Error("expected ',' between specs");
      ++pos_;
    }
    return specs;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("predictor spec '" + text_ +
                                   "': " + message + " at position " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  StatusOr<std::string> ParseIdentifier() {
    SkipWhitespace();
    if (pos_ >= text_.size() || !IsIdentStart(text_[pos_])) {
      return Error("expected an identifier");
    }
    const size_t begin = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    return text_.substr(begin, pos_ - begin);
  }

  // Raw param value: everything up to the next ',' or ')', trimmed.
  StatusOr<std::string> ParseParamValue() {
    SkipWhitespace();
    const size_t begin = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != ')') {
      ++pos_;
    }
    size_t end = pos_;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text_[end - 1])) != 0) {
      --end;
    }
    if (end == begin) return Error("expected a parameter value");
    return text_.substr(begin, end - begin);
  }

  StatusOr<PredictorSpec> ParseSpec() {
    PredictorSpec spec;
    StatusOr<std::string> kind = ParseIdentifier();
    if (!kind.ok()) return kind.status();
    spec.kind = std::move(*kind);
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != '(') return spec;
    ++pos_;  // '('
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ')') {
      ++pos_;
      return spec;
    }
    while (true) {
      Status arg = ParseArg(&spec);
      if (!arg.ok()) return arg;
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated '('");
      if (text_[pos_] == ')') {
        ++pos_;
        return spec;
      }
      if (text_[pos_] != ',') return Error("expected ',' or ')'");
      ++pos_;
    }
  }

  // One argument: `key=value` parameter or a nested child spec.
  Status ParseArg(PredictorSpec* parent) {
    StatusOr<std::string> ident = ParseIdentifier();
    if (!ident.ok()) return ident.status();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '=') {
      ++pos_;
      StatusOr<std::string> value = ParseParamValue();
      if (!value.ok()) return value.status();
      if (!parent->params.emplace(*ident, *value).second) {
        return Error("duplicate parameter '" + *ident + "'");
      }
      return Status::OK();
    }
    PredictorSpec child;
    child.kind = std::move(*ident);
    if (pos_ < text_.size() && text_[pos_] == '(') {
      // Re-enter ParseSpec from the '(' by rewinding to parse the child
      // with its arguments: simplest is to parse args inline here.
      ++pos_;
      SkipWhitespace();
      if (pos_ < text_.size() && text_[pos_] == ')') {
        ++pos_;
      } else {
        while (true) {
          Status arg = ParseArg(&child);
          if (!arg.ok()) return arg;
          SkipWhitespace();
          if (pos_ >= text_.size()) return Error("unterminated '('");
          if (text_[pos_] == ')') {
            ++pos_;
            break;
          }
          if (text_[pos_] != ',') return Error("expected ',' or ')'");
          ++pos_;
        }
      }
    }
    parent->children.push_back(std::move(child));
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void AppendFormatted(const PredictorSpec& spec, std::string* out) {
  out->append(spec.kind);
  if (spec.children.empty() && spec.params.empty()) return;
  out->push_back('(');
  bool first = true;
  for (const PredictorSpec& child : spec.children) {
    if (!first) out->push_back(',');
    first = false;
    AppendFormatted(child, out);
  }
  for (const std::pair<const std::string, std::string>& kv : spec.params) {
    if (!first) out->push_back(',');
    first = false;
    out->append(kv.first);
    out->push_back('=');
    out->append(kv.second);
  }
  out->push_back(')');
}

Status NoChildren(const PredictorSpec& spec) {
  if (spec.children.empty()) return Status::OK();
  return Status::InvalidArgument("predictor kind '" + spec.kind +
                                 "' takes no child specs");
}

// ---------------------------------------------------------------------
// Factories. Each consumes its params (so leftovers are typos) and
// validates child counts. Plain function pointers keep the registry out
// of hot-path-perf lint territory.

using Factory = StatusOr<std::unique_ptr<LoadPredictor>> (*)(
    PredictorSpec spec, const PredictorContext& context);

StatusOr<std::unique_ptr<LoadPredictor>> MakeSpar(
    PredictorSpec spec, const PredictorContext& context) {
  Status status = NoChildren(spec);
  if (!status.ok()) return status;
  SparOptions options;
  options.period = context.period;
  options.max_tau = context.max_tau;
  status = ConsumeSpecParam(&spec, "period", &options.period).status();
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "n", &options.num_periods).status();
  }
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "m", &options.num_recent).status();
  }
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "max_tau", &options.max_tau).status();
  }
  if (status.ok()) {
    status =
        ConsumeSpecParam(&spec, "tau_stride", &options.tau_stride).status();
  }
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "ridge", &options.ridge).status();
  }
  if (!status.ok()) return status;
  status = CheckSpecParamsConsumed(spec);
  if (!status.ok()) return status;
  if (options.period == 0 || options.num_periods == 0 ||
      options.max_tau == 0) {
    return Status::InvalidArgument(
        "spar needs period, n, and max_tau all >= 1");
  }
  return std::unique_ptr<LoadPredictor>(new SparPredictor(options));
}

StatusOr<std::unique_ptr<LoadPredictor>> MakeAr(
    PredictorSpec spec, const PredictorContext& context) {
  (void)context;
  Status status = NoChildren(spec);
  if (!status.ok()) return status;
  ArOptions options;
  status = ConsumeSpecParam(&spec, "p", &options.order).status();
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "ridge", &options.ridge).status();
  }
  if (!status.ok()) return status;
  status = CheckSpecParamsConsumed(spec);
  if (!status.ok()) return status;
  if (options.order == 0) {
    return Status::InvalidArgument("ar needs p >= 1");
  }
  return std::unique_ptr<LoadPredictor>(new ArPredictor(options));
}

StatusOr<std::unique_ptr<LoadPredictor>> MakeArma(
    PredictorSpec spec, const PredictorContext& context) {
  (void)context;
  Status status = NoChildren(spec);
  if (!status.ok()) return status;
  ArmaOptions options;
  bool long_ar_given = false;
  status = ConsumeSpecParam(&spec, "p", &options.ar_order).status();
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "q", &options.ma_order).status();
  }
  if (status.ok()) {
    StatusOr<bool> given =
        ConsumeSpecParam(&spec, "long_ar", &options.long_ar_order);
    if (!given.ok()) {
      status = given.status();
    } else {
      long_ar_given = *given;
    }
  }
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "ridge", &options.ridge).status();
  }
  if (!status.ok()) return status;
  status = CheckSpecParamsConsumed(spec);
  if (!status.ok()) return status;
  if (options.ar_order == 0) {
    return Status::InvalidArgument("arma needs p >= 1");
  }
  if (!long_ar_given &&
      options.long_ar_order < options.ar_order + options.ma_order) {
    options.long_ar_order = 2 * (options.ar_order + options.ma_order);
  }
  if (options.long_ar_order < options.ar_order + options.ma_order) {
    return Status::InvalidArgument("arma needs long_ar >= p + q");
  }
  return std::unique_ptr<LoadPredictor>(new ArmaPredictor(options));
}

StatusOr<std::unique_ptr<LoadPredictor>> MakeHoltWinters(
    PredictorSpec spec, const PredictorContext& context) {
  Status status = NoChildren(spec);
  if (!status.ok()) return status;
  HoltWintersOptions options;
  options.period = context.period;
  status = ConsumeSpecParam(&spec, "period", &options.period).status();
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "alpha", &options.alpha).status();
  }
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "beta", &options.beta).status();
  }
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "gamma", &options.gamma).status();
  }
  if (!status.ok()) return status;
  status = CheckSpecParamsConsumed(spec);
  if (!status.ok()) return status;
  if (options.period < 2) {
    return Status::InvalidArgument("hw needs period >= 2");
  }
  return std::unique_ptr<LoadPredictor>(new HoltWintersPredictor(options));
}

StatusOr<std::unique_ptr<LoadPredictor>> MakeSeasonalNaive(
    PredictorSpec spec, const PredictorContext& context) {
  Status status = NoChildren(spec);
  if (!status.ok()) return status;
  size_t period = context.period;
  status = ConsumeSpecParam(&spec, "period", &period).status();
  if (!status.ok()) return status;
  status = CheckSpecParamsConsumed(spec);
  if (!status.ok()) return status;
  if (period == 0) {
    return Status::InvalidArgument("seasonal_naive needs period >= 1");
  }
  return std::unique_ptr<LoadPredictor>(new SeasonalNaivePredictor(period));
}

StatusOr<std::unique_ptr<LoadPredictor>> MakeLastValue(
    PredictorSpec spec, const PredictorContext& context) {
  (void)context;
  Status status = NoChildren(spec);
  if (!status.ok()) return status;
  status = CheckSpecParamsConsumed(spec);
  if (!status.ok()) return status;
  return std::unique_ptr<LoadPredictor>(new LastValuePredictor());
}

StatusOr<std::unique_ptr<LoadPredictor>> MakeMatrixFactorization(
    PredictorSpec spec, const PredictorContext& context) {
  Status status = NoChildren(spec);
  if (!status.ok()) return status;
  MatrixFactorizationOptions options;
  options.period = context.period;
  status = ConsumeSpecParam(&spec, "period", &options.period).status();
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "rank", &options.rank).status();
  }
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "iters", &options.iterations).status();
  }
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "ridge", &options.ridge).status();
  }
  if (status.ok()) {
    status =
        ConsumeSpecParam(&spec, "lookback", &options.u_lookback).status();
  }
  if (!status.ok()) return status;
  status = CheckSpecParamsConsumed(spec);
  if (!status.ok()) return status;
  if (options.period < 2 || options.rank == 0 || options.iterations == 0 ||
      options.ridge <= 0.0 || options.u_lookback == 0) {
    return Status::InvalidArgument(
        "mf needs period >= 2, rank/iters/lookback >= 1, ridge > 0");
  }
  return std::unique_ptr<LoadPredictor>(
      new MatrixFactorizationPredictor(options));
}

StatusOr<std::unique_ptr<LoadPredictor>> MakeShiftAware(
    PredictorSpec spec, const PredictorContext& context) {
  if (spec.children.size() > 1) {
    return Status::InvalidArgument("shift wraps exactly one child spec");
  }
  PredictorSpec child;
  if (spec.children.empty()) {
    child.kind = "spar";
  } else {
    child = spec.children[0];
  }
  StatusOr<std::unique_ptr<LoadPredictor>> base =
      MakePredictor(child, context);
  if (!base.ok()) return base.status();
  ShiftAwareOptions options;
  Status status =
      ConsumeSpecParam(&spec, "window", &options.residual_window).status();
  if (status.ok()) {
    status =
        ConsumeSpecParam(&spec, "threshold", &options.threshold).status();
  }
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "min_mre", &options.min_mre).status();
  }
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "cooldown", &options.cooldown).status();
  }
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "refit_window", &options.refit_window)
                 .status();
  }
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "baseline_samples",
                              &options.baseline_samples)
                 .status();
  }
  if (!status.ok()) return status;
  status = CheckSpecParamsConsumed(spec);
  if (!status.ok()) return status;
  if (options.residual_window == 0 || options.threshold <= 1.0) {
    return Status::InvalidArgument(
        "shift needs window >= 1 and threshold > 1");
  }
  return std::unique_ptr<LoadPredictor>(
      new ShiftAwarePredictor(std::move(*base), options));
}

StatusOr<std::unique_ptr<LoadPredictor>> MakeEnsemble(
    PredictorSpec spec, const PredictorContext& context) {
  EnsembleOptions options;
  std::string mode;
  Status status = ConsumeSpecParam(&spec, "mode", &mode).status();
  if (status.ok() && !mode.empty()) {
    if (mode == "switch") {
      options.mode = EnsembleMode::kSwitch;
    } else if (mode == "weight") {
      options.mode = EnsembleMode::kWeight;
    } else {
      return Status::InvalidArgument(
          "ensemble mode must be 'switch' or 'weight', got '" + mode + "'");
    }
  }
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "epoch", &options.epoch_slots).status();
  }
  if (status.ok()) {
    status =
        ConsumeSpecParam(&spec, "window", &options.score_window).status();
  }
  if (status.ok()) {
    status = ConsumeSpecParam(&spec, "floor", &options.weight_floor).status();
  }
  if (!status.ok()) return status;
  status = CheckSpecParamsConsumed(spec);
  if (!status.ok()) return status;
  if (options.epoch_slots == 0 || options.score_window == 0 ||
      options.weight_floor < 0.0 || options.weight_floor >= 1.0) {
    return Status::InvalidArgument(
        "ensemble needs epoch/window >= 1 and floor in [0, 1)");
  }
  std::vector<PredictorSpec> children = spec.children;
  if (children.empty()) {
    // Default pool: the paper's SPAR plus the AR and Holt-Winters
    // baselines — cheap, diverse, and all fit from a few weeks of data.
    PredictorSpec spar;
    spar.kind = "spar";
    PredictorSpec ar;
    ar.kind = "ar";
    PredictorSpec hw;
    hw.kind = "hw";
    children.push_back(std::move(spar));
    children.push_back(std::move(ar));
    children.push_back(std::move(hw));
  }
  std::unique_ptr<EnsemblePredictor> ensemble(
      new EnsemblePredictor(options));
  for (const PredictorSpec& child : children) {
    if (child.kind == "ensemble") {
      return Status::InvalidArgument("ensembles cannot nest ensembles");
    }
    StatusOr<std::unique_ptr<LoadPredictor>> member =
        MakePredictor(child, context);
    if (!member.ok()) return member.status();
    ensemble->AddMember(std::move(*member));
  }
  return std::unique_ptr<LoadPredictor>(std::move(ensemble));
}

struct RegistryEntry {
  const char* kind;
  Factory factory;
};

// Sorted by kind so RegisteredPredictorKinds() is sorted for free.
constexpr RegistryEntry kRegistry[] = {
    {"ar", &MakeAr},
    {"arma", &MakeArma},
    {"ensemble", &MakeEnsemble},
    {"holt_winters", &MakeHoltWinters},
    {"hw", &MakeHoltWinters},
    {"last_value", &MakeLastValue},
    {"matrix_factorization", &MakeMatrixFactorization},
    {"mf", &MakeMatrixFactorization},
    {"naive", &MakeSeasonalNaive},
    {"seasonal_naive", &MakeSeasonalNaive},
    {"shift", &MakeShiftAware},
    {"spar", &MakeSpar},
};

}  // namespace

StatusOr<PredictorSpec> ParsePredictorSpec(const std::string& text) {
  SpecParser parser(text);
  return parser.ParseOne();
}

StatusOr<std::vector<PredictorSpec>> ParsePredictorSpecList(
    const std::string& text) {
  SpecParser parser(text);
  return parser.ParseList();
}

std::string FormatPredictorSpec(const PredictorSpec& spec) {
  std::string out;
  AppendFormatted(spec, &out);
  return out;
}

StatusOr<bool> ConsumeSpecParam(PredictorSpec* spec, const std::string& key,
                                size_t* out) {
  const auto it = spec->params.find(key);
  if (it == spec->params.end()) return false;
  const std::string& value = it->second;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("param '" + key + "' of '" + spec->kind +
                                   "' is not an integer: '" + value + "'");
  }
  *out = static_cast<size_t>(parsed);
  spec->params.erase(it);
  return true;
}

StatusOr<bool> ConsumeSpecParam(PredictorSpec* spec, const std::string& key,
                                double* out) {
  const auto it = spec->params.find(key);
  if (it == spec->params.end()) return false;
  const std::string& value = it->second;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("param '" + key + "' of '" + spec->kind +
                                   "' is not a number: '" + value + "'");
  }
  *out = parsed;
  spec->params.erase(it);
  return true;
}

StatusOr<bool> ConsumeSpecParam(PredictorSpec* spec, const std::string& key,
                                std::string* out) {
  const auto it = spec->params.find(key);
  if (it == spec->params.end()) return false;
  *out = it->second;
  spec->params.erase(it);
  return true;
}

Status CheckSpecParamsConsumed(const PredictorSpec& spec) {
  if (spec.params.empty()) return Status::OK();
  std::string keys;
  for (const std::pair<const std::string, std::string>& kv : spec.params) {
    if (!keys.empty()) keys += ", ";
    keys += kv.first;
  }
  return Status::InvalidArgument("unknown parameter(s) for '" + spec.kind +
                                 "': " + keys);
}

std::vector<std::string> RegisteredPredictorKinds() {
  std::vector<std::string> kinds;
  kinds.reserve(std::size(kRegistry));
  for (const RegistryEntry& entry : kRegistry) {
    kinds.push_back(entry.kind);
  }
  return kinds;
}

StatusOr<std::unique_ptr<LoadPredictor>> MakePredictor(
    const PredictorSpec& spec, const PredictorContext& context) {
  for (const RegistryEntry& entry : kRegistry) {
    if (spec.kind == entry.kind) return entry.factory(spec, context);
  }
  std::string kinds;
  for (const std::string& kind : RegisteredPredictorKinds()) {
    if (!kinds.empty()) kinds += ", ";
    kinds += kind;
  }
  return Status::InvalidArgument("unknown predictor kind '" + spec.kind +
                                 "' (registered: " + kinds + ")");
}

StatusOr<std::unique_ptr<LoadPredictor>> MakePredictor(
    const std::string& text, const PredictorContext& context) {
  StatusOr<PredictorSpec> spec = ParsePredictorSpec(text);
  if (!spec.ok()) return spec.status();
  return MakePredictor(*spec, context);
}

}  // namespace pstore
