#ifndef PSTORE_PREDICTION_RESIDUAL_TRACKER_H_
#define PSTORE_PREDICTION_RESIDUAL_TRACKER_H_

#include <cstddef>
#include <vector>

namespace pstore {

// Rolling mean of one-step relative forecast residuals over a fixed-size
// ring. Shared by the shift-triggered refit policy, ShiftAwarePredictor,
// and EnsemblePredictor. Slots whose actual load is below kMreMinActual
// (see predictor.h) are skipped, mirroring the MRE reporting guard, so a
// burst of idle slots cannot fake a distribution shift.
class RollingResidualTracker {
 public:
  explicit RollingResidualTracker(size_t capacity);

  // Records |predicted - actual| / |actual| unless the actual is ~zero.
  void Add(double actual, double predicted);

  size_t capacity() const { return ring_.size(); }
  size_t count() const { return count_; }
  bool full() const { return count_ == ring_.size(); }
  // Mean relative residual over the window; 0 when empty.
  double mean() const;
  void Reset();

 private:
  std::vector<double> ring_;
  size_t next_ = 0;
  size_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace pstore

#endif  // PSTORE_PREDICTION_RESIDUAL_TRACKER_H_
