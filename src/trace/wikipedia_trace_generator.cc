#include "trace/wikipedia_trace_generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/time_series.h"

namespace pstore {
namespace {

struct EditionProfile {
  double base;            // mean requests per hour
  double diurnal_amp;     // diurnal swing as fraction of base
  double weekly_amp;      // weekend dip as fraction of base
  double noise_sigma;     // per-hour multiplicative noise
  double event_rate;      // expected transient "news events" per day
  double event_boost;     // event magnitude as fraction of base
  int peak_hour;          // local hour of peak traffic
};

EditionProfile ProfileFor(WikipediaEdition edition) {
  switch (edition) {
    case WikipediaEdition::kEnglish:
      // Strongly periodic, large, smooth: MRE stays in single digits.
      return {7.0e6, 0.35, 0.05, 0.02, 0.05, 0.25, 16};
    case WikipediaEdition::kGerman:
      // Smaller, noisier, less periodic: visibly harder to predict.
      return {1.6e6, 0.45, 0.12, 0.06, 0.25, 0.5, 19};
  }
  PSTORE_CHECK(false);
}

}  // namespace

TimeSeries GenerateWikipediaTrace(const WikipediaTraceOptions& options) {
  PSTORE_CHECK(options.days > 0);
  const EditionProfile profile = ProfileFor(options.edition);
  Rng rng(options.seed);

  TimeSeries out(3600.0);
  // Pending transient event: hours remaining and current magnitude.
  double event_level = 0.0;
  for (int day = 0; day < options.days; ++day) {
    const int day_of_week = day % 7;
    const bool weekend = day_of_week == 5 || day_of_week == 6;
    const double week_factor = weekend ? 1.0 - profile.weekly_amp : 1.0;
    const double day_amp = std::exp(0.03 * rng.NextGaussian());

    for (int hour = 0; hour < 24; ++hour) {
      // New transient event (news spike) begins with small probability.
      if (rng.NextBool(profile.event_rate / 24.0)) {
        event_level =
            profile.base * profile.event_boost * rng.NextDouble(0.5, 1.5);
      }
      const double phase = 2.0 * M_PI *
                           static_cast<double>(hour - profile.peak_hour) /
                           24.0;
      const double diurnal = 1.0 + profile.diurnal_amp * std::cos(phase);
      double level = profile.base * diurnal * week_factor * day_amp;
      level += event_level;
      // Events decay with a half-life of ~4 hours.
      event_level *= std::exp(-std::log(2.0) / 4.0);
      const double noise = 1.0 + profile.noise_sigma * rng.NextGaussian();
      out.Append(std::max(0.0, level * noise));
    }
  }
  return out;
}

}  // namespace pstore
