#include "trace/trace_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/status.h"
#include "common/time_series.h"

namespace pstore {

Status SaveTraceCsv(const TimeSeries& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << "# slot_seconds=" << trace.slot_seconds() << "\n";
  out << "slot,value\n";
  char buf[64];
  for (size_t i = 0; i < trace.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%zu,%.10g\n", i, trace[i]);
    out << buf;
  }
  out.flush();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

StatusOr<TimeSeries> LoadTraceCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return Status::NotFound("cannot open: " + path);
  }
  double slot_seconds = 60.0;
  std::vector<double> values;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      const auto pos = line.find("slot_seconds=");
      if (pos != std::string::npos) {
        slot_seconds = std::strtod(line.c_str() + pos + 13, nullptr);
        if (slot_seconds <= 0.0) {
          return Status::InvalidArgument("bad slot_seconds in " + path);
        }
      }
      continue;
    }
    const auto comma = line.find(',');
    if (comma == std::string::npos) continue;
    const std::string value_field = line.substr(comma + 1);
    char* end = nullptr;
    const double value = std::strtod(value_field.c_str(), &end);
    if (end == value_field.c_str()) continue;  // header row
    values.push_back(value);
  }
  return TimeSeries(slot_seconds, std::move(values));
}

}  // namespace pstore
