#ifndef PSTORE_TRACE_B2W_TRACE_GENERATOR_H_
#define PSTORE_TRACE_B2W_TRACE_GENERATOR_H_

#include <cstdint>

#include "common/time_series.h"

namespace pstore {

// Options for the synthetic B2W-like aggregate load generator.
//
// The real B2W traces are proprietary; this generator reproduces the
// published structure of the workload (paper §1, §5, §7): a strong diurnal
// cycle whose peak is ~10x the trough (Fig. 1), day-to-day amplitude
// variability, weekly seasonality, occasional promotion windows, and an
// optional Black-Friday-style surge (Fig. 13). SPAR and the planner only
// consume this aggregate signal, so matching its generative structure
// preserves the behaviour the paper evaluates.
struct B2wTraceOptions {
  // Number of days to generate (1440 one-minute slots per day).
  int days = 3;
  // Mean daily peak, in requests per minute (Fig. 1 peaks near 2.2e4).
  double peak_requests_per_min = 22000.0;
  // Trough as a fraction of the peak; the paper reports peak ~= 10x trough.
  double trough_fraction = 0.1;
  // Minute of day at which load peaks (15:00; the raised-cosine shape
  // then puts the trough at 03:00, matching Fig. 1's overnight dip).
  int peak_minute_of_day = 900;
  // Log-normal sigma of the per-day amplitude multiplier (day-to-day
  // variability "from seasonality of demand to advertising campaigns").
  double daily_amplitude_sigma = 0.06;
  // The amplitude also drifts slowly *within* the day (mean-reverting
  // random walk): demand runs hot or cold for a few hours at a time.
  // This is the transient structure SPAR's recent-offset term exploits.
  // Stationary standard deviation of the drift multiplier:
  double drift_sigma = 0.07;
  // Mean-reversion time of the drift, in minutes.
  double drift_relaxation_minutes = 240.0;
  // Multiplicative Gaussian noise per slot.
  double slot_noise_sigma = 0.05;
  // Weekend load multiplier (mild weekly seasonality).
  double weekend_factor = 0.85;
  // Probability that a given day contains a promotion window; promotions
  // multiply load by (1 + promo_boost) for 2-4 hours.
  double promo_probability = 0.04;
  double promo_boost = 0.6;
  // If >= 0, day index that receives a Black-Friday surge: load jumps
  // sharply shortly after midnight and stays elevated all day.
  int black_friday_day = -1;
  double black_friday_boost = 1.6;
  // Seed for all randomness; equal seeds give bit-identical traces.
  uint64_t seed = 42;
};

// Generates a per-minute aggregate load trace (requests per minute).
// The returned series has slot_seconds() == 60 and days*1440 samples.
TimeSeries GenerateB2wTrace(const B2wTraceOptions& options);

}  // namespace pstore

#endif  // PSTORE_TRACE_B2W_TRACE_GENERATOR_H_
