#ifndef PSTORE_TRACE_WIKIPEDIA_TRACE_GENERATOR_H_
#define PSTORE_TRACE_WIKIPEDIA_TRACE_GENERATOR_H_

#include <cstdint>

#include "common/time_series.h"

namespace pstore {

// Which published Wikipedia page-view trace to imitate (paper §5):
// the English-language edition is strongly periodic and highly
// predictable; the German-language edition has weaker periodicity and
// more transient variation, so prediction error is visibly higher.
enum class WikipediaEdition {
  kEnglish,
  kGerman,
};

// Options for the synthetic Wikipedia-like hourly page-view generator.
struct WikipediaTraceOptions {
  WikipediaEdition edition = WikipediaEdition::kEnglish;
  // Number of days to generate (24 one-hour slots per day).
  int days = 56;
  uint64_t seed = 7;
};

// Generates a per-hour page-request trace (requests per hour). English
// peaks near 1e7 req/h (Fig. 6a left); German near 2.5e6 (Fig. 6a right).
// The returned series has slot_seconds() == 3600 and days*24 samples.
TimeSeries GenerateWikipediaTrace(const WikipediaTraceOptions& options);

}  // namespace pstore

#endif  // PSTORE_TRACE_WIKIPEDIA_TRACE_GENERATOR_H_
