#include "trace/b2w_trace_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/time_series.h"

namespace pstore {
namespace {

constexpr int kMinutesPerDay = 1440;

// Smooth diurnal shape in [0, 1]: raised cosine centred on the peak
// minute, sharpened slightly so the peak is broad and the trough long,
// matching the published B2W curve.
double DiurnalShape(int minute_of_day, int peak_minute) {
  const double phase =
      2.0 * M_PI * static_cast<double>(minute_of_day - peak_minute) /
      static_cast<double>(kMinutesPerDay);
  const double raised = 0.5 * (1.0 + std::cos(phase));
  return std::pow(raised, 1.3);
}

}  // namespace

TimeSeries GenerateB2wTrace(const B2wTraceOptions& options) {
  PSTORE_CHECK(options.days > 0);
  PSTORE_CHECK(options.peak_requests_per_min > 0.0);
  PSTORE_CHECK(options.trough_fraction > 0.0 &&
               options.trough_fraction < 1.0);
  Rng rng(options.seed);

  const double trough = options.peak_requests_per_min * options.trough_fraction;
  const double swing = options.peak_requests_per_min - trough;

  // Ornstein-Uhlenbeck drift of the amplitude around 1.0: theta sets the
  // relaxation rate; the step noise is chosen so the stationary standard
  // deviation equals drift_sigma.
  const double theta =
      options.drift_relaxation_minutes > 0.0
          ? 1.0 / options.drift_relaxation_minutes
          : 1.0;
  const double step_sigma = options.drift_sigma * std::sqrt(2.0 * theta);
  double drift = 1.0;

  TimeSeries out(60.0);
  for (int day = 0; day < options.days; ++day) {
    // Per-day amplitude multiplier (log-normal around 1).
    const double day_amp =
        std::exp(options.daily_amplitude_sigma * rng.NextGaussian());
    // Saturday = day 5, Sunday = day 6 in our synthetic calendar.
    const int day_of_week = day % 7;
    const bool weekend = day_of_week == 5 || day_of_week == 6;
    const double week_factor = weekend ? options.weekend_factor : 1.0;

    // Optional promotion window for this day.
    bool has_promo = rng.NextBool(options.promo_probability);
    int promo_start = 0;
    int promo_len = 0;
    if (has_promo) {
      promo_start = static_cast<int>(rng.NextUint64(kMinutesPerDay - 300));
      promo_len = 120 + static_cast<int>(rng.NextUint64(121));  // 2-4 h
    }

    const bool black_friday = day == options.black_friday_day;

    for (int minute = 0; minute < kMinutesPerDay; ++minute) {
      drift += theta * (1.0 - drift) + step_sigma * rng.NextGaussian();
      drift = std::max(0.2, drift);
      double level =
          trough +
          swing * DiurnalShape(minute, options.peak_minute_of_day) * day_amp *
              week_factor * drift;
      if (has_promo && minute >= promo_start &&
          minute < promo_start + promo_len) {
        level *= 1.0 + options.promo_boost;
      }
      if (black_friday) {
        // The sale opens at midnight: a sharp rush ramps up in ~20 minutes
        // and decays over a few hours, on top of an all-day elevation of
        // the regular diurnal curve.
        const double ramp = std::min(1.0, static_cast<double>(minute) / 20.0);
        const double rush = ramp * std::exp(-static_cast<double>(minute) /
                                            240.0);
        level *= 1.0 + options.black_friday_boost * ramp;
        level += options.peak_requests_per_min *
                 options.black_friday_boost * 0.8 * rush;
      }
      const double noise =
          1.0 + options.slot_noise_sigma * rng.NextGaussian();
      out.Append(std::max(0.0, level * noise));
    }
  }
  return out;
}

}  // namespace pstore
