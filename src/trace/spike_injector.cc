#include "trace/spike_injector.h"

#include <algorithm>

#include "common/time_series.h"

namespace pstore {

TimeSeries InjectSpike(const TimeSeries& base, const SpikeOptions& options) {
  TimeSeries out = base;
  const double extra = options.magnitude - 1.0;
  for (size_t i = 0; i < out.size(); ++i) {
    if (i < options.start_slot) continue;
    const size_t offset = i - options.start_slot;
    double factor = 0.0;
    if (offset < options.ramp_slots) {
      factor = options.ramp_slots == 0
                   ? 1.0
                   : static_cast<double>(offset + 1) /
                         static_cast<double>(options.ramp_slots);
    } else if (offset < options.ramp_slots + options.sustain_slots) {
      factor = 1.0;
    } else if (offset < options.ramp_slots + options.sustain_slots +
                            options.decay_slots) {
      const size_t into_decay =
          offset - options.ramp_slots - options.sustain_slots;
      factor = options.decay_slots == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(into_decay + 1) /
                               static_cast<double>(options.decay_slots);
    } else {
      break;
    }
    out[i] *= 1.0 + extra * std::max(0.0, factor);
  }
  return out;
}

}  // namespace pstore
