#ifndef PSTORE_TRACE_SPIKE_INJECTOR_H_
#define PSTORE_TRACE_SPIKE_INJECTOR_H_

#include <cstddef>

#include "common/time_series.h"

namespace pstore {

// Parameters for an unexpected flash-crowd spike (paper §4.3.1: "a news
// event causing a flash crowd of customers on the site", evaluated in
// Fig. 11). The spike ramps up quickly, sustains, then decays.
struct SpikeOptions {
  size_t start_slot = 0;
  // Slots over which load ramps from baseline to the full spike level.
  size_t ramp_slots = 10;
  // Slots at the full spike level.
  size_t sustain_slots = 60;
  // Slots over which load decays back to baseline.
  size_t decay_slots = 60;
  // Peak multiplier applied to the underlying load (2.0 doubles it).
  double magnitude = 2.0;
};

// Returns a copy of `base` with the spike multiplied in. Slots beyond the
// end of the series are ignored.
TimeSeries InjectSpike(const TimeSeries& base, const SpikeOptions& options);

}  // namespace pstore

#endif  // PSTORE_TRACE_SPIKE_INJECTOR_H_
