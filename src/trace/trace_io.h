#ifndef PSTORE_TRACE_TRACE_IO_H_
#define PSTORE_TRACE_TRACE_IO_H_

#include <string>

#include "common/status.h"
#include "common/time_series.h"

namespace pstore {

// Saves a load trace as a two-column CSV: header "slot,value", then one
// row per slot. The slot duration is recorded in a leading comment line
// ("# slot_seconds=60") so that LoadTraceCsv can round-trip it.
Status SaveTraceCsv(const TimeSeries& trace, const std::string& path);

// Loads a trace written by SaveTraceCsv. Also accepts plain two-column
// CSVs without the comment line, in which case the slot duration defaults
// to 60 seconds.
StatusOr<TimeSeries> LoadTraceCsv(const std::string& path);

}  // namespace pstore

#endif  // PSTORE_TRACE_TRACE_IO_H_
