#include "planner/brute_force_planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "common/thread_pool.h"
#include "planner/dp_planner.h"
#include "planner/move.h"
#include "planner/move_model.h"
#include "planner/validate.h"

namespace pstore {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

struct SearchState {
  const std::vector<double>* load;
  int horizon;
  int z;
  const DpPlanner* rules;  // reuse the DP's duration/cost/capacity rules
  std::vector<Move> current;
  std::vector<Move> best_moves;
  double best_cost = kInfinity;
  int best_final = std::numeric_limits<int>::max();
};

// Returns true if the move from `before` to `after` ending at slot `end`
// keeps load under the effective capacity throughout.
bool MoveFeasible(const SearchState& state, int start, int end, int before,
                  int after) {
  const int duration = end - start;
  for (int i = 1; i <= duration; ++i) {
    const double fraction =
        static_cast<double>(i) / static_cast<double>(duration);
    if ((*state.load)[static_cast<size_t>(start + i)] >
        EffectiveCapacity(NodeCount(before), NodeCount(after), fraction,
                          state.rules->params())) {
      return false;
    }
  }
  return true;
}

void Search(SearchState* state, int t, int nodes, double cost_so_far) {
  if (t == state->horizon) {
    const bool better =
        nodes < state->best_final ||
        (nodes == state->best_final && cost_so_far < state->best_cost);
    if (better) {
      state->best_final = nodes;
      state->best_cost = cost_so_far;
      state->best_moves = state->current;
    }
    return;
  }
  for (int next = 1; next <= state->z; ++next) {
    const int duration =
        state->rules->MoveSlots(NodeCount(nodes), NodeCount(next));
    const int end = t + duration;
    if (end > state->horizon) continue;
    if (!MoveFeasible(*state, t, end, nodes, next)) continue;
    const double move_cost =
        state->rules->MoveCostCharged(NodeCount(nodes), NodeCount(next));
    Move move;
    move.start_slot = TimeStep(t);
    move.end_slot = TimeStep(end);
    move.nodes_before = NodeCount(nodes);
    move.nodes_after = NodeCount(next);
    // DFS stack: capacity is reserved once per candidate in BestMoves
    // and reused across the whole recursion.
    state->current.push_back(move);  // pstore-analyze: allow(hot-path-perf)
    Search(state, end, next, cost_so_far + move_cost);
    state->current.pop_back();
  }
}

}  // namespace

BruteForcePlanner::BruteForcePlanner(const PlannerParams& params)
    : params_(params) {}

StatusOr<PlanResult> BruteForcePlanner::BestMoves(
    const std::vector<double>& predicted_load, NodeCount initial_nodes) const {
  if (predicted_load.size() < 2) {
    return Status::InvalidArgument("prediction horizon must cover >= 2 slots");
  }
  if (initial_nodes < NodeCount(1)) {
    return Status::InvalidArgument("initial_nodes must be >= 1");
  }
  const DpPlanner rules(params_);
  const int horizon = static_cast<int>(predicted_load.size()) - 1;
  const double max_load =
      *std::max_element(predicted_load.begin(), predicted_load.end());
  const int z = std::max(rules.NodesFor(max_load), initial_nodes).value();

  if (predicted_load[0] > Capacity(initial_nodes, params_)) {
    return Status::Infeasible("initial capacity below current load");
  }

  // One independent subtree per first-move candidate (the serial
  // search's top-level loop), collected by candidate index. Each
  // candidate owns its SearchState; the shared DpPlanner rules are
  // read-only, so the bodies are isolated and safe to run in parallel.
  const int n0 = initial_nodes.value();
  const double base_cost = static_cast<double>(n0);
  std::vector<SearchState> candidates(static_cast<size_t>(z));
  const auto eval_candidate = [&](size_t c) {
    const int next = static_cast<int>(c) + 1;
    SearchState& state = candidates[c];
    state.load = &predicted_load;
    state.horizon = horizon;
    state.z = z;
    state.rules = &rules;
    const int duration = rules.MoveSlots(NodeCount(n0), NodeCount(next));
    const int end = duration;
    if (end > horizon) return;
    if (!MoveFeasible(state, 0, end, n0, next)) return;
    const double move_cost =
        rules.MoveCostCharged(NodeCount(n0), NodeCount(next));
    Move move;
    move.start_slot = TimeStep(0);
    move.end_slot = TimeStep(end);
    move.nodes_before = NodeCount(n0);
    move.nodes_after = NodeCount(next);
    // Every move advances time by at least one slot, so the DFS stack
    // never exceeds the horizon.
    state.current.reserve(static_cast<size_t>(horizon));
    state.current.push_back(move);
    Search(&state, end, next, base_cost + move_cost);
  };
  if (pool_ != nullptr) {
    pool_->ParallelFor(static_cast<size_t>(z), eval_candidate);
  } else {
    for (size_t c = 0; c < static_cast<size_t>(z); ++c) eval_candidate(c);
  }

  // Merge in candidate order with the serial search's strictly-better
  // predicate, so ties resolve to the lowest candidate exactly as the
  // single-threaded enumeration would.
  double best_cost = kInfinity;
  int best_final = std::numeric_limits<int>::max();
  const std::vector<Move>* best_moves = nullptr;
  for (const SearchState& state : candidates) {
    const bool better =
        state.best_final < best_final ||
        (state.best_final == best_final && state.best_cost < best_cost);
    if (better) {
      best_final = state.best_final;
      best_cost = state.best_cost;
      best_moves = &state.best_moves;
    }
  }

  if (best_cost == kInfinity) {
    return Status::Infeasible("no feasible sequence of moves");
  }
  PlanResult result;
  result.moves = *best_moves;
  result.total_cost = best_cost;
  result.final_nodes = NodeCount(best_final);
  PSTORE_DCHECK_OK(
      PlanValidator(params_).Validate(result, predicted_load, initial_nodes));
  return result;
}

}  // namespace pstore
