#ifndef PSTORE_PLANNER_DP_PLANNER_H_
#define PSTORE_PLANNER_DP_PLANNER_H_

#include <functional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "obs/tracer.h"
#include "planner/move.h"
#include "planner/move_model.h"
#include "planner/move_model_table.h"

namespace pstore {

// The predictive elasticity algorithm (paper §4.3, Algorithms 1-3): a
// dynamic program over (time slot, machine count) states that finds the
// cheapest feasible sequence of moves covering the prediction horizon.
//
// A sequence is feasible if the predicted load never exceeds the
// *effective* capacity of the system, including while reconfigurations
// are in flight (Eq. 7). Among feasible sequences the algorithm first
// minimizes the number of machines at the end of the horizon, then the
// total cost in machine-slots.
class DpPlanner {
 public:
  explicit DpPlanner(const PlannerParams& params);

  // Algorithm 1 (best-moves). `predicted_load` is indexed by slot, with
  // slot 0 being "now": predicted_load[t] is the load during slot t, for
  // t in [0, T] where T = predicted_load.size() - 1. `initial_nodes` is
  // N0. Returns kInfeasible if no sequence of moves can keep up with the
  // predicted load from N0 machines, and kInvalidArgument if the horizon
  // has fewer than 2 slots or initial_nodes < 1.
  StatusOr<PlanResult> BestMoves(const std::vector<double>& predicted_load,
                                 NodeCount initial_nodes) const;

  // The smallest number of machines whose full capacity covers `load`
  // (ceil(load / Q)), never less than 1.
  NodeCount NodesFor(double load) const;

  const PlannerParams& params() const { return params_; }

  // The integral duration of a move in slots as used by the dynamic
  // program: ceil of Eq. 3, and at least 1 so every move occupies a slot
  // (Algorithm 2 line 9).
  int MoveSlots(NodeCount before, NodeCount after) const;

  // The cost charged for a move lasting MoveSlots(before, after) slots:
  // the Eq. 4 cost for the real-valued migration time plus `after`
  // machines for the remainder of the final slot (the migration finishes
  // partway through it). For before == after this is `before` (one slot
  // at B machines, Algorithm 2 line 9).
  double MoveCostCharged(NodeCount before, NodeCount after) const;

  // Observability: when set, every BestMoves search emits one
  // planner.plan event (wall time, feasibility, chosen target). The
  // planner has no clock of its own, so `now_fn` supplies the
  // simulation timestamp of the emitting harness.
  void set_tracer(obs::Tracer* tracer, std::function<SimTime()> now_fn) {
    tracer_ = tracer;
    trace_now_ = std::move(now_fn);
  }

  // Installs a precomputed (caller-owned, outliving the planner) move
  // model table; MoveSlots / MoveCostCharged then look transitions up
  // instead of recomputing Eqs. 3-4 + Algorithm 4 per DP transition.
  // Lookups are bit-identical to direct computation, so plans do not
  // change. The table must have been built from matching params; pairs
  // beyond its max_nodes fall back to direct computation.
  void set_move_table(const MoveModelTable* table) {
    PSTORE_CHECK(table == nullptr || table->MatchesParams(params_));
    move_table_ = table;
  }

 private:
  StatusOr<PlanResult> RunSearch(const std::vector<double>& predicted_load,
                                 NodeCount initial_nodes) const;

  PlannerParams params_;
  const MoveModelTable* move_table_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::function<SimTime()> trace_now_;
};

}  // namespace pstore

#endif  // PSTORE_PLANNER_DP_PLANNER_H_
