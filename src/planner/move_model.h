#ifndef PSTORE_PLANNER_MOVE_MODEL_H_
#define PSTORE_PLANNER_MOVE_MODEL_H_

#include "common/strong_id.h"

namespace pstore {

// Model parameters extracted by offline evaluation (paper §4.1).
struct PlannerParams {
  // Q: target throughput of each server, in load units per slot-rate
  // (whatever unit the predicted-load series uses, e.g. txn/s).
  double target_rate_per_node = 285.0;
  // Q-hat: maximum throughput of each server before the latency
  // constraint is violated. Only used by monitoring/reporting; the
  // planner plans against Q.
  double max_rate_per_node = 350.0;
  // D: time to migrate the entire database exactly once with a single
  // sender-receiver thread pair, expressed in planning slots.
  double d_slots = 15.4;  // 77 min at 5-minute slots
  // P: number of data partitions per machine.
  int partitions_per_node = 1;
  // Ablation knob: when true, the planner pretends newly allocated
  // machines serve at full capacity immediately (the stateless-service
  // assumption of data-center provisioning work, §9) instead of using
  // Eq. 7's effective capacity. Underestimates migration lag; kept only
  // to quantify how much the effective-capacity model matters.
  bool assume_instant_capacity = false;
};

// Eq. 2: the maximum number of parallel data transfers when moving from
// `before` to `after` machines with params.partitions_per_node partitions
// per machine. Zero when before == after.
int MaxParallelTransfers(NodeCount before, NodeCount after,
                         const PlannerParams& params);

// Eq. 3: time for the move from `before` to `after` machines, in the same
// (fractional) slot units as params.d_slots. Zero when before == after.
double MoveTime(NodeCount before, NodeCount after,
                const PlannerParams& params);

// Eq. 5: total capacity of n evenly-loaded machines, Q * n.
double Capacity(NodeCount nodes, const PlannerParams& params);

// Eq. 7: effective capacity of the system after a fraction
// `fraction_moved` (in [0,1]) of the migrating data has been moved during
// a reconfiguration from `before` to `after` machines. While data is in
// flight the most-loaded machine bounds system throughput, so effective
// capacity lags the machine count.
double EffectiveCapacity(NodeCount before, NodeCount after,
                         double fraction_moved, const PlannerParams& params);

// Algorithm 4: average number of machines allocated over the course of a
// move, taking just-in-time allocation of the three-phase schedule into
// account. Symmetric in (before, after).
double AvgMachinesAllocated(NodeCount before, NodeCount after);

// The number of machines allocated at move-progress fraction `f` in
// [0, 1) — the step profile whose time-average Algorithm 4 computes
// (plotted in Fig. 4; also used by the coarse simulator for cost
// accounting). At f == 0 the first phase's machines are already
// allocated.
NodeCount MachinesAllocatedAt(NodeCount before, NodeCount after, double f);

// Eq. 4: cost of a move, T(B,A) * avg-mach-alloc(B,A), in machine-slots.
// Zero when before == after.
double MoveCost(NodeCount before, NodeCount after,
                const PlannerParams& params);

}  // namespace pstore

#endif  // PSTORE_PLANNER_MOVE_MODEL_H_
