#include "planner/move_model_table.h"

#include <cstddef>

#include "common/check.h"
#include "common/strong_id.h"
#include "planner/move_model.h"

namespace pstore {

MoveModelTable::MoveModelTable(const PlannerParams& params, NodeCount max_nodes)
    : max_nodes_(max_nodes.value()),
      d_slots_(params.d_slots),
      partitions_per_node_(params.partitions_per_node) {
  PSTORE_CHECK(max_nodes >= NodeCount(1));
  const size_t cells =
      static_cast<size_t>(max_nodes_) * static_cast<size_t>(max_nodes_);
  move_time_.resize(cells);
  move_cost_.resize(cells);
  avg_machines_.resize(cells);
  for (int before = 1; before <= max_nodes_; ++before) {
    for (int after = 1; after <= max_nodes_; ++after) {
      const size_t i = Index(NodeCount(before), NodeCount(after));
      move_time_[i] =
          pstore::MoveTime(NodeCount(before), NodeCount(after), params);
      move_cost_[i] =
          pstore::MoveCost(NodeCount(before), NodeCount(after), params);
      avg_machines_[i] =
          pstore::AvgMachinesAllocated(NodeCount(before), NodeCount(after));
    }
  }
}

}  // namespace pstore
