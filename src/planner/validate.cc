#include "planner/validate.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <set>
#include <utility>

#include "common/status.h"
#include "common/strong_id.h"
#include "planner/dp_planner.h"
#include "planner/migration_schedule.h"
#include "planner/move.h"
#include "planner/move_model.h"

namespace pstore {
namespace {

Status FirstViolationOrOk(const std::vector<std::string>& violations) {
  if (violations.empty()) return Status::OK();
  std::string message = violations.front();
  if (violations.size() > 1) {
    message += " (+" + std::to_string(violations.size() - 1) +
               " more violation(s))";
  }
  return Status::Internal(message);
}

}  // namespace

std::vector<std::string> ScheduleValidator::Violations(
    const MigrationSchedule& schedule) const {
  std::vector<std::string> violations;
  violations.reserve(schedule.rounds.size());
  const int before = schedule.nodes_before.value();
  const int after = schedule.nodes_after.value();
  if (before < 1 || after < 1 || before == after) {
    violations.push_back("machine counts invalid: " + std::to_string(before) +
                         " -> " + std::to_string(after));
    return violations;
  }
  const int larger = std::max(before, after);
  const int smaller = std::min(before, after);
  const int delta = larger - smaller;
  const bool scale_out = after > before;

  // Minimal round count (Eq. 2 parallelism saturated every round).
  const size_t expected_rounds =
      static_cast<size_t>(delta <= smaller ? smaller : delta);
  if (schedule.rounds.size() != expected_rounds) {
    violations.push_back("round count " +
                         std::to_string(schedule.rounds.size()) +
                         " != expected " + std::to_string(expected_rounds));
  }

  // Equal per-pair amounts: each of the smaller*delta transfers carries
  // fraction 1/(B*A) of the database.
  const double expected_fraction =
      1.0 / (static_cast<double>(before) * static_cast<double>(after));
  if (std::abs(schedule.per_pair_fraction - expected_fraction) >
      1e-12 * expected_fraction) {
    violations.push_back("per-pair fraction " +
                         std::to_string(schedule.per_pair_fraction) +
                         " != 1/(B*A)");
  }

  // The stable machines are [0, smaller); the transient ones
  // [smaller, larger). On scale-out stable machines send; on scale-in
  // they receive.
  std::set<std::pair<int, int>> seen_pairs;
  std::vector<int> transfers_per_machine(static_cast<size_t>(larger), 0);
  for (size_t i = 0; i < schedule.rounds.size(); ++i) {
    const ScheduleRound& round = schedule.rounds[i];
    std::set<int> machines_this_round;
    for (const TransferPair& pair : round.transfers) {
      const int sender = pair.sender.value();
      const int receiver = pair.receiver.value();
      if (sender < 0 || sender >= larger || receiver < 0 ||
          receiver >= larger) {
        violations.push_back("machine id out of range in round " +
                             std::to_string(i + 1));
        continue;
      }
      if (NodeCount(sender) >= round.machines_allocated ||
          NodeCount(receiver) >= round.machines_allocated) {
        violations.push_back("transfer uses an unallocated machine in round " +
                             std::to_string(i + 1));
      }
      if (!machines_this_round.insert(sender).second ||
          !machines_this_round.insert(receiver).second) {
        violations.push_back("machine used twice in round " +
                             std::to_string(i + 1));
      }
      if (!seen_pairs.insert({sender, receiver}).second) {
        violations.push_back("duplicate sender-receiver pair " +
                             std::to_string(sender) + " -> " +
                             std::to_string(receiver));
      }
      ++transfers_per_machine[static_cast<size_t>(sender)];
      ++transfers_per_machine[static_cast<size_t>(receiver)];
      const bool sender_stable = sender < smaller;
      const bool receiver_stable = receiver < smaller;
      if (scale_out && (!sender_stable || receiver_stable)) {
        violations.push_back("scale-out transfer direction wrong in round " +
                             std::to_string(i + 1));
      }
      if (!scale_out && (sender_stable || !receiver_stable)) {
        violations.push_back("scale-in transfer direction wrong in round " +
                             std::to_string(i + 1));
      }
    }
  }

  // Pair completeness: every (stable, transient) combination exactly
  // once. Combined with equal per-pair amounts this guarantees equal
  // shares on every machine after the move.
  if (seen_pairs.size() !=
      static_cast<size_t>(smaller) * static_cast<size_t>(delta)) {
    violations.push_back("schedule does not cover all machine pairs (" +
                         std::to_string(seen_pairs.size()) + " of " +
                         std::to_string(smaller * delta) + ")");
  }

  // Equal post-move shares, checked per machine: a stable machine must
  // take part in exactly `delta` transfers of 1/(B*A) each and a
  // transient machine in exactly `smaller`, which lands every surviving
  // machine on share 1/max(B,A) exactly.
  for (int machine = 0; machine < larger; ++machine) {
    const int expected = machine < smaller ? delta : smaller;
    const int actual = transfers_per_machine[static_cast<size_t>(machine)];
    if (actual != expected) {
      violations.push_back(
          "machine " + std::to_string(machine) + " in " +
          std::to_string(actual) + " transfers, expected " +
          std::to_string(expected) + " (unequal post-move share)");
    }
  }

  // Just-in-time allocation must be monotone: non-decreasing on
  // scale-out, non-increasing on scale-in.
  for (size_t i = 1; i < schedule.rounds.size(); ++i) {
    const NodeCount prev = schedule.rounds[i - 1].machines_allocated;
    const NodeCount curr = schedule.rounds[i].machines_allocated;
    if (scale_out ? curr < prev : curr > prev) {
      violations.push_back("machine allocation not monotone at round " +
                           std::to_string(i + 1));
    }
  }
  return violations;
}

Status ScheduleValidator::Validate(const MigrationSchedule& schedule) const {
  return FirstViolationOrOk(Violations(schedule));
}

PlanValidator::PlanValidator(const PlannerParams& params) : params_(params) {}

std::vector<std::string> PlanValidator::Violations(
    const PlanResult& plan, const std::vector<double>& predicted_load,
    NodeCount initial_nodes) const {
  std::vector<std::string> violations;
  violations.reserve(plan.moves.size());
  if (predicted_load.size() < 2) {
    violations.push_back("prediction horizon must cover >= 2 slots");
    return violations;
  }
  if (initial_nodes < NodeCount(1)) {
    violations.push_back("initial_nodes must be >= 1");
    return violations;
  }
  const int horizon = static_cast<int>(predicted_load.size()) - 1;
  if (plan.moves.empty()) {
    violations.push_back("plan has no moves");
    return violations;
  }

  const DpPlanner rules(params_);

  // The initial allocation must already cover the measured load (the
  // Algorithm 2 base case).
  if (predicted_load[0] > Capacity(initial_nodes, params_)) {
    violations.push_back("load[0] exceeds the initial capacity");
  }

  // Coverage and chaining: moves tile (0, T] and the machine counts form
  // an unbroken sequence from initial_nodes to final_nodes.
  if (plan.moves.front().start_slot != TimeStep(0)) {
    violations.push_back("first move does not start at slot 0");
  }
  if (plan.moves.front().nodes_before != initial_nodes) {
    violations.push_back("first move does not start from the initial " +
                         std::to_string(initial_nodes.value()) + " machines");
  }
  if (plan.moves.back().end_slot != TimeStep(horizon)) {
    violations.push_back("last move does not end at the horizon");
  }
  if (plan.final_nodes != plan.moves.back().nodes_after) {
    violations.push_back("final_nodes does not match the last move");
  }

  double expected_cost = static_cast<double>(initial_nodes.value());
  for (size_t i = 0; i < plan.moves.size(); ++i) {
    const Move& move = plan.moves[i];
    const std::string label = "move " + std::to_string(i + 1) + " (" +
                              move.ToString() + ")";
    if (move.nodes_before < NodeCount(1) || move.nodes_after < NodeCount(1)) {
      violations.push_back(label + ": machine count below 1");
      return violations;
    }
    if (move.DurationSlots() <= 0) {
      violations.push_back(label + ": does not advance time");
      return violations;
    }
    if (i > 0) {
      if (move.start_slot != plan.moves[i - 1].end_slot) {
        violations.push_back(label + ": not contiguous with previous move");
      }
      if (move.nodes_before != plan.moves[i - 1].nodes_after) {
        violations.push_back(label + ": machine count chain broken");
      }
    }
    const int expected_slots =
        rules.MoveSlots(move.nodes_before, move.nodes_after);
    if (move.DurationSlots() != expected_slots) {
      violations.push_back(label + ": duration " +
                           std::to_string(move.DurationSlots()) +
                           " slots != ceil(Eq. 3) = " +
                           std::to_string(expected_slots));
    }
    // Eq. 7 feasibility at every step of the move, mirroring the
    // planners' own check (fraction moved advances linearly in slots).
    const int duration = move.DurationSlots();
    for (int step = 1; step <= duration; ++step) {
      const size_t slot =
          static_cast<size_t>(move.start_slot.value() + step);
      if (slot >= predicted_load.size()) break;  // reported via coverage
      const double fraction =
          static_cast<double>(step) / static_cast<double>(duration);
      const double capacity =
          params_.assume_instant_capacity || !move.IsReconfiguration()
              ? Capacity(move.nodes_after, params_)
              : EffectiveCapacity(move.nodes_before, move.nodes_after,
                                  fraction, params_);
      if (predicted_load[slot] > capacity) {
        violations.push_back(
            label + ": predicted load " + std::to_string(predicted_load[slot]) +
            " exceeds effective capacity " + std::to_string(capacity) +
            " at slot " + std::to_string(slot));
      }
    }
    expected_cost += rules.MoveCostCharged(move.nodes_before, move.nodes_after);
  }

  // Cost accounting (Eq. 1 / Algorithm 2): N0 machines billed for slot 0
  // plus the charged cost of every move.
  if (std::abs(plan.total_cost - expected_cost) >
      1e-6 * std::max(1.0, std::abs(expected_cost))) {
    violations.push_back("total_cost " + std::to_string(plan.total_cost) +
                         " != recomputed " + std::to_string(expected_cost));
  }
  return violations;
}

Status PlanValidator::Validate(const PlanResult& plan,
                               const std::vector<double>& predicted_load,
                               NodeCount initial_nodes) const {
  return FirstViolationOrOk(Violations(plan, predicted_load, initial_nodes));
}

}  // namespace pstore
