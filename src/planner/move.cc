#include "planner/move.h"

#include <cstdio>

namespace pstore {

std::string Move::ToString() const {
  char buf[96];
  if (IsReconfiguration()) {
    std::snprintf(buf, sizeof(buf), "[%d,%d] %d->%d", start_slot.value(),
                  end_slot.value(), nodes_before.value(), nodes_after.value());
  } else {
    std::snprintf(buf, sizeof(buf), "[%d,%d] stay %d", start_slot.value(),
                  end_slot.value(), nodes_before.value());
  }
  return buf;
}

std::vector<Move> PlanResult::Condensed() const {
  std::vector<Move> out;
  for (const Move& move : moves) {
    if (!out.empty() && !out.back().IsReconfiguration() &&
        !move.IsReconfiguration() &&
        out.back().nodes_after == move.nodes_before) {
      out.back().end_slot = move.end_slot;
      continue;
    }
    out.push_back(move);
  }
  return out;
}

const Move* PlanResult::FirstReconfiguration() const {
  for (const Move& move : moves) {
    if (move.IsReconfiguration()) return &move;
  }
  return nullptr;
}

}  // namespace pstore
