#ifndef PSTORE_PLANNER_VALIDATE_H_
#define PSTORE_PLANNER_VALIDATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/strong_id.h"
#include "planner/migration_schedule.h"
#include "planner/move.h"
#include "planner/move_model.h"

namespace pstore {

// Mechanical verification of the paper's migration-schedule invariants
// (§4.4.1, Table 1). A valid schedule satisfies:
//  - every machine appears in at most one transfer per round (the Squall
//    constraint: all transfers of a round proceed concurrently),
//  - every (sender, receiver) pair appears at most once overall, and all
//    smaller*delta pairs are covered,
//  - every machine participates in exactly the transfer count that lands
//    all machines on equal data shares after the move (each transfer
//    carries fraction 1/(B*A) of the database),
//  - transfers point stable -> transient on scale-out and transient ->
//    stable on scale-in, and never touch an unallocated machine,
//  - the round count equals the theoretical minimum (smaller cluster
//    size if delta <= smaller, else delta),
//  - just-in-time machine allocation is monotone (non-decreasing on
//    scale-out, non-increasing on scale-in).
class ScheduleValidator {
 public:
  // Every violated invariant, one human-readable line each (empty =
  // valid). Collecting all of them makes test failures and chaos-drill
  // postmortems actionable in one pass.
  std::vector<std::string> Violations(const MigrationSchedule& schedule) const;

  // OK, or kInternal describing the first violation (and how many more
  // there are).
  Status Validate(const MigrationSchedule& schedule) const;
};

// Mechanical verification of an emitted plan against the move model
// (§4.3, Algorithms 1-3). A valid plan for `predicted_load` (indexed by
// slot, slot 0 = "now", T = predicted_load.size() - 1) satisfies:
//  - moves cover (0, T] contiguously and monotonically in time,
//  - the machine counts chain: the first move starts from
//    `initial_nodes`, and each move starts where the previous ended,
//  - every move's slot duration is the ceil of its Eq. 3 migration time
//    (minimum 1 slot; "do nothing" moves last exactly 1 slot),
//  - predicted load never exceeds the Eq. 7 effective capacity at any
//    step of any move (or full Eq. 5 capacity under the
//    assume_instant_capacity ablation), including load[0] against the
//    initial allocation,
//  - final_nodes matches the last move, and total_cost equals the
//    Algorithm 2 accounting (N0 billed for slot 0 plus per-move charged
//    costs).
class PlanValidator {
 public:
  explicit PlanValidator(const PlannerParams& params);

  std::vector<std::string> Violations(
      const PlanResult& plan, const std::vector<double>& predicted_load,
      NodeCount initial_nodes) const;

  Status Validate(const PlanResult& plan,
                  const std::vector<double>& predicted_load,
                  NodeCount initial_nodes) const;

 private:
  PlannerParams params_;
};

}  // namespace pstore

#endif  // PSTORE_PLANNER_VALIDATE_H_
