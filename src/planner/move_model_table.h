#ifndef PSTORE_PLANNER_MOVE_MODEL_TABLE_H_
#define PSTORE_PLANNER_MOVE_MODEL_TABLE_H_

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/strong_id.h"
#include "planner/move_model.h"

namespace pstore {

// Precomputed, immutable grids of T(B,A), C(B,A) (Eqs. 3-4) and
// avg-mach-alloc(B,A) (Algorithm 4) for all 1 <= B, A <= max_nodes.
// The dynamic program evaluates these inside every transition, and the
// values depend only on (B, A) plus two PlannerParams fields (d_slots,
// partitions_per_node) — so a sweep computes the grid once and shares
// it read-only across planners and threads.
//
// Entries are produced by calling the exact move-model functions, never
// a re-derivation, so lookups are bit-identical to direct computation;
// the move-model tests assert this over the full grid. The table is
// immutable after construction and therefore safe to read concurrently.
class MoveModelTable {
 public:
  MoveModelTable(const PlannerParams& params, NodeCount max_nodes);

  // True when both cluster sizes fall inside the precomputed grid.
  bool Covers(NodeCount before, NodeCount after) const {
    return before >= NodeCount(1) && after >= NodeCount(1) &&
           before.value() <= max_nodes_ && after.value() <= max_nodes_;
  }

  // True when `params` would reproduce this table: MoveTime / MoveCost
  // read only these two fields, so a planner may adopt the table iff
  // they match exactly.
  bool MatchesParams(const PlannerParams& params) const {
    return params.d_slots == d_slots_ &&
           params.partitions_per_node == partitions_per_node_;
  }

  // Eq. 3, via lookup. Requires Covers(before, after).
  double MoveTime(NodeCount before, NodeCount after) const {
    return move_time_[Index(before, after)];
  }

  // Eq. 4, via lookup. Requires Covers(before, after).
  double MoveCost(NodeCount before, NodeCount after) const {
    return move_cost_[Index(before, after)];
  }

  // Algorithm 4, via lookup. Requires Covers(before, after).
  double AvgMachinesAllocated(NodeCount before, NodeCount after) const {
    return avg_machines_[Index(before, after)];
  }

  int max_nodes() const { return max_nodes_; }

 private:
  size_t Index(NodeCount before, NodeCount after) const {
    PSTORE_DCHECK(Covers(before, after));
    return static_cast<size_t>(before.value() - 1) *
               static_cast<size_t>(max_nodes_) +
           static_cast<size_t>(after.value() - 1);
  }

  int max_nodes_;
  double d_slots_;
  int partitions_per_node_;
  std::vector<double> move_time_;
  std::vector<double> move_cost_;
  std::vector<double> avg_machines_;
};

}  // namespace pstore

#endif  // PSTORE_PLANNER_MOVE_MODEL_TABLE_H_
