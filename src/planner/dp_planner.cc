#include "planner/dp_planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "obs/tracer.h"
#include "obs/wall_timer.h"
#include "planner/move.h"
#include "planner/move_model.h"
#include "planner/validate.h"

namespace pstore {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

// Memoization entry: the minimum cost of a feasible sequence of moves
// ending with `nodes` machines at slot `t`, plus the last move that
// achieves it (Algorithm 2's matrix m).
struct MemoEntry {
  bool computed = false;
  double cost = kInfinity;
  int prev_time = -1;
  int prev_nodes = -1;
};

// Shared state of one BestMoves invocation.
struct DpState {
  const std::vector<double>* load;  // length T+1, indices 0..T
  int n0;
  int z;
  const DpPlanner* planner;
  const PlannerParams* params;
  // memo[t * (z + 1) + nodes]
  std::vector<MemoEntry> memo;

  MemoEntry& At(int t, int nodes) { return memo[t * (z + 1) + nodes]; }
};

double Cost(DpState* state, int t, int nodes);

// Algorithm 3 (sub-cost): minimum cost ending at slot t when the last
// move is from `before` to `after` machines. Returns infinity if the move
// would start in the past or the predicted load exceeds the effective
// capacity at any point during the move.
double SubCost(DpState* state, int t, int before, int after) {
  const int duration =
      state->planner->MoveSlots(NodeCount(before), NodeCount(after));
  const int start_move = t - duration;
  if (start_move < 0) return kInfinity;
  for (int i = 1; i <= duration; ++i) {
    const double load = (*state->load)[start_move + i];
    const double fraction =
        static_cast<double>(i) / static_cast<double>(duration);
    const double capacity =
        state->params->assume_instant_capacity
            ? Capacity(NodeCount(after), *state->params)
            : EffectiveCapacity(NodeCount(before), NodeCount(after), fraction,
                                *state->params);
    if (load > capacity) {
      return kInfinity;
    }
  }
  const double prior = Cost(state, start_move, before);
  if (prior == kInfinity) return kInfinity;
  return prior + state->planner->MoveCostCharged(NodeCount(before),
                                                 NodeCount(after));
}

// Algorithm 2 (cost): minimum cost of a feasible sequence of moves ending
// with `nodes` machines at slot t.
double Cost(DpState* state, int t, int nodes) {
  if (t < 0) return kInfinity;
  if (t == 0 && nodes != state->n0) return kInfinity;
  if ((*state->load)[t] > Capacity(NodeCount(nodes), *state->params)) {
    return kInfinity;
  }
  MemoEntry& entry = state->At(t, nodes);
  if (entry.computed) return entry.cost;
  entry.computed = true;  // set before recursing; t strictly decreases
  if (t == 0) {
    entry.cost = nodes;  // base case: N0 machines billed for slot 0
    return entry.cost;
  }
  double best = kInfinity;
  int best_before = -1;
  for (int before = 1; before <= state->z; ++before) {
    const double candidate = SubCost(state, t, before, nodes);
    if (candidate < best) {
      best = candidate;
      best_before = before;
    }
  }
  entry.cost = best;
  if (best_before >= 0 && best < kInfinity) {
    entry.prev_time =
        t - state->planner->MoveSlots(NodeCount(best_before), NodeCount(nodes));
    entry.prev_nodes = best_before;
  }
  return entry.cost;
}

}  // namespace

DpPlanner::DpPlanner(const PlannerParams& params) : params_(params) {
  PSTORE_CHECK(params_.target_rate_per_node > 0.0);
  PSTORE_CHECK(params_.d_slots > 0.0);
  PSTORE_CHECK(params_.partitions_per_node >= 1);
}

NodeCount DpPlanner::NodesFor(double load) const {
  if (load <= 0.0) return NodeCount(1);
  return NodeCount(std::max(
      1, static_cast<int>(std::ceil(load / params_.target_rate_per_node))));
}

int DpPlanner::MoveSlots(NodeCount before, NodeCount after) const {
  if (before == after) return 1;  // "do nothing" occupies one slot
  const bool tabled = move_table_ != nullptr && move_table_->Covers(before, after);
  const double t = tabled ? move_table_->MoveTime(before, after)
                          : MoveTime(before, after, params_);
  return std::max(1, static_cast<int>(std::ceil(t)));
}

double DpPlanner::MoveCostCharged(NodeCount before, NodeCount after) const {
  if (before == after) return before.value();
  const bool tabled = move_table_ != nullptr && move_table_->Covers(before, after);
  const double real_time = tabled ? move_table_->MoveTime(before, after)
                                  : MoveTime(before, after, params_);
  const int slots = MoveSlots(before, after);
  const double padding = static_cast<double>(slots) - real_time;
  const double cost = tabled ? move_table_->MoveCost(before, after)
                             : MoveCost(before, after, params_);
  return cost + padding * static_cast<double>(after.value());
}

StatusOr<PlanResult> DpPlanner::BestMoves(
    const std::vector<double>& predicted_load, NodeCount initial_nodes) const {
  obs::WallTimer timer;
  StatusOr<PlanResult> result = RunSearch(predicted_load, initial_nodes);
  const bool feasible = result.ok();
  PSTORE_TRACE(
      tracer_, ::pstore::obs::TraceCategory::kPlanner,
      trace_now_ ? trace_now_() : 0, "planner.plan",
      .With("wall_us", timer.ElapsedMicros())
          .With("feasible", feasible)
          .With("n0", initial_nodes.value())
          .With("horizon", predicted_load.empty()
                               ? 0
                               : static_cast<int>(predicted_load.size()) - 1)
          .With("target", feasible ? result->final_nodes.value() : 0)
          .With("moves",
                feasible ? static_cast<int>(result->moves.size()) : 0));
  return result;
}

StatusOr<PlanResult> DpPlanner::RunSearch(
    const std::vector<double>& predicted_load, NodeCount initial_nodes) const {
  if (predicted_load.size() < 2) {
    return Status::InvalidArgument("prediction horizon must cover >= 2 slots");
  }
  if (initial_nodes < NodeCount(1)) {
    return Status::InvalidArgument("initial_nodes must be >= 1");
  }
  const int horizon = static_cast<int>(predicted_load.size()) - 1;
  const double max_load =
      *std::max_element(predicted_load.begin(), predicted_load.end());
  // Z: the maximum number of machines ever needed (Algorithm 1 line 2).
  const int z = std::max(NodesFor(max_load), initial_nodes).value();

  // The memo is keyed only by (slot, machines), independent of the
  // final-machine target, so unlike the paper's pseudocode we build it
  // once and reuse it across candidate targets.
  DpState state;
  state.load = &predicted_load;
  state.n0 = initial_nodes.value();
  state.z = z;
  state.planner = this;
  state.params = &params_;
  state.memo.assign(static_cast<size_t>(horizon + 1) * (z + 1), {});

  // Try to end the horizon with as few machines as possible (Algorithm 1
  // lines 3-12); the first feasible target is the answer.
  for (int final_nodes = 1; final_nodes <= z; ++final_nodes) {
    const double total = Cost(&state, horizon, final_nodes);
    if (total == kInfinity) continue;

    // Walk the memoized best moves backwards (Algorithm 1 lines 6-11).
    PlanResult result;
    result.total_cost = total;
    result.final_nodes = NodeCount(final_nodes);
    int t = horizon;
    int nodes = final_nodes;
    result.moves.reserve(static_cast<size_t>(horizon));
    while (t > 0) {
      const MemoEntry& entry = state.At(t, nodes);
      PSTORE_CHECK(entry.computed && entry.cost < kInfinity);
      PSTORE_CHECK_MSG(entry.prev_time >= 0 && entry.prev_time < t,
                       "memoized move does not advance time");
      Move move;
      move.start_slot = TimeStep(entry.prev_time);
      move.end_slot = TimeStep(t);
      move.nodes_before = NodeCount(entry.prev_nodes);
      move.nodes_after = NodeCount(nodes);
      result.moves.push_back(move);
      t = entry.prev_time;
      nodes = entry.prev_nodes;
    }
    std::reverse(result.moves.begin(), result.moves.end());
    // Debug builds mechanically re-verify every emitted plan against the
    // paper's invariants (coverage, chaining, Eq. 7 feasibility, cost).
    PSTORE_DCHECK_OK(
        PlanValidator(params_).Validate(result, predicted_load, initial_nodes));
    return result;
  }
  return Status::Infeasible(
      "no feasible sequence of moves from the initial machine count");
}

}  // namespace pstore
