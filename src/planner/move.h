#ifndef PSTORE_PLANNER_MOVE_H_
#define PSTORE_PLANNER_MOVE_H_

#include <string>
#include <vector>

#include "common/strong_id.h"

namespace pstore {

// One move of the predictive elasticity algorithm (paper §4.3): a
// reconfiguration from nodes_before to nodes_after machines occupying the
// half-open slot interval (start_slot, end_slot]. A move with
// nodes_before == nodes_after is the "do nothing" move, which by
// definition lasts exactly one slot.
struct Move {
  TimeStep start_slot{0};
  TimeStep end_slot{0};
  NodeCount nodes_before{0};
  NodeCount nodes_after{0};

  bool IsReconfiguration() const { return nodes_before != nodes_after; }
  int DurationSlots() const { return end_slot - start_slot; }

  std::string ToString() const;

  friend bool operator==(const Move&, const Move&) = default;
};

// A full plan: contiguous moves covering slots (0, T], plus the total
// cost in machine-slots (including the N0 machines billed for slot 0,
// matching Algorithm 2's base case).
struct PlanResult {
  std::vector<Move> moves;
  double total_cost = 0.0;
  NodeCount final_nodes{0};

  // The plan with consecutive "do nothing" moves merged, so the caller
  // sees actual reconfigurations separated by idle stretches.
  std::vector<Move> Condensed() const;

  // The first actual reconfiguration, or nullptr if the plan never
  // changes the machine count (the controller executes only this move,
  // in receding-horizon fashion, paper §6).
  const Move* FirstReconfiguration() const;
};

}  // namespace pstore

#endif  // PSTORE_PLANNER_MOVE_H_
