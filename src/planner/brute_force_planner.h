#ifndef PSTORE_PLANNER_BRUTE_FORCE_PLANNER_H_
#define PSTORE_PLANNER_BRUTE_FORCE_PLANNER_H_

#include <vector>

#include "common/status.h"
#include "common/strong_id.h"
#include "common/thread_pool.h"
#include "planner/move.h"
#include "planner/move_model.h"

namespace pstore {

// Exhaustive reference implementation of the predictive elasticity
// problem, used only to validate DpPlanner on small instances. It
// enumerates every sequence of moves forward from (slot 0, N0) under the
// same move-duration, cost and effective-capacity rules as the dynamic
// program, and returns the plan that (a) minimizes the final machine
// count and (b) among those, minimizes total cost — the same objective
// order as Algorithm 1.
//
// Exponential in the horizon; keep horizons <= ~10 and Z <= ~6.
class BruteForcePlanner {
 public:
  explicit BruteForcePlanner(const PlannerParams& params);

  StatusOr<PlanResult> BestMoves(const std::vector<double>& predicted_load,
                                 NodeCount initial_nodes) const;

  // Optional parallelism: each top-level first-move candidate's subtree
  // is searched independently (one ParallelFor index per candidate) and
  // the per-candidate optima are merged in candidate order under the
  // same strictly-better predicate the serial search applies, so the
  // chosen plan — ties included — is identical for any thread count.
  // The pool is caller-owned and must outlive the planner.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

 private:
  PlannerParams params_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace pstore

#endif  // PSTORE_PLANNER_BRUTE_FORCE_PLANNER_H_
