#include "planner/migration_schedule.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "planner/validate.h"

namespace pstore {
namespace {

// Bipartite edge colorer: assigns each (sender, receiver) demand edge a
// round in [0, num_colors) such that no two edges of the same round
// share an endpoint. By Koenig's theorem a bipartite multigraph with
// maximum degree d is d-edge-colorable; the constructive proof below
// recolors along alternating paths when the greedy choice is blocked.
class EdgeColorer {
 public:
  EdgeColorer(int num_senders, int num_receivers, int num_colors)
      : num_colors_(num_colors),
        sender_color_(num_senders,
                      std::vector<int>(num_colors, -1)),  // -> receiver
        receiver_color_(num_receivers,
                        std::vector<int>(num_colors, -1)) {}  // -> sender

  // Colors the edge (sender, receiver). The caller guarantees endpoint
  // degrees stay within num_colors, which by Koenig's theorem makes the
  // coloring always possible.
  void ColorEdge(int sender, int receiver) {
    const int alpha = FreeColorAtSender(sender);
    const int beta = FreeColorAtReceiver(receiver);
    PSTORE_CHECK(alpha >= 0 && beta >= 0);
    int color = alpha;
    if (alpha != beta) {
      // alpha is busy at the receiver. Swap colors alpha<->beta along
      // the alternating path starting at the receiver with an alpha
      // edge; the path cannot reach `sender` (it would have to arrive
      // on an alpha edge, but alpha is free at `sender`), so afterwards
      // alpha is free at both endpoints.
      SwapAlternatingPathFromReceiver(receiver, alpha, beta);
    }
    PSTORE_CHECK(sender_color_[sender][color] == -1);
    PSTORE_CHECK(receiver_color_[receiver][color] == -1);
    sender_color_[sender][color] = receiver;
    receiver_color_[receiver][color] = sender;
  }

  // Edges of one color as (sender, receiver) pairs.
  std::vector<TransferPair> RoundPairs(int color) const {
    std::vector<TransferPair> out;
    out.reserve(sender_color_.size());
    for (int sender = 0; sender < static_cast<int>(sender_color_.size());
         ++sender) {
      const int receiver = sender_color_[sender][color];
      if (receiver >= 0) out.push_back({NodeId(sender), NodeId(receiver)});
    }
    return out;
  }

 private:
  int FreeColorAtSender(int sender) const {
    for (int c = 0; c < num_colors_; ++c) {
      if (sender_color_[sender][c] == -1) return c;
    }
    return -1;
  }
  int FreeColorAtReceiver(int receiver) const {
    for (int c = 0; c < num_colors_; ++c) {
      if (receiver_color_[receiver][c] == -1) return c;
    }
    return -1;
  }

  // Swaps colors alpha <-> beta along the alternating path that starts
  // at `receiver` with its alpha edge. The walk is simple (each node has
  // at most one edge of each color) and finite; it is collected first
  // and repainted afterwards so intermediate states never alias.
  void SwapAlternatingPathFromReceiver(int receiver, int alpha, int beta) {
    struct PathEdge {
      int sender;
      int receiver;
      int color;
    };
    std::vector<PathEdge> path;
    // An alternating path visits each node at most once per side.
    path.reserve(sender_color_.size() + receiver_color_.size());
    bool at_receiver = true;
    int node = receiver;
    int color = alpha;
    for (;;) {
      const int partner = at_receiver ? receiver_color_[node][color]
                                      : sender_color_[node][color];
      if (partner == -1) break;
      const int s = at_receiver ? partner : node;
      const int r = at_receiver ? node : partner;
      path.push_back({s, r, color});
      node = partner;
      at_receiver = !at_receiver;
      color = color == alpha ? beta : alpha;
    }
    for (const PathEdge& edge : path) {
      sender_color_[edge.sender][edge.color] = -1;
      receiver_color_[edge.receiver][edge.color] = -1;
    }
    for (const PathEdge& edge : path) {
      const int swapped = edge.color == alpha ? beta : alpha;
      PSTORE_CHECK(sender_color_[edge.sender][swapped] == -1);
      PSTORE_CHECK(receiver_color_[edge.receiver][swapped] == -1);
      sender_color_[edge.sender][swapped] = edge.receiver;
      receiver_color_[edge.receiver][swapped] = edge.sender;
    }
  }

  int num_colors_;
  std::vector<std::vector<int>> sender_color_;
  std::vector<std::vector<int>> receiver_color_;
};

// Builds the scale-out schedule from `s` to `l` machines (s < l).
// Senders are machines [0, s); receivers [s, l), allocated just in time.
std::vector<ScheduleRound> BuildScaleOutRounds(int s, int l) {
  const int delta = l - s;
  const int r = delta % s;
  std::vector<ScheduleRound> rounds;
  // Every case below emits at most s rounds per receiver block plus one
  // final (possibly partial) block.
  rounds.reserve(static_cast<size_t>((delta / s + 2) * s));

  // Case 1: all new machines allocated at once; senders rotate.
  if (delta <= s) {
    for (int k = 0; k < s; ++k) {
      ScheduleRound round;
      round.machines_allocated = NodeCount(l);
      round.phase = 1;
      round.transfers.reserve(static_cast<size_t>(delta));
      for (int j = 0; j < delta; ++j) {
        round.transfers.push_back({NodeId((j + k) % s), NodeId(s + j)});
      }
      rounds.push_back(std::move(round));
    }
    return rounds;
  }

  // Helper: s rounds that completely fill one block of s receivers
  // starting at machine id `block_start`, with `allocated` machines up.
  auto fill_block = [&](int block_start, int allocated, int phase,
                        int num_rounds) {
    for (int k = 0; k < num_rounds; ++k) {
      ScheduleRound round;
      round.machines_allocated = NodeCount(allocated);
      round.phase = phase;
      round.transfers.reserve(static_cast<size_t>(s));
      for (int i = 0; i < s; ++i) {
        round.transfers.push_back({NodeId(i), NodeId(block_start + (i + k) % s)});
      }
      rounds.push_back(std::move(round));
    }
  };

  // Case 2: delta is a perfect multiple of s; fill block after block.
  if (r == 0) {
    const int blocks = delta / s;
    for (int b = 0; b < blocks; ++b) {
      fill_block(s + b * s, s + (b + 1) * s, 1, s);
    }
    return rounds;
  }

  // Case 3: three phases (paper §4.4.1, Table 1).
  const int n1 = delta / s - 1;  // completely-filled blocks in phase 1
  for (int b = 0; b < n1; ++b) {
    fill_block(s + b * s, s + (b + 1) * s, 1, s);
  }

  // Phase 2: one more block of s receivers, each receiving only r of its
  // s transfers, so that the senders can stay fully busy in phase 3.
  const int partial_start = s + n1 * s;
  fill_block(partial_start, l - r, 2, r);

  // Phase 3: the final r receivers arrive; all s senders stay busy for s
  // rounds, finishing both the new receivers (s transfers each) and the
  // partially-filled block (s - r transfers each). The remaining demand
  // graph has every sender at degree exactly s and every receiver at
  // degree <= s, so by Koenig's theorem it decomposes into s rounds of
  // conflict-free parallel transfers; EdgeColorer computes that
  // decomposition.
  const int final_start = l - r;
  std::vector<std::vector<bool>> served(
      s, std::vector<bool>(l, false));  // served[sender][receiver]
  for (const ScheduleRound& round : rounds) {
    for (const TransferPair& pair : round.transfers) {
      served[static_cast<size_t>(pair.sender.value())]
            [static_cast<size_t>(pair.receiver.value())] = true;
    }
  }
  EdgeColorer colorer(s, l, s);
  for (int i = 0; i < s; ++i) {
    for (int v = partial_start; v < l; ++v) {
      const bool is_new = v >= final_start;
      if (is_new || !served[static_cast<size_t>(i)][static_cast<size_t>(v)]) {
        colorer.ColorEdge(i, v);
      }
    }
  }
  for (int k = 0; k < s; ++k) {
    ScheduleRound round;
    round.machines_allocated = NodeCount(l);
    round.phase = 3;
    round.transfers = colorer.RoundPairs(k);
    PSTORE_CHECK_MSG(round.transfers.size() == static_cast<size_t>(s),
                     "phase-3 round " << k << " incomplete for " << s
                                      << "->" << l);
    rounds.push_back(std::move(round));
  }
  return rounds;
}

}  // namespace

double MigrationSchedule::TotalFractionMoved() const {
  const double b = static_cast<double>(nodes_before.value());
  const double a = static_cast<double>(nodes_after.value());
  return IsScaleOut() ? 1.0 - b / a : 1.0 - a / b;
}

std::string MigrationSchedule::ToString() const {
  std::string out = "Reconfiguration " + std::to_string(nodes_before.value()) +
                    " -> " + std::to_string(nodes_after.value()) + " (" +
                    std::to_string(rounds.size()) + " rounds)\n";
  int last_phase = 0;
  for (size_t i = 0; i < rounds.size(); ++i) {
    const ScheduleRound& round = rounds[i];
    if (round.phase != last_phase) {
      out += "Phase " + std::to_string(round.phase) + "\n";
      last_phase = round.phase;
    }
    out += "  round " + std::to_string(i + 1) + " (machines " +
           std::to_string(round.machines_allocated.value()) + "): ";
    for (size_t j = 0; j < round.transfers.size(); ++j) {
      if (j > 0) out += ", ";
      // 1-based machine ids, matching the paper's Table 1.
      out += std::to_string(round.transfers[j].sender.value() + 1) + " -> " +
             std::to_string(round.transfers[j].receiver.value() + 1);
    }
    out += "\n";
  }
  return out;
}

StatusOr<MigrationSchedule> BuildMigrationSchedule(NodeCount before,
                                                   NodeCount after) {
  if (before < NodeCount(1) || after < NodeCount(1)) {
    return Status::InvalidArgument("machine counts must be >= 1");
  }
  if (before == after) {
    return Status::InvalidArgument("no data moves when before == after");
  }
  MigrationSchedule schedule;
  schedule.nodes_before = before;
  schedule.nodes_after = after;
  schedule.per_pair_fraction = 1.0 / (static_cast<double>(before.value()) *
                                      static_cast<double>(after.value()));

  if (before < after) {
    schedule.rounds = BuildScaleOutRounds(before.value(), after.value());
  } else {
    // Scale-in is the time-reverse of the scale-out from `after` to
    // `before` machines with sender/receiver roles swapped: machines
    // [0, after) survive and receive; [after, before) drain and are
    // deallocated as soon as they finish sending.
    std::vector<ScheduleRound> out_rounds =
        BuildScaleOutRounds(after.value(), before.value());
    int max_phase = 1;
    for (const ScheduleRound& round : out_rounds) {
      max_phase = std::max(max_phase, round.phase);
    }
    std::reverse(out_rounds.begin(), out_rounds.end());
    for (ScheduleRound& round : out_rounds) {
      for (TransferPair& pair : round.transfers) {
        std::swap(pair.sender, pair.receiver);
      }
      round.phase = max_phase - round.phase + 1;
    }
    schedule.rounds = std::move(out_rounds);
  }
  PSTORE_CHECK_OK(ValidateSchedule(schedule));
  return schedule;
}

Status ValidateSchedule(const MigrationSchedule& schedule) {
  return ScheduleValidator().Validate(schedule);
}

}  // namespace pstore
