#ifndef PSTORE_PLANNER_MIGRATION_SCHEDULE_H_
#define PSTORE_PLANNER_MIGRATION_SCHEDULE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/strong_id.h"

namespace pstore {

// One sender -> receiver data transfer between machines. Machine ids are
// cluster-global node indices: for a scale-out from B to A, machines
// [0, B) are the original nodes and [B, A) the new ones; for a scale-in
// from B to A, machines [0, A) survive and [A, B) are drained and
// removed.
struct TransferPair {
  NodeId sender{0};
  NodeId receiver{0};

  friend bool operator==(const TransferPair&, const TransferPair&) = default;
};

// One round of parallel transfers. Every machine appears in at most one
// transfer per round (the Squall constraint, paper §4.4.1), so all
// transfers in a round proceed concurrently and take equal time.
struct ScheduleRound {
  std::vector<TransferPair> transfers;
  // Machines allocated while this round runs (just-in-time allocation).
  NodeCount machines_allocated{0};
  // Phase of the three-phase schedule this round belongs to (1-3);
  // single-phase moves use phase 1 throughout.
  int phase = 1;
};

// The complete round-by-round schedule for one reconfiguration
// (paper §4.4.1 and Table 1). Every (sender, receiver) pair transfers
// exactly once, moving fraction 1/(A*B) of the database, so all machines
// hold equal shares before and after the move.
struct MigrationSchedule {
  NodeCount nodes_before{0};
  NodeCount nodes_after{0};
  // Fraction of the whole database moved by each individual transfer.
  double per_pair_fraction = 0.0;
  std::vector<ScheduleRound> rounds;

  bool IsScaleOut() const { return nodes_after > nodes_before; }
  // Total fraction of the database in flight over the whole move:
  // 1 - B/A on scale-out, 1 - A/B on scale-in.
  double TotalFractionMoved() const;

  // Pretty-prints the schedule in the style of the paper's Table 1.
  std::string ToString() const;
};

// Builds the parallel migration schedule for a move between `before` and
// `after` machines (either direction). Requires before, after >= 1 and
// before != after. The schedule maximizes parallelism (Eq. 2) each round
// and allocates/deallocates machines just in time, using the three-phase
// structure when the cluster delta is a non-multiple of the smaller
// cluster size.
StatusOr<MigrationSchedule> BuildMigrationSchedule(NodeCount before,
                                                   NodeCount after);

// Validates the structural invariants of a schedule (see
// planner/validate.h for the full catalogue): every machine in at most
// one transfer per round, every pair at most once overall, equal shares
// after the move, minimal round count, monotone just-in-time allocation.
// Returns OK or a description of the first violated invariant.
// Convenience wrapper over ScheduleValidator, kept for callers that only
// need a yes/no answer.
Status ValidateSchedule(const MigrationSchedule& schedule);

}  // namespace pstore

#endif  // PSTORE_PLANNER_MIGRATION_SCHEDULE_H_
