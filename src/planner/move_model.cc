#include "planner/move_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strong_id.h"

namespace pstore {
namespace {

// Shared derived quantities of Algorithm 4: the larger and smaller
// cluster sizes, their difference, and the remainder of delta / smaller.
struct MoveShape {
  int larger;
  int smaller;
  int delta;
  int remainder;
};

MoveShape ShapeOf(int before, int after) {
  MoveShape shape;
  shape.larger = std::max(before, after);
  shape.smaller = std::min(before, after);
  shape.delta = shape.larger - shape.smaller;
  shape.remainder = shape.smaller == 0 ? 0 : shape.delta % shape.smaller;
  return shape;
}

}  // namespace

int MaxParallelTransfers(NodeCount before, NodeCount after,
                         const PlannerParams& params) {
  PSTORE_CHECK(before >= NodeCount(1) && after >= NodeCount(1) &&
               params.partitions_per_node >= 1);
  if (before == after) return 0;
  const MoveShape shape = ShapeOf(before.value(), after.value());
  return params.partitions_per_node * std::min(shape.smaller, shape.delta);
}

double MoveTime(NodeCount before, NodeCount after,
                const PlannerParams& params) {
  PSTORE_CHECK(before >= NodeCount(1) && after >= NodeCount(1));
  if (before == after) return 0.0;
  const int parallel = MaxParallelTransfers(before, after, params);
  const double b = static_cast<double>(before.value());
  const double a = static_cast<double>(after.value());
  const double fraction_moved = before < after ? 1.0 - b / a : 1.0 - a / b;
  return params.d_slots / static_cast<double>(parallel) * fraction_moved;
}

double Capacity(NodeCount nodes, const PlannerParams& params) {
  PSTORE_CHECK(nodes >= NodeCount(0));
  return params.target_rate_per_node * static_cast<double>(nodes.value());
}

double EffectiveCapacity(NodeCount before, NodeCount after,
                         double fraction_moved, const PlannerParams& params) {
  PSTORE_CHECK(before >= NodeCount(1) && after >= NodeCount(1));
  const double f = std::clamp(fraction_moved, 0.0, 1.0);
  const double b = static_cast<double>(before.value());
  const double a = static_cast<double>(after.value());
  if (before == after) return Capacity(before, params);
  // Share of the database held by each of the busiest machines: the
  // original B machines when scaling out, the surviving A machines when
  // scaling in.
  double largest_share;
  if (before < after) {
    largest_share = 1.0 / b - f * (1.0 / b - 1.0 / a);
  } else {
    largest_share = 1.0 / b + f * (1.0 / a - 1.0 / b);
  }
  // 1/largest_share is the size of an evenly-loaded cluster with the same
  // capacity as the current, unevenly-loaded one.
  return params.target_rate_per_node / largest_share;
}

NodeCount MachinesAllocatedAt(NodeCount before, NodeCount after, double f) {
  PSTORE_CHECK(before >= NodeCount(1) && after >= NodeCount(1));
  f = std::clamp(f, 0.0, 1.0);
  if (before == after) return before;
  const MoveShape shape = ShapeOf(before.value(), after.value());
  const int s = shape.smaller;
  const int l = shape.larger;
  const int delta = shape.delta;
  const int r = shape.remainder;

  // Machine allocation is symmetric: a scale-in profile is the
  // time-reverse of the corresponding scale-out profile.
  const double g = before < after ? f : 1.0 - f;

  // Case 1: all machines added at once.
  if (s >= delta) return NodeCount(l);

  // Case 2: delta is a multiple of s; blocks of s machines are allocated
  // and filled one after another, each taking s/delta of the move.
  if (r == 0) {
    const int blocks = delta / s;
    int active_block =
        static_cast<int>(std::floor(g * static_cast<double>(blocks)));
    active_block = std::min(active_block, blocks - 1);
    return NodeCount(s + (active_block + 1) * s);
  }

  // Case 3: three phases (paper §4.4.1, Fig. 4c).
  //   Phase 1: n1 = floor(delta/s) - 1 blocks of s, filled completely,
  //            each taking s/delta of the move.
  //   Phase 2: one more block of s, filled r/s of the way (r/delta of
  //            the move), bringing allocation to l - r.
  //   Phase 3: the final r machines (s/delta of the move), allocation l.
  const int n1 = delta / s - 1;
  const double step = static_cast<double>(s) / static_cast<double>(delta);
  const double phase1_end = static_cast<double>(n1) * step;
  const double phase2_end =
      phase1_end + static_cast<double>(r) / static_cast<double>(delta);
  if (g < phase1_end) {
    int active_step = static_cast<int>(std::floor(g / step));
    active_step = std::min(active_step, n1 - 1);
    return NodeCount(s + (active_step + 1) * s);
  }
  if (g < phase2_end) return NodeCount(l - r);
  return NodeCount(l);
}

double AvgMachinesAllocated(NodeCount before, NodeCount after) {
  PSTORE_CHECK(before >= NodeCount(1) && after >= NodeCount(1));
  if (before == after) return before.value();
  const MoveShape shape = ShapeOf(before.value(), after.value());
  const double s = shape.smaller;
  const double l = shape.larger;
  const double delta = shape.delta;
  const double r = shape.remainder;

  // Case 1: all machines added or removed at once.
  if (s >= delta) return l;

  // Case 2: delta is a multiple of the smaller cluster.
  if (shape.remainder == 0) return (2.0 * s + l) / 2.0;

  // Case 3: three phases (Algorithm 4, lines 8-18).
  const double n1 = std::floor(delta / s) - 1.0;  // steps in phase 1
  const double t1 = s / delta;                    // time per phase-1 step
  const double m1 = (s + l - r) / 2.0;            // avg machines, phase 1
  const double phase1 = n1 * t1 * m1;
  const double t2 = r / delta;  // time for phase 2
  const double m2 = l - r;      // machines during phase 2
  const double phase2 = t2 * m2;
  const double t3 = s / delta;  // time for phase 3
  const double m3 = l;          // machines during phase 3
  const double phase3 = t3 * m3;
  return phase1 + phase2 + phase3;
}

double MoveCost(NodeCount before, NodeCount after,
                const PlannerParams& params) {
  if (before == after) return 0.0;
  return MoveTime(before, after, params) * AvgMachinesAllocated(before, after);
}

}  // namespace pstore
