#ifndef PSTORE_CONTROLLER_REACTIVE_CONTROLLER_H_
#define PSTORE_CONTROLLER_REACTIVE_CONTROLLER_H_

#include <string>

#include "controller/controller.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/txn_executor.h"
#include "migration/squall_migrator.h"
#include "planner/move_model.h"

namespace pstore {

// Options of the E-Store-style reactive baseline (paper §2, §8.2): the
// system monitors load and reconfigures only after demand already
// exceeds (or falls well below) the current capacity.
struct ReactiveControllerOptions {
  double slot_sim_seconds = 6.0;
  // Scale out when measured load exceeds this fraction of the current
  // nodes' Q-hat capacity. A reactive system has not done P-Store's
  // offline calibration of Q-hat; it reacts to observed stress, which on
  // our engine (saturation at ~Q-hat/0.8) means load well above Q-hat.
  // The default of 1.1 models that (paper §1: reconfiguration is only
  // triggered when the system is already under heavy load); lowering it
  // adds a proactive buffer at higher cost (the Fig. 12 tradeoff).
  double high_watermark = 1.1;
  // E-Store first runs a detailed-monitoring phase after detecting an
  // imbalance (§2); reconfiguration starts only after the overload has
  // persisted this many slots.
  int detection_slots = 5;
  // Scale in (by one node) when load stays below this fraction of the
  // *shrunk* cluster's target capacity...
  double low_watermark = 0.7;
  // ...for this many consecutive slots.
  int low_slots_required = 10;
  // Extra headroom applied when sizing the scale-out target, as a
  // fraction of measured load (the "buffer" swept in Fig. 12).
  double headroom = 0.10;
  PlannerParams planner_params;
};

// Reactive provisioning: detect overload, then reconfigure while the
// system is already at peak capacity — the behaviour whose latency cost
// P-Store is designed to avoid.
class ReactiveController : public ElasticityController {
 public:
  ReactiveController(EventLoop* loop, Cluster* cluster, TxnExecutor* executor,
                     MigrationManager* migration,
                     const ReactiveControllerOptions& options);

  void Start() override;
  std::string name() const override { return "Reactive"; }

  int64_t scale_outs() const { return scale_outs_; }
  int64_t scale_ins() const { return scale_ins_; }
  // Reconfigurations that ended in failure (nonzero only under fault
  // injection). A failed scale-out re-arms detection so the controller
  // retries on the very next overloaded tick.
  int64_t move_failures() const { return move_failures_; }

 private:
  void Tick();

  EventLoop* loop_;
  Cluster* cluster_;
  MigrationManager* migration_;
  ReactiveControllerOptions options_;
  LoadMonitor monitor_;
  int consecutive_low_slots_ = 0;
  int consecutive_overload_slots_ = 0;
  int64_t scale_outs_ = 0;
  int64_t scale_ins_ = 0;
  int64_t move_failures_ = 0;
};

}  // namespace pstore

#endif  // PSTORE_CONTROLLER_REACTIVE_CONTROLLER_H_
