#include "controller/simple_controller.h"

#include "common/check.h"
#include "common/sim_time.h"
#include "common/strong_id.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "migration/squall_migrator.h"

namespace pstore {

SimpleController::SimpleController(EventLoop* loop, Cluster* cluster,
                                   MigrationManager* migration,
                                   const SimpleControllerOptions& options)
    : loop_(loop), cluster_(cluster), migration_(migration),
      options_(options) {
  PSTORE_CHECK(loop_ != nullptr && cluster_ != nullptr &&
               migration_ != nullptr);
  PSTORE_CHECK(options_.slots_per_day >= 1);
  PSTORE_CHECK(options_.day_nodes >= 1 && options_.night_nodes >= 1);
}

int SimpleController::DesiredNodes(int slot_of_day) const {
  const bool daytime =
      slot_of_day >= options_.up_slot && slot_of_day < options_.down_slot;
  return daytime ? options_.day_nodes : options_.night_nodes;
}

void SimpleController::Start() {
  loop_->ScheduleAfter(FromSeconds(options_.slot_sim_seconds),
                       [this] { Tick(); });
}

void SimpleController::Tick() {
  ++slots_elapsed_;
  const int slot_of_day =
      static_cast<int>(slots_elapsed_ % options_.slots_per_day);
  const int desired = DesiredNodes(slot_of_day);
  if (!migration_->InProgress() && desired != cluster_->active_nodes()) {
    // Best-effort: ignore failures (e.g., target out of range).
    (void)migration_->StartReconfiguration(NodeCount(desired), 1.0, nullptr);
  }
  loop_->ScheduleAfter(FromSeconds(options_.slot_sim_seconds),
                       [this] { Tick(); });
}

}  // namespace pstore
