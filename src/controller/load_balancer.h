#ifndef PSTORE_CONTROLLER_LOAD_BALANCER_H_
#define PSTORE_CONTROLLER_LOAD_BALANCER_H_

#include <string>

#include "controller/controller.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "migration/squall_migrator.h"

namespace pstore {

// Options of the E-Store-style hot-spot balancer.
struct LoadBalancerOptions {
  double slot_sim_seconds = 6.0;
  // Monitoring window: rebalancing decisions happen every this many
  // slots, over the access counts accumulated since the last decision.
  int sample_slots = 10;
  // Trigger when the hottest partition's access count exceeds this
  // multiple of the mean across active partitions.
  double imbalance_threshold = 1.35;
  // At most this many bucket relocations per decision.
  int max_moves_per_round = 4;
  // Relocating a bucket blocks both partitions for bytes/extract_rate
  // of service time (same cost model as migration chunks).
  double extract_rate_bytes_per_sec = 20e6;
};

// P-Store's planner assumes an approximately uniform workload (§4.2);
// this component maintains that assumption under key-popularity skew by
// relocating hot buckets from overloaded partitions to the
// least-loaded ones — the E-Store idea at bucket granularity, and the
// paper's stated future-work direction ("combining these ideas").
//
// The balancer is deliberately conservative: it stays idle while a
// cluster reconfiguration is migrating data, and only acts when the
// imbalance exceeds the threshold.
class HotSpotBalancer : public ElasticityController {
 public:
  HotSpotBalancer(EventLoop* loop, Cluster* cluster,
                  MigrationManager* migration,
                  const LoadBalancerOptions& options);

  void Start() override;
  std::string name() const override { return "HotSpotBalancer"; }

  int64_t buckets_moved() const { return buckets_moved_; }

  // Hottest-partition access share relative to the mean in the last
  // completed window (1.0 = perfectly balanced).
  double last_imbalance() const { return last_imbalance_; }

 private:
  void Tick();
  void Rebalance();

  EventLoop* loop_;
  Cluster* cluster_;
  MigrationManager* migration_;
  LoadBalancerOptions options_;
  int slots_since_sample_ = 0;
  int64_t buckets_moved_ = 0;
  double last_imbalance_ = 1.0;
};

}  // namespace pstore

#endif  // PSTORE_CONTROLLER_LOAD_BALANCER_H_
