#ifndef PSTORE_CONTROLLER_PREDICTIVE_CONTROLLER_H_
#define PSTORE_CONTROLLER_PREDICTIVE_CONTROLLER_H_

#include <memory>
#include <string>
#include <vector>

#include "controller/controller.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/txn_executor.h"
#include "migration/squall_migrator.h"
#include "obs/tracer.h"
#include "planner/dp_planner.h"
#include "planner/move_model.h"
#include "prediction/online_predictor.h"

namespace pstore {

// Options of the P-Store Predictive Controller (paper §6).
struct PredictiveControllerOptions {
  // Duration of one trace slot in simulated seconds (the monitoring and
  // prediction granularity).
  double slot_sim_seconds = 6.0;
  // The dynamic program plans on coarser slots: one planning slot =
  // `plan_slot_factor` trace slots (the paper plans at 5-minute
  // granularity on a 1-minute trace).
  int plan_slot_factor = 5;
  // Prediction horizon, in planning slots. Must be long enough for two
  // reconfigurations with parallel migration (>= 2D/P, §5 discussion).
  int horizon_plan_slots = 48;
  // Run the planner every this many monitoring ticks (default: once per
  // planning slot). Monitoring still happens every tick.
  int plan_interval_slots = 5;
  // Consecutive planning cycles that must agree before a scale-in is
  // executed (§6: "waits for three cycles of predictions").
  int scale_in_confirm_cycles = 3;
  // When predictions miss a spike and no feasible plan exists, either
  // migrate at the regular rate (false, the paper's default) or boost
  // the migration rate (true), §4.3.1 options (1)/(2).
  bool fast_reactive_fallback = false;
  double reactive_rate_multiplier = 8.0;
  // Model parameters (Q, Q-hat, D in *planning slots*, P).
  PlannerParams planner_params;
};

// The P-Store Predictive Controller: monitors aggregate load, feeds the
// online predictor, runs the DP planner over the predicted horizon, and
// executes only the first move of each plan (receding-horizon control),
// falling back to reactive scale-out when no feasible plan exists.
class PredictiveController : public ElasticityController {
 public:
  PredictiveController(EventLoop* loop, Cluster* cluster,
                       TxnExecutor* executor, MigrationManager* migration,
                       OnlinePredictor* predictor,
                       const PredictiveControllerOptions& options);

  void Start() override;
  std::string name() const override { return "P-Store"; }

  // Counters for reports and tests.
  int64_t infeasible_plans() const { return infeasible_plans_; }
  int64_t reconfigurations_started() const {
    return reconfigurations_started_;
  }
  // Reconfigurations this controller started that ended in failure
  // (migrator retry budget exhausted), and the immediate re-plans they
  // triggered. Nonzero only under fault injection.
  int64_t move_failures() const { return move_failures_; }
  int64_t replans_after_failure() const { return replans_after_failure_; }
  // Times the predictor's serving model changed underneath the
  // controller (ensemble auto-switches, shift-triggered re-selection).
  int64_t model_switches() const { return model_switches_; }

  // Observability: controller.cycle per monitoring tick and
  // controller.action per planning decision; also forwards the tracer
  // (with this loop's clock) to the owned planner.
  void set_tracer(obs::Tracer* tracer);

 private:
  void Tick();
  void Plan();
  // Completion callback handed to the migrator: a failed move triggers
  // an immediate re-plan against the refreshed cluster state instead of
  // waiting out the current planning interval.
  MigrationManager::DoneCallback OnMoveDone();
  // Converts the trace-slot-granularity forecast into planning-slot
  // loads: L[0] is the current measured rate; L[i] is the max predicted
  // rate within planning slot i (conservative within the slot).
  std::vector<double> BuildPlanningLoad(double current_rate,
                                        const std::vector<double>& forecast)
      const;

  EventLoop* loop_;
  Cluster* cluster_;
  MigrationManager* migration_;
  OnlinePredictor* predictor_;
  PredictiveControllerOptions options_;
  LoadMonitor monitor_;
  DpPlanner planner_;
  double last_rate_ = 0.0;
  int64_t ticks_ = 0;
  int scale_in_votes_ = 0;
  int64_t infeasible_plans_ = 0;
  int64_t reconfigurations_started_ = 0;
  int64_t move_failures_ = 0;
  int64_t replans_after_failure_ = 0;
  int64_t model_switches_ = 0;
  std::string active_model_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace pstore

#endif  // PSTORE_CONTROLLER_PREDICTIVE_CONTROLLER_H_
