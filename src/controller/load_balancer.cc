#include "controller/load_balancer.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"
#include "common/sim_time.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/partition.h"
#include "migration/squall_migrator.h"

namespace pstore {

HotSpotBalancer::HotSpotBalancer(EventLoop* loop, Cluster* cluster,
                                 MigrationManager* migration,
                                 const LoadBalancerOptions& options)
    : loop_(loop), cluster_(cluster), migration_(migration),
      options_(options) {
  PSTORE_CHECK(loop_ != nullptr && cluster_ != nullptr);
  PSTORE_CHECK(options_.sample_slots >= 1);
  PSTORE_CHECK(options_.imbalance_threshold > 1.0);
}

void HotSpotBalancer::Start() {
  loop_->ScheduleAfter(FromSeconds(options_.slot_sim_seconds),
                       [this] { Tick(); });
}

void HotSpotBalancer::Tick() {
  if (++slots_since_sample_ >= options_.sample_slots) {
    slots_since_sample_ = 0;
    const bool migrating =
        migration_ != nullptr && migration_->InProgress();
    if (!migrating) {
      Rebalance();
    }
    // Start a fresh monitoring window either way.
    const int partitions = cluster_->total_active_partitions();
    for (int p = 0; p < partitions; ++p) {
      cluster_->partition(p).ResetAccessCounts();
    }
  }
  loop_->ScheduleAfter(FromSeconds(options_.slot_sim_seconds),
                       [this] { Tick(); });
}

void HotSpotBalancer::Rebalance() {
  const int partitions = cluster_->total_active_partitions();
  if (partitions < 2) return;
  std::vector<int64_t> accesses(partitions);
  int64_t total = 0;
  for (int p = 0; p < partitions; ++p) {
    accesses[p] = cluster_->partition(p).TotalAccesses();
    total += accesses[p];
  }
  if (total == 0) return;
  const double mean =
      static_cast<double>(total) / static_cast<double>(partitions);
  const auto hottest_it = std::max_element(accesses.begin(), accesses.end());
  last_imbalance_ = static_cast<double>(*hottest_it) / mean;
  if (last_imbalance_ < options_.imbalance_threshold) return;

  for (int move = 0; move < options_.max_moves_per_round; ++move) {
    // Re-evaluate after each relocation (counts move with the bucket).
    int hot = 0;
    int cold = 0;
    for (int p = 1; p < partitions; ++p) {
      if (accesses[p] > accesses[hot]) hot = p;
      if (accesses[p] < accesses[cold]) cold = p;
    }
    if (static_cast<double>(accesses[hot]) <
        options_.imbalance_threshold * mean) {
      break;
    }
    // Pick the largest bucket that still guarantees strict improvement:
    // moving b <= (hot - cold)/2 makes max(hot - b, cold + b) < hot, so
    // the rebalance monotonically shrinks the spread and cannot
    // ping-pong a single mega-hot bucket between partitions.
    const int64_t cap = (accesses[hot] - accesses[cold]) / 2;
    if (cap <= 0) break;
    int64_t bucket_accesses = 0;
    const BucketId bucket =
        cluster_->partition(hot).HottestBucketBelow(cap, &bucket_accesses);
    if (bucket < 0 || bucket_accesses <= 0) break;

    const int64_t bucket_bytes =
        cluster_->partition(hot).BucketBytes(bucket);
    cluster_->MoveBucket(bucket, cold);
    // The relocation's extraction/loading work competes with
    // transactions on both partitions, like a migration chunk.
    const SimTime block =
        FromSeconds(static_cast<double>(bucket_bytes) /
                    options_.extract_rate_bytes_per_sec);
    cluster_->partition(hot).Submit(loop_->now(), block);
    cluster_->partition(cold).Submit(loop_->now(), block);
    accesses[hot] -= bucket_accesses;
    accesses[cold] += bucket_accesses;
    ++buckets_moved_;
  }
}

}  // namespace pstore
