#include "controller/predictive_controller.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/txn_executor.h"
#include "migration/squall_migrator.h"
#include "obs/tracer.h"
#include "planner/move.h"
#include "prediction/online_predictor.h"

namespace pstore {

PredictiveController::PredictiveController(
    EventLoop* loop, Cluster* cluster, TxnExecutor* executor,
    MigrationManager* migration, OnlinePredictor* predictor,
    const PredictiveControllerOptions& options)
    : loop_(loop),
      cluster_(cluster),
      migration_(migration),
      predictor_(predictor),
      options_(options),
      monitor_(executor, options.slot_sim_seconds),
      planner_(options.planner_params) {
  PSTORE_CHECK(loop_ != nullptr && cluster_ != nullptr);
  PSTORE_CHECK(migration_ != nullptr && predictor_ != nullptr);
  PSTORE_CHECK(options_.plan_slot_factor >= 1);
  PSTORE_CHECK(options_.horizon_plan_slots >= 2);
}

void PredictiveController::Start() {
  loop_->ScheduleAfter(FromSeconds(options_.slot_sim_seconds),
                       [this] { Tick(); });
}

void PredictiveController::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  planner_.set_tracer(tracer, [this] { return loop_->now(); });
}

void PredictiveController::Tick() {
  ++ticks_;
  last_rate_ = monitor_.SampleSlotRate();
  predictor_->Observe(last_rate_);
  // Auto-switch wiring: when the predictor's serving model changes
  // (ensemble re-selection, shift-triggered re-fit of a different
  // member), record and trace the handover so reports can attribute
  // forecast regime changes.
  std::string serving = predictor_->active_model_name();
  if (serving != active_model_) {
    if (!active_model_.empty()) {
      ++model_switches_;
      PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kController,
                   loop_->now(), "controller.model_switch",
                   .With("from", active_model_).With("to", serving));
    }
    active_model_ = std::move(serving);
  }
  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kController,
               loop_->now(), "controller.cycle",
               .With("load", last_rate_)
                   .With("machines", cluster_->active_nodes())
                   .With("migrating", migration_->InProgress()));
  if (!migration_->InProgress() &&
      ticks_ % std::max(1, options_.plan_interval_slots) == 0) {
    Plan();
  }
  loop_->ScheduleAfter(FromSeconds(options_.slot_sim_seconds),
                       [this] { Tick(); });
}

MigrationManager::DoneCallback PredictiveController::OnMoveDone() {
  return [this](const Status& status) {
    if (status.ok()) return;
    // The move died (retry budget exhausted on a crashed node or dead
    // link) and left the cluster somewhere between the old and new
    // layouts. Re-plan right away from the actual machine count instead
    // of waiting for the next planning cycle — the fault already cost
    // us time we planned to spend migrating.
    ++move_failures_;
    ++replans_after_failure_;
    Plan();
  };
}

std::vector<double> PredictiveController::BuildPlanningLoad(
    double current_rate, const std::vector<double>& forecast) const {
  std::vector<double> load;
  load.reserve(options_.horizon_plan_slots + 1);
  load.push_back(current_rate);
  for (int slot = 0; slot < options_.horizon_plan_slots; ++slot) {
    double peak = 0.0;
    for (int j = 0; j < options_.plan_slot_factor; ++j) {
      const size_t idx =
          static_cast<size_t>(slot) * options_.plan_slot_factor + j;
      if (idx < forecast.size()) peak = std::max(peak, forecast[idx]);
    }
    load.push_back(peak);
  }
  return load;
}

void PredictiveController::Plan() {
  const size_t fine_horizon = static_cast<size_t>(
      options_.horizon_plan_slots * options_.plan_slot_factor);
  StatusOr<std::vector<double>> forecast =
      predictor_->PredictHorizon(fine_horizon);
  if (!forecast.ok()) return;  // not enough history yet

  const std::vector<double> load = BuildPlanningLoad(last_rate_, *forecast);
  StatusOr<PlanResult> plan =
      planner_.BestMoves(load, NodeCount(cluster_->active_nodes()));

  if (!plan.ok()) {
    // No feasible plan: the predictions (or current load) exceed what we
    // can scale to in time. React immediately: scale out to whatever the
    // peak needs, at the regular or boosted migration rate (§4.3.1).
    ++infeasible_plans_;
    const double peak = *std::max_element(load.begin(), load.end());
    const NodeCount target = std::min(
        planner_.NodesFor(peak), NodeCount(cluster_->options().max_nodes));
    if (target.value() == cluster_->active_nodes()) return;
    const double multiplier = options_.fast_reactive_fallback
                                  ? options_.reactive_rate_multiplier
                                  : 1.0;
    scale_in_votes_ = 0;
    if (migration_->StartReconfiguration(target, multiplier, OnMoveDone())
            .ok()) {
      ++reconfigurations_started_;
      PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kController,
                   loop_->now(), "controller.action",
                   .With("kind", "reactive_fallback")
                       .With("target", target.value()));
    }
    return;
  }

  const Move* first = plan->FirstReconfiguration();
  if (first == nullptr) {
    scale_in_votes_ = 0;
    return;
  }
  // Receding horizon: only the first move matters, and only once its
  // start time arrives. We re-plan every slot, so "starts within the
  // current planning slot" means "start now".
  if (first->start_slot > TimeStep(0)) {
    if (first->nodes_after >= first->nodes_before) scale_in_votes_ = 0;
    return;
  }
  if (first->nodes_after < first->nodes_before) {
    // Scale-in: require N consecutive cycles to agree (§6) to avoid
    // flapping on transient dips.
    ++scale_in_votes_;
    if (scale_in_votes_ < options_.scale_in_confirm_cycles) return;
  }
  scale_in_votes_ = 0;
  // The plan may want more machines than physically exist; peg at the
  // cluster ceiling rather than stalling (the capacity shortfall then
  // shows up as violations, which is the honest outcome).
  const NodeCount target =
      std::min(first->nodes_after, NodeCount(cluster_->options().max_nodes));
  if (target.value() == cluster_->active_nodes()) return;
  if (migration_->StartReconfiguration(target, 1.0, OnMoveDone()).ok()) {
    ++reconfigurations_started_;
    PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kController,
                 loop_->now(), "controller.action",
                 .With("kind", "start_move").With("target", target.value()));
  }
}

}  // namespace pstore
