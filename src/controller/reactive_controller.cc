#include "controller/reactive_controller.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/txn_executor.h"
#include "migration/squall_migrator.h"

namespace pstore {

ReactiveController::ReactiveController(
    EventLoop* loop, Cluster* cluster, TxnExecutor* executor,
    MigrationManager* migration, const ReactiveControllerOptions& options)
    : loop_(loop),
      cluster_(cluster),
      migration_(migration),
      options_(options),
      monitor_(executor, options.slot_sim_seconds) {
  PSTORE_CHECK(loop_ != nullptr && cluster_ != nullptr &&
               migration_ != nullptr);
  PSTORE_CHECK(options_.planner_params.target_rate_per_node > 0.0);
  PSTORE_CHECK(options_.planner_params.max_rate_per_node > 0.0);
}

void ReactiveController::Start() {
  loop_->ScheduleAfter(FromSeconds(options_.slot_sim_seconds),
                       [this] { Tick(); });
}

void ReactiveController::Tick() {
  const double rate = monitor_.SampleSlotRate();
  const int nodes = cluster_->active_nodes();
  const double q = options_.planner_params.target_rate_per_node;
  const double q_hat = options_.planner_params.max_rate_per_node;

  if (!migration_->InProgress()) {
    const double max_capacity = q_hat * nodes;
    if (rate > options_.high_watermark * max_capacity) {
      // Overload detected. E-Store first spends a detailed-monitoring
      // phase confirming it and choosing what to move; the system keeps
      // suffering meanwhile.
      consecutive_low_slots_ = 0;
      ++consecutive_overload_slots_;
      if (consecutive_overload_slots_ >= options_.detection_slots) {
        consecutive_overload_slots_ = 0;
        // Size the new cluster for the *current* load plus headroom (a
        // reactive system has no forecast), and migrate while
        // saturated — the reactive cost.
        const double sized_load = rate * (1.0 + options_.headroom);
        const NodeCount target = NodeCount(
            std::min(cluster_->options().max_nodes,
                     std::max(nodes + 1,
                              static_cast<int>(std::ceil(sized_load / q)))));
        auto on_done = [this](const Status& status) {
          if (status.ok()) return;
          // The scale-out died mid-move while the system is still
          // overloaded. Skip the detection phase — the overload was
          // already confirmed — so the next overloaded tick retries.
          ++move_failures_;
          consecutive_overload_slots_ = options_.detection_slots;
        };
        if (migration_->StartReconfiguration(target, 1.0, on_done).ok()) {
          ++scale_outs_;
        }
      }
    } else if (nodes > 1 &&
               rate < options_.low_watermark * q * (nodes - 1)) {
      consecutive_overload_slots_ = 0;
      ++consecutive_low_slots_;
      if (consecutive_low_slots_ >= options_.low_slots_required) {
        consecutive_low_slots_ = 0;
        auto on_done = [this](const Status& status) {
          // A failed scale-in is benign: stay at the current size and
          // let the low-watermark counter build up again.
          if (!status.ok()) ++move_failures_;
        };
        if (migration_
                ->StartReconfiguration(NodeCount(nodes - 1), 1.0, on_done)
                .ok()) {
          ++scale_ins_;
        }
      }
    } else {
      consecutive_low_slots_ = 0;
      consecutive_overload_slots_ = 0;
    }
  }
  loop_->ScheduleAfter(FromSeconds(options_.slot_sim_seconds),
                       [this] { Tick(); });
}

}  // namespace pstore
