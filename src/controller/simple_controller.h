#ifndef PSTORE_CONTROLLER_SIMPLE_CONTROLLER_H_
#define PSTORE_CONTROLLER_SIMPLE_CONTROLLER_H_

#include <string>

#include "controller/controller.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "migration/squall_migrator.h"

namespace pstore {

// Options of the "Simple" time-of-day baseline (Fig. 12/13): scale up in
// the morning and back down at night, regardless of the actual load.
struct SimpleControllerOptions {
  double slot_sim_seconds = 6.0;
  // Trace slots per day (1440 for a per-minute trace).
  int slots_per_day = 1440;
  // Slot-of-day at which to start scaling up / down.
  int up_slot = 8 * 60;     // 08:00
  int down_slot = 23 * 60;  // 23:00
  int day_nodes = 10;
  int night_nodes = 3;
};

// Fixed schedule: day_nodes between up_slot and down_slot, night_nodes
// otherwise. Works while the load follows the usual pattern; breaks as
// soon as it deviates (the paper's Fig. 13).
class SimpleController : public ElasticityController {
 public:
  SimpleController(EventLoop* loop, Cluster* cluster,
                   MigrationManager* migration,
                   const SimpleControllerOptions& options);

  void Start() override;
  std::string name() const override { return "Simple"; }

  // Desired machine count at the given slot-of-day.
  int DesiredNodes(int slot_of_day) const;

 private:
  void Tick();

  EventLoop* loop_;
  Cluster* cluster_;
  MigrationManager* migration_;
  SimpleControllerOptions options_;
  int64_t slots_elapsed_ = 0;
};

}  // namespace pstore

#endif  // PSTORE_CONTROLLER_SIMPLE_CONTROLLER_H_
