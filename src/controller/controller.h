#ifndef PSTORE_CONTROLLER_CONTROLLER_H_
#define PSTORE_CONTROLLER_CONTROLLER_H_

#include <string>

#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/txn_executor.h"

namespace pstore {

// Base class for elasticity controllers driving a simulated cluster.
// Controllers tick on trace-slot boundaries, observe the measured load,
// and decide when to start reconfigurations.
class ElasticityController {
 public:
  virtual ~ElasticityController() = default;

  // Begins ticking on the event loop. Call once, before the driver
  // starts producing load.
  virtual void Start() = 0;

  virtual std::string name() const = 0;
};

// Samples the executor's submission counter once per slot and converts
// it to an offered rate in transactions per simulated second.
class LoadMonitor {
 public:
  LoadMonitor(TxnExecutor* executor, double slot_sim_seconds)
      : executor_(executor), slot_sim_seconds_(slot_sim_seconds) {}

  // Returns the average rate since the previous call (txn/s).
  double SampleSlotRate() {
    const int64_t now_count = executor_->submitted_count();
    const double rate = static_cast<double>(now_count - last_count_) /
                        slot_sim_seconds_;
    last_count_ = now_count;
    return rate;
  }

 private:
  TxnExecutor* executor_;
  double slot_sim_seconds_;
  int64_t last_count_ = 0;
};

}  // namespace pstore

#endif  // PSTORE_CONTROLLER_CONTROLLER_H_
