#ifndef PSTORE_ANALYSIS_NONDET_ITERATION_CHECK_H_
#define PSTORE_ANALYSIS_NONDET_ITERATION_CHECK_H_

#include <string>
#include <vector>

#include "analysis/check.h"
#include "analysis/project.h"
#include "analysis/token_cache.h"

namespace pstore {
namespace analysis {

// Determinism rule "nondet-iteration": in sim-affecting modules
// (engine, sim, fleet, planner, prediction, migration, controller,
// fault), flags constructs whose behaviour depends on the iteration
// order of std::unordered_map / std::unordered_set — range-for loops
// and begin()/cbegin()/rbegin() iterator loops over unordered-typed
// variables, plus the declarations of unordered containers themselves
// (a declaration site is where the "iterate deterministically at every
// use" obligation is taken on, so it either moves to an ordered
// container or carries an explicit allow()).
//
// Variable names with unordered-container types are collected
// project-wide, including through `using X = std::unordered_map<...>`
// aliases, so a member declared in a header is recognized when its
// .cc iterates it. The match is by name: a same-named ordered variable
// elsewhere can false-positive; suppress with a comment in that case.
class NondetIterationCheck : public Check {
 public:
  // True for the src/ directories whose output feeds simulation
  // results (exposed for tests).
  static bool IsSimAffectingDir(const std::string& dir);

  std::string name() const override { return "nondet-iteration"; }
  void Run(const AnalysisContext& context,
           std::vector<Finding>* findings) const override;
};

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_NONDET_ITERATION_CHECK_H_
