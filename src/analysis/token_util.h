#ifndef PSTORE_ANALYSIS_TOKEN_UTIL_H_
#define PSTORE_ANALYSIS_TOKEN_UTIL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/tokenizer.h"

namespace pstore {
namespace analysis {

// Small shared helpers for token-level checks. Kept header-only so each
// rule family stays a self-contained .cc with no extra link deps.

inline bool IsIdentAt(const std::vector<Token>& tokens, size_t i) {
  return i < tokens.size() && tokens[i].kind == TokenKind::kIdentifier;
}

inline bool IsIdentAt(const std::vector<Token>& tokens, size_t i,
                      const char* text) {
  return IsIdentAt(tokens, i) && tokens[i].text == text;
}

inline bool IsPunctAt(const std::vector<Token>& tokens, size_t i,
                      const char* text) {
  return i < tokens.size() && tokens[i].kind == TokenKind::kPunct &&
         tokens[i].text == text;
}

// Returns the index just past the bracket run starting at `open`
// (tokens[open] must be "(", "[", or "{"), or tokens.size() if the run
// never closes. All bracket kinds nest together.
inline size_t SkipBalancedRun(const std::vector<Token>& tokens, size_t open) {
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kPunct) continue;
    const std::string& t = tokens[i].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    if (t == ")" || t == "]" || t == "}") {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return tokens.size();
}

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_TOKEN_UTIL_H_
