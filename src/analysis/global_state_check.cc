#include "analysis/global_state_check.h"

#include <set>

#include "analysis/check.h"
#include "analysis/project.h"
#include "analysis/source_file.h"
#include "analysis/token_cache.h"
#include "analysis/token_util.h"
#include "analysis/tokenizer.h"

namespace pstore {
namespace analysis {
namespace {

// What kind of braces the scanner is currently inside.
enum class ScopeKind { kNamespace, kClass, kEnum, kBlock };

bool IsClassKey(const std::string& text) {
  return text == "class" || text == "struct" || text == "union";
}

// True when the declaration run is immutable (const/constexpr) or is
// an operator overload (`inline bool operator=='s `==` reads as an
// `=` stop token, so it must be excluded explicitly).
bool RunIsExempt(const std::vector<Token>& tokens, size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier) continue;
    if (tokens[i].text == "const" || tokens[i].text == "constexpr" ||
        tokens[i].text == "constinit" || tokens[i].text == "operator") {
      return true;
    }
  }
  return false;
}

// Statement-leading keywords at namespace scope that cannot begin a
// variable definition this rule cares about.
bool IsNonVariableLead(const std::string& text) {
  return text == "using" || text == "typedef" || text == "static_assert" ||
         text == "template" || text == "extern" || text == "friend" ||
         text == "namespace" || text == "enum" || text == "public" ||
         text == "private" || text == "protected" || IsClassKey(text);
}

}  // namespace

void GlobalStateCheck::Run(const AnalysisContext& context,
                           std::vector<Finding>* findings) const {
  const Project& project = context.project;
  const TokenCache& cache = context.tokens;
  for (const SourceFile& file : project.files()) {
    if (file.dir().empty()) continue;  // only src/ is in scope
    const std::vector<Token>& tokens = cache.tokens(file);
    const size_t n = tokens.size();

    std::vector<ScopeKind> scopes;  // empty == file (namespace) scope
    bool pending_namespace = false;
    bool pending_class = false;
    bool pending_enum = false;
    bool at_statement_start = true;

    auto current = [&]() {
      return scopes.empty() ? ScopeKind::kNamespace : scopes.back();
    };

    size_t i = 0;
    while (i < n) {
      const Token& tok = tokens[i];
      if (tok.kind == TokenKind::kIdentifier) {
        if (tok.text == "template" && IsPunctAt(tokens, i + 1, "<")) {
          // Skip the parameter list so its `class`/`typename` keywords
          // do not leak into brace classification.
          int angle = 0;
          size_t j = i + 1;
          for (; j < n; ++j) {
            if (tokens[j].kind != TokenKind::kPunct) continue;
            if (tokens[j].text == "<") ++angle;
            if (tokens[j].text == ">" && --angle == 0) break;
            if (tokens[j].text == ";" || tokens[j].text == "{") break;
          }
          i = j + 1;
          continue;
        }
        if (tok.text == "namespace") pending_namespace = true;
        if (IsClassKey(tok.text) && !pending_enum) pending_class = true;
        if (tok.text == "enum") pending_enum = true;
      }

      if (tok.kind == TokenKind::kPunct && tok.text == "{") {
        if (pending_namespace) {
          scopes.push_back(ScopeKind::kNamespace);
        } else if (pending_enum) {
          scopes.push_back(ScopeKind::kEnum);
        } else if (pending_class) {
          scopes.push_back(ScopeKind::kClass);
        } else {
          // Function bodies, initializer lists, lambdas: any state
          // declared inside is block scoped (or aggregate data).
          scopes.push_back(ScopeKind::kBlock);
        }
        pending_namespace = pending_class = pending_enum = false;
        at_statement_start = true;
        ++i;
        continue;
      }
      if (tok.kind == TokenKind::kPunct && tok.text == "}") {
        if (!scopes.empty()) scopes.pop_back();
        at_statement_start = true;
        ++i;
        continue;
      }
      if (tok.kind == TokenKind::kPunct && tok.text == ";") {
        pending_namespace = pending_class = pending_enum = false;
        at_statement_start = true;
        ++i;
        continue;
      }

      // `static` data: parse the declaration run to its first stop
      // token; a `(` stop means a function and is ignored.
      if (tok.kind == TokenKind::kIdentifier && tok.text == "static" &&
          current() != ScopeKind::kEnum) {
        int angle = 0;
        size_t stop = i + 1;
        bool is_function = false;
        bool terminated = false;
        for (; stop < n; ++stop) {
          if (tokens[stop].kind != TokenKind::kPunct) continue;
          const std::string& t = tokens[stop].text;
          if (t == "<") ++angle;
          if (t == ">" && angle > 0) --angle;
          if (angle > 0) continue;
          if (t == "[") {  // attribute or array extent: skip the run
            stop = SkipBalancedRun(tokens, stop) - 1;
            continue;
          }
          if (t == "(") {
            is_function = true;
            terminated = true;
            break;
          }
          if (t == ";" || t == "=" || t == "{" || t == "}") {
            terminated = true;
            break;
          }
        }
        if (terminated && !is_function && stop < n &&
            tokens[stop].text != "}" &&
            !RunIsExempt(tokens, i + 1, stop)) {
          // Name: last identifier of the declarator run.
          size_t name_at = 0;
          for (size_t j = i + 1; j < stop; ++j) {
            if (tokens[j].kind == TokenKind::kIdentifier) name_at = j;
          }
          if (name_at != 0) {
            const ScopeKind scope = current();
            const char* what =
                scope == ScopeKind::kClass
                    ? "mutable static data member"
                    : (scope == ScopeKind::kBlock
                           ? "mutable function-local static"
                           : "mutable namespace-scope static");
            findings->push_back(
                {file.path(), tokens[name_at].line, "global-mutable-state",
                 std::string(what) + " '" + tokens[name_at].text +
                     "' couples independent simulations; make it const, "
                     "pass it explicitly, or allow() with a rationale"});
          }
        }
        i = stop == n ? n : stop;
        at_statement_start = false;
        ++i;
        continue;
      }

      // Non-static namespace-scope declarations.
      if (at_statement_start && current() == ScopeKind::kNamespace &&
          tok.kind == TokenKind::kIdentifier && !IsNonVariableLead(tok.text)) {
        int angle = 0;
        size_t stop = i;
        bool is_function = false;
        bool terminated = false;
        for (; stop < n; ++stop) {
          if (tokens[stop].kind != TokenKind::kPunct) continue;
          const std::string& t = tokens[stop].text;
          if (t == "<") ++angle;
          if (t == ">" && angle > 0) --angle;
          if (angle > 0) continue;
          if (t == "[") {
            stop = SkipBalancedRun(tokens, stop) - 1;
            continue;
          }
          if (t == "(") {
            is_function = true;
            terminated = true;
            break;
          }
          if (t == ";" || t == "=" || t == "{" || t == "}") {
            terminated = true;
            break;
          }
        }
        if (terminated && !is_function && stop < n &&
            tokens[stop].text != "}" &&
            !RunIsExempt(tokens, i, stop)) {
          size_t name_at = 0;
          size_t ident_count = 0;
          for (size_t j = i; j < stop; ++j) {
            if (tokens[j].kind == TokenKind::kIdentifier) {
              name_at = j;
              ++ident_count;
            }
          }
          // Require type + name, and skip qualified definitions of
          // class statics (`int Foo::counter = 0;`) — those are
          // flagged at their in-class declaration.
          const bool qualified =
              name_at > 0 && IsPunctAt(tokens, name_at - 1, "::");
          if (ident_count >= 2 && !qualified) {
            findings->push_back(
                {file.path(), tokens[name_at].line, "global-mutable-state",
                 "mutable namespace-scope variable '" + tokens[name_at].text +
                     "' couples independent simulations; make it const, "
                     "pass it explicitly, or allow() with a rationale"});
          }
        }
        i = stop == n ? n : stop;
        at_statement_start = false;
        ++i;
        continue;
      }

      at_statement_start = false;
      ++i;
    }
  }
}

}  // namespace analysis
}  // namespace pstore
