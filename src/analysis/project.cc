#include "analysis/project.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "analysis/source_file.h"
#include "common/status.h"

namespace pstore {
namespace analysis {
namespace {

bool IsSourcePath(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

}  // namespace

void Project::AddFile(SourceFile file) {
  if (!file.include_key().empty() && file.is_header()) {
    by_include_key_[file.include_key()] = files_.size();
  }
  files_.push_back(std::move(file));
}

const SourceFile* Project::FindHeader(const std::string& include_key) const {
  auto it = by_include_key_.find(include_key);
  if (it == by_include_key_.end()) return nullptr;
  return &files_[it->second];
}

StatusOr<Project> Project::Load(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && IsSourcePath(it->path())) {
          paths.push_back(it->path().string());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      paths.push_back(root);
    } else {
      return Status::NotFound("no such file or directory: " + root);
    }
  }
  if (paths.empty()) {
    return Status::InvalidArgument("no .h or .cc files under the given roots");
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  Project project;
  for (const std::string& path : paths) {
    StatusOr<SourceFile> file = SourceFile::Load(path);
    RETURN_IF_ERROR(file.status());
    project.AddFile(std::move(file.value()));
  }
  return project;
}

}  // namespace analysis
}  // namespace pstore
