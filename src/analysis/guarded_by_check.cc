#include "analysis/guarded_by_check.h"

#include <map>
#include <set>

#include "analysis/check.h"
#include "analysis/project.h"
#include "analysis/source_file.h"
#include "analysis/token_cache.h"
#include "analysis/token_util.h"
#include "analysis/tokenizer.h"

namespace pstore {
namespace analysis {
namespace {

constexpr const char kMacro[] = "PSTORE_GUARDED_BY";

bool IsMutexTypeName(const std::string& text) {
  return text == "mutex" || text == "recursive_mutex" ||
         text == "shared_mutex" || text == "timed_mutex";
}

bool IsClassKeyword(const std::string& text) {
  return text == "class" || text == "struct";
}

struct MutexMember {
  std::string name;
  std::string file;
  int line = 0;
};

struct ClassInfo {
  std::vector<MutexMember> mutexes;
  std::map<std::string, std::string> guarded;  // member -> guarding mutex
};

struct Method {
  std::string class_name;
  std::string name;
  const SourceFile* file = nullptr;
  int line = 0;
  size_t body_begin = 0;  // token indices, inclusive/exclusive
  size_t body_end = 0;
};

// Scans a class-member statement run [begin, end): records a mutex
// member and/or a PSTORE_GUARDED_BY annotation. Parens and angle
// brackets inside the run (std::function<void(size_t)>, default
// arguments) are skipped when locating the member name.
void ParseMemberStatement(const std::vector<Token>& tokens, size_t begin,
                          size_t end, const SourceFile& file,
                          ClassInfo* info) {
  size_t macro_at = 0;
  for (size_t i = begin; i < end; ++i) {
    if (IsIdentAt(tokens, i, kMacro) && IsPunctAt(tokens, i + 1, "(")) {
      macro_at = i;
      break;
    }
  }

  // The declared name: the identifier right before the annotation
  // macro, or the last identifier at bracket depth 0 otherwise.
  size_t name_at = 0;
  if (macro_at != 0) {
    for (size_t i = begin; i < macro_at; ++i) {
      if (tokens[i].kind == TokenKind::kIdentifier) name_at = i;
    }
  } else {
    int angle = 0;
    for (size_t i = begin; i < end; ++i) {
      if (tokens[i].kind == TokenKind::kPunct) {
        const std::string& t = tokens[i].text;
        if (t == "<") ++angle;
        if (t == ">" && angle > 0) --angle;
        if (t == "(" || t == "[") {
          i = SkipBalancedRun(tokens, i) - 1;
          continue;
        }
        if (t == "=") break;  // default initializer: name seen already
        continue;
      }
      if (angle == 0 && tokens[i].kind == TokenKind::kIdentifier) name_at = i;
    }
  }
  if (name_at == 0) return;

  bool is_mutex = false;
  const size_t type_end = macro_at == 0 ? end : macro_at;
  for (size_t i = begin; i + 2 < type_end; ++i) {
    if (IsIdentAt(tokens, i, "std") && IsPunctAt(tokens, i + 1, "::") &&
        IsIdentAt(tokens, i + 2) && IsMutexTypeName(tokens[i + 2].text)) {
      is_mutex = true;
      break;
    }
  }
  if (is_mutex) {
    info->mutexes.push_back(
        {tokens[name_at].text, file.path(), tokens[name_at].line});
  }

  if (macro_at != 0) {
    const size_t close = SkipBalancedRun(tokens, macro_at + 1);
    std::string mutex_name;
    for (size_t i = macro_at + 2; i + 1 < close; ++i) {
      if (tokens[i].kind == TokenKind::kIdentifier) mutex_name = tokens[i].text;
    }
    if (!mutex_name.empty()) {
      info->guarded[tokens[name_at].text] = mutex_name;
    }
  }
}

// Walks one class body [open + 1, close), collecting member statements
// and inline method bodies. Nested class bodies are skipped here; the
// outer file scan discovers them as classes in their own right.
void ParseClassBody(const std::vector<Token>& tokens, size_t open,
                    size_t close, const std::string& class_name,
                    const SourceFile& file, ClassInfo* info,
                    std::vector<Method>* methods) {
  size_t i = open + 1;
  while (i < close) {
    const size_t stmt_begin = i;
    size_t method_name_at = 0;  // ident immediately before an attached (...)
    int angle = 0;
    bool has_class_key = false;
    size_t stop = close;
    for (size_t j = stmt_begin; j < close; ++j) {
      if (tokens[j].kind == TokenKind::kIdentifier) {
        if (IsClassKeyword(tokens[j].text)) has_class_key = true;
        continue;
      }
      if (tokens[j].kind != TokenKind::kPunct) continue;
      const std::string& t = tokens[j].text;
      if (t == "<") ++angle;
      if (t == ">" && angle > 0) --angle;
      if (t == "(") {
        if (angle == 0 && method_name_at == 0 && j > stmt_begin &&
            IsIdentAt(tokens, j - 1) && tokens[j - 1].text != kMacro) {
          method_name_at = j - 1;
        }
        j = SkipBalancedRun(tokens, j) - 1;
        continue;
      }
      if (t == "[") {
        j = SkipBalancedRun(tokens, j) - 1;
        continue;
      }
      if (t == ";" || t == "{") {
        stop = j;
        break;
      }
    }
    if (stop >= close) break;

    if (IsPunctAt(tokens, stop, ";")) {
      if (method_name_at == 0 && !has_class_key) {
        ParseMemberStatement(tokens, stmt_begin, stop, file, info);
      }
      i = stop + 1;
      continue;
    }

    // `{` terminated: a nested class, an inline method body, or a
    // brace-initialized member.
    const size_t body_end = SkipBalancedRun(tokens, stop);
    if (has_class_key) {
      // Nested class: body handled by the outer scan; skip past it.
      i = body_end;
      continue;
    }
    if (method_name_at != 0) {
      const std::string& mname = tokens[method_name_at].text;
      const bool is_dtor = method_name_at > stmt_begin &&
                           IsPunctAt(tokens, method_name_at - 1, "~");
      if (mname != class_name && !is_dtor) {
        methods->push_back({class_name, mname, &file,
                            tokens[method_name_at].line, stop, body_end});
      }
      i = body_end;
      continue;
    }
    // Brace-initialized member: `Type name{...};`.
    ParseMemberStatement(tokens, stmt_begin, stop, file, info);
    i = body_end;
    if (IsPunctAt(tokens, i, ";")) ++i;
  }
}

}  // namespace

void GuardedByCheck::Run(const AnalysisContext& context,
                         std::vector<Finding>* findings) const {
  const Project& project = context.project;
  const TokenCache& cache = context.tokens;
  std::map<std::string, ClassInfo> classes;
  std::vector<Method> methods;

  // Pass 1: class definitions — members, annotations, inline methods.
  for (const SourceFile& file : project.files()) {
    if (file.dir().empty()) continue;  // only src/ is in scope
    const std::vector<Token>& tokens = cache.tokens(file);
    const size_t n = tokens.size();
    for (size_t i = 0; i < n; ++i) {
      if (IsIdentAt(tokens, i, "template") && IsPunctAt(tokens, i + 1, "<")) {
        // Skip the parameter list so `class T` parameters are not
        // mistaken for class definitions.
        int angle = 0;
        size_t j = i + 1;
        for (; j < n; ++j) {
          if (tokens[j].kind != TokenKind::kPunct) continue;
          if (tokens[j].text == "<") ++angle;
          if (tokens[j].text == ">" && --angle == 0) break;
          if (tokens[j].text == ";" || tokens[j].text == "{") break;
        }
        i = j;
        continue;
      }
      if (!IsIdentAt(tokens, i) || !IsClassKeyword(tokens[i].text)) continue;
      if (i > 0 && IsIdentAt(tokens, i - 1, "enum")) continue;
      if (!IsIdentAt(tokens, i + 1)) continue;
      const std::string& class_name = tokens[i + 1].text;
      // Find the body brace; a forward declaration, parameter, or
      // template argument never reaches one.
      size_t open = 0;
      for (size_t j = i + 2; j < n; ++j) {
        if (tokens[j].kind != TokenKind::kPunct) continue;
        const std::string& t = tokens[j].text;
        if (t == "{") {
          open = j;
          break;
        }
        if (t == ";" || t == ")" || t == "(" || t == "," || t == ">" ||
            t == "=" || t == "}") {
          break;
        }
      }
      if (open == 0) continue;
      const size_t close = SkipBalancedRun(tokens, open) - 1;
      ParseClassBody(tokens, open, close, class_name, file,
                     &classes[class_name], &methods);
    }
  }

  // Pass 2: out-of-line `Class::Method(...) ... {` definitions.
  for (const SourceFile& file : project.files()) {
    if (file.dir().empty()) continue;
    const std::vector<Token>& tokens = cache.tokens(file);
    const size_t n = tokens.size();
    for (size_t i = 0; i + 3 < n; ++i) {
      if (!IsIdentAt(tokens, i) || !IsPunctAt(tokens, i + 1, "::") ||
          !IsIdentAt(tokens, i + 2) || !IsPunctAt(tokens, i + 3, "(")) {
        continue;
      }
      const std::string& class_name = tokens[i].text;
      const std::string& method_name = tokens[i + 2].text;
      if (classes.count(class_name) == 0) continue;
      // Ctors are exempt (no concurrent access during construction);
      // `Foo::~Foo` never matches because `~` is not an identifier.
      if (method_name == class_name) continue;
      const size_t after_params = SkipBalancedRun(tokens, i + 3);
      // Accept only definition syntax: specifiers / trailing return
      // tokens, then `{`. Anything else is a call or a declaration.
      size_t j = after_params;
      bool is_definition = false;
      while (j < n) {
        if (IsPunctAt(tokens, j, "{")) {
          is_definition = true;
          break;
        }
        if (tokens[j].kind == TokenKind::kIdentifier) {
          if (tokens[j].text == "noexcept" && IsPunctAt(tokens, j + 1, "(")) {
            j = SkipBalancedRun(tokens, j + 1);
            continue;
          }
          ++j;
          continue;
        }
        if (IsPunctAt(tokens, j, "->") || IsPunctAt(tokens, j, "::") ||
            IsPunctAt(tokens, j, "<") || IsPunctAt(tokens, j, ">") ||
            IsPunctAt(tokens, j, "&") || IsPunctAt(tokens, j, "*")) {
          ++j;
          continue;
        }
        break;  // `;` declaration, `:` ctor-init, operators: not a body
      }
      if (!is_definition) continue;
      methods.push_back({class_name, method_name, &file, tokens[i + 2].line, j,
                         SkipBalancedRun(tokens, j)});
    }
  }

  // Finding 1: a mutex no annotation references is either dead weight
  // or guarding invisible state.
  for (const auto& [class_name, info] : classes) {
    std::set<std::string> referenced;
    for (const auto& [member, mutex] : info.guarded) referenced.insert(mutex);
    for (const MutexMember& mutex : info.mutexes) {
      if (referenced.count(mutex.name) != 0) continue;
      findings->push_back(
          {mutex.file, mutex.line, "guarded-by",
           "class '" + class_name + "' owns mutex '" + mutex.name +
               "' but no member is annotated PSTORE_GUARDED_BY(" + mutex.name +
               "); annotate the state it protects "
               "(common/thread_annotations.h)"});
    }
  }

  // Finding 2: a method that touches guarded state but never names the
  // lock. Only mutexes that are members of the same class are
  // enforced; annotations naming external mutexes are informational.
  for (const Method& method : methods) {
    const auto class_it = classes.find(method.class_name);
    if (class_it == classes.end()) continue;
    const ClassInfo& info = class_it->second;
    std::set<std::string> own_mutexes;
    for (const MutexMember& mutex : info.mutexes) {
      own_mutexes.insert(mutex.name);
    }
    const std::vector<Token>& tokens = cache.tokens(*method.file);
    std::set<std::string> body_idents;
    for (size_t i = method.body_begin; i < method.body_end; ++i) {
      if (tokens[i].kind == TokenKind::kIdentifier) {
        body_idents.insert(tokens[i].text);
      }
    }
    for (const auto& [member, mutex] : info.guarded) {
      if (own_mutexes.count(mutex) == 0) continue;
      if (body_idents.count(member) == 0) continue;
      if (body_idents.count(mutex) != 0) continue;
      findings->push_back(
          {method.file->path(), method.line, "guarded-by",
           "method '" + method.class_name + "::" + method.name +
               "' accesses '" + member + "' (guarded by '" + mutex +
               "') without naming the lock; hold " + mutex +
               " or allow() with a rationale"});
    }
  }
}

}  // namespace analysis
}  // namespace pstore
