#ifndef PSTORE_ANALYSIS_INCLUDE_HYGIENE_CHECK_H_
#define PSTORE_ANALYSIS_INCLUDE_HYGIENE_CHECK_H_

#include <set>
#include <string>
#include <vector>

#include "analysis/check.h"
#include "analysis/project.h"
#include "analysis/source_file.h"
#include "analysis/token_cache.h"
#include "analysis/tokenizer.h"

namespace pstore {
namespace analysis {

// Names a header declares, split by confidence. Strong names are
// namespace-scope declarations (types, enumerators, functions,
// constants, macros) that identify the header uniquely enough to drive
// missing-include findings; weak names (members, methods, nested types)
// only count as evidence that an include is used.
struct DeclaredNames {
  std::set<std::string> strong;
  std::set<std::string> weak;
};

// IWYU-lite include hygiene over project (`"dir/file.h"`) includes,
// rule id "include":
//  - unused include: the including file references none of the names
//    the header (or anything it re-exports via `IWYU pragma: export`)
//    declares;
//  - missing direct include: the file uses a name declared by exactly
//    one project header that it only receives transitively.
class IncludeHygieneCheck : public Check {
 public:
  // Heuristic declaration scan of one file (exposed for tests). The
  // single-argument form tokenizes the file itself; Run uses the
  // project-wide token cache instead.
  static DeclaredNames ExtractDeclaredNames(const SourceFile& file);
  static DeclaredNames ExtractDeclaredNames(const SourceFile& file,
                                            const std::vector<Token>& tokens);

  std::string name() const override { return "include"; }
  void Run(const AnalysisContext& context,
           std::vector<Finding>* findings) const override;
};

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_INCLUDE_HYGIENE_CHECK_H_
