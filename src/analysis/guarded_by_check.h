#ifndef PSTORE_ANALYSIS_GUARDED_BY_CHECK_H_
#define PSTORE_ANALYSIS_GUARDED_BY_CHECK_H_

#include <string>
#include <vector>

#include "analysis/check.h"
#include "analysis/project.h"
#include "analysis/token_cache.h"

namespace pstore {
namespace analysis {

// Concurrency rule "guarded-by": a GUARDED_BY-lite discipline for
// classes under src/ that own a std::mutex (or recursive_mutex /
// shared_mutex / timed_mutex):
//   * at least one data member must be annotated
//     PSTORE_GUARDED_BY(<that mutex>) — an unannotated mutex is either
//     dead or silently guarding state the analyzer cannot see; and
//   * every method (ctors/dtors exempt) whose body mentions an
//     annotated member must also mention the guarding mutex — taking
//     the lock or asserting it is held. A method that touches guarded
//     state without ever naming the lock is flagged.
// The check is token-level: it pairs in-class method bodies and
// out-of-line `Class::Method` definitions with the class's annotation
// table. Annotations naming a mutex that is not a member of the same
// class (e.g. a nested struct guarded by its owner's lock) are
// accepted but not enforced.
class GuardedByCheck : public Check {
 public:
  std::string name() const override { return "guarded-by"; }
  void Run(const AnalysisContext& context,
           std::vector<Finding>* findings) const override;
};

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_GUARDED_BY_CHECK_H_
