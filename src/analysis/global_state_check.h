#ifndef PSTORE_ANALYSIS_GLOBAL_STATE_CHECK_H_
#define PSTORE_ANALYSIS_GLOBAL_STATE_CHECK_H_

#include <string>
#include <vector>

#include "analysis/check.h"
#include "analysis/project.h"
#include "analysis/token_cache.h"

namespace pstore {
namespace analysis {

// Determinism rule "global-mutable-state": flags mutable state with
// static storage duration anywhere under src/ —
//   * namespace-scope variables that are not const/constexpr,
//   * function-local `static` variables that are not const/constexpr,
//   * class-scope `static` data members that are not const/constexpr.
// Such state couples otherwise-independent simulations run in the same
// process (the parallel sweep runtime) and makes replay order-
// dependent. Registries and caches that are deliberately process-wide
// carry a `// pstore-analyze: allow(global-mutable-state)` comment.
class GlobalStateCheck : public Check {
 public:
  std::string name() const override { return "global-mutable-state"; }
  void Run(const AnalysisContext& context,
           std::vector<Finding>* findings) const override;
};

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_GLOBAL_STATE_CHECK_H_
