#ifndef PSTORE_ANALYSIS_HOT_PATH_PERF_CHECK_H_
#define PSTORE_ANALYSIS_HOT_PATH_PERF_CHECK_H_

#include <string>
#include <vector>

#include "analysis/check.h"
#include "analysis/symbol_graph.h"

namespace pstore {
namespace analysis {

// Perf lints restricted to hot paths. The hot set is computed from the
// call graph, not a directory list: every function reachable from the
// engine/sim/fleet inner loops (tick-, submit-, and run-style entry
// points; see IsHotRoot) is in scope. Three patterns are flagged in
// hot-path definitions under src/:
//
//   * a container grown via push_back/emplace_back inside a loop with
//     no prior reserve() on the same receiver in the function;
//   * a parameter of a non-trivial type (std::string, containers,
//     std::function, ...) taken by value and never moved from;
//   * a std::function constructed inside a loop (type erasure and a
//     possible allocation per iteration).
class HotPathPerfCheck : public Check {
 public:
  // True for the inner-loop entry points the reachability scan starts
  // from: definitions under src/{engine,sim,fleet} named Tick, Submit,
  // Simulate, Step, or Run*. Exposed for tests.
  static bool IsHotRoot(const FunctionSymbol& function);

  std::string name() const override { return "hot-path-perf"; }
  bool needs_symbols() const override { return true; }
  void Run(const AnalysisContext& context,
           std::vector<Finding>* findings) const override;
};

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_HOT_PATH_PERF_CHECK_H_
