#ifndef PSTORE_ANALYSIS_TOKEN_CACHE_H_
#define PSTORE_ANALYSIS_TOKEN_CACHE_H_

#include <vector>

#include "analysis/project.h"
#include "analysis/source_file.h"
#include "analysis/tokenizer.h"

namespace pstore {

class ThreadPool;

namespace analysis {

// Tokenizes every file of a Project exactly once, up front, so the
// rule families share one token stream per file instead of each
// re-running the tokenizer. Construction optionally fans the per-file
// tokenization out over a ThreadPool: each file's slot is written by
// exactly one index of a ParallelFor, so the cache contents are
// identical for any thread count. Immutable afterwards.
class TokenCache {
 public:
  // `pool` may be null (or single-threaded) for the serial path. The
  // project must outlive the cache.
  explicit TokenCache(const Project& project, ThreadPool* pool = nullptr);

  // The token stream of a file obtained from project.files(). The file
  // must belong to the project this cache was built from.
  const std::vector<Token>& tokens(const SourceFile& file) const;

 private:
  const Project* project_;
  std::vector<std::vector<Token>> by_index_;
};

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_TOKEN_CACHE_H_
