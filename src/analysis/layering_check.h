#ifndef PSTORE_ANALYSIS_LAYERING_CHECK_H_
#define PSTORE_ANALYSIS_LAYERING_CHECK_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/check.h"
#include "analysis/project.h"
#include "analysis/token_cache.h"

namespace pstore {
namespace analysis {

// Enforces the declared layer DAG over src/ directories:
//
//   common
//     -> {engine, prediction, trace, analysis}
//     -> {b2w, ycsb}            (workloads sit on the engine)
//     -> planner
//     -> migration
//     -> {sim, fault}           (fault implements sim/migration seams)
//     -> controller
//
// A directory may include itself and anything in the set returned by
// AllowedDependencies(). Rule id: "layering". Also detects cycles in
// the *observed* directory-level include graph, which catches
// violations even if the declared map is ever edited into a cycle.
class LayeringCheck : public Check {
 public:
  // The declared DAG: directory -> directories it may include.
  static const std::map<std::string, std::set<std::string>>&
  AllowedDependencies();

  std::string name() const override { return "layering"; }
  void Run(const AnalysisContext& context,
           std::vector<Finding>* findings) const override;
};

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_LAYERING_CHECK_H_
