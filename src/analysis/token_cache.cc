#include "analysis/token_cache.h"

#include <cstddef>

#include "analysis/project.h"
#include "analysis/source_file.h"
#include "analysis/tokenizer.h"
#include "common/check.h"
#include "common/thread_pool.h"

namespace pstore {
namespace analysis {

TokenCache::TokenCache(const Project& project, ThreadPool* pool)
    : project_(&project) {
  const std::vector<SourceFile>& files = project.files();
  by_index_.resize(files.size());
  auto tokenize_one = [&](size_t i) {
    by_index_[i] = Tokenize(files[i].clean());
  };
  if (pool != nullptr && pool->thread_count() > 1) {
    pool->ParallelFor(files.size(), tokenize_one);
  } else {
    for (size_t i = 0; i < files.size(); ++i) tokenize_one(i);
  }
}

const std::vector<Token>& TokenCache::tokens(const SourceFile& file) const {
  const std::vector<SourceFile>& files = project_->files();
  PSTORE_CHECK(!files.empty());
  const std::ptrdiff_t index = &file - files.data();
  PSTORE_CHECK_MSG(index >= 0 && static_cast<size_t>(index) < files.size(),
                   "file is not part of the cached project: " << file.path());
  return by_index_[static_cast<size_t>(index)];
}

}  // namespace analysis
}  // namespace pstore
