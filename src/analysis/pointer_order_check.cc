#include "analysis/pointer_order_check.h"

#include <string>

#include "analysis/check.h"
#include "analysis/project.h"
#include "analysis/source_file.h"
#include "analysis/token_cache.h"
#include "analysis/token_util.h"
#include "analysis/tokenizer.h"

namespace pstore {
namespace analysis {
namespace {

bool IsOrderedTemplateName(const std::string& text) {
  return text == "map" || text == "set" || text == "multimap" ||
         text == "multiset" || text == "less" || text == "greater";
}

// A `[` begins a lambda introducer (rather than a subscript) when the
// preceding token cannot end an expression.
bool StartsLambda(const std::vector<Token>& tokens, size_t open) {
  if (open == 0) return true;
  const Token& prev = tokens[open - 1];
  if (prev.kind == TokenKind::kIdentifier) return prev.text == "return";
  if (prev.kind == TokenKind::kNumber) return false;
  return prev.text == "(" || prev.text == "," || prev.text == "=" ||
         prev.text == "{" || prev.text == ";";
}

// Renders tokens [begin, end) with single spaces, for messages.
std::string Render(const std::vector<Token>& tokens, size_t begin,
                   size_t end) {
  std::string out;
  for (size_t i = begin; i < end; ++i) {
    if (!out.empty() && tokens[i].text != "*" && tokens[i].text != "::" &&
        !(i > begin && tokens[i - 1].text == "::")) {
      out += ' ';
    }
    out += tokens[i].text;
  }
  return out;
}

}  // namespace

void PointerOrderCheck::Run(const AnalysisContext& context,
                            std::vector<Finding>* findings) const {
  const Project& project = context.project;
  const TokenCache& cache = context.tokens;
  for (const SourceFile& file : project.files()) {
    if (file.dir().empty()) continue;  // only src/ is in scope
    const std::vector<Token>& tokens = cache.tokens(file);
    const size_t n = tokens.size();
    for (size_t i = 0; i < n; ++i) {
      // std::map<T*, ..> / std::set<T*> / std::less<T*> / ...
      if (IsIdentAt(tokens, i, "std") && IsPunctAt(tokens, i + 1, "::") &&
          IsIdentAt(tokens, i + 2) &&
          IsOrderedTemplateName(tokens[i + 2].text) &&
          IsPunctAt(tokens, i + 3, "<")) {
        // Scan the first template argument: up to a top-level `,` or
        // the matching `>`.
        int angle = 0;
        size_t star = 0;
        size_t arg_end = 0;
        for (size_t j = i + 3; j < n; ++j) {
          if (tokens[j].kind != TokenKind::kPunct) continue;
          const std::string& t = tokens[j].text;
          if (t == "<") ++angle;
          if (t == ">" && --angle == 0) {
            arg_end = j;
            break;
          }
          if (t == "," && angle == 1) {
            arg_end = j;
            break;
          }
          if (t == "*" && star == 0) star = j;
          if (t == ";" || t == "{" || t == "}") break;  // not a template
        }
        if (star != 0 && arg_end != 0) {
          findings->push_back(
              {file.path(), tokens[i + 2].line, "pointer-order",
               "std::" + tokens[i + 2].text + " ordered by raw pointer key '" +
                   Render(tokens, i + 4, arg_end) +
                   "'; pointer order varies run to run — key on a stable "
                   "id instead"});
        }
        continue;
      }
      // Comparator lambda: [..](T* a, U* b) { ... a < b ... }
      if (!IsPunctAt(tokens, i, "[") || !StartsLambda(tokens, i)) continue;
      size_t params_open = 0;
      {
        int depth = 0;
        for (size_t j = i; j < n; ++j) {
          if (tokens[j].kind != TokenKind::kPunct) continue;
          if (tokens[j].text == "[") ++depth;
          if (tokens[j].text == "]" && --depth == 0) {
            if (IsPunctAt(tokens, j + 1, "(")) params_open = j + 1;
            break;
          }
        }
      }
      if (params_open == 0) continue;
      const size_t params_close = SkipBalancedRun(tokens, params_open) - 1;
      if (params_close >= n || !IsPunctAt(tokens, params_close, ")")) continue;
      // Parse parameters: exactly two, both raw pointers.
      std::vector<std::string> pointer_params;
      bool all_pointers = true;
      size_t count = 0;
      size_t part_begin = params_open + 1;
      for (size_t j = params_open + 1; j <= params_close; ++j) {
        const bool at_end = j == params_close;
        if (!at_end && !IsPunctAt(tokens, j, ",")) continue;
        if (j == part_begin) break;  // empty parameter list
        ++count;
        bool saw_star = false;
        size_t name_at = 0;
        for (size_t k = part_begin; k < j; ++k) {
          if (IsPunctAt(tokens, k, "*")) saw_star = true;
          if (tokens[k].kind == TokenKind::kIdentifier) name_at = k;
        }
        if (saw_star && name_at != 0) {
          pointer_params.push_back(tokens[name_at].text);
        } else {
          all_pointers = false;
        }
        part_begin = j + 1;
      }
      if (count != 2 || !all_pointers || pointer_params.size() != 2) continue;
      // Body: the `{ ... }` after the parameter list (skip mutable /
      // noexcept / trailing-return tokens in between).
      size_t body_open = params_close + 1;
      while (body_open < n && !IsPunctAt(tokens, body_open, "{") &&
             !IsPunctAt(tokens, body_open, ";") &&
             !IsPunctAt(tokens, body_open, ")")) {
        ++body_open;
      }
      if (body_open >= n || !IsPunctAt(tokens, body_open, "{")) continue;
      const size_t body_end = SkipBalancedRun(tokens, body_open);
      const std::string& a = pointer_params[0];
      const std::string& b = pointer_params[1];
      for (size_t j = body_open; j + 2 < body_end; ++j) {
        if (!IsIdentAt(tokens, j)) continue;
        const bool lhs_a = tokens[j].text == a;
        const bool lhs_b = tokens[j].text == b;
        if (!lhs_a && !lhs_b) continue;
        if (!IsPunctAt(tokens, j + 1, "<") && !IsPunctAt(tokens, j + 1, ">")) {
          continue;
        }
        // `<= / >=` tokenizes as `<`/`>` then `=`; both forms compare.
        size_t rhs = j + 2;
        if (IsPunctAt(tokens, rhs, "=")) ++rhs;
        const std::string& other = lhs_a ? b : a;
        if (IsIdentAt(tokens, rhs, other.c_str())) {
          findings->push_back(
              {file.path(), tokens[j].line, "pointer-order",
               "comparator lambda orders raw pointers '" + a + "' and '" + b +
                   "' by address; pointer order varies run to run — compare "
                   "a stable field instead"});
          break;
        }
      }
    }
  }
}

}  // namespace analysis
}  // namespace pstore
