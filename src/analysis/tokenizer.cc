#include "analysis/tokenizer.h"

#include <cctype>

namespace pstore {
namespace analysis {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

}  // namespace

std::vector<Token> Tokenize(const std::string& clean) {
  std::vector<Token> tokens;
  const size_t n = clean.size();
  int line = 1;
  size_t i = 0;
  while (i < n) {
    const char c = clean[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(clean[j])) ++j;
      tokens.push_back({TokenKind::kIdentifier, clean.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (IsDigit(c)) {
      // Numbers including suffixes, hex, and exponents (1e-5, 0x1fULL).
      size_t j = i + 1;
      while (j < n) {
        const char d = clean[j];
        if (IsIdentChar(d) || d == '.') {
          ++j;
        } else if ((d == '+' || d == '-') &&
                   (clean[j - 1] == 'e' || clean[j - 1] == 'E' ||
                    clean[j - 1] == 'p' || clean[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      tokens.push_back({TokenKind::kNumber, clean.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation. Only the two-character tokens the checks care about
    // are merged; everything else is one character at a time.
    if (c == ':' && i + 1 < n && clean[i + 1] == ':') {
      tokens.push_back({TokenKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && clean[i + 1] == '>') {
      tokens.push_back({TokenKind::kPunct, "->", line});
      i += 2;
      continue;
    }
    tokens.push_back({TokenKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return tokens;
}

}  // namespace analysis
}  // namespace pstore
