#include "analysis/status_check.h"

#include "analysis/check.h"
#include "analysis/project.h"
#include "analysis/source_file.h"
#include "analysis/token_cache.h"
#include "analysis/tokenizer.h"

namespace pstore {
namespace analysis {
namespace {

bool IsIdent(const std::vector<Token>& tokens, size_t i) {
  return i < tokens.size() && tokens[i].kind == TokenKind::kIdentifier;
}

bool IsPunct(const std::vector<Token>& tokens, size_t i, const char* text) {
  return i < tokens.size() && tokens[i].kind == TokenKind::kPunct &&
         tokens[i].text == text;
}

// Returns the index just past the bracket run starting at `open`
// (tokens[open] must be "(", "[", or "{"), or tokens.size() if
// unbalanced. All bracket kinds nest together.
size_t SkipBalanced(const std::vector<Token>& tokens, size_t open) {
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (tokens[i].kind != TokenKind::kPunct) continue;
    if (t == "(" || t == "[" || t == "{") ++depth;
    if (t == ")" || t == "]" || t == "}") {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return tokens.size();
}

// Skips "< ... >" template argument brackets starting at `open`;
// returns open if the run never closes before a ; or statement brace.
size_t SkipTemplateArgs(const std::vector<Token>& tokens, size_t open) {
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kPunct) continue;
    const std::string& t = tokens[i].text;
    if (t == "<") ++depth;
    if (t == ">") {
      --depth;
      if (depth == 0) return i + 1;
    }
    if (t == ";" || t == "{" || t == "}") break;
  }
  return open;
}

const std::set<std::string>& ControlKeywords() {
  static const std::set<std::string> kControl = {"if", "for", "while",
                                                "switch", "catch"};
  return kControl;
}

// Keywords that start a statement which cannot be a bare discarded
// call; scanning just continues to the next boundary.
bool IsPlainKeywordStart(const std::string& text) {
  static const std::set<std::string> kPlain = {
      "return",  "throw",   "co_return", "co_await", "co_yield", "goto",
      "break",   "continue", "delete",   "using",    "typedef",  "template",
      "case",    "default",  "public",   "private",  "protected", "else",
      "do",      "try",      "static_assert"};
  return kPlain.count(text) != 0;
}

}  // namespace

std::set<std::string> StatusCheck::CollectStatusFunctions(
    const Project& project, const TokenCache& cache) {
  std::set<std::string> names;
  for (const SourceFile& file : project.files()) {
    if (!file.is_header()) continue;
    const std::vector<Token>& tokens = cache.tokens(file);
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].kind != TokenKind::kIdentifier) continue;
      size_t after_type = 0;
      if (tokens[i].text == "Status") {
        after_type = i + 1;
      } else if (tokens[i].text == "StatusOr" && IsPunct(tokens, i + 1, "<")) {
        const size_t closed = SkipTemplateArgs(tokens, i + 1);
        if (closed == i + 1) continue;
        after_type = closed;
      } else {
        continue;
      }
      // `Status Name(` / `StatusOr<T> Name(` declares Name. References
      // (`Status&`), members (`Status s_ = ...`) and qualified uses
      // (`Status::OK`) all fail the ident-then-paren shape.
      if (IsIdent(tokens, after_type) && IsPunct(tokens, after_type + 1, "(")) {
        names.insert(tokens[after_type].text);
      }
    }
  }
  return names;
}

void StatusCheck::Run(const AnalysisContext& context,
                      std::vector<Finding>* findings) const {
  const Project& project = context.project;
  const TokenCache& cache = context.tokens;
  const std::set<std::string> status_fns =
      CollectStatusFunctions(project, cache);
  if (status_fns.empty()) return;

  for (const SourceFile& file : project.files()) {
    const std::vector<Token>& tokens = cache.tokens(file);
    const size_t n = tokens.size();
    bool at_start = true;
    size_t i = 0;
    while (i < n) {
      if (!at_start) {
        // Scan for the next statement boundary.
        if (tokens[i].kind == TokenKind::kPunct &&
            (tokens[i].text == ";" || tokens[i].text == "{" ||
             tokens[i].text == "}")) {
          at_start = true;
        }
        ++i;
        continue;
      }
      at_start = false;
      if (tokens[i].kind == TokenKind::kPunct) {
        if (tokens[i].text == ";" || tokens[i].text == "{" ||
            tokens[i].text == "}") {
          at_start = true;
          ++i;
          continue;
        }
        if (tokens[i].text == "(" && IsIdent(tokens, i + 1) &&
            tokens[i + 1].text == "void" && IsPunct(tokens, i + 2, ")")) {
          // (void)Call(): explicit discard; skip to the next boundary.
          i += 3;
          continue;
        }
        ++i;
        continue;
      }
      const std::string& word = tokens[i].text;
      if (ControlKeywords().count(word) != 0) {
        // if/for/while/switch (cond): the body starts a new statement.
        size_t j = i + 1;
        if (IsPunct(tokens, j, "(")) j = SkipBalanced(tokens, j);
        i = j;
        at_start = true;
        continue;
      }
      if (IsPlainKeywordStart(word)) {
        // `else`, `do`, `try` immediately restart a statement; the rest
        // fall through to boundary scanning.
        if (word == "else" || word == "do" || word == "try") at_start = true;
        ++i;
        continue;
      }
      // Candidate call chain: ident (:: ident)* ((. | ->) ident)* (...)
      // possibly continued by .member(...) links; flag when the final
      // call's result hits `;` unconsumed.
      size_t j = i;
      std::string callee = tokens[j].text;
      int callee_line = tokens[j].line;
      ++j;
      bool chain_ok = true;
      while (chain_ok) {
        if (IsPunct(tokens, j, "::") || IsPunct(tokens, j, ".") ||
            IsPunct(tokens, j, "->")) {
          if (!IsIdent(tokens, j + 1)) {
            chain_ok = false;
            break;
          }
          callee = tokens[j + 1].text;
          callee_line = tokens[j + 1].line;
          j += 2;
          continue;
        }
        if (IsPunct(tokens, j, "(")) {
          const size_t after = SkipBalanced(tokens, j);
          if (after >= n) {
            chain_ok = false;
            break;
          }
          if (IsPunct(tokens, after, ";")) {
            if (status_fns.count(callee) != 0) {
              findings->push_back(
                  {file.path(), callee_line, "status",
                   "result of Status-returning '" + callee +
                       "' is silently discarded; check it, wrap it in "
                       "RETURN_IF_ERROR, or discard explicitly with (void)"});
            }
            i = after;
            break;
          }
          if (IsPunct(tokens, after, ".") || IsPunct(tokens, after, "->")) {
            j = after;
            continue;
          }
          chain_ok = false;
          break;
        }
        chain_ok = false;
        break;
      }
      if (chain_ok) continue;  // resumed at the terminating `;`
      ++i;
    }
  }
}

}  // namespace analysis
}  // namespace pstore
