#ifndef PSTORE_ANALYSIS_SYMBOL_GRAPH_H_
#define PSTORE_ANALYSIS_SYMBOL_GRAPH_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/project.h"
#include "analysis/source_file.h"

namespace pstore {

class ThreadPool;

namespace analysis {

class TokenCache;

// One place a function is declared or defined.
struct SymbolSite {
  size_t file_index = 0;  // into project.files()
  std::string file;       // SourceFile::path() of the site
  std::string dir;        // SourceFile::dir() ("" outside src/)
  int line = 0;
  // Definitions: token indices of the body, from the opening '{'
  // (inclusive) to just past the matching '}'. Zero for declarations.
  size_t body_begin = 0;
  size_t body_end = 0;
  // Token indices of the parameter list, from the opening '(' to just
  // past the matching ')'. Recorded for definitions and declarations.
  size_t params_begin = 0;
  size_t params_end = 0;
};

// One function overload set, keyed by fully qualified name: every
// declaration, definition, and overload of e.g.
// "pstore::analysis::Analyzer::Run" lands in the same FunctionSymbol.
// Granularity is deliberately the overload set — parameter lists are
// not compared — and virtual calls resolve to every class providing the
// method name (see SymbolGraph::Resolve).
struct FunctionSymbol {
  std::string qualified_name;  // "pstore::analysis::Analyzer::Run"
  std::string name;            // last component, "Run"
  std::string class_name;      // enclosing class ("" for free functions)
  bool is_special = false;     // constructor, destructor, or operator
  std::vector<SymbolSite> definitions;
  std::vector<SymbolSite> declarations;
  // Bare-name references outside this symbol's own declaration and
  // definition sites: address-of, registration tables, macro bodies.
  // Shared per name across the overload set, so any textual use keeps
  // the whole set alive (the conservative direction for dead-symbol).
  int mentions = 0;
};

// One resolved call edge. A textual call site can resolve to several
// overload sets (an unqualified `Tick()` matches every class providing
// a Tick); one CallSite is recorded per resolved callee.
struct CallSite {
  size_t caller = 0;  // index into functions()
  size_t callee = 0;  // index into functions()
  size_t file_index = 0;
  int line = 0;
};

// Cross-TU symbol index and call graph, built in one pass over the
// shared TokenCache. Function and method definitions, declarations, and
// call sites are extracted per file — in parallel on the ThreadPool
// when one is given, each file's facts written by exactly one
// ParallelFor index — then merged in file order and sorted by qualified
// name, so the graph is byte-identical for any thread count. The
// extraction is the same token-level heuristic grammar the rule
// families use: namespace/class scopes are tracked, out-of-line
// `Class::Method(...) {` definitions are qualified through their
// written path, and bodies of `#define`d macros contribute name
// references via SourceFile::preprocessor_idents().
class SymbolGraph {
 public:
  static constexpr size_t kNoSymbol = static_cast<size_t>(-1);

  // `pool` may be null (or single-threaded) for the serial path. The
  // project and cache must outlive the graph.
  SymbolGraph(const Project& project, const TokenCache& tokens,
              ThreadPool* pool = nullptr);

  // All overload sets, sorted by qualified name.
  const std::vector<FunctionSymbol>& functions() const { return functions_; }

  // All resolved call edges, sorted by (caller, callee, file, line).
  const std::vector<CallSite>& calls() const { return calls_; }

  // Exact qualified-name lookup; kNoSymbol if absent.
  size_t FindFunction(const std::string& qualified_name) const;

  // All overload sets whose qualified name ends with the given
  // ::-separated component path — {"Run"} matches every function or
  // method named Run; {"Analyzer", "Run"} only Analyzer's. Sorted.
  std::vector<size_t> Resolve(const std::vector<std::string>& path) const;

  // Unique, sorted callee / caller sets per function.
  const std::vector<size_t>& callees_of(size_t function) const;
  const std::vector<size_t>& callers_of(size_t function) const;

  // BFS over call edges: result[i] is nonzero iff functions()[i] is
  // reachable from any of the given roots (roots included).
  std::vector<char> ReachableFrom(const std::vector<size_t>& roots) const;

 private:
  std::vector<FunctionSymbol> functions_;
  std::vector<CallSite> calls_;
  std::map<std::string, size_t> by_qualified_name_;
  std::map<std::string, std::vector<size_t>> by_name_;
  std::vector<std::vector<size_t>> callees_;
  std::vector<std::vector<size_t>> callers_;
};

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_SYMBOL_GRAPH_H_
