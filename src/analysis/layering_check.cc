#include "analysis/layering_check.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "analysis/check.h"
#include "analysis/project.h"
#include "analysis/source_file.h"
#include "analysis/token_cache.h"

namespace pstore {
namespace analysis {
namespace {

// Location of the first observed include edge from one directory to
// another, for anchoring cycle reports.
struct EdgeSite {
  std::string file;
  int line = 0;
};

std::string JoinSorted(const std::set<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out.empty() ? "(nothing)" : out;
}

}  // namespace

const std::map<std::string, std::set<std::string>>&
LayeringCheck::AllowedDependencies() {
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"common", {}},
      {"obs", {"common"}},
      {"engine", {"common", "obs"}},
      {"prediction", {"common", "obs"}},
      {"trace", {"common"}},
      {"analysis", {"common"}},
      {"b2w", {"common", "engine"}},
      {"ycsb", {"common", "engine"}},
      {"planner", {"common", "obs", "engine", "prediction", "trace"}},
      {"migration",
       {"common", "obs", "engine", "prediction", "trace", "b2w", "ycsb",
        "planner"}},
      {"sim",
       {"common", "obs", "engine", "prediction", "trace", "b2w", "ycsb",
        "planner", "migration"}},
      {"fault",
       {"common", "obs", "engine", "prediction", "trace", "b2w", "ycsb",
        "planner", "migration", "sim"}},
      {"controller",
       {"common", "obs", "engine", "prediction", "trace", "b2w", "ycsb",
        "planner", "migration", "sim", "fault"}},
      {"fleet",
       {"common", "obs", "engine", "prediction", "trace", "b2w", "ycsb",
        "planner", "migration", "sim", "fault", "controller"}},
  };
  return kAllowed;
}

void LayeringCheck::Run(const AnalysisContext& context,
                        std::vector<Finding>* findings) const {
  const Project& project = context.project;
  const TokenCache& tokens = context.tokens;
  (void)tokens;  // layering works on the recorded include directives
  const auto& allowed = AllowedDependencies();
  // Observed directory-level edges with their first site.
  std::map<std::pair<std::string, std::string>, EdgeSite> edges;

  for (const SourceFile& file : project.files()) {
    const std::string& dir = file.dir();
    if (dir.empty()) continue;  // tools/bench/tests may include anything
    const auto allowed_it = allowed.find(dir);
    if (allowed_it == allowed.end()) {
      findings->push_back(
          {file.path(), 1, "layering",
           "directory 'src/" + dir +
               "' is not declared in the layer DAG; add it to "
               "LayeringCheck::AllowedDependencies() and DESIGN.md"});
      continue;
    }
    for (const IncludeDirective& inc : file.includes()) {
      if (inc.angled) continue;
      const size_t slash = inc.target.find('/');
      if (slash == std::string::npos) continue;
      const std::string target_dir = inc.target.substr(0, slash);
      // Only project directories participate; a quoted include that
      // neither resolves nor names a known layer is out of scope.
      const bool known_dir = allowed.count(target_dir) != 0;
      if (!known_dir && project.FindHeader(inc.target) == nullptr) continue;
      if (target_dir == dir) continue;
      edges.try_emplace({dir, target_dir}, EdgeSite{file.path(), inc.line});
      if (!known_dir) {
        findings->push_back(
            {file.path(), inc.line, "layering",
             "include of '" + inc.target + "': directory 'src/" + target_dir +
                 "' is not declared in the layer DAG"});
        continue;
      }
      if (allowed_it->second.count(target_dir) == 0) {
        findings->push_back(
            {file.path(), inc.line, "layering",
             "layering violation: '" + dir + "' may not depend on '" +
                 target_dir + "' (allowed: " +
                 JoinSorted(allowed_it->second) + ")"});
      }
    }
  }

  // Cycle detection over the observed graph (DFS, three colors).
  std::map<std::string, std::vector<std::string>> graph;
  for (const auto& [edge, site] : edges) graph[edge.first].push_back(edge.second);
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;
  // Iterative DFS; on a back edge, report the cycle once.
  std::function<void(const std::string&)> visit = [&](const std::string& node) {
    color[node] = 1;
    stack.push_back(node);
    auto it = graph.find(node);
    if (it != graph.end()) {
      for (const std::string& next : it->second) {
        if (color[next] == 1) {
          // Reconstruct node -> ... -> next -> node.
          auto from = std::find(stack.begin(), stack.end(), next);
          std::string path;
          for (auto walk = from; walk != stack.end(); ++walk) {
            path += *walk + " -> ";
          }
          path += next;
          if (reported.insert(path).second) {
            const EdgeSite& site = edges.at({node, next});
            findings->push_back(
                {site.file, site.line, "layering",
                 "include cycle between src directories: " + path});
          }
        } else if (color[next] == 0) {
          visit(next);
        }
      }
    }
    stack.pop_back();
    color[node] = 2;
  };
  for (const auto& [node, unused] : graph) {
    if (color[node] == 0) visit(node);
  }
}

}  // namespace analysis
}  // namespace pstore
