#include "analysis/hot_path_perf_check.h"

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/check.h"
#include "analysis/source_file.h"
#include "analysis/symbol_graph.h"
#include "analysis/token_cache.h"
#include "analysis/token_util.h"
#include "analysis/tokenizer.h"

namespace pstore {
namespace analysis {
namespace {

// Container/string/function-object type names whose by-value copy (or
// per-iteration construction) is worth flagging on a hot path.
bool IsHeavyTypeName(const std::string& name) {
  static const std::set<std::string> kHeavy = {
      "string",       "vector",   "map",      "set",
      "unordered_map", "unordered_set", "multimap", "multiset",
      "deque",        "list",     "function"};
  return kHeavy.count(name) != 0;
}

// Loop body token ranges within one function body, innermost included.
std::vector<std::pair<size_t, size_t>> LoopRanges(
    const std::vector<Token>& tokens, size_t begin, size_t end) {
  std::vector<std::pair<size_t, size_t>> loops;
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    if (!IsIdentAt(tokens, i)) continue;
    const std::string& word = tokens[i].text;
    if ((word == "for" || word == "while") && IsPunctAt(tokens, i + 1, "(")) {
      const size_t after = SkipBalancedRun(tokens, i + 1);
      size_t body_end = after;
      if (IsPunctAt(tokens, after, "{")) {
        body_end = SkipBalancedRun(tokens, after);
      } else {
        while (body_end < end && !IsPunctAt(tokens, body_end, ";")) {
          ++body_end;
        }
      }
      loops.emplace_back(after, body_end);
    } else if (word == "do" && IsPunctAt(tokens, i + 1, "{")) {
      loops.emplace_back(i + 1, SkipBalancedRun(tokens, i + 1));
    }
  }
  return loops;
}

bool InAnyLoop(const std::vector<std::pair<size_t, size_t>>& loops, size_t i) {
  for (const auto& [begin, end] : loops) {
    if (i >= begin && i < end) return true;
  }
  return false;
}

// The receiver expression of a member call, walking back from the '.'
// or '->' at tokens[dot] over an ident / :: / member-access / index
// chain: `state.rows[i].push_back` -> "state.rows[i]".
std::string ReceiverBefore(const std::vector<Token>& tokens, size_t dot,
                           size_t stop) {
  size_t i = dot;
  while (i > stop) {
    const Token& prev = tokens[i - 1];
    if (prev.kind == TokenKind::kIdentifier) {
      --i;
      continue;
    }
    if (prev.kind != TokenKind::kPunct) break;
    if (prev.text == "." || prev.text == "->" || prev.text == "::") {
      --i;
      continue;
    }
    if (prev.text == "]") {
      int depth = 0;
      size_t k = i - 1;
      while (k > stop) {
        if (IsPunctAt(tokens, k, "]")) ++depth;
        if (IsPunctAt(tokens, k, "[") && --depth == 0) break;
        --k;
      }
      if (depth != 0) break;
      i = k;
      continue;
    }
    break;
  }
  std::string receiver;
  for (size_t k = i; k < dot; ++k) {
    // `->` and `.` access the same object for matching purposes, so
    // `state->out` finds a reserve spelled `state.out` and vice versa.
    receiver += IsPunctAt(tokens, k, "->") ? "." : tokens[k].text;
  }
  return receiver;
}

// True if `move ( name` appears anywhere in the body: the by-value
// parameter is a deliberate sink, not an accidental copy.
bool IsMovedFrom(const std::vector<Token>& tokens, size_t begin, size_t end,
                 const std::string& name) {
  for (size_t i = begin; i + 2 < end && i + 2 < tokens.size(); ++i) {
    if (IsIdentAt(tokens, i, "move") && IsPunctAt(tokens, i + 1, "(") &&
        IsIdentAt(tokens, i + 2) && tokens[i + 2].text == name) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool HotPathPerfCheck::IsHotRoot(const FunctionSymbol& function) {
  static const std::set<std::string> kHotDirs = {"engine", "sim", "fleet"};
  bool in_hot_dir = false;
  for (const SymbolSite& site : function.definitions) {
    in_hot_dir = in_hot_dir || kHotDirs.count(site.dir) != 0;
  }
  if (!in_hot_dir) return false;
  const std::string& name = function.name;
  return name == "Tick" || name == "Submit" || name == "Simulate" ||
         name == "Step" || name.rfind("Run", 0) == 0;
}

void HotPathPerfCheck::Run(const AnalysisContext& context,
                           std::vector<Finding>* findings) const {
  const SymbolGraph& graph = *context.symbols;

  std::vector<size_t> roots;
  for (size_t fn = 0; fn < graph.functions().size(); ++fn) {
    if (IsHotRoot(graph.functions()[fn])) roots.push_back(fn);
  }
  const std::vector<char> hot = graph.ReachableFrom(roots);

  for (size_t fn = 0; fn < graph.functions().size(); ++fn) {
    if (hot[fn] == 0) continue;
    const FunctionSymbol& function = graph.functions()[fn];
    for (const SymbolSite& site : function.definitions) {
      if (site.dir.empty()) continue;  // only src/ definitions are linted
      const SourceFile& file = context.project.files()[site.file_index];
      const std::vector<Token>& tokens = context.tokens.tokens(file);
      const size_t begin = site.body_begin;
      const size_t end = site.body_end;

      const auto loops = LoopRanges(tokens, begin, end);

      // reserve() calls by receiver, for the growth lint.
      std::map<std::string, size_t> first_reserve;
      for (size_t i = begin; i < end && i < tokens.size(); ++i) {
        if (!IsIdentAt(tokens, i, "reserve") ||
            !IsPunctAt(tokens, i + 1, "(") || i == begin ||
            !(IsPunctAt(tokens, i - 1, ".") || IsPunctAt(tokens, i - 1, "->"))) {
          continue;
        }
        const std::string receiver = ReceiverBefore(tokens, i - 1, begin);
        if (!receiver.empty() && first_reserve.count(receiver) == 0) {
          first_reserve[receiver] = i;
        }
      }

      for (size_t i = begin; i < end && i < tokens.size(); ++i) {
        if (!IsIdentAt(tokens, i)) continue;
        const std::string& word = tokens[i].text;

        if ((word == "push_back" || word == "emplace_back") &&
            IsPunctAt(tokens, i + 1, "(") && i > begin &&
            (IsPunctAt(tokens, i - 1, ".") || IsPunctAt(tokens, i - 1, "->")) &&
            InAnyLoop(loops, i)) {
          const std::string receiver = ReceiverBefore(tokens, i - 1, begin);
          const auto it = first_reserve.find(receiver);
          if (receiver.empty() || it == first_reserve.end() ||
              it->second > i) {
            Finding finding;
            finding.file = site.file;
            finding.line = tokens[i].line;
            finding.rule = name();
            finding.message = "container '" + receiver + "' grown with " +
                              word + " inside a loop of hot-path function '" +
                              function.qualified_name +
                              "' without a prior reserve()";
            findings->push_back(std::move(finding));
          }
          continue;
        }

        if (word == "function" && i >= 2 && IsPunctAt(tokens, i - 1, "::") &&
            IsIdentAt(tokens, i - 2, "std") && IsPunctAt(tokens, i + 1, "<") &&
            InAnyLoop(loops, i)) {
          Finding finding;
          finding.file = site.file;
          finding.line = tokens[i].line;
          finding.rule = name();
          finding.message =
              "std::function constructed inside a loop of hot-path function "
              "'" +
              function.qualified_name +
              "'; hoist it out of the loop or use a template parameter";
          findings->push_back(std::move(finding));
        }
      }

      // Non-trivial by-value parameters (skipping moved-from sinks).
      const auto lint_param = [&](size_t param_begin, size_t param_end) {
        // Trim a default argument.
        for (size_t k = param_begin; k < param_end; ++k) {
          if (IsPunctAt(tokens, k, "=")) {
            param_end = k;
            break;
          }
        }
        if (param_end <= param_begin) return;
        bool by_reference = false;
        bool heavy = false;
        std::string param_name;
        for (size_t k = param_begin; k < param_end; ++k) {
          if (IsPunctAt(tokens, k, "&") || IsPunctAt(tokens, k, "*") ||
              IsPunctAt(tokens, k, "...")) {
            by_reference = true;
          }
          if (IsIdentAt(tokens, k)) {
            if (IsHeavyTypeName(tokens[k].text)) heavy = true;
            param_name = tokens[k].text;
          }
        }
        if (by_reference || !heavy || param_name.empty()) return;
        if (IsHeavyTypeName(param_name)) return;  // unnamed parameter
        // The scan starts right after the parameter list so that a
        // constructor moving the parameter in its init list counts.
        if (IsMovedFrom(tokens, site.params_end, end, param_name)) return;
        Finding finding;
        finding.file = site.file;
        finding.line = site.line;
        finding.rule = name();
        finding.message = "parameter '" + param_name +
                          "' of hot-path function '" +
                          function.qualified_name +
                          "' copies a non-trivial type by value; pass by "
                          "const reference or std::move into it";
        findings->push_back(std::move(finding));
      };
      if (site.params_end > site.params_begin + 1) {
        const size_t params_close = site.params_end - 1;
        size_t param_begin = site.params_begin + 1;
        int depth = 0;
        for (size_t i = param_begin; i < params_close; ++i) {
          if (IsPunctAt(tokens, i, "(") || IsPunctAt(tokens, i, "[") ||
              IsPunctAt(tokens, i, "{") || IsPunctAt(tokens, i, "<")) {
            ++depth;
          } else if (IsPunctAt(tokens, i, ")") || IsPunctAt(tokens, i, "]") ||
                     IsPunctAt(tokens, i, "}") || IsPunctAt(tokens, i, ">")) {
            --depth;
          } else if (depth == 0 && IsPunctAt(tokens, i, ",")) {
            lint_param(param_begin, i);
            param_begin = i + 1;
          }
        }
        lint_param(param_begin, params_close);
      }
    }
  }
}

}  // namespace analysis
}  // namespace pstore
