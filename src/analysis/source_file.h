#ifndef PSTORE_ANALYSIS_SOURCE_FILE_H_
#define PSTORE_ANALYSIS_SOURCE_FILE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace pstore {
namespace analysis {

// One #include directive as written in the source.
struct IncludeDirective {
  std::string target;        // path as written, e.g. "planner/move.h"
  int line = 0;              // 1-based line of the directive
  bool angled = false;       // <...> (system/third-party) vs "..." (project)
  bool iwyu_export = false;  // carries an `IWYU pragma: export` comment
};

// One #define in the file (object- or function-like; name only).
struct MacroDefinition {
  std::string name;
  int line = 0;
};

// A source file prepared for analysis. Loading strips comments, string
// literals (including raw strings and escaped quotes), character
// literals, and preprocessor directives from the text, replacing them
// with spaces so that byte positions and line numbers in `clean()`
// match the original file exactly. Includes, macro definitions, and
// `// pstore-analyze: allow(<rule>)` suppression comments are recorded
// before stripping.
class SourceFile {
 public:
  // Reads `path` from disk. Fails with kNotFound if unreadable.
  static StatusOr<SourceFile> Load(const std::string& path);

  // Builds a SourceFile from an in-memory buffer (fixture tests).
  static SourceFile FromContents(std::string path, const std::string& raw);

  const std::string& path() const { return path_; }

  // First directory component below src/ ("planner" for src/planner/*),
  // or "" for files outside src/ (tools, bench, tests, examples).
  const std::string& dir() const { return dir_; }

  // The path by which project code includes this header
  // ("planner/move.h" for src/planner/move.h); "" outside src/.
  const std::string& include_key() const { return include_key_; }

  bool is_header() const;

  // Original text with comments, strings, and preprocessor lines
  // blanked to spaces; newlines preserved, same length as the input.
  const std::string& clean() const { return clean_; }

  const std::vector<IncludeDirective>& includes() const { return includes_; }
  const std::vector<MacroDefinition>& macros() const { return macros_; }

  // Identifiers appearing anywhere inside preprocessor directive lines
  // (macro bodies, #if conditions). Directive lines are blanked before
  // tokenization, so whole-program reference tracking (dead-symbol)
  // consults this set to keep functions alive that are called only from
  // macro expansions.
  const std::set<std::string>& preprocessor_idents() const {
    return preprocessor_idents_;
  }

  // True if a `// pstore-analyze: allow(rule)` comment covers `line`.
  // A trailing comment covers its own line; a comment alone on a line
  // covers the following line.
  bool IsSuppressed(const std::string& rule, int line) const;

 private:
  SourceFile() = default;

  std::string path_;
  std::string dir_;
  std::string include_key_;
  std::string clean_;
  std::vector<IncludeDirective> includes_;
  std::vector<MacroDefinition> macros_;
  std::set<std::string> preprocessor_idents_;
  std::map<int, std::set<std::string>> suppressions_;  // line -> rules
};

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_SOURCE_FILE_H_
