#ifndef PSTORE_ANALYSIS_ANALYZER_H_
#define PSTORE_ANALYSIS_ANALYZER_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/check.h"
#include "analysis/project.h"
#include "common/status.h"

namespace pstore {
namespace analysis {

// Runs the registered rule families over a Project and applies the
// `// pstore-analyze: allow(<rule>)` suppressions. Constructed with the
// default rule set (layering, status, include).
class Analyzer {
 public:
  Analyzer();

  std::vector<std::string> RuleNames() const;

  // Restricts the run to the named rules. Fails on unknown names.
  Status SelectRules(const std::vector<std::string>& names);

  // Runs the (selected) checks; the result is suppression-filtered and
  // sorted by file, line, rule.
  std::vector<Finding> Run(const Project& project) const;

 private:
  std::vector<std::unique_ptr<Check>> checks_;
  std::vector<std::string> selected_;  // empty = all
};

// Renders "file:line: [rule] message" for tool output.
std::string FormatFinding(const Finding& finding);

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_ANALYZER_H_
