#ifndef PSTORE_ANALYSIS_ANALYZER_H_
#define PSTORE_ANALYSIS_ANALYZER_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/check.h"
#include "analysis/project.h"
#include "common/status.h"

namespace pstore {

class ThreadPool;

namespace analysis {

// Runs the registered rule families over a Project and applies the
// `// pstore-analyze: allow(<rule>)` suppressions. Constructed with the
// default rule set: layering, status, include, nondet-iteration,
// global-mutable-state, pointer-order, guarded-by, lock-order,
// dead-symbol, hot-path-perf. The last three consume the cross-TU
// SymbolGraph, which Run builds once iff such a rule is selected.
class Analyzer {
 public:
  Analyzer();

  std::vector<std::string> RuleNames() const;

  // Restricts the run to the named rules. Fails on unknown names.
  Status SelectRules(const std::vector<std::string>& names);

  // Runs the (selected) checks; the result is suppression-filtered and
  // sorted by file, line, rule. With a pool (> 1 thread), tokenization
  // and the checks fan out across it; the final sort makes the output
  // identical to a serial run regardless of completion order.
  std::vector<Finding> Run(const Project& project,
                           ThreadPool* pool = nullptr) const;

 private:
  std::vector<std::unique_ptr<Check>> checks_;
  std::vector<std::string> selected_;  // empty = all
};

// Renders "file:line: [rule] message" for tool output.
std::string FormatFinding(const Finding& finding);

// Renders findings as a JSON array of {file, line, rule, message}
// objects, sorted order preserved, two-space indent, trailing newline.
// The encoding is canonical: equal finding lists produce byte-equal
// text, so CI can diff or hash the output.
std::string FindingsToJson(const std::vector<Finding>& findings);

// Parses text produced by FindingsToJson (round-trip check for tests
// and downstream tooling). Not a general JSON parser.
StatusOr<std::vector<Finding>> ParseFindingsJson(const std::string& text);

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_ANALYZER_H_
