#include "analysis/include_hygiene_check.h"

#include <deque>
#include <map>

#include "analysis/check.h"
#include "analysis/project.h"
#include "analysis/source_file.h"
#include "analysis/token_cache.h"
#include "analysis/tokenizer.h"

namespace pstore {
namespace analysis {
namespace {

enum class ScopeKind { kNamespace, kClass, kEnum, kOpaque };

bool IsIdent(const std::vector<Token>& tokens, size_t i) {
  return i < tokens.size() && tokens[i].kind == TokenKind::kIdentifier;
}

bool IsPunct(const std::vector<Token>& tokens, size_t i, const char* text) {
  return i < tokens.size() && tokens[i].kind == TokenKind::kPunct &&
         tokens[i].text == text;
}

// Skips [[...]] attribute brackets and the `final` keyword after a
// class-key, returning the index of the declared name (or `from` when
// the shape is unexpected).
size_t SkipAttributes(const std::vector<Token>& tokens, size_t from) {
  size_t i = from;
  while (IsPunct(tokens, i, "[") && IsPunct(tokens, i + 1, "[")) {
    size_t depth = 0;
    while (i < tokens.size()) {
      if (IsPunct(tokens, i, "[")) ++depth;
      if (IsPunct(tokens, i, "]")) {
        --depth;
        if (depth == 0) {
          ++i;
          break;
        }
      }
      ++i;
    }
  }
  return i;
}

// The stem of "src/planner/move.h" or "move.cc" is "move".
std::string PathStem(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

// foo.cc and foo.h in the same directory form a pair: a file always
// keeps (and never re-reports) its own header.
bool IsOwnHeader(const SourceFile& file, const SourceFile& header) {
  return file.dir() == header.dir() &&
         PathStem(file.path()) == PathStem(header.path());
}

// All identifiers referenced by the file, with the line of first use.
std::map<std::string, int> ReferencedNames(const std::vector<Token>& tokens) {
  std::map<std::string, int> used;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kIdentifier) {
      used.emplace(token.text, token.line);
    }
  }
  return used;
}

}  // namespace

DeclaredNames IncludeHygieneCheck::ExtractDeclaredNames(
    const SourceFile& file) {
  return ExtractDeclaredNames(file, Tokenize(file.clean()));
}

DeclaredNames IncludeHygieneCheck::ExtractDeclaredNames(
    const SourceFile& file, const std::vector<Token>& tokens) {
  DeclaredNames out;
  for (const MacroDefinition& macro : file.macros()) {
    out.strong.insert(macro.name);
  }
  const size_t n = tokens.size();
  std::vector<ScopeKind> scopes;
  std::string pending_scope;  // class-key seen since the last boundary
  int paren_depth = 0;        // parameter lists declare nothing
  auto in_opaque = [&] {
    for (ScopeKind kind : scopes) {
      if (kind == ScopeKind::kOpaque) return true;
    }
    return false;
  };
  auto in_class = [&] {
    for (ScopeKind kind : scopes) {
      if (kind == ScopeKind::kClass) return true;
    }
    return false;
  };
  auto add = [&](const std::string& name) {
    if (in_class()) {
      out.weak.insert(name);
    } else {
      out.strong.insert(name);
    }
  };

  for (size_t i = 0; i < n; ++i) {
    const Token& token = tokens[i];
    if (token.kind == TokenKind::kPunct) {
      if (token.text == "{") {
        ScopeKind kind = ScopeKind::kOpaque;
        // A brace after ')' (ignoring specifiers) is a function body.
        size_t back = i;
        while (back > 0 && tokens[back - 1].kind == TokenKind::kIdentifier &&
               (tokens[back - 1].text == "const" ||
                tokens[back - 1].text == "override" ||
                tokens[back - 1].text == "final" ||
                tokens[back - 1].text == "noexcept" ||
                tokens[back - 1].text == "mutable")) {
          --back;
        }
        const bool after_paren = back > 0 && IsPunct(tokens, back - 1, ")");
        if (!after_paren && pending_scope == "namespace") {
          kind = ScopeKind::kNamespace;
        } else if (!after_paren && (pending_scope == "class" ||
                                    pending_scope == "struct" ||
                                    pending_scope == "union")) {
          kind = ScopeKind::kClass;
        } else if (!after_paren && pending_scope == "enum") {
          kind = ScopeKind::kEnum;
        }
        scopes.push_back(kind);
        pending_scope.clear();
        continue;
      }
      if (token.text == "}") {
        if (!scopes.empty()) scopes.pop_back();
        continue;
      }
      if (token.text == ";") {
        pending_scope.clear();
        continue;
      }
      if (token.text == "(") ++paren_depth;
      if (token.text == ")" && paren_depth > 0) --paren_depth;
      continue;
    }
    if (token.kind != TokenKind::kIdentifier || in_opaque() ||
        paren_depth > 0) {
      continue;
    }
    const std::string& word = token.text;

    if (word == "namespace" || word == "class" || word == "struct" ||
        word == "union" || word == "enum") {
      // `enum class X` keeps the enum key; `template <class T>` is
      // neutralized by the function-body rule at the brace.
      if (!(pending_scope == "enum" && (word == "class" || word == "struct"))) {
        pending_scope = word;
      }
      if (word != "namespace") {
        size_t name_at = i + 1;
        if (word == "enum" &&
            (IsIdent(tokens, name_at) && (tokens[name_at].text == "class" ||
                                          tokens[name_at].text == "struct"))) {
          ++name_at;
        }
        name_at = SkipAttributes(tokens, name_at);
        // `struct std::hash<...>` (out-of-namespace specialization) and
        // `struct hash<X>` (explicit specialization) declare nothing new.
        if (IsIdent(tokens, name_at) && !IsPunct(tokens, name_at + 1, "::") &&
            !IsPunct(tokens, name_at + 1, "<")) {
          add(tokens[name_at].text);
        }
      }
      continue;
    }
    if (word == "using" && IsIdent(tokens, i + 1) &&
        IsPunct(tokens, i + 2, "=")) {
      add(tokens[i + 1].text);
      continue;
    }
    if (word == "typedef") {
      size_t j = i;
      while (j < n && !IsPunct(tokens, j, ";")) ++j;
      if (j > i + 1 && IsIdent(tokens, j - 1)) add(tokens[j - 1].text);
      continue;
    }
    // Enumerators: identifiers at enum scope followed by , } or =.
    if (!scopes.empty() && scopes.back() == ScopeKind::kEnum) {
      if (IsPunct(tokens, i + 1, ",") || IsPunct(tokens, i + 1, "}") ||
          IsPunct(tokens, i + 1, "=")) {
        add(word);
      }
      continue;
    }
    // Function declarations and variable/constant definitions: an
    // identifier preceded by type-ish tokens. Function bodies are
    // opaque scopes, so control-flow keywords never reach here.
    const bool typed_before =
        i > 0 && (tokens[i - 1].kind == TokenKind::kIdentifier ||
                  IsPunct(tokens, i - 1, ">") || IsPunct(tokens, i - 1, "*") ||
                  IsPunct(tokens, i - 1, "&") || IsPunct(tokens, i - 1, "::"));
    if (typed_before && IsPunct(tokens, i + 1, "(")) {
      add(word);
      continue;
    }
    if (typed_before && !IsPunct(tokens, i - 1, "::") &&
        (IsPunct(tokens, i + 1, "=") || IsPunct(tokens, i + 1, ";") ||
         IsPunct(tokens, i + 1, "{") || IsPunct(tokens, i + 1, "["))) {
      add(word);
      continue;
    }
  }
  return out;
}

void IncludeHygieneCheck::Run(const AnalysisContext& context,
                              std::vector<Finding>* findings) const {
  const Project& project = context.project;
  const TokenCache& cache = context.tokens;
  // Files are handled by their index in project.files() throughout:
  // index-keyed sets iterate in deterministic load order, where sets of
  // SourceFile pointers would iterate in run-dependent address order
  // (the very hazard the pointer-order rule exists to flag).
  const std::vector<SourceFile>& files = project.files();
  const size_t file_count = files.size();
  const size_t npos = file_count;  // "no such file" sentinel
  auto find_header = [&](const std::string& target) {
    const SourceFile* header = project.FindHeader(target);
    return header == nullptr ? npos
                             : static_cast<size_t>(header - files.data());
  };

  // Declared names per file index.
  std::vector<DeclaredNames> declared(file_count);
  for (size_t i = 0; i < file_count; ++i) {
    declared[i] = ExtractDeclaredNames(files[i], cache.tokens(files[i]));
  }

  // Export closure: a header that marks an include with `IWYU pragma:
  // export` also vouches for (and re-exports the names of) that header.
  std::map<size_t, std::set<size_t>> exports;
  for (size_t i = 0; i < file_count; ++i) {
    if (!files[i].is_header()) continue;
    for (const IncludeDirective& inc : files[i].includes()) {
      if (inc.angled || !inc.iwyu_export) continue;
      const size_t target = find_header(inc.target);
      if (target != npos) exports[i].insert(target);
    }
  }
  auto export_closure = [&](size_t header) {
    std::set<size_t> closed = {header};
    std::deque<size_t> queue = {header};
    while (!queue.empty()) {
      const size_t at = queue.front();
      queue.pop_front();
      auto it = exports.find(at);
      if (it == exports.end()) continue;
      for (size_t next : it->second) {
        if (closed.insert(next).second) queue.push_back(next);
      }
    }
    return closed;
  };

  // Strong names declared by exactly one project header.
  std::map<std::string, size_t> unique_strong;
  std::set<std::string> ambiguous;
  for (size_t i = 0; i < file_count; ++i) {
    if (!files[i].is_header() || files[i].include_key().empty()) continue;
    for (const std::string& name : declared[i].strong) {
      auto [it, inserted] = unique_strong.emplace(name, i);
      if (!inserted && it->second != i) ambiguous.insert(name);
    }
  }
  for (const std::string& name : ambiguous) unique_strong.erase(name);

  for (size_t self_index = 0; self_index < file_count; ++self_index) {
    const SourceFile& file = files[self_index];
    const std::map<std::string, int> used =
        ReferencedNames(cache.tokens(file));
    // Direct includes, expanded through export closures.
    std::set<size_t> direct;
    for (const IncludeDirective& inc : file.includes()) {
      if (inc.angled) continue;
      const size_t header = find_header(inc.target);
      if (header == npos || header == self_index) continue;
      for (size_t h : export_closure(header)) direct.insert(h);
    }

    // Unused direct includes.
    for (const IncludeDirective& inc : file.includes()) {
      if (inc.angled || inc.iwyu_export) continue;
      const size_t header = find_header(inc.target);
      if (header == npos || header == self_index) continue;
      if (IsOwnHeader(file, files[header])) continue;
      bool referenced = false;
      for (size_t h : export_closure(header)) {
        const DeclaredNames& names = declared[h];
        for (const auto& [name, line] : used) {
          if (names.strong.count(name) != 0 || names.weak.count(name) != 0) {
            referenced = true;
            break;
          }
        }
        if (referenced) break;
      }
      if (!referenced) {
        findings->push_back(
            {file.path(), inc.line, "include",
             "unused include: nothing declared in '" + inc.target +
                 "' is referenced here"});
      }
    }

    // Transitive closure of the project includes.
    std::set<size_t> reachable = direct;
    std::deque<size_t> queue(direct.begin(), direct.end());
    while (!queue.empty()) {
      const size_t at = queue.front();
      queue.pop_front();
      for (const IncludeDirective& inc : files[at].includes()) {
        if (inc.angled) continue;
        const size_t next = find_header(inc.target);
        if (next == npos) continue;
        for (size_t h : export_closure(next)) {
          if (reachable.insert(h).second) queue.push_back(h);
        }
      }
    }

    // Missing direct includes, one finding per offending header.
    const DeclaredNames& self = declared[self_index];
    std::set<size_t> already_reported;
    for (const auto& [name, line] : used) {
      auto owner_it = unique_strong.find(name);
      if (owner_it == unique_strong.end()) continue;
      const size_t owner = owner_it->second;
      if (owner == self_index || direct.count(owner) != 0) continue;
      if (IsOwnHeader(file, files[owner])) continue;
      if (self.strong.count(name) != 0 || self.weak.count(name) != 0) continue;
      if (reachable.count(owner) == 0) continue;
      if (!already_reported.insert(owner).second) continue;
      findings->push_back(
          {file.path(), line, "include",
           "uses '" + name + "' declared in '" + files[owner].include_key() +
               "' without including it directly"});
    }
  }
}

}  // namespace analysis
}  // namespace pstore
