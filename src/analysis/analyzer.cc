#include "analysis/analyzer.h"

#include <algorithm>
#include <map>

#include "analysis/check.h"
#include "analysis/include_hygiene_check.h"
#include "analysis/layering_check.h"
#include "analysis/project.h"
#include "analysis/source_file.h"
#include "analysis/status_check.h"
#include "common/status.h"

namespace pstore {
namespace analysis {

Analyzer::Analyzer() {
  checks_.push_back(std::make_unique<LayeringCheck>());
  checks_.push_back(std::make_unique<StatusCheck>());
  checks_.push_back(std::make_unique<IncludeHygieneCheck>());
}

std::vector<std::string> Analyzer::RuleNames() const {
  std::vector<std::string> names;
  names.reserve(checks_.size());
  for (const auto& check : checks_) names.push_back(check->name());
  return names;
}

Status Analyzer::SelectRules(const std::vector<std::string>& names) {
  const std::vector<std::string> known = RuleNames();
  for (const std::string& name : names) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      return Status::InvalidArgument("unknown rule '" + name + "'");
    }
  }
  selected_ = names;
  return Status::OK();
}

std::vector<Finding> Analyzer::Run(const Project& project) const {
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : project.files()) {
    by_path[file.path()] = &file;
  }
  std::vector<Finding> findings;
  for (const auto& check : checks_) {
    if (!selected_.empty() &&
        std::find(selected_.begin(), selected_.end(), check->name()) ==
            selected_.end()) {
      continue;
    }
    check->Run(project, &findings);
  }
  // Apply `// pstore-analyze: allow(<rule>)` suppressions.
  std::vector<Finding> kept;
  for (Finding& finding : findings) {
    auto it = by_path.find(finding.file);
    if (it != by_path.end() &&
        it->second->IsSuppressed(finding.rule, finding.line)) {
      continue;
    }
    kept.push_back(std::move(finding));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return kept;
}

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

}  // namespace analysis
}  // namespace pstore
