#include "analysis/analyzer.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "analysis/check.h"
#include "analysis/dead_symbol_check.h"
#include "analysis/global_state_check.h"
#include "analysis/guarded_by_check.h"
#include "analysis/hot_path_perf_check.h"
#include "analysis/include_hygiene_check.h"
#include "analysis/layering_check.h"
#include "analysis/lock_order_check.h"
#include "analysis/nondet_iteration_check.h"
#include "analysis/pointer_order_check.h"
#include "analysis/project.h"
#include "analysis/source_file.h"
#include "analysis/status_check.h"
#include "analysis/symbol_graph.h"
#include "analysis/token_cache.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace pstore {
namespace analysis {

Analyzer::Analyzer() {
  checks_.push_back(std::make_unique<LayeringCheck>());
  checks_.push_back(std::make_unique<StatusCheck>());
  checks_.push_back(std::make_unique<IncludeHygieneCheck>());
  checks_.push_back(std::make_unique<NondetIterationCheck>());
  checks_.push_back(std::make_unique<GlobalStateCheck>());
  checks_.push_back(std::make_unique<PointerOrderCheck>());
  checks_.push_back(std::make_unique<GuardedByCheck>());
  checks_.push_back(std::make_unique<LockOrderCheck>());
  checks_.push_back(std::make_unique<DeadSymbolCheck>());
  checks_.push_back(std::make_unique<HotPathPerfCheck>());
}

std::vector<std::string> Analyzer::RuleNames() const {
  std::vector<std::string> names;
  names.reserve(checks_.size());
  for (const auto& check : checks_) names.push_back(check->name());
  return names;
}

Status Analyzer::SelectRules(const std::vector<std::string>& names) {
  const std::vector<std::string> known = RuleNames();
  for (const std::string& name : names) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      return Status::InvalidArgument("unknown rule '" + name + "'");
    }
  }
  selected_ = names;
  return Status::OK();
}

std::vector<Finding> Analyzer::Run(const Project& project,
                                   ThreadPool* pool) const {
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : project.files()) {
    by_path[file.path()] = &file;
  }

  // Tokenize every file once, up front (parallel when a pool is
  // given); the checks share the cache read-only.
  const TokenCache cache(project, pool);

  std::vector<const Check*> to_run;
  bool need_symbols = false;
  for (const auto& check : checks_) {
    if (!selected_.empty() &&
        std::find(selected_.begin(), selected_.end(), check->name()) ==
            selected_.end()) {
      continue;
    }
    to_run.push_back(check.get());
    need_symbols = need_symbols || check->needs_symbols();
  }

  // The cross-TU symbol graph is built once, and only when a selected
  // whole-program rule will consume it, so token-local subsets stay
  // cheap. Its construction itself fans out over the pool.
  std::unique_ptr<SymbolGraph> symbols;
  if (need_symbols) {
    symbols = std::make_unique<SymbolGraph>(project, cache, pool);
  }
  const AnalysisContext context{project, cache, symbols.get()};

  // One findings vector per check, written by index, so the parallel
  // path needs no locking. The final sort below fully determines the
  // output order, making serial and parallel runs byte-identical.
  std::vector<std::vector<Finding>> per_check(to_run.size());
  const auto run_one = [&](size_t i) {
    to_run[i]->Run(context, &per_check[i]);
  };
  if (pool != nullptr && pool->thread_count() > 1) {
    pool->ParallelFor(to_run.size(), run_one);
  } else {
    for (size_t i = 0; i < to_run.size(); ++i) run_one(i);
  }

  // Merge, then apply `// pstore-analyze: allow(<rule>)` suppressions.
  std::vector<Finding> kept;
  for (std::vector<Finding>& findings : per_check) {
    for (Finding& finding : findings) {
      auto it = by_path.find(finding.file);
      if (it != by_path.end() &&
          it->second->IsSuppressed(finding.rule, finding.line)) {
        continue;
      }
      kept.push_back(std::move(finding));
    }
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return kept;
}

std::string FormatFinding(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

namespace {

// Canonical JSON string encoding: `"` and `\` escaped, control
// characters as \n / \t / \r or \u00XX. No other characters are
// escaped, so equal strings always produce byte-equal encodings.
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FindingsToJson(const std::vector<Finding>& findings) {
  std::string out = "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    const Finding& f = findings[i];
    out += "  {\"file\": \"" + JsonEscape(f.file) +
           "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
           JsonEscape(f.rule) + "\", \"message\": \"" + JsonEscape(f.message) +
           "\"}";
  }
  out += findings.empty() ? "]\n" : "\n]\n";
  return out;
}

namespace {

// Minimal cursor over FindingsToJson output. Any deviation from the
// canonical shape is an InvalidArgument, not a best-effort parse.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Status::InvalidArgument("expected '\"'");
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        if (esc == 'n') {
          c = '\n';
        } else if (esc == 't') {
          c = '\t';
        } else if (esc == 'r') {
          c = '\r';
        } else if (esc == 'u') {
          if (pos_ + 4 >= text_.size()) {
            return Status::InvalidArgument("truncated \\u escape");
          }
          unsigned value = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_ + 1 + static_cast<size_t>(k)];
            value <<= 4;
            if (h >= '0' && h <= '9') {
              value |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              value |= static_cast<unsigned>(h - 'a' + 10);
            } else {
              return Status::InvalidArgument("bad \\u escape");
            }
          }
          pos_ += 4;
          c = static_cast<char>(value);
        } else {
          c = esc;  // \" and backslash
        }
      }
      out->push_back(c);
      ++pos_;
    }
    if (!Consume('"')) return Status::InvalidArgument("unterminated string");
    return Status::OK();
  }

  Status ParseInt(int* out) {
    SkipSpace();
    bool negative = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Status::InvalidArgument("expected integer");
    }
    long value = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      value = value * 10 + (text_[pos_] - '0');
      ++pos_;
    }
    *out = static_cast<int>(negative ? -value : value);
    return Status::OK();
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<std::vector<Finding>> ParseFindingsJson(const std::string& text) {
  JsonCursor cursor(text);
  if (!cursor.Consume('[')) {
    return Status::InvalidArgument("findings JSON must start with '['");
  }
  std::vector<Finding> findings;
  if (!cursor.Peek(']')) {
    do {
      if (!cursor.Consume('{')) {
        return Status::InvalidArgument("expected '{' to open a finding");
      }
      Finding finding;
      static constexpr const char* kKeys[] = {"file", "line", "rule",
                                              "message"};
      for (const char* expected : kKeys) {
        std::string key;
        Status status = cursor.ParseString(&key);
        if (!status.ok()) return status;
        if (key != expected) {
          return Status::InvalidArgument("expected key '" +
                                         std::string(expected) + "', got '" +
                                         key + "'");
        }
        if (!cursor.Consume(':')) {
          return Status::InvalidArgument("expected ':' after key");
        }
        if (key == "line") {
          status = cursor.ParseInt(&finding.line);
        } else {
          std::string* field = key == "file" ? &finding.file
                               : key == "rule" ? &finding.rule
                                               : &finding.message;
          status = cursor.ParseString(field);
        }
        if (!status.ok()) return status;
        cursor.Consume(',');
      }
      if (!cursor.Consume('}')) {
        return Status::InvalidArgument("expected '}' to close a finding");
      }
      findings.push_back(std::move(finding));
    } while (cursor.Consume(','));
  }
  if (!cursor.Consume(']')) {
    return Status::InvalidArgument("findings JSON must end with ']'");
  }
  return findings;
}

}  // namespace analysis
}  // namespace pstore
