#include "analysis/dead_symbol_check.h"

#include <algorithm>

#include "analysis/check.h"
#include "analysis/symbol_graph.h"

namespace pstore {
namespace analysis {

void DeadSymbolCheck::Run(const AnalysisContext& context,
                          std::vector<Finding>* findings) const {
  const SymbolGraph& graph = *context.symbols;
  for (size_t fn = 0; fn < graph.functions().size(); ++fn) {
    const FunctionSymbol& function = graph.functions()[fn];
    if (function.definitions.empty()) continue;
    if (function.is_special) continue;  // ctors/dtors/operators: implicit
    if (function.name == "main") continue;
    // Only symbols living entirely under src/ are candidates; a
    // definition in tools/bench/tests (dir "") is an entry point or a
    // test body by construction.
    bool all_in_src = true;
    for (const SymbolSite& site : function.definitions) {
      all_in_src = all_in_src && !site.dir.empty();
    }
    if (!all_in_src) continue;
    // Any bare-name reference — call, address-of, registration table,
    // macro body — keeps the whole overload set alive.
    if (function.mentions > 0) continue;
    bool has_external_caller = false;
    for (const size_t caller : graph.callers_of(fn)) {
      has_external_caller = has_external_caller || caller != fn;
    }
    if (has_external_caller) continue;

    // Report at the first definition site (sites are in file order).
    const SymbolSite* site = &function.definitions.front();
    for (const SymbolSite& candidate : function.definitions) {
      if (candidate.file < site->file ||
          (candidate.file == site->file && candidate.line < site->line)) {
        site = &candidate;
      }
    }
    Finding finding;
    finding.file = site->file;
    finding.line = site->line;
    finding.rule = name();
    finding.message =
        "function '" + function.qualified_name +
        "' is defined but has no call sites or references across "
        "src/tools/bench/tests; delete it or annotate the definition "
        "with // pstore-analyze: allow(dead-symbol)";
    findings->push_back(std::move(finding));
  }
}

}  // namespace analysis
}  // namespace pstore
