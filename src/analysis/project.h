#ifndef PSTORE_ANALYSIS_PROJECT_H_
#define PSTORE_ANALYSIS_PROJECT_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/source_file.h"
#include "common/status.h"

namespace pstore {
namespace analysis {

// The set of source files under analysis, with lookup from include
// paths ("planner/move.h") to the loaded header. Populate either from
// disk with Load() or from in-memory fixtures with AddFile().
class Project {
 public:
  Project() = default;

  // Walks each root (a directory or a single file), loading every .h
  // and .cc found, in sorted order for deterministic output.
  static StatusOr<Project> Load(const std::vector<std::string>& roots);

  void AddFile(SourceFile file);

  const std::vector<SourceFile>& files() const { return files_; }

  // Looks up a project header by its include key; nullptr if the path
  // does not name a loaded src/ header.
  const SourceFile* FindHeader(const std::string& include_key) const;

 private:
  std::vector<SourceFile> files_;
  std::map<std::string, size_t> by_include_key_;
};

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_PROJECT_H_
