#include "analysis/symbol_graph.h"

#include <algorithm>
#include <set>

#include "analysis/project.h"
#include "analysis/source_file.h"
#include "analysis/token_cache.h"
#include "analysis/token_util.h"
#include "analysis/tokenizer.h"
#include "common/thread_pool.h"

namespace pstore {
namespace analysis {
namespace {

// Keywords that can never name a function or a call target.
bool IsExpressionKeyword(const std::string& text) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",     "switch",        "catch",
      "return",   "sizeof",   "alignof",   "alignas",       "decltype",
      "noexcept", "typeid",   "new",       "delete",        "throw",
      "co_await", "co_return", "co_yield", "static_assert", "defined",
      "asm",      "explicit", "requires"};
  return kKeywords.count(text) != 0;
}

bool IsClassKeyword(const std::string& text) {
  return text == "class" || text == "struct";
}

// One function definition or declaration as written in one file.
struct RawSite {
  std::string qualified_name;
  std::string name;
  std::string class_name;
  bool special = false;
  int line = 0;
  size_t body_begin = 0;
  size_t body_end = 0;
  size_t params_begin = 0;
  size_t params_end = 0;
  bool is_definition = false;
};

// One textual call site inside a function definition.
struct RawCall {
  std::string caller;             // qualified name of the enclosing def
  std::vector<std::string> path;  // as written: {"Analyzer", "Run"}
  int line = 0;
};

struct FileFacts {
  std::vector<RawSite> sites;
  std::vector<RawCall> calls;
};

// The written name path ending just before tokens[open] == "(".
struct NamePath {
  std::vector<std::string> path;  // {"Queue", "Push"} for Queue::Push(
  std::string name;               // last component (with ~ / operator glued)
  bool special = false;           // dtor / operator / conversion operator
  size_t start = 0;               // token index of the first path component
  int line = 0;                   // line of the name token
  bool ok = false;
};

// Walks backwards from the token before '(' to recover the declarator
// or callee path: ident, Class::ident, ns::Class::ident, ~ident,
// operator==, operator(), operator bool.
NamePath ParseNamePathBefore(const std::vector<Token>& tokens, size_t open) {
  NamePath result;
  if (open == 0) return result;
  size_t j = open - 1;

  if (tokens[j].kind == TokenKind::kPunct) {
    // operator==(...), operator[](...), operator()(...): collect the
    // punctuation back to the `operator` keyword (at most 2 tokens).
    std::string glued;
    size_t punct_count = 0;
    while (j < tokens.size() && tokens[j].kind == TokenKind::kPunct &&
           punct_count < 2) {
      glued = tokens[j].text + glued;
      ++punct_count;
      if (j == 0) return result;
      --j;
    }
    if (!IsIdentAt(tokens, j, "operator")) return result;
    result.name = "operator" + glued;
    result.special = true;
    result.start = j;
    result.line = tokens[j].line;
    result.path = {result.name};
  } else if (tokens[j].kind == TokenKind::kIdentifier) {
    const std::string& text = tokens[j].text;
    if (IsExpressionKeyword(text)) return result;
    result.line = tokens[j].line;
    result.start = j;
    if (j > 0 && IsPunctAt(tokens, j - 1, "~")) {
      result.name = "~" + text;
      result.special = true;
      result.start = j - 1;
      j = result.start;
    } else if (j > 0 && IsIdentAt(tokens, j - 1, "operator")) {
      // Conversion operator: `operator bool(`.
      result.name = "operator " + text;
      result.special = true;
      result.start = j - 1;
      j = result.start;
    } else {
      result.name = text;
    }
    result.path = {result.name};
  } else {
    return result;
  }

  // Prepend `Class::`-style qualifiers.
  while (result.start >= 2 && IsPunctAt(tokens, result.start - 1, "::") &&
         IsIdentAt(tokens, result.start - 2) &&
         !IsExpressionKeyword(tokens[result.start - 2].text)) {
    result.path.insert(result.path.begin(), tokens[result.start - 2].text);
    result.start -= 2;
  }
  result.ok = true;
  return result;
}

// What may precede a declarator for it to be a declaration or
// definition (rather than a call or an initializer expression): a
// return type / specifier identifier, scope punctuation, or nothing.
bool IsDeclaratorPrefix(const std::vector<Token>& tokens, size_t start) {
  if (start == 0) return true;
  const Token& prev = tokens[start - 1];
  if (prev.kind == TokenKind::kIdentifier) {
    return !IsExpressionKeyword(prev.text) || prev.text == "explicit";
  }
  if (prev.kind != TokenKind::kPunct) return false;
  static const std::set<std::string> kAllowed = {";", "}", "{", ">", "&",
                                                "*", ":", "]", "::"};
  return kAllowed.count(prev.text) != 0;
}

enum class AfterParams { kNotAFunction, kDeclaration, kDefinition };

// Classifies the tokens after a candidate's parameter list: `{` (or a
// ctor-init list leading to one) is a definition, `;` or `= default` /
// `= delete` / `= 0` a declaration, anything else not a function.
// Returns the index of the body `{`, the `;`, or the `=`.
AfterParams ClassifyAfterParams(const std::vector<Token>& tokens, size_t after,
                                size_t* stop) {
  const size_t n = tokens.size();
  size_t j = after;
  while (j < n) {
    const Token& t = tokens[j];
    if (t.kind == TokenKind::kIdentifier) {
      if (t.text == "noexcept" && IsPunctAt(tokens, j + 1, "(")) {
        j = SkipBalancedRun(tokens, j + 1);
        continue;
      }
      ++j;  // const, override, final, trailing return-type names
      continue;
    }
    if (t.kind != TokenKind::kPunct) return AfterParams::kNotAFunction;
    const std::string& p = t.text;
    if (p == "{") {
      *stop = j;
      return AfterParams::kDefinition;
    }
    if (p == ";") {
      *stop = j;
      return AfterParams::kDeclaration;
    }
    if (p == ":") {
      // Constructor initializer list: scan to the body brace.
      for (size_t k = j + 1; k < n; ++k) {
        if (IsPunctAt(tokens, k, "(") || IsPunctAt(tokens, k, "[") ||
            IsPunctAt(tokens, k, "{")) {
          if (IsPunctAt(tokens, k, "{") && !IsPunctAt(tokens, k + 1, "}") &&
              k > j + 1 && IsIdentAt(tokens, k - 1)) {
            // Brace-init of a member: `: member_{...}` — skip it.
          } else if (IsPunctAt(tokens, k, "{")) {
            *stop = k;
            return AfterParams::kDefinition;
          }
          k = SkipBalancedRun(tokens, k) - 1;
          continue;
        }
        if (IsPunctAt(tokens, k, ";") || IsPunctAt(tokens, k, "}")) {
          return AfterParams::kNotAFunction;
        }
      }
      return AfterParams::kNotAFunction;
    }
    if (p == "=") {
      *stop = j;  // = default; / = delete; / = 0;
      return AfterParams::kDeclaration;
    }
    if (p == "->" || p == "::" || p == "<" || p == ">" || p == "&" ||
        p == "*" || p == ",") {
      ++j;
      continue;
    }
    if (p == "(" || p == "[") {
      j = SkipBalancedRun(tokens, j);
      continue;
    }
    return AfterParams::kNotAFunction;
  }
  return AfterParams::kNotAFunction;
}

// Scope stack entry for the per-file scan.
struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kBlock };
  Kind kind;
  std::string name;  // namespace / class component; function: qualified name
  int depth;         // brace depth just before this scope's '{'
};

// Extracts definitions, declarations, and call sites from one file.
// Purely a function of (file, tokens), so files can be scanned on any
// thread in any order.
void ScanFile(const SourceFile& file, const std::vector<Token>& tokens,
              FileFacts* facts) {
  (void)file;  // facts carry indices; the path is attached at merge time
  const size_t n = tokens.size();
  std::vector<Scope> stack;
  int depth = 0;

  const auto enclosing_function = [&]() -> const Scope* {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == Scope::kFunction) return &*it;
      if (it->kind != Scope::kBlock) return nullptr;
    }
    return nullptr;
  };
  const auto scope_prefix = [&]() {
    std::string prefix;
    for (const Scope& scope : stack) {
      if (scope.kind != Scope::kNamespace && scope.kind != Scope::kClass) {
        continue;
      }
      if (!prefix.empty()) prefix += "::";
      prefix += scope.name;
    }
    return prefix;
  };
  const auto innermost_class = [&]() -> std::string {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
      if (it->kind == Scope::kFunction) return "";
    }
    return "";
  };

  size_t i = 0;
  while (i < n) {
    const Token& tok = tokens[i];
    if (tok.kind == TokenKind::kPunct) {
      if (tok.text == "{") {
        stack.push_back({Scope::kBlock, "", depth});
        ++depth;
        ++i;
        continue;
      }
      if (tok.text == "}") {
        if (depth > 0) --depth;
        while (!stack.empty() && stack.back().depth == depth) stack.pop_back();
        ++i;
        continue;
      }
      if (tok.text == "(") {
        const Scope* function = enclosing_function();
        if (function != nullptr) {
          // Call site: ident path immediately before the paren; member
          // calls (`obj.Tick(`) contribute only the method name.
          NamePath callee = ParseNamePathBefore(tokens, i);
          if (callee.ok && !callee.special) {
            const bool member_call =
                callee.start > 0 && (IsPunctAt(tokens, callee.start - 1, ".") ||
                                     IsPunctAt(tokens, callee.start - 1, "->"));
            std::vector<std::string> path = callee.path;
            if (member_call) path = {callee.name};
            facts->calls.push_back(
                {function->name, std::move(path), tokens[i].line});
          }
          ++i;
          continue;
        }
        // Declarative scope: candidate function definition/declaration.
        NamePath declarator = ParseNamePathBefore(tokens, i);
        if (!declarator.ok || !IsDeclaratorPrefix(tokens, declarator.start)) {
          ++i;
          continue;
        }
        const size_t after = SkipBalancedRun(tokens, i);
        size_t stop = 0;
        const AfterParams kind = ClassifyAfterParams(tokens, after, &stop);
        if (kind == AfterParams::kNotAFunction) {
          ++i;
          continue;
        }
        RawSite site;
        site.name = declarator.name;
        site.special = declarator.special;
        site.line = declarator.line;
        site.params_begin = i;
        site.params_end = after;
        const std::string prefix = scope_prefix();
        std::string written;
        for (const std::string& component : declarator.path) {
          if (!written.empty()) written += "::";
          written += component;
        }
        site.qualified_name =
            prefix.empty() ? written : prefix + "::" + written;
        site.class_name = declarator.path.size() > 1
                              ? declarator.path[declarator.path.size() - 2]
                              : innermost_class();
        if (site.name == site.class_name) site.special = true;  // constructor
        if (kind == AfterParams::kDefinition) {
          site.is_definition = true;
          site.body_begin = stop;
          site.body_end = SkipBalancedRun(tokens, stop);
          facts->sites.push_back(site);
          stack.push_back({Scope::kFunction, site.qualified_name, depth});
          ++depth;
          i = stop + 1;
          continue;
        }
        facts->sites.push_back(site);
        i = stop;  // the ';' or '=' is re-scanned as a plain token
        continue;
      }
      ++i;
      continue;
    }
    if (tok.kind != TokenKind::kIdentifier) {
      ++i;
      continue;
    }
    if (enclosing_function() != nullptr) {
      ++i;  // identifiers in bodies are handled via the '(' anchor
      continue;
    }
    const std::string& word = tok.text;
    if (word == "template" && IsPunctAt(tokens, i + 1, "<")) {
      // Skip the parameter list so `class T` is not a class definition.
      int angle = 0;
      size_t j = i + 1;
      for (; j < n; ++j) {
        if (tokens[j].kind != TokenKind::kPunct) continue;
        if (tokens[j].text == "<") ++angle;
        if (tokens[j].text == ">" && --angle == 0) break;
        if (tokens[j].text == ";" || tokens[j].text == "{") break;
      }
      i = j + 1;
      continue;
    }
    if (word == "namespace") {
      std::string name;
      size_t j = i + 1;
      while (j < n) {
        if (IsIdentAt(tokens, j)) {
          if (!name.empty()) name += "::";
          name += tokens[j].text;
          ++j;
          continue;
        }
        if (IsPunctAt(tokens, j, "::")) {
          ++j;
          continue;
        }
        break;
      }
      if (IsPunctAt(tokens, j, "{")) {
        if (name.empty()) name = "(anon)";
        stack.push_back({Scope::kNamespace, name, depth});
        ++depth;
        i = j + 1;
        continue;
      }
      i = j + 1;  // namespace alias or ill-formed; skip
      continue;
    }
    if (word == "using" || word == "typedef") {
      while (i < n && !IsPunctAt(tokens, i, ";")) ++i;
      continue;
    }
    if (word == "enum") {
      size_t j = i + 1;
      while (j < n && !IsPunctAt(tokens, j, ";") && !IsPunctAt(tokens, j, "{")) {
        ++j;
      }
      if (IsPunctAt(tokens, j, "{")) j = SkipBalancedRun(tokens, j);
      i = j;
      continue;
    }
    if (IsClassKeyword(word) && IsIdentAt(tokens, i + 1)) {
      const std::string& class_name = tokens[i + 1].text;
      // Find the body brace; forward declarations, parameters, and
      // template arguments never reach one. Template arguments in a
      // base-clause (`: public Base<T>`) are skipped.
      size_t open = 0;
      for (size_t j = i + 2; j < n; ++j) {
        if (tokens[j].kind == TokenKind::kIdentifier) continue;
        if (tokens[j].kind != TokenKind::kPunct) break;
        const std::string& t = tokens[j].text;
        if (t == "<") {
          int angle = 0;
          for (; j < n; ++j) {
            if (tokens[j].kind != TokenKind::kPunct) continue;
            if (tokens[j].text == "<") ++angle;
            if (tokens[j].text == ">" && --angle == 0) break;
            if (tokens[j].text == ";" || tokens[j].text == "{") break;
          }
          continue;
        }
        if (t == "{") {
          open = j;
          break;
        }
        if (t == "::" || t == ":" || t == ",") continue;
        break;  // ';' forward decl, ')' parameter, '=' default arg, ...
      }
      if (open != 0) {
        stack.push_back({Scope::kClass, class_name, depth});
        ++depth;
        i = open + 1;
        continue;
      }
      i += 2;
      continue;
    }
    ++i;
  }
}

}  // namespace

SymbolGraph::SymbolGraph(const Project& project, const TokenCache& tokens,
                         ThreadPool* pool) {
  const std::vector<SourceFile>& files = project.files();
  const size_t file_count = files.size();

  // Phase 1: per-file extraction — each slot written by exactly one
  // index, so the facts are identical for any thread count.
  std::vector<FileFacts> facts(file_count);
  const auto scan_one = [&](size_t index) {
    ScanFile(files[index], tokens.tokens(files[index]), &facts[index]);
  };
  if (pool != nullptr && pool->thread_count() > 1) {
    pool->ParallelFor(file_count, scan_one);
  } else {
    for (size_t index = 0; index < file_count; ++index) scan_one(index);
  }

  // Phase 2: merge in file order into overload sets keyed (and finally
  // sorted) by qualified name.
  std::map<std::string, FunctionSymbol> merged;
  for (size_t index = 0; index < file_count; ++index) {
    for (const RawSite& site : facts[index].sites) {
      FunctionSymbol& fn = merged[site.qualified_name];
      if (fn.qualified_name.empty()) {
        fn.qualified_name = site.qualified_name;
        fn.name = site.name;
        fn.class_name = site.class_name;
      }
      if (fn.class_name.empty()) fn.class_name = site.class_name;
      fn.is_special = fn.is_special || site.special;
      SymbolSite where{index,
                       files[index].path(),
                       files[index].dir(),
                       site.line,
                       site.body_begin,
                       site.body_end,
                       site.params_begin,
                       site.params_end};
      if (site.is_definition) {
        fn.definitions.push_back(where);
      } else {
        fn.declarations.push_back(where);
      }
    }
  }
  functions_.reserve(merged.size());
  for (auto& [qualified_name, fn] : merged) {
    by_qualified_name_[qualified_name] = functions_.size();
    by_name_[fn.name].push_back(functions_.size());
    functions_.push_back(std::move(fn));
  }

  // Phase 3: resolve call paths to overload sets and build the edge
  // lists. Processing files in index order keeps this deterministic.
  for (size_t index = 0; index < file_count; ++index) {
    for (const RawCall& call : facts[index].calls) {
      const auto caller_it = by_qualified_name_.find(call.caller);
      if (caller_it == by_qualified_name_.end()) continue;
      for (const size_t callee : Resolve(call.path)) {
        calls_.push_back({caller_it->second, callee, index, call.line});
      }
    }
  }
  std::sort(calls_.begin(), calls_.end(),
            [](const CallSite& a, const CallSite& b) {
              if (a.caller != b.caller) return a.caller < b.caller;
              if (a.callee != b.callee) return a.callee < b.callee;
              if (a.file_index != b.file_index) {
                return a.file_index < b.file_index;
              }
              return a.line < b.line;
            });
  calls_.erase(std::unique(calls_.begin(), calls_.end(),
                           [](const CallSite& a, const CallSite& b) {
                             return a.caller == b.caller &&
                                    a.callee == b.callee &&
                                    a.file_index == b.file_index &&
                                    a.line == b.line;
                           }),
               calls_.end());
  callees_.assign(functions_.size(), {});
  callers_.assign(functions_.size(), {});
  for (const CallSite& call : calls_) {
    callees_[call.caller].push_back(call.callee);
    callers_[call.callee].push_back(call.caller);
  }
  for (std::vector<size_t>& adjacent : callees_) {
    adjacent.erase(std::unique(adjacent.begin(), adjacent.end()),
                   adjacent.end());
  }
  for (std::vector<size_t>& adjacent : callers_) {
    std::sort(adjacent.begin(), adjacent.end());
    adjacent.erase(std::unique(adjacent.begin(), adjacent.end()),
                   adjacent.end());
  }

  // Phase 4: bare-name mentions, excluding each symbol's own
  // declaration/definition name sites, plus identifiers inside
  // preprocessor directives (macro bodies call functions the tokenizer
  // never sees). Counted per file in parallel, merged in file order.
  std::vector<std::map<int, std::set<std::string>>> excluded(file_count);
  for (const FunctionSymbol& fn : functions_) {
    for (const SymbolSite& site : fn.definitions) {
      excluded[site.file_index][site.line].insert(fn.name);
    }
    for (const SymbolSite& site : fn.declarations) {
      excluded[site.file_index][site.line].insert(fn.name);
    }
  }
  std::vector<std::map<std::string, int>> mention_counts(file_count);
  const auto count_one = [&](size_t index) {
    std::map<std::string, int>& counts = mention_counts[index];
    const std::map<int, std::set<std::string>>& skip = excluded[index];
    for (const Token& token : tokens.tokens(files[index])) {
      if (token.kind != TokenKind::kIdentifier) continue;
      if (by_name_.count(token.text) == 0) continue;
      const auto skip_it = skip.find(token.line);
      if (skip_it != skip.end() && skip_it->second.count(token.text) != 0) {
        continue;
      }
      ++counts[token.text];
    }
    for (const std::string& ident : files[index].preprocessor_idents()) {
      if (by_name_.count(ident) != 0) ++counts[ident];
    }
  };
  if (pool != nullptr && pool->thread_count() > 1) {
    pool->ParallelFor(file_count, count_one);
  } else {
    for (size_t index = 0; index < file_count; ++index) count_one(index);
  }
  std::map<std::string, int> total_mentions;
  for (size_t index = 0; index < file_count; ++index) {
    for (const auto& [name, count] : mention_counts[index]) {
      total_mentions[name] += count;
    }
  }
  for (FunctionSymbol& fn : functions_) {
    const auto it = total_mentions.find(fn.name);
    fn.mentions = it == total_mentions.end() ? 0 : it->second;
  }
}

size_t SymbolGraph::FindFunction(const std::string& qualified_name) const {
  const auto it = by_qualified_name_.find(qualified_name);
  return it == by_qualified_name_.end() ? kNoSymbol : it->second;
}

std::vector<size_t> SymbolGraph::Resolve(
    const std::vector<std::string>& path) const {
  std::vector<size_t> matches;
  if (path.empty()) return matches;
  const auto it = by_name_.find(path.back());
  if (it == by_name_.end()) return matches;
  for (const size_t index : it->second) {
    // Component-wise suffix match of the written path against the
    // qualified name.
    const std::string& qualified = functions_[index].qualified_name;
    size_t end = qualified.size();
    bool match = true;
    for (size_t k = path.size(); k-- > 0;) {
      const std::string& component = path[k];
      if (end < component.size() ||
          qualified.compare(end - component.size(), component.size(),
                            component) != 0) {
        match = false;
        break;
      }
      end -= component.size();
      if (k == 0) break;
      if (end < 2 || qualified.compare(end - 2, 2, "::") != 0) {
        match = false;
        break;
      }
      end -= 2;
    }
    if (!match) continue;
    // The first matched component must itself start on a component
    // boundary ("Run" must not match "DryRun").
    if (end != 0 && !(end >= 2 && qualified.compare(end - 2, 2, "::") == 0)) {
      continue;
    }
    matches.push_back(index);
  }
  return matches;
}

const std::vector<size_t>& SymbolGraph::callees_of(size_t function) const {
  return callees_[function];
}

const std::vector<size_t>& SymbolGraph::callers_of(size_t function) const {
  return callers_[function];
}

std::vector<char> SymbolGraph::ReachableFrom(
    const std::vector<size_t>& roots) const {
  std::vector<char> reachable(functions_.size(), 0);
  std::vector<size_t> frontier;
  for (const size_t root : roots) {
    if (root < functions_.size() && reachable[root] == 0) {
      reachable[root] = 1;
      frontier.push_back(root);
    }
  }
  while (!frontier.empty()) {
    const size_t at = frontier.back();
    frontier.pop_back();
    for (const size_t next : callees_[at]) {
      if (reachable[next] == 0) {
        reachable[next] = 1;
        frontier.push_back(next);
      }
    }
  }
  return reachable;
}

}  // namespace analysis
}  // namespace pstore
