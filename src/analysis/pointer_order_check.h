#ifndef PSTORE_ANALYSIS_POINTER_ORDER_CHECK_H_
#define PSTORE_ANALYSIS_POINTER_ORDER_CHECK_H_

#include <string>
#include <vector>

#include "analysis/check.h"
#include "analysis/project.h"
#include "analysis/token_cache.h"

namespace pstore {
namespace analysis {

// Determinism rule "pointer-order": flags orderings that depend on raw
// pointer values anywhere under src/ —
//   * ordered containers / comparators keyed by a raw pointer type
//     (std::map<T*, ..>, std::set<T*>, std::less<T*>, ...), and
//   * two-pointer comparator lambdas whose body compares the pointer
//     parameters themselves with < or >.
// Pointer values vary run to run with ASLR and allocation order, so
// any traversal or sort keyed on them is nondeterministic. Key on a
// stable id instead, or allow() when the order provably never escapes.
class PointerOrderCheck : public Check {
 public:
  std::string name() const override { return "pointer-order"; }
  void Run(const AnalysisContext& context,
           std::vector<Finding>* findings) const override;
};

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_POINTER_ORDER_CHECK_H_
