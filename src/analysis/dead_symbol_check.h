#ifndef PSTORE_ANALYSIS_DEAD_SYMBOL_CHECK_H_
#define PSTORE_ANALYSIS_DEAD_SYMBOL_CHECK_H_

#include <string>
#include <vector>

#include "analysis/check.h"

namespace pstore {
namespace analysis {

// Reports functions defined under src/ with zero call sites and zero
// bare-name references anywhere in the project (src, tools, bench,
// tests, examples). Constructors, destructors, operators, and `main`
// are exempt, as is any symbol with a definition outside src/ (test
// fixtures, tools). A symbol's own declarations — including the one in
// its own header — never count as uses; address-taking, registration
// tables, and macro bodies do (via the SymbolGraph mention count).
// Intentionally kept entry points carry
// `// pstore-analyze: allow(dead-symbol)` on the definition line.
class DeadSymbolCheck : public Check {
 public:
  std::string name() const override { return "dead-symbol"; }
  bool needs_symbols() const override { return true; }
  void Run(const AnalysisContext& context,
           std::vector<Finding>* findings) const override;
};

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_DEAD_SYMBOL_CHECK_H_
