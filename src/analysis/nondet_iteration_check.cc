#include "analysis/nondet_iteration_check.h"

#include <set>

#include "analysis/check.h"
#include "analysis/project.h"
#include "analysis/source_file.h"
#include "analysis/token_cache.h"
#include "analysis/token_util.h"
#include "analysis/tokenizer.h"

namespace pstore {
namespace analysis {
namespace {

bool IsUnorderedContainerName(const std::string& text) {
  return text == "unordered_map" || text == "unordered_set" ||
         text == "unordered_multimap" || text == "unordered_multiset";
}

// A declared name with an unordered-container type, plus the site of
// the declaration when it is a variable/member (not a parameter).
struct UnorderedDecl {
  std::string name;
  bool is_parameter = false;
  std::string file;
  int line = 0;
};

// Walks forward from an `unordered_*` (or unordered-alias) type token
// and records the names it declares. The grammar is approximate but
// works for the shapes that appear in this codebase:
//   std::unordered_map<K, V> name;      (member / local: finding site)
//   std::unordered_map<K, V> name = ..; (ditto)
//   std::unordered_map<K, V> name{..};  (ditto)
//   const std::unordered_map<K, V>& name,  (parameter: name only)
// Template angle brackets are tracked so commas inside `<...>` do not
// terminate the declarator. Stops at `;`, `}` or when the candidate
// identifier is followed by `(` (a function returning the container).
void CollectDeclaredNames(const std::vector<Token>& tokens, size_t type_at,
                          const SourceFile& file,
                          std::vector<UnorderedDecl>* decls) {
  int angle = 0;
  for (size_t i = type_at + 1; i < tokens.size(); ++i) {
    if (tokens[i].kind == TokenKind::kPunct) {
      const std::string& t = tokens[i].text;
      if (t == "<") ++angle;
      if (t == ">") --angle;
      if (angle <= 0 && (t == ";" || t == "}" || t == "{")) return;
      continue;
    }
    if (angle > 0 || tokens[i].kind != TokenKind::kIdentifier) continue;
    // Identifier at template depth 0: a declarator candidate if what
    // follows ends or continues a declaration rather than a type.
    if (IsPunctAt(tokens, i + 1, ";") || IsPunctAt(tokens, i + 1, "=") ||
        IsPunctAt(tokens, i + 1, "{")) {
      decls->push_back(
          {tokens[i].text, false, file.path(), tokens[i].line});
      return;
    }
    if (IsPunctAt(tokens, i + 1, ",") || IsPunctAt(tokens, i + 1, ")")) {
      decls->push_back({tokens[i].text, true, "", 0});
      return;
    }
    if (IsPunctAt(tokens, i + 1, "(")) return;  // function return type
  }
}

}  // namespace

bool NondetIterationCheck::IsSimAffectingDir(const std::string& dir) {
  static const std::set<std::string> kSimDirs = {
      "engine", "sim",        "fleet",      "planner",
      "prediction", "migration", "controller", "fault"};
  return kSimDirs.count(dir) != 0;
}

void NondetIterationCheck::Run(const AnalysisContext& context,
                               std::vector<Finding>* findings) const {
  const Project& project = context.project;
  const TokenCache& cache = context.tokens;
  // Pass A: collect every name declared with an unordered-container
  // type, project-wide, following `using Alias = std::unordered_*<..>`
  // aliases one level deep. Declarations inside sim-affecting modules
  // are themselves findings.
  std::set<std::string> aliases;
  for (const SourceFile& file : project.files()) {
    const std::vector<Token>& tokens = cache.tokens(file);
    for (size_t i = 0; i + 3 < tokens.size(); ++i) {
      if (!IsIdentAt(tokens, i, "using") || !IsIdentAt(tokens, i + 1) ||
          !IsPunctAt(tokens, i + 2, "=")) {
        continue;
      }
      for (size_t j = i + 3; j < tokens.size(); ++j) {
        if (IsPunctAt(tokens, j, ";")) break;
        if (IsIdentAt(tokens, j) && IsUnorderedContainerName(tokens[j].text)) {
          aliases.insert(tokens[i + 1].text);
          break;
        }
      }
    }
  }

  std::set<std::string> unordered_names;
  for (const SourceFile& file : project.files()) {
    const std::vector<Token>& tokens = cache.tokens(file);
    const bool sim_dir = IsSimAffectingDir(file.dir());
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (!IsIdentAt(tokens, i)) continue;
      const bool container = IsUnorderedContainerName(tokens[i].text);
      const bool alias = !container && aliases.count(tokens[i].text) != 0 &&
                         !IsPunctAt(tokens, i + 1, "=");
      if (!container && !alias) continue;
      if (container && IsIdentAt(tokens, i + 1)) continue;  // the alias decl
      std::vector<UnorderedDecl> decls;
      CollectDeclaredNames(tokens, i, file, &decls);
      for (const UnorderedDecl& decl : decls) {
        unordered_names.insert(decl.name);
        if (!decl.is_parameter && sim_dir) {
          findings->push_back(
              {decl.file, decl.line, "nondet-iteration",
               "unordered container '" + decl.name +
                   "' declared in a sim-affecting module; iteration order "
                   "is nondeterministic — use an ordered container or "
                   "iterate over sorted keys (allow() if every use is "
                   "order-independent)"});
        }
      }
    }
  }

  // Pass B: in sim-affecting modules, flag range-for loops and
  // begin()-family calls whose subject is an unordered-typed name.
  for (const SourceFile& file : project.files()) {
    if (!IsSimAffectingDir(file.dir())) continue;
    const std::vector<Token>& tokens = cache.tokens(file);
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (IsIdentAt(tokens, i, "for") && IsPunctAt(tokens, i + 1, "(")) {
        // Find the `:` of a range-for at paren depth 1; a `;` at depth 1
        // first means a classic for loop.
        int depth = 0;
        size_t colon = 0;
        for (size_t j = i + 1; j < tokens.size(); ++j) {
          if (tokens[j].kind != TokenKind::kPunct) continue;
          const std::string& t = tokens[j].text;
          if (t == "(" || t == "[" || t == "{") ++depth;
          if (t == ")" || t == "]" || t == "}") {
            --depth;
            if (depth == 0) break;
          }
          if (depth == 1 && t == ";") break;
          if (depth == 1 && t == ":" && !IsPunctAt(tokens, j - 1, ":") &&
              !IsPunctAt(tokens, j + 1, ":")) {
            colon = j;
            break;
          }
        }
        if (colon == 0) continue;
        // Range expression: tokens from the colon to the closing paren.
        depth = 1;
        for (size_t j = colon + 1; j < tokens.size(); ++j) {
          if (tokens[j].kind == TokenKind::kPunct) {
            const std::string& t = tokens[j].text;
            if (t == "(" || t == "[" || t == "{") ++depth;
            if (t == ")" || t == "]" || t == "}") {
              --depth;
              if (depth == 0) break;
            }
            continue;
          }
          if (IsIdentAt(tokens, j) &&
              unordered_names.count(tokens[j].text) != 0) {
            findings->push_back(
                {file.path(), tokens[i].line, "nondet-iteration",
                 "range-for over unordered container '" + tokens[j].text +
                     "' in a sim-affecting module; iterate over sorted "
                     "keys for deterministic order"});
            break;
          }
        }
        continue;
      }
      // name[.idx].begin() / cbegin() / rbegin()
      if (!IsIdentAt(tokens, i) || unordered_names.count(tokens[i].text) == 0) {
        continue;
      }
      size_t j = i + 1;
      while (IsPunctAt(tokens, j, "[")) j = SkipBalancedRun(tokens, j);
      if (!IsPunctAt(tokens, j, ".") && !IsPunctAt(tokens, j, "->")) continue;
      if (IsIdentAt(tokens, j + 1, "begin") ||
          IsIdentAt(tokens, j + 1, "cbegin") ||
          IsIdentAt(tokens, j + 1, "rbegin")) {
        findings->push_back(
            {file.path(), tokens[i].line, "nondet-iteration",
             "iterator over unordered container '" + tokens[i].text +
                 "' in a sim-affecting module; iteration order is "
                 "nondeterministic"});
      }
    }
  }
}

}  // namespace analysis
}  // namespace pstore
