#ifndef PSTORE_ANALYSIS_STATUS_CHECK_H_
#define PSTORE_ANALYSIS_STATUS_CHECK_H_

#include <set>
#include <string>
#include <vector>

#include "analysis/check.h"
#include "analysis/project.h"
#include "analysis/token_cache.h"

namespace pstore {
namespace analysis {

// Status discipline: scans project headers for functions returning
// Status or StatusOr<T>, then flags expression statements that call one
// of them and silently discard the result. `(void)call()` is the
// explicit discard idiom and is not flagged. Rule id: "status".
class StatusCheck : public Check {
 public:
  // The Status-returning function names found in the project's headers
  // (exposed for tests).
  static std::set<std::string> CollectStatusFunctions(const Project& project,
                                                      const TokenCache& tokens);

  std::string name() const override { return "status"; }
  void Run(const AnalysisContext& context,
           std::vector<Finding>* findings) const override;
};

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_STATUS_CHECK_H_
