#ifndef PSTORE_ANALYSIS_TOKENIZER_H_
#define PSTORE_ANALYSIS_TOKENIZER_H_

#include <string>
#include <vector>

namespace pstore {
namespace analysis {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords
  kNumber,
  kPunct,  // one operator/punctuator; "::" and "->" are single tokens
};

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;  // 1-based
};

// Tokenizes cleaned source text (see SourceFile::clean()): comments,
// strings, and preprocessor lines are assumed to already be blanked.
std::vector<Token> Tokenize(const std::string& clean);

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_TOKENIZER_H_
