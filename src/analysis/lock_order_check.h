#ifndef PSTORE_ANALYSIS_LOCK_ORDER_CHECK_H_
#define PSTORE_ANALYSIS_LOCK_ORDER_CHECK_H_

#include <string>
#include <vector>

#include "analysis/check.h"

namespace pstore {
namespace analysis {

// Whole-program lock-order (deadlock) analysis over the SymbolGraph.
//
// Lock acquisitions are extracted from every function definition:
// `std::lock_guard` / `std::scoped_lock` / `std::unique_lock` /
// `std::shared_lock` RAII guards (released at the end of their
// enclosing block), explicit `.lock()` / `.unlock()` calls, and —
// implied — the guard mutex of any `PSTORE_GUARDED_BY(mu)` member the
// body touches. Mutex identities are class-qualified ("Queue::mu_"), so
// the same member across instances is one lock-order node while
// distinct classes stay distinct.
//
// Held-lock sets are then propagated along call-graph edges to a
// fixpoint: if f acquires A and calls g, g runs with A held, so an
// acquisition of B inside g records the order edge A -> B even though
// the two acquisitions sit in different TUs. Every cycle in the
// resulting mutex-order graph is reported once as a potential deadlock,
// with a witness naming each edge's acquisition site and, for
// propagated edges, the call path that carries the held lock there.
class LockOrderCheck : public Check {
 public:
  std::string name() const override { return "lock-order"; }
  bool needs_symbols() const override { return true; }
  void Run(const AnalysisContext& context,
           std::vector<Finding>* findings) const override;
};

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_LOCK_ORDER_CHECK_H_
