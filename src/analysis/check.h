#ifndef PSTORE_ANALYSIS_CHECK_H_
#define PSTORE_ANALYSIS_CHECK_H_

#include <string>
#include <vector>

#include "analysis/project.h"
#include "analysis/token_cache.h"

namespace pstore {
namespace analysis {

class SymbolGraph;

// One diagnostic produced by a check.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;  // the rule id usable in allow(<rule>) suppressions
  std::string message;
};

inline bool operator==(const Finding& a, const Finding& b) {
  return a.file == b.file && a.line == b.line && a.rule == b.rule &&
         a.message == b.message;
}

// Everything a rule family may consult: the file set, the shared token
// streams, and — for the whole-program rules — the cross-TU symbol and
// call graph. `symbols` is non-null only when at least one selected
// check declares needs_symbols(); token-local rules must not touch it.
struct AnalysisContext {
  const Project& project;
  const TokenCache& tokens;
  const SymbolGraph* symbols = nullptr;
};

// A semantic rule family run over the whole project. Checks report
// findings without filtering: the Analyzer applies the
// `// pstore-analyze: allow(<rule>)` suppressions afterwards.
// `context.tokens` caches one token stream per project file; checks
// must not tokenize on their own. Run must be safe to execute
// concurrently with the other checks' Run (shared state is the
// immutable project + cache + graph).
class Check {
 public:
  virtual ~Check() = default;
  virtual std::string name() const = 0;
  // True for whole-program rules that consume the SymbolGraph; the
  // Analyzer builds the graph only when a selected check asks for it,
  // so token-local subsets stay cheap.
  virtual bool needs_symbols() const { return false; }
  virtual void Run(const AnalysisContext& context,
                   std::vector<Finding>* findings) const = 0;
};

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_CHECK_H_
