#ifndef PSTORE_ANALYSIS_CHECK_H_
#define PSTORE_ANALYSIS_CHECK_H_

#include <string>
#include <vector>

#include "analysis/project.h"
#include "analysis/token_cache.h"

namespace pstore {
namespace analysis {

// One diagnostic produced by a check.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;  // the rule id usable in allow(<rule>) suppressions
  std::string message;
};

inline bool operator==(const Finding& a, const Finding& b) {
  return a.file == b.file && a.line == b.line && a.rule == b.rule &&
         a.message == b.message;
}

// A semantic rule family run over the whole project. Checks report
// findings without filtering: the Analyzer applies the
// `// pstore-analyze: allow(<rule>)` suppressions afterwards. `tokens`
// caches one token stream per project file; checks must not tokenize
// on their own. Run must be safe to execute concurrently with the
// other checks' Run (shared state is the immutable project + cache).
class Check {
 public:
  virtual ~Check() = default;
  virtual std::string name() const = 0;
  virtual void Run(const Project& project, const TokenCache& tokens,
                   std::vector<Finding>* findings) const = 0;
};

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_CHECK_H_
