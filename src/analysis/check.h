#ifndef PSTORE_ANALYSIS_CHECK_H_
#define PSTORE_ANALYSIS_CHECK_H_

#include <string>
#include <vector>

#include "analysis/project.h"

namespace pstore {
namespace analysis {

// One diagnostic produced by a check.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;  // the rule id usable in allow(<rule>) suppressions
  std::string message;
};

// A semantic rule family run over the whole project. Checks report
// findings without filtering: the Analyzer applies the
// `// pstore-analyze: allow(<rule>)` suppressions afterwards.
class Check {
 public:
  virtual ~Check() = default;
  virtual std::string name() const = 0;
  virtual void Run(const Project& project,
                   std::vector<Finding>* findings) const = 0;
};

}  // namespace analysis
}  // namespace pstore

#endif  // PSTORE_ANALYSIS_CHECK_H_
