#include "analysis/lock_order_check.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <utility>

#include "analysis/check.h"
#include "analysis/source_file.h"
#include "analysis/symbol_graph.h"
#include "analysis/token_cache.h"
#include "analysis/token_util.h"
#include "analysis/tokenizer.h"

namespace pstore {
namespace analysis {
namespace {

bool IsRaiiGuard(const std::string& text) {
  return text == "lock_guard" || text == "scoped_lock" ||
         text == "unique_lock" || text == "shared_lock";
}

// Skips a template-argument run starting at tokens[i] == "<"; returns
// the index just past the closing ">". Parens nested inside the run are
// skipped as balanced groups.
size_t SkipAngleRun(const std::vector<Token>& tokens, size_t i) {
  int depth = 0;
  while (i < tokens.size()) {
    if (IsPunctAt(tokens, i, "<")) ++depth;
    if (IsPunctAt(tokens, i, ">") && --depth == 0) return i + 1;
    if (IsPunctAt(tokens, i, "(") || IsPunctAt(tokens, i, "[")) {
      i = SkipBalancedRun(tokens, i);
      continue;
    }
    if (IsPunctAt(tokens, i, ";") || IsPunctAt(tokens, i, "{")) break;
    ++i;
  }
  return i;
}

// Canonical identity of a mutex: the argument expression with `this->`,
// leading `&` / `*`, and `std::` noise stripped; a bare identifier
// inside a method is qualified with the class name, so `mu_` names the
// same lock-order node in every method of the class (and a different
// node than another class's `mu_`).
std::string LockKey(const std::vector<Token>& tokens, size_t begin, size_t end,
                    const std::string& class_name) {
  size_t i = begin;
  while (i < end && (IsPunctAt(tokens, i, "&") || IsPunctAt(tokens, i, "*"))) {
    ++i;
  }
  if (IsIdentAt(tokens, i, "this") && IsPunctAt(tokens, i + 1, "->")) i += 2;
  std::string key;
  size_t idents = 0;
  for (size_t k = i; k < end; ++k) {
    if (tokens[k].kind == TokenKind::kIdentifier) ++idents;
    key += tokens[k].text;
  }
  if (idents == 1 && key.find_first_of(".-[(") == std::string::npos &&
      !class_name.empty()) {
    const size_t qual = key.rfind("::");
    if (qual == std::string::npos) key = class_name + "::" + key;
  }
  return key;
}

// Splits the balanced run starting at tokens[open] (a "(" or "{") into
// top-level comma-separated argument token ranges.
std::vector<std::pair<size_t, size_t>> SplitArgs(
    const std::vector<Token>& tokens, size_t open) {
  std::vector<std::pair<size_t, size_t>> args;
  const size_t close = SkipBalancedRun(tokens, open) - 1;
  size_t begin = open + 1;
  for (size_t i = open + 1; i < close; ++i) {
    if (IsPunctAt(tokens, i, "(") || IsPunctAt(tokens, i, "[") ||
        IsPunctAt(tokens, i, "{")) {
      i = SkipBalancedRun(tokens, i) - 1;
      continue;
    }
    if (IsPunctAt(tokens, i, ",")) {
      if (i > begin) args.emplace_back(begin, i);
      begin = i + 1;
    }
  }
  if (close > begin) args.emplace_back(begin, close);
  return args;
}

bool RangeMentions(const std::vector<Token>& tokens, size_t begin, size_t end,
                   const char* word) {
  for (size_t i = begin; i < end; ++i) {
    if (IsIdentAt(tokens, i, word)) return true;
  }
  return false;
}

// A held lock plus where it was (locally) acquired.
struct Held {
  std::string key;
  std::string file;
  int line = 0;
};

// One lock acquisition inside a function body.
struct Acquire {
  std::string key;
  std::string file;
  int line = 0;
  std::vector<Held> held_before;  // locally held at this point
};

// One call site with the locally held locks at that point.
struct BodyCall {
  std::vector<size_t> callees;
  std::string file;
  int line = 0;
  std::vector<Held> held;
};

// Lock behaviour of one function definition site.
struct BodyFacts {
  size_t function = 0;  // symbol index
  std::vector<Acquire> acquires;
  std::vector<BodyCall> calls;
};

// Guard mutexes of annotated members: "Class::member" -> lock key.
using GuardedMembers = std::map<std::string, std::string>;

// Collects PSTORE_GUARDED_BY annotations project-wide. Class context is
// tracked with a lightweight brace stack: an identifier right after
// `class` / `struct` opens a class scope at its body brace.
GuardedMembers CollectGuardedMembers(const AnalysisContext& context) {
  GuardedMembers guarded;
  for (const SourceFile& file : context.project.files()) {
    const std::vector<Token>& tokens = context.tokens.tokens(file);
    // class_stack maps an open-brace depth to the class name it opened.
    std::vector<std::pair<int, std::string>> class_stack;
    int depth = 0;
    std::string pending_class;
    for (size_t i = 0; i < tokens.size(); ++i) {
      const Token& tok = tokens[i];
      if (tok.kind == TokenKind::kIdentifier) {
        if ((tok.text == "class" || tok.text == "struct") &&
            IsIdentAt(tokens, i + 1)) {
          pending_class = tokens[i + 1].text;
          ++i;
          continue;
        }
        if (tok.text == "PSTORE_GUARDED_BY" && IsPunctAt(tokens, i + 1, "(") &&
            i > 0 && IsIdentAt(tokens, i - 1) && !class_stack.empty()) {
          const std::string& class_name = class_stack.back().second;
          const size_t end = SkipBalancedRun(tokens, i + 1) - 1;
          const std::string key =
              LockKey(tokens, i + 2, end, class_name);
          if (!key.empty()) {
            guarded[class_name + "::" + tokens[i - 1].text] = key;
          }
          i = end;
        }
        continue;
      }
      if (tok.kind != TokenKind::kPunct) continue;
      if (tok.text == ";") pending_class.clear();
      if (tok.text == "{") {
        if (!pending_class.empty()) {
          class_stack.emplace_back(depth, pending_class);
          pending_class.clear();
        }
        ++depth;
      } else if (tok.text == "}") {
        --depth;
        while (!class_stack.empty() && class_stack.back().first >= depth) {
          class_stack.pop_back();
        }
      }
    }
  }
  return guarded;
}

void EraseHeld(std::vector<Held>* held, const std::string& key) {
  for (size_t i = held->size(); i-- > 0;) {
    if ((*held)[i].key == key) {
      held->erase(held->begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

// Simulates one definition body: RAII guards scoped to their enclosing
// block, explicit lock()/unlock(), guarded-member touches, call sites.
BodyFacts SimulateBody(const AnalysisContext& context, size_t function,
                       const SymbolSite& site, const GuardedMembers& guarded) {
  const SymbolGraph& graph = *context.symbols;
  const FunctionSymbol& self = graph.functions()[function];
  const SourceFile& file = context.project.files()[site.file_index];
  const std::vector<Token>& tokens = context.tokens.tokens(file);

  BodyFacts facts;
  facts.function = function;
  std::vector<Held> held;
  // RAII guards released when their block closes: (depth, key).
  std::vector<std::pair<int, std::string>> raii;
  int depth = 0;

  const auto record_acquire = [&](const std::string& key, int line,
                                  bool transient) {
    if (key.empty()) return;
    for (const Held& h : held) {
      if (h.key == key) return;  // recursive/duplicate acquisition
    }
    facts.acquires.push_back({key, file.path(), line, held});
    if (!transient) held.push_back({key, file.path(), line});
  };

  size_t i = site.body_begin;
  while (i < site.body_end && i < tokens.size()) {
    const Token& tok = tokens[i];
    if (tok.kind == TokenKind::kPunct) {
      if (tok.text == "{") {
        ++depth;
        ++i;
        continue;
      }
      if (tok.text == "}") {
        --depth;
        while (!raii.empty() && raii.back().first > depth) {
          EraseHeld(&held, raii.back().second);
          raii.pop_back();
        }
        ++i;
        continue;
      }
      ++i;
      continue;
    }
    if (tok.kind != TokenKind::kIdentifier) {
      ++i;
      continue;
    }
    const std::string& word = tok.text;

    // RAII guard declaration: [std ::] lock_guard [<...>] name (args) —
    // brace-init `name{args}` included.
    if (IsRaiiGuard(word)) {
      size_t j = i + 1;
      if (IsPunctAt(tokens, j, "<")) j = SkipAngleRun(tokens, j);
      if (IsIdentAt(tokens, j) && (IsPunctAt(tokens, j + 1, "(") ||
                                   IsPunctAt(tokens, j + 1, "{"))) {
        const size_t open = j + 1;
        const auto args = SplitArgs(tokens, open);
        const bool deferred =
            RangeMentions(tokens, open, SkipBalancedRun(tokens, open),
                          "defer_lock") ||
            RangeMentions(tokens, open, SkipBalancedRun(tokens, open),
                          "adopt_lock");
        if (!deferred) {
          const size_t count =
              word == "scoped_lock" ? args.size() : std::min<size_t>(
                                                        args.size(), 1);
          // A multi-mutex scoped_lock acquires its arguments
          // simultaneously (with deadlock avoidance), so edges run from
          // the previously held locks to each argument but never
          // between the arguments themselves: every acquire below is
          // recorded against the pre-statement held set.
          const std::vector<Held> held_before = held;
          for (size_t a = 0; a < count; ++a) {
            const std::string key = LockKey(tokens, args[a].first,
                                            args[a].second, self.class_name);
            if (key.empty()) continue;
            bool duplicate = false;
            for (const Held& h : held) duplicate = duplicate || h.key == key;
            if (duplicate) continue;
            facts.acquires.push_back({key, file.path(), tok.line,
                                      held_before});
            held.push_back({key, file.path(), tok.line});
            raii.emplace_back(depth, key);
          }
        }
        i = SkipBalancedRun(tokens, open);
        continue;
      }
      ++i;
      continue;
    }

    // Explicit expr.lock() / expr->lock() and unlock().
    if ((word == "lock" || word == "unlock") && i >= 2 &&
        IsPunctAt(tokens, i + 1, "(") &&
        (IsPunctAt(tokens, i - 1, ".") || IsPunctAt(tokens, i - 1, "->"))) {
      // The receiver: walk back over an ident/./->/:: chain.
      size_t begin = i - 1;
      while (begin > 0) {
        const Token& prev = tokens[begin - 1];
        if (prev.kind == TokenKind::kIdentifier ||
            (prev.kind == TokenKind::kPunct &&
             (prev.text == "." || prev.text == "->" || prev.text == "::"))) {
          --begin;
          continue;
        }
        break;
      }
      const std::string key =
          LockKey(tokens, begin, i - 1, self.class_name);
      if (!key.empty()) {
        if (word == "lock") {
          record_acquire(key, tok.line, /*transient=*/false);
        } else {
          EraseHeld(&held, key);
          for (size_t r = raii.size(); r-- > 0;) {
            if (raii[r].second == key) {
              raii.erase(raii.begin() + static_cast<std::ptrdiff_t>(r));
              break;
            }
          }
        }
      }
      i = SkipBalancedRun(tokens, i + 1);
      continue;
    }

    // Call site: ident followed by "(", excluding the guard forms
    // handled above. Resolved exactly as the SymbolGraph did.
    if (IsPunctAt(tokens, i + 1, "(")) {
      std::vector<std::string> path = {word};
      const bool member_call =
          i > 0 && (IsPunctAt(tokens, i - 1, ".") ||
                    IsPunctAt(tokens, i - 1, "->"));
      if (!member_call) {
        size_t at = i;
        while (at >= 2 && IsPunctAt(tokens, at - 1, "::") &&
               IsIdentAt(tokens, at - 2)) {
          path.insert(path.begin(), tokens[at - 2].text);
          at -= 2;
        }
      }
      const std::vector<size_t> callees = graph.Resolve(path);
      if (!callees.empty() && !held.empty()) {
        facts.calls.push_back({callees, file.path(), tok.line, held});
      }
      ++i;
      continue;
    }

    // Touch of a PSTORE_GUARDED_BY member of this class: the guard
    // mutex is required here, so record a transient ordering edge from
    // everything currently held.
    if (!self.class_name.empty() &&
        !(i > 0 && (IsPunctAt(tokens, i - 1, ".") ||
                    IsPunctAt(tokens, i - 1, "->") ||
                    IsPunctAt(tokens, i - 1, "::"))) &&
        !held.empty()) {
      const auto it = guarded.find(self.class_name + "::" + word);
      if (it != guarded.end()) {
        bool already_held = false;
        for (const Held& h : held) {
          if (h.key == it->second) already_held = true;
        }
        if (!already_held) {
          record_acquire(it->second, tok.line, /*transient=*/true);
        }
      }
    }
    ++i;
  }
  return facts;
}

// How a held lock reached a function's entry: the caller it came from.
struct EntryOrigin {
  size_t caller = 0;
  std::string file;
  int line = 0;
};

// One directed edge in the mutex-order graph, with its witness.
struct OrderEdge {
  std::string from;
  std::string to;
  std::string file;  // acquisition site of `to`
  int line = 0;
  std::string witness;
};

}  // namespace

void LockOrderCheck::Run(const AnalysisContext& context,
                         std::vector<Finding>* findings) const {
  const SymbolGraph& graph = *context.symbols;
  const GuardedMembers guarded = CollectGuardedMembers(context);

  // Phase 1: per-definition simulation, in symbol order.
  std::vector<BodyFacts> bodies;
  for (size_t fn = 0; fn < graph.functions().size(); ++fn) {
    for (const SymbolSite& site : graph.functions()[fn].definitions) {
      BodyFacts facts = SimulateBody(context, fn, site, guarded);
      if (!facts.acquires.empty() || !facts.calls.empty()) {
        bodies.push_back(std::move(facts));
      }
    }
  }

  // Phase 2: propagate held sets along call edges to a fixpoint.
  // entry[fn] is the set of locks some caller holds around a call to
  // fn; origins remember the first (deterministic) carrying call site.
  std::map<size_t, std::set<std::string>> entry;
  std::map<std::pair<size_t, std::string>, EntryOrigin> origins;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const BodyFacts& body : bodies) {
      const std::set<std::string>& inherited = entry[body.function];
      for (const BodyCall& call : body.calls) {
        std::set<std::string> carried = inherited;
        for (const Held& h : call.held) carried.insert(h.key);
        for (const size_t callee : call.callees) {
          if (callee == body.function) continue;
          for (const std::string& key : carried) {
            if (entry[callee].insert(key).second) {
              origins[{callee, key}] = {body.function, call.file, call.line};
              changed = true;
            }
          }
        }
      }
    }
  }

  // Renders the chain of calls that carried `key` into `fn`.
  const auto carry_path = [&](size_t fn, const std::string& key) {
    std::string path;
    std::set<size_t> seen;
    size_t at = fn;
    while (seen.insert(at).second) {
      const auto it = origins.find({at, key});
      if (it == origins.end()) break;
      path = graph.functions()[it->second.caller].qualified_name +
             " -> " + path;
      at = it->second.caller;
    }
    return path;
  };

  // Phase 3: emit order edges. First writer (symbol order) wins per
  // (from, to) pair, which keeps the witness deterministic.
  std::map<std::pair<std::string, std::string>, OrderEdge> edges;
  for (const BodyFacts& body : bodies) {
    const std::string& where = graph.functions()[body.function].qualified_name;
    const std::set<std::string>& inherited = entry[body.function];
    for (const Acquire& acquire : body.acquires) {
      std::map<std::string, std::string> holders;  // key -> how held
      for (const std::string& key : inherited) {
        holders[key] = "held across " + carry_path(body.function, key) +
                       where;
      }
      for (const Held& h : acquire.held_before) {
        holders[h.key] = "acquired in " + where + " at " + h.file + ":" +
                         std::to_string(h.line);
      }
      for (const auto& [from, how] : holders) {
        if (from == acquire.key) continue;
        const std::pair<std::string, std::string> id{from, acquire.key};
        if (edges.count(id) != 0) continue;
        OrderEdge edge;
        edge.from = from;
        edge.to = acquire.key;
        edge.file = acquire.file;
        edge.line = acquire.line;
        edge.witness = "'" + acquire.key + "' acquired in " + where + " at " +
                       acquire.file + ":" + std::to_string(acquire.line) +
                       " while '" + from + "' is " + how;
        edges[id] = std::move(edge);
      }
    }
  }

  // Phase 4: report one finding per cycle in the mutex-order graph.
  // Cycles are found by walking, from each node in sorted order, the
  // lexicographically smallest unexplored path back to the start; each
  // cycle is reported only for its smallest member, so a two-lock ABBA
  // cycle yields exactly one finding.
  std::map<std::string, std::vector<const OrderEdge*>> adjacent;
  for (const auto& [id, edge] : edges) adjacent[id.first].push_back(&edge);

  std::set<std::string> reported_cycles;
  for (const auto& [start, unused] : adjacent) {
    (void)unused;
    // Depth-first search for a path start -> ... -> start over nodes
    // not smaller than start (canonical representative).
    std::vector<const OrderEdge*> stack;
    std::set<std::string> on_path;
    const std::function<bool(const std::string&)> visit =
        [&](const std::string& node) -> bool {
      const auto it = adjacent.find(node);
      if (it == adjacent.end()) return false;
      for (const OrderEdge* edge : it->second) {
        if (edge->to == start) {
          stack.push_back(edge);
          return true;
        }
        if (edge->to < start || on_path.count(edge->to) != 0) continue;
        on_path.insert(edge->to);
        stack.push_back(edge);
        if (visit(edge->to)) return true;
        stack.pop_back();
        on_path.erase(edge->to);
      }
      return false;
    };
    if (!visit(start)) continue;

    std::string shape = start;
    std::string witness;
    for (const OrderEdge* edge : stack) {
      shape += " -> " + edge->to;
      if (!witness.empty()) witness += "; ";
      witness += edge->witness;
    }
    // A cycle of length n would otherwise be found from each of its n
    // members that can reach the others; key it by its edge set.
    std::set<std::string> members{start};
    for (const OrderEdge* edge : stack) members.insert(edge->to);
    std::string cycle_key;
    for (const std::string& m : members) cycle_key += m + "|";
    if (!reported_cycles.insert(cycle_key).second) continue;

    Finding finding;
    finding.file = stack.front()->file;
    finding.line = stack.front()->line;
    finding.rule = name();
    finding.message = "potential deadlock: lock-order cycle " + shape + " (" +
                      witness + ")";
    findings->push_back(std::move(finding));
  }
}

}  // namespace analysis
}  // namespace pstore
