#include "analysis/source_file.h"

#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/status.h"

namespace pstore {
namespace analysis {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsHorizontalSpace(char c) { return c == ' ' || c == '\t' || c == '\r'; }

// True when the '"' at raw[i] opens a raw string literal: it is
// preceded by exactly one of the encoding prefixes ending in R.
bool IsRawStringOpener(const std::string& raw, size_t i) {
  static const char* kPrefixes[] = {"u8R", "uR", "UR", "LR", "R"};
  for (const char* prefix : kPrefixes) {
    const size_t len = std::strlen(prefix);
    if (i >= len && raw.compare(i - len, len, prefix) == 0 &&
        (i == len || !IsIdentChar(raw[i - len - 1]))) {
      return true;
    }
  }
  return false;
}

struct CommentRecord {
  int line = 0;            // line the comment starts on
  bool code_before = false;  // some code precedes it on that line
  std::string text;
};

struct CleanResult {
  std::string clean;
  std::vector<CommentRecord> comments;
  // Ordinary (non-raw) string literal values with the line they end on;
  // used to recover #include targets after blanking.
  std::vector<std::pair<int, std::string>> strings;
};

// Single pass over the raw text: blanks comments, string literals
// (ordinary and raw), and character literals to spaces while keeping
// newlines, so byte positions and line numbers are preserved.
CleanResult StripCommentsAndStrings(const std::string& raw) {
  const size_t n = raw.size();
  CleanResult result;
  result.clean.assign(n, ' ');
  for (size_t k = 0; k < n; ++k) {
    if (raw[k] == '\n') result.clean[k] = '\n';
  }
  int line = 1;
  bool code_on_line = false;
  size_t i = 0;
  // Advances the line counter over raw[from, to).
  auto count_lines = [&](size_t from, size_t to) {
    for (size_t k = from; k < to && k < n; ++k) {
      if (raw[k] == '\n') {
        ++line;
        code_on_line = false;
      }
    }
  };
  while (i < n) {
    const char c = raw[i];
    if (c == '\n') {
      ++line;
      code_on_line = false;
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && raw[i + 1] == '/') {
      size_t j = raw.find('\n', i);
      if (j == std::string::npos) j = n;
      result.comments.push_back({line, code_on_line, raw.substr(i + 2, j - i - 2)});
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && raw[i + 1] == '*') {
      size_t j = raw.find("*/", i + 2);
      const size_t end = (j == std::string::npos) ? n : j + 2;
      const size_t text_end = (j == std::string::npos) ? n : j;
      result.comments.push_back(
          {line, code_on_line, raw.substr(i + 2, text_end - i - 2)});
      count_lines(i, end);
      i = end;
      continue;
    }
    if (c == '"') {
      if (IsRawStringOpener(raw, i)) {
        // Blank the encoding prefix (R, u8R, ...) already copied out.
        for (size_t b = i; b > 0 && IsIdentChar(raw[b - 1]); --b) {
          result.clean[b - 1] = ' ';
        }
        const size_t delim_start = i + 1;
        const size_t paren = raw.find('(', delim_start);
        size_t end = n;
        if (paren != std::string::npos) {
          const std::string closer =
              ")" + raw.substr(delim_start, paren - delim_start) + "\"";
          const size_t close = raw.find(closer, paren + 1);
          if (close != std::string::npos) end = close + closer.size();
        }
        count_lines(i, end);
        i = end;
        code_on_line = true;
        continue;
      }
      size_t j = i + 1;
      std::string value;
      while (j < n && raw[j] != '"' && raw[j] != '\n') {
        if (raw[j] == '\\' && j + 1 < n) {
          value.append(raw, j, 2);
          j += 2;
        } else {
          value.push_back(raw[j]);
          ++j;
        }
      }
      result.strings.emplace_back(line, std::move(value));
      i = (j < n && raw[j] == '"') ? j + 1 : j;
      code_on_line = true;
      continue;
    }
    if (c == '\'') {
      // A quote between identifier characters is a digit separator
      // (1'000'000), not a character literal.
      if (i > 0 && IsIdentChar(raw[i - 1]) && i + 1 < n &&
          IsIdentChar(raw[i + 1])) {
        ++i;
        continue;
      }
      size_t j = i + 1;
      while (j < n && raw[j] != '\'' && raw[j] != '\n') {
        j += (raw[j] == '\\' && j + 1 < n) ? 2 : 1;
      }
      i = (j < n && raw[j] == '\'') ? j + 1 : j;
      code_on_line = true;
      continue;
    }
    result.clean[i] = c;
    if (!IsHorizontalSpace(c)) code_on_line = true;
    ++i;
  }
  return result;
}

// Reads the identifier starting at text[i], or "" if none.
std::string ReadIdent(const std::string& text, size_t i) {
  size_t j = i;
  while (j < text.size() && IsIdentChar(text[j])) ++j;
  return text.substr(i, j - i);
}

// Parses `// pstore-analyze: allow(rule1, rule2)` out of a comment.
std::vector<std::string> ParseAllowedRules(const std::string& comment) {
  std::vector<std::string> rules;
  const size_t marker = comment.find("pstore-analyze:");
  if (marker == std::string::npos) return rules;
  const size_t open = comment.find("allow(", marker);
  if (open == std::string::npos) return rules;
  const size_t close = comment.find(')', open);
  if (close == std::string::npos) return rules;
  std::string list = comment.substr(open + 6, close - open - 6);
  std::stringstream stream(list);
  std::string rule;
  while (std::getline(stream, rule, ',')) {
    size_t begin = rule.find_first_not_of(" \t");
    size_t end = rule.find_last_not_of(" \t");
    if (begin == std::string::npos) continue;
    rules.push_back(rule.substr(begin, end - begin + 1));
  }
  return rules;
}

}  // namespace

bool SourceFile::is_header() const {
  return path_.size() >= 2 && path_.compare(path_.size() - 2, 2, ".h") == 0;
}

bool SourceFile::IsSuppressed(const std::string& rule, int line) const {
  auto it = suppressions_.find(line);
  if (it == suppressions_.end()) return false;
  return it->second.count(rule) != 0 || it->second.count("*") != 0;
}

StatusOr<SourceFile> SourceFile::Load(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    return Status::NotFound("cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return FromContents(path, buffer.str());
}

SourceFile SourceFile::FromContents(std::string path, const std::string& raw) {
  SourceFile file;
  file.path_ = std::move(path);
  // Normalize separators, then derive dir/include key from the last
  // "src/" path component (works for absolute and fixture paths).
  std::string normalized = file.path_;
  for (char& c : normalized) {
    if (c == '\\') c = '/';
  }
  size_t src = std::string::npos;
  for (size_t at = normalized.find("src/"); at != std::string::npos;
       at = normalized.find("src/", at + 1)) {
    if (at == 0 || normalized[at - 1] == '/') src = at;
  }
  if (src != std::string::npos) {
    file.include_key_ = normalized.substr(src + 4);
    const size_t slash = file.include_key_.find('/');
    if (slash != std::string::npos) {
      file.dir_ = file.include_key_.substr(0, slash);
    }
  }

  CleanResult stripped = StripCommentsAndStrings(raw);
  file.clean_ = std::move(stripped.clean);

  // Preprocessor pass over the comment/string-blanked text: record
  // #include targets and #define names, then blank the directive lines
  // (with backslash continuations) so they never reach the tokenizer.
  std::string& clean = file.clean_;
  const size_t n = clean.size();
  size_t i = 0;
  int line = 1;
  while (i < n) {
    size_t eol = clean.find('\n', i);
    if (eol == std::string::npos) eol = n;
    size_t first = i;
    while (first < eol && IsHorizontalSpace(clean[first])) ++first;
    if (first >= eol || clean[first] != '#') {
      i = eol + 1;
      ++line;
      continue;
    }
    // Extend over backslash continuations to the logical end.
    const int directive_line = line;
    int spanned = 0;
    size_t logical_end = eol;
    while (logical_end < n) {
      size_t last = logical_end;
      while (last > first && IsHorizontalSpace(clean[last - 1])) --last;
      if (last == first || clean[last - 1] != '\\') break;
      ++spanned;
      size_t next_eol = clean.find('\n', logical_end + 1);
      logical_end = (next_eol == std::string::npos) ? n : next_eol;
    }
    // Identify the directive and its operand.
    size_t word_at = first + 1;
    while (word_at < logical_end && IsHorizontalSpace(clean[word_at])) ++word_at;
    const std::string word = ReadIdent(clean, word_at);
    if (word == "include") {
      IncludeDirective inc;
      inc.line = directive_line;
      const size_t open = clean.find('<', word_at);
      if (open != std::string::npos && open < logical_end) {
        const size_t close = clean.find('>', open);
        if (close != std::string::npos && close < logical_end) {
          inc.angled = true;
          inc.target = clean.substr(open + 1, close - open - 1);
          file.includes_.push_back(inc);
        }
      } else {
        // Quoted target: the literal was blanked, recover it from the
        // recorded string table by line number.
        for (const auto& [string_line, value] : stripped.strings) {
          if (string_line >= directive_line &&
              string_line <= directive_line + spanned) {
            inc.target = value;
            file.includes_.push_back(inc);
            break;
          }
        }
      }
    } else if (word == "define") {
      size_t name_at = word_at + word.size();
      while (name_at < logical_end && IsHorizontalSpace(clean[name_at])) {
        ++name_at;
      }
      const std::string name = ReadIdent(clean, name_at);
      if (!name.empty()) file.macros_.push_back({name, directive_line});
    }
    // Record the directive's identifiers (macro bodies reference
    // functions the tokenizer will never see), then blank it.
    for (size_t k = first; k < logical_end;) {
      if (IsIdentChar(clean[k]) &&
          std::isdigit(static_cast<unsigned char>(clean[k])) == 0) {
        const std::string ident = ReadIdent(clean, k);
        file.preprocessor_idents_.insert(ident);
        k += ident.size();
      } else {
        ++k;
      }
    }
    for (size_t k = i; k < logical_end; ++k) {
      if (clean[k] != '\n') clean[k] = ' ';
    }
    line += spanned + 1;
    i = logical_end + 1;
  }

  // Suppressions and IWYU export pragmas come from the comments.
  for (const CommentRecord& comment : stripped.comments) {
    for (const std::string& rule : ParseAllowedRules(comment.text)) {
      const int covered = comment.code_before ? comment.line : comment.line + 1;
      file.suppressions_[covered].insert(rule);
    }
    if (comment.text.find("IWYU pragma: export") != std::string::npos) {
      for (IncludeDirective& inc : file.includes_) {
        if (inc.line == comment.line) inc.iwyu_export = true;
      }
    }
  }
  return file;
}

}  // namespace analysis
}  // namespace pstore
