#ifndef PSTORE_FLEET_PLACEMENT_H_
#define PSTORE_FLEET_PLACEMENT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/strong_id.h"
#include "planner/move_model_table.h"

namespace pstore {
namespace fleet {

// Knobs of the fleet placement planner.
struct PlacementOptions {
  // Q per pooled machine: the capacity the packer fills up to. The
  // serving limit (Q-hat) lives in FleetOptions; like the single-tenant
  // planner, the packer provisions against Q and violations are
  // measured against Q-hat.
  double machine_capacity = 285.0;
  // Tenant-vs-tenant interference: each *additional distinct tenant*
  // co-located on a machine costs this fraction of the machine's
  // capacity (cache/IO contention grows with the number of competing
  // workloads). Co-locating more partitions of the same tenant is free.
  double interference_per_tenant = 0.02;
  // Interference never degrades a machine below this fraction.
  double min_capacity_fraction = 0.5;
  // Hard pool ceiling; Pack fails with kOutOfRange beyond it.
  int max_machines = 4096;
  // Repack economics: a from-scratch repack is adopted only when the
  // machines it frees, held for this many planning slots, outweigh the
  // MoveModelTable cost of resizing the pool plus the churn of the
  // extra partition moves it causes (see PlacementPlanner).
  int repack_amortize_slots = 288;
  // Machine-slots of migration work per moved tenant partition (sender
  // and receiver attention while the partition's data is in flight).
  // Prices the churn of a consolidating repack, so micro-shuffles that
  // save one machine but move half the fleet are rejected.
  double partition_move_cost = 5.0;
};

// Effective capacity of one machine hosting `distinct_tenants` tenants:
// machine_capacity * max(min_capacity_fraction,
//                        1 - interference_per_tenant*(distinct_tenants-1)).
// Monotonically non-increasing in the tenant count.
double EffectiveMachineCapacity(const PlacementOptions& options,
                                int distinct_tenants);

// As above with a caller-supplied serving capacity (Q-hat) instead of
// the packing capacity Q.
double EffectiveServeCapacity(const PlacementOptions& options,
                              double serve_capacity, int distinct_tenants);

// An assignment of every tenant partition to a pool machine. Tenant t's
// partitions occupy flat indices [partition_offset[t],
// partition_offset[t+1]).
struct Placement {
  std::vector<size_t> partition_offset;  // by tenant, size tenants+1
  std::vector<MachineId> machine;        // by flat partition index
  // By machine id: packed (forecast) load, partition count, and the
  // number of distinct tenants (what interference is charged on).
  std::vector<double> machine_load;
  std::vector<int64_t> machine_partitions;
  std::vector<int> machine_tenant_counts;
  // Machines with at least one partition (ids may have gaps after
  // incremental eviction; empty machines are released, not paid for).
  int machines_used = 0;
  // Partitions whose machine differs from the previous placement.
  int64_t moved_partitions = 0;
  bool repacked = false;

  size_t partitions() const { return machine.size(); }
  size_t tenants() const {
    return partition_offset.empty() ? 0 : partition_offset.size() - 1;
  }
};

// Deterministic bin-packing placement planner. Packing is best-fit
// decreasing over per-partition demands with two tie-break rules,
// both deterministic:
//   1. items are ordered by (demand desc, flat partition index asc);
//   2. the fitting machine with the least remaining capacity wins,
//      lowest machine id on ties.
// Capacity is interference-aware: a machine fits an item only if its
// load plus the item stays within EffectiveMachineCapacity for the
// tenant count after the move.
//
// Incremental packs are sticky: every partition on a machine that
// still fits stays put (a kept partition costs no move). Only machines
// that no longer fit evict, largest-demand partition first, and just
// the evicted items go back through best-fit (an evicted item gets no
// preference for its old machine — it was evicted because that machine
// is full). A from-scratch repack (which consolidates the pool) is
// adopted only when the machines saved, amortized over
// repack_amortize_slots, exceed the MoveModelTable resize cost — the
// same T/C economics the per-tenant planner uses, applied to the pool.
class PlacementPlanner {
 public:
  // `move_table` is borrowed, may be null (repacks then need to save
  // only one machine), and must outlive the planner.
  PlacementPlanner(const PlacementOptions& options,
                   const MoveModelTable* move_table);

  // Packs tenant partitions given per-tenant demand (demand splits
  // evenly across a tenant's partitions). `tenant_partitions[t]` must
  // be >= 1. `previous` must be null or shaped identically.
  StatusOr<Placement> Pack(const std::vector<double>& tenant_demand,
                           const std::vector<int>& tenant_partitions,
                           const Placement* previous) const;

  const PlacementOptions& options() const { return options_; }

 private:
  StatusOr<Placement> PackFresh(const std::vector<double>& item_demand,
                                const std::vector<int>& item_tenant,
                                const std::vector<size_t>& offsets) const;
  StatusOr<Placement> PackIncremental(const std::vector<double>& item_demand,
                                      const std::vector<int>& item_tenant,
                                      const std::vector<size_t>& offsets,
                                      const Placement& previous) const;

  PlacementOptions options_;
  const MoveModelTable* move_table_;
};

}  // namespace fleet
}  // namespace pstore

#endif  // PSTORE_FLEET_PLACEMENT_H_
