#include "fleet/fleet_simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <utility>

#include "common/sim_time.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "common/thread_pool.h"
#include "common/time_series.h"
#include "fleet/fleet_controller.h"
#include "fleet/placement.h"
#include "fleet/tenant.h"
#include "fleet/tenant_forecaster.h"
#include "obs/trace_event.h"
#include "obs/tracer.h"
#include "planner/move_model.h"
#include "planner/move_model_table.h"
#include "sim/run_spec.h"

namespace pstore {
namespace fleet {
namespace {

void AppendDouble(std::string* out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

// Machine-slot cost of resizing a dedicated cluster or the shared pool
// from `before` to `after` machines: the precomputed grid when it
// covers the sizes, the exact move-model functions beyond it.
double ResizeCost(const MoveModelTable& table, const PlannerParams& params,
                  int before, int after) {
  if (before == after || before <= 0) return 0.0;
  const NodeCount b(before);
  const NodeCount a(after);
  if (table.Covers(b, a)) return table.MoveCost(b, a);
  return MoveCost(b, a, params);
}

// Per-tenant spike floor shared by both modes: the observed demand when
// it blew past the factor over what was forecast for it.
bool IsSpike(const FleetControllerOptions& options, double observed,
             double forecast) {
  return observed >= options.spike_min_demand &&
         observed > options.spike_replan_factor * forecast;
}

}  // namespace

const char* FleetModeName(FleetMode mode) {
  switch (mode) {
    case FleetMode::kFleet:
      return "fleet";
    case FleetMode::kDedicated:
      return "dedicated";
  }
  return "unknown";
}

StatusOr<FleetMode> ParseFleetMode(const std::string& name) {
  if (name == "fleet") return FleetMode::kFleet;
  if (name == "dedicated") return FleetMode::kDedicated;
  return Status::InvalidArgument("unknown fleet mode: " + name +
                                 " (want fleet|dedicated)");
}

StatusOr<std::vector<double>> ResampleToGrid(const TimeSeries& source,
                                             double fine_slot_seconds,
                                             size_t fine_slots) {
  if (source.empty()) {
    return Status::InvalidArgument("cannot resample an empty trace");
  }
  if (!(fine_slot_seconds > 0.0) || !(source.slot_seconds() > 0.0)) {
    return Status::InvalidArgument("slot durations must be positive");
  }
  std::vector<double> grid(fine_slots);
  for (size_t f = 0; f < fine_slots; ++f) {
    const double t = static_cast<double>(f) * fine_slot_seconds;
    const size_t src = static_cast<size_t>(t / source.slot_seconds());
    if (src >= source.size()) {
      return Status::InvalidArgument(
          "trace too short: covers " +
          std::to_string(static_cast<double>(source.size()) *
                         source.slot_seconds()) +
          "s, grid needs " +
          std::to_string(static_cast<double>(fine_slots) *
                         fine_slot_seconds) +
          "s");
    }
    grid[f] = source[src];
  }
  return grid;
}

FleetSimulator::FleetSimulator(const FleetOptions& options,
                               std::vector<TenantSpec> tenants)
    : options_(options), tenants_(std::move(tenants)) {}

Status FleetSimulator::BuildDemandGrid(ThreadPool* pool) {
  if (grid_built_) return Status::OK();
  if (tenants_.empty()) {
    return Status::InvalidArgument("fleet has no tenants");
  }
  if (options_.plan_slot_factor < 1) {
    return Status::InvalidArgument("plan_slot_factor must be >= 1");
  }

  // Materialize every tenant's trace (each a pure function of its spec),
  // fanned out by tenant index.
  std::vector<StatusOr<TimeSeries>> traces(
      tenants_.size(), StatusOr<TimeSeries>(TimeSeries()));
  const auto build_one = [this, &traces](size_t t) {
    traces[t] = BuildWorkloadTrace(tenants_[t].workload);
    return traces[t].status();
  };
  if (pool != nullptr && tenants_.size() > 1) {
    RETURN_IF_ERROR(pool->ParallelForStatus(tenants_.size(), build_one));
  } else {
    for (size_t t = 0; t < tenants_.size(); ++t) {
      RETURN_IF_ERROR(build_one(t));
    }
  }

  // The common grid covers the shortest tenant horizon: mixed
  // granularities (per-minute B2W, hourly Wikipedia) meet on fine slots.
  double horizon_seconds = 0.0;
  for (size_t t = 0; t < tenants_.size(); ++t) {
    const TimeSeries& trace = *traces[t];
    const double seconds =
        static_cast<double>(trace.size()) * trace.slot_seconds();
    if (t == 0 || seconds < horizon_seconds) horizon_seconds = seconds;
  }
  grid_fine_slots_ =
      static_cast<size_t>(horizon_seconds / options_.fine_slot_seconds);
  const size_t fine_per_cycle =
      static_cast<size_t>(options_.plan_slot_factor);
  if (grid_fine_slots_ < 2 * fine_per_cycle) {
    return Status::InvalidArgument(
        "fleet horizon shorter than two provisioning cycles");
  }

  fine_demand_.assign(tenants_.size(), {});
  const auto resample_one = [this, &traces](size_t t) {
    StatusOr<std::vector<double>> grid = ResampleToGrid(
        *traces[t], options_.fine_slot_seconds, grid_fine_slots_);
    if (!grid.ok()) return grid.status();
    fine_demand_[t] = std::move(*grid);
    return Status::OK();
  };
  if (pool != nullptr && tenants_.size() > 1) {
    RETURN_IF_ERROR(pool->ParallelForStatus(tenants_.size(), resample_one));
  } else {
    for (size_t t = 0; t < tenants_.size(); ++t) {
      RETURN_IF_ERROR(resample_one(t));
    }
  }
  grid_built_ = true;
  return Status::OK();
}

StatusOr<FleetResult> FleetSimulator::Simulate(FleetMode mode, ThreadPool* pool) {
  RETURN_IF_ERROR(BuildDemandGrid(pool));
  StatusOr<FleetResult> result = mode == FleetMode::kFleet
                                     ? RunFleet(pool)
                                     : RunDedicated(pool);
  if (!result.ok()) return result.status();

  // Shared per-tenant fields and rollups.
  FleetResult& r = *result;
  r.mode = mode;
  r.tenants = static_cast<int>(tenants_.size());
  // The eval window is [warmup, last whole cycle) — the grid may have a
  // trailing partial cycle that no mode evaluates.
  const size_t eval_slots = r.eval_fine_slots;
  const size_t kk = static_cast<size_t>(options_.plan_slot_factor);
  const size_t eval_end = (grid_fine_slots_ / kk) * kk;
  const size_t eval_begin = eval_end - eval_slots;
  for (size_t t = 0; t < tenants_.size(); ++t) {
    TenantResult& tr = r.per_tenant[t];
    tr.tenant = tenants_[t].id.value();
    tr.name = tenants_[t].name;
    tr.family = WorkloadKindName(tenants_[t].workload.kind);
    tr.partitions = tenants_[t].partitions;
    tr.sla_target = tenants_[t].sla_target;
    double peak = 0.0;
    double sum = 0.0;
    for (size_t f = eval_begin; f < eval_end; ++f) {
      peak = std::max(peak, fine_demand_[t][f]);
      sum += fine_demand_[t][f];
    }
    tr.peak_demand = peak;
    tr.mean_demand =
        eval_slots > 0 ? sum / static_cast<double>(eval_slots) : 0.0;
    tr.violation_fraction =
        eval_slots > 0 ? static_cast<double>(tr.violation_slots) /
                             static_cast<double>(eval_slots)
                       : 0.0;
    tr.sla_met = tr.violation_fraction <= tr.sla_target;
    r.tenant_violation_slots += tr.violation_slots;
    if (!tr.sla_met) ++r.tenants_violating_sla;
  }
  const double denom = static_cast<double>(eval_slots) *
                       static_cast<double>(tenants_.size());
  r.tenant_violation_fraction =
      denom > 0.0 ? static_cast<double>(r.tenant_violation_slots) / denom
                  : 0.0;
  return result;
}

StatusOr<FleetResult> FleetSimulator::RunFleet(ThreadPool* pool) {
  const size_t kk = static_cast<size_t>(options_.plan_slot_factor);
  const size_t cycles = grid_fine_slots_ / kk;
  size_t warmup_cycles = std::min(options_.eval_begin / kk, cycles - 1);

  // Coarse per-cycle demand: the mean of the cycle's fine slots.
  std::vector<std::vector<double>> coarse(
      tenants_.size(), std::vector<double>(cycles, 0.0));
  for (size_t t = 0; t < tenants_.size(); ++t) {
    for (size_t c = 0; c < cycles; ++c) {
      double sum = 0.0;
      for (size_t f = c * kk; f < (c + 1) * kk; ++f) {
        sum += fine_demand_[t][f];
      }
      coarse[t][c] = sum / static_cast<double>(kk);
    }
  }

  MoveModelTable table(options_.planner, NodeCount(options_.table_max_nodes));
  std::vector<int> partitions(tenants_.size());
  for (size_t t = 0; t < tenants_.size(); ++t) {
    partitions[t] = tenants_[t].partitions;
  }
  FleetController controller(options_.controller, partitions, &table,
                             tracer_);

  std::vector<std::vector<double>> warmup(tenants_.size());
  for (size_t t = 0; t < tenants_.size(); ++t) {
    warmup[t].assign(coarse[t].begin(),
                     coarse[t].begin() + static_cast<std::ptrdiff_t>(
                                             warmup_cycles));
  }
  RETURN_IF_ERROR(controller.WarmUp(warmup));

  FleetResult result;
  result.eval_fine_slots = (cycles - warmup_cycles) * kk;
  std::vector<TenantResult> per_tenant(tenants_.size());
  // Deduplicates a tenant's violations within a fine slot when its
  // partitions span several overloaded machines.
  std::vector<int64_t> last_violation_slot(tenants_.size(), -1);

  std::vector<MachineId> prev_machines;
  for (size_t c = warmup_cycles; c < cycles; ++c) {
    const SimTime now = FromSeconds(static_cast<double>(c * kk) *
                                    options_.fine_slot_seconds);
    std::vector<double> observed;
    if (c > warmup_cycles) {
      observed.resize(tenants_.size());
      for (size_t t = 0; t < tenants_.size(); ++t) {
        observed[t] = coarse[t][c - 1];
      }
    }
    const int machines_before =
        c > warmup_cycles ? controller.placement().machines_used : 0;
    StatusOr<FleetCycleDecision> decision =
        controller.Tick(now, observed, pool);
    if (!decision.ok()) return decision.status();
    const Placement& placement = controller.placement();

    result.machine_slots +=
        static_cast<double>(decision->machines) * static_cast<double>(kk);
    // Moving costs: pool resize (Eq. 4 economics) plus the migration
    // work of every partition that changed machines this cycle.
    result.move_machine_slots += ResizeCost(
        table, options_.planner, machines_before, decision->machines);
    result.move_machine_slots +=
        options_.controller.placement.partition_move_cost *
        static_cast<double>(decision->moved_partitions);
    result.peak_machines = std::max(result.peak_machines,
                                    decision->machines);
    result.partition_moves += decision->moved_partitions;

    // Per-tenant move attribution against the previous cycle.
    if (!prev_machines.empty()) {
      for (size_t t = 0; t < tenants_.size(); ++t) {
        for (size_t p = placement.partition_offset[t];
             p < placement.partition_offset[t + 1]; ++p) {
          if (placement.machine[p] != prev_machines[p]) {
            ++per_tenant[t].moves;
          }
        }
      }
    }
    prev_machines = placement.machine;

    // Violation accounting: a machine whose actual load exceeds its
    // interference-degraded Q-hat puts every resident tenant in
    // violation for that fine slot.
    const size_t machines = placement.machine_load.size();
    std::vector<double> machine_actual(machines, 0.0);
    int64_t cycle_violations = 0;
    for (size_t f = c * kk; f < (c + 1) * kk; ++f) {
      std::fill(machine_actual.begin(), machine_actual.end(), 0.0);
      for (size_t t = 0; t < tenants_.size(); ++t) {
        const double share =
            fine_demand_[t][f] /
            static_cast<double>(tenants_[t].partitions);
        for (size_t p = placement.partition_offset[t];
             p < placement.partition_offset[t + 1]; ++p) {
          machine_actual[static_cast<size_t>(
              placement.machine[p].value())] += share;
        }
      }
      for (size_t m = 0; m < machines; ++m) {
        if (placement.machine_partitions[m] == 0) continue;
        const double cap = EffectiveServeCapacity(
            options_.controller.placement, options_.machine_serve_capacity,
            placement.machine_tenant_counts[m]);
        if (machine_actual[m] <= cap) continue;
        // Overloaded: charge every tenant resident on m, once per slot.
        for (size_t t = 0; t < tenants_.size(); ++t) {
          if (last_violation_slot[t] == static_cast<int64_t>(f)) continue;
          bool resident = false;
          for (size_t p = placement.partition_offset[t];
               p < placement.partition_offset[t + 1] && !resident; ++p) {
            resident = static_cast<size_t>(
                           placement.machine[p].value()) == m;
          }
          if (!resident) continue;
          last_violation_slot[t] = static_cast<int64_t>(f);
          ++per_tenant[t].violation_slots;
          ++cycle_violations;
        }
      }
    }

    PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kFleet, now,
                 "fleet.cycle",
                 .With("cycle", static_cast<int64_t>(c - warmup_cycles))
                     .With("demand", decision->total_forecast)
                     .With("machines", decision->machines)
                     .With("moved_partitions", decision->moved_partitions)
                     .With("violation_slot_tenants", cycle_violations));
  }

  result.cycles = controller.cycles();
  result.repacks = controller.repacks();
  result.spike_replans = controller.spike_replans();
  result.per_tenant = std::move(per_tenant);
  return result;
}

StatusOr<FleetResult> FleetSimulator::RunDedicated(ThreadPool* pool) {
  const size_t kk = static_cast<size_t>(options_.plan_slot_factor);
  const size_t cycles = grid_fine_slots_ / kk;
  const size_t warmup_cycles =
      std::min(options_.eval_begin / kk, cycles - 1);
  const double q = options_.controller.placement.machine_capacity;
  if (!(q > 0.0)) {
    return Status::InvalidArgument("machine_capacity must be positive");
  }

  MoveModelTable table(options_.planner, NodeCount(options_.table_max_nodes));

  // Every tenant provisions alone; each index writes only its own rows,
  // so the fan-out is deterministic for any thread count.
  std::vector<TenantResult> per_tenant(tenants_.size());
  std::vector<double> tenant_machine_slots(tenants_.size(), 0.0);
  std::vector<double> tenant_move_slots(tenants_.size(), 0.0);
  std::vector<int64_t> tenant_spikes(tenants_.size(), 0);
  std::vector<std::vector<int>> nodes_by_cycle(
      tenants_.size(), std::vector<int>(cycles - warmup_cycles, 0));

  const auto run_one = [&, this](size_t t) {
    TenantForecaster forecaster(options_.controller.forecast_period_slots,
                                options_.controller.forecast_recent_window);
    for (size_t c = 0; c < warmup_cycles; ++c) {
      double sum = 0.0;
      for (size_t f = c * kk; f < (c + 1) * kk; ++f) {
        sum += fine_demand_[t][f];
      }
      forecaster.Observe(sum / static_cast<double>(kk));
    }

    int nodes = 0;
    int low_cycles = 0;
    double last_forecast = 0.0;
    for (size_t c = warmup_cycles; c < cycles; ++c) {
      double spike_floor = 0.0;
      if (c > warmup_cycles) {
        double sum = 0.0;
        for (size_t f = (c - 1) * kk; f < c * kk; ++f) {
          sum += fine_demand_[t][f];
        }
        const double observed = sum / static_cast<double>(kk);
        if (IsSpike(options_.controller, observed, last_forecast)) {
          spike_floor = observed;
          ++tenant_spikes[t];
        }
        forecaster.Observe(observed);
      }
      last_forecast = forecaster.Forecast();
      const double demand = options_.controller.inflation *
                            std::max(last_forecast, spike_floor);
      const int target = std::max(
          1, static_cast<int>(std::ceil(demand / q)));

      if (nodes == 0) {
        nodes = target;  // initial allocation, like the pool's first pack
      } else if (target > nodes) {
        tenant_move_slots[t] +=
            ResizeCost(table, options_.planner, nodes, target);
        nodes = target;
        ++per_tenant[t].moves;
        low_cycles = 0;
      } else if (target < nodes) {
        // Scale in only after the lower need persisted (hysteresis, as
        // in the per-tenant simulator).
        if (++low_cycles >= options_.scale_in_confirm_cycles) {
          tenant_move_slots[t] +=
              ResizeCost(table, options_.planner, nodes, target);
          nodes = target;
          ++per_tenant[t].moves;
          low_cycles = 0;
        }
      } else {
        low_cycles = 0;
      }

      nodes_by_cycle[t][c - warmup_cycles] = nodes;
      tenant_machine_slots[t] +=
          static_cast<double>(nodes) * static_cast<double>(kk);
      const double capacity = static_cast<double>(nodes) *
                              options_.machine_serve_capacity;
      for (size_t f = c * kk; f < (c + 1) * kk; ++f) {
        if (fine_demand_[t][f] > capacity) {
          ++per_tenant[t].violation_slots;
        }
      }
    }
  };
  if (pool != nullptr && tenants_.size() > 1) {
    pool->ParallelFor(tenants_.size(), run_one);
  } else {
    for (size_t t = 0; t < tenants_.size(); ++t) run_one(t);
  }

  FleetResult result;
  result.eval_fine_slots = (cycles - warmup_cycles) * kk;
  result.cycles = static_cast<int64_t>(cycles - warmup_cycles);
  for (size_t t = 0; t < tenants_.size(); ++t) {
    result.machine_slots += tenant_machine_slots[t];
    result.move_machine_slots += tenant_move_slots[t];
    result.spike_replans += tenant_spikes[t];
    result.partition_moves += per_tenant[t].moves;
  }
  for (size_t c = 0; c < cycles - warmup_cycles; ++c) {
    int total = 0;
    for (size_t t = 0; t < tenants_.size(); ++t) {
      total += nodes_by_cycle[t][c];
    }
    result.peak_machines = std::max(result.peak_machines, total);
    const SimTime now =
        FromSeconds(static_cast<double>((warmup_cycles + c) * kk) *
                    options_.fine_slot_seconds);
    PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kFleet, now,
                 "fleet.cycle",
                 .With("cycle", static_cast<int64_t>(c))
                     .With("machines", total)
                     .With("mode", "dedicated"));
  }
  result.per_tenant = std::move(per_tenant);
  return result;
}

std::string FleetCsvRows(const FleetResult& result) {
  std::string out =
      "mode,tenants,eval_fine_slots,machine_slots,move_machine_slots,"
      "peak_machines,cycles,repacks,spike_replans,partition_moves,"
      "tenant_violation_slots,tenant_violation_fraction,"
      "tenants_violating_sla\n";
  out += FleetModeName(result.mode);
  out += ',' + std::to_string(result.tenants);
  out += ',' + std::to_string(result.eval_fine_slots);
  out += ',';
  AppendDouble(&out, result.machine_slots);
  out += ',';
  AppendDouble(&out, result.move_machine_slots);
  out += ',' + std::to_string(result.peak_machines);
  out += ',' + std::to_string(result.cycles);
  out += ',' + std::to_string(result.repacks);
  out += ',' + std::to_string(result.spike_replans);
  out += ',' + std::to_string(result.partition_moves);
  out += ',' + std::to_string(result.tenant_violation_slots);
  out += ',';
  AppendDouble(&out, result.tenant_violation_fraction);
  out += ',' + std::to_string(result.tenants_violating_sla);
  out += "\n\n";

  out +=
      "tenant,name,family,partitions,sla_target,peak_demand,mean_demand,"
      "violation_slots,violation_fraction,sla_met,moves\n";
  for (const TenantResult& tr : result.per_tenant) {
    out += std::to_string(tr.tenant);
    out += ',' + tr.name;
    out += ',' + tr.family;
    out += ',' + std::to_string(tr.partitions);
    out += ',';
    AppendDouble(&out, tr.sla_target);
    out += ',';
    AppendDouble(&out, tr.peak_demand);
    out += ',';
    AppendDouble(&out, tr.mean_demand);
    out += ',' + std::to_string(tr.violation_slots);
    out += ',';
    AppendDouble(&out, tr.violation_fraction);
    out += ',';
    out += tr.sla_met ? '1' : '0';
    out += ',' + std::to_string(tr.moves);
    out += '\n';
  }
  return out;
}

}  // namespace fleet
}  // namespace pstore
