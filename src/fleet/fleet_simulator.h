#ifndef PSTORE_FLEET_FLEET_SIMULATOR_H_
#define PSTORE_FLEET_FLEET_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "common/time_series.h"
#include "fleet/fleet_controller.h"
#include "fleet/tenant.h"
#include "obs/tracer.h"
#include "planner/move_model.h"

namespace pstore {
namespace fleet {

// The two provisioning disciplines the fleet simulator compares.
enum class FleetMode {
  // Shared pool: one FleetController packs every tenant's partitions
  // onto common machines each cycle.
  kFleet,
  // Dedicated: every tenant provisions its own machines from its own
  // forecast (the per-tenant stack, without sharing) — the baseline the
  // consolidation claim is measured against.
  kDedicated,
};

const char* FleetModeName(FleetMode mode);
StatusOr<FleetMode> ParseFleetMode(const std::string& name);

struct FleetOptions {
  FleetControllerOptions controller;
  // Fine slots per provisioning cycle (the fleet plans coarser than the
  // trace, like the per-tenant simulator).
  int plan_slot_factor = 5;
  // Duration of one fine slot; tenant traces of any granularity are
  // resampled (sample-and-hold) onto this common grid.
  double fine_slot_seconds = 60.0;
  // Q-hat per machine: what a machine can actually serve before a slot
  // counts as violating. Packing provisions against
  // controller.placement.machine_capacity (Q).
  double machine_serve_capacity = 350.0;
  // Fine slot at which evaluation starts; demand before it warms up the
  // forecasters. Rounded down to a whole cycle.
  size_t eval_begin = 0;
  // Move-model parameters for resize-cost accounting and the packer's
  // repack economics (the table is built once per Run).
  PlannerParams planner;
  // Grid size of that table; pool sizes beyond it fall back to the
  // direct move-model functions.
  int table_max_nodes = 256;
  // Dedicated baseline: cycles a lower target must persist before the
  // tenant scales in (same hysteresis as the per-tenant simulator).
  int scale_in_confirm_cycles = 3;
};

// Per-tenant outcome over the evaluation window.
struct TenantResult {
  int tenant = 0;
  std::string name;
  std::string family;
  int partitions = 1;
  double sla_target = 0.0;
  double peak_demand = 0.0;
  double mean_demand = 0.0;
  // Fine slots in which a machine serving this tenant was over Q-hat.
  int64_t violation_slots = 0;
  double violation_fraction = 0.0;
  bool sla_met = true;
  // kFleet: partition moves this tenant absorbed. kDedicated: resizes.
  int64_t moves = 0;
};

struct FleetResult {
  FleetMode mode = FleetMode::kFleet;
  int tenants = 0;
  size_t eval_fine_slots = 0;
  // Sum over evaluated fine slots of machines held (Eq. 1 cost), plus
  // the machine-slots spent inside pool/tenant resizes (Eq. 4).
  double machine_slots = 0.0;
  double move_machine_slots = 0.0;
  int peak_machines = 0;
  int64_t cycles = 0;
  int64_t repacks = 0;         // kFleet only
  int64_t spike_replans = 0;   // kFleet only
  int64_t partition_moves = 0;  // kFleet: moves; kDedicated: resizes
  // Violation tallies: slot-tenant pairs, their fraction of
  // tenants * eval_fine_slots, and tenants whose violation fraction
  // exceeded their SLA target.
  int64_t tenant_violation_slots = 0;
  double tenant_violation_fraction = 0.0;
  int tenants_violating_sla = 0;
  std::vector<TenantResult> per_tenant;
};

// Drives a tenant fleet through warmup and evaluation under one mode.
// Deterministic for any thread count: the parallel sections (trace
// building, per-tenant forecasts, the dedicated per-tenant runs) all
// write results by tenant index.
class FleetSimulator {
 public:
  FleetSimulator(const FleetOptions& options, std::vector<TenantSpec> tenants);

  // Emits fleet.cycle per provisioning cycle (plus the controller's
  // fleet.pack / fleet.tenant_move in kFleet mode). Not thread-safe;
  // borrowed.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Runs the fleet under `mode`. `pool` may be null (serial).
  StatusOr<FleetResult> Simulate(FleetMode mode, ThreadPool* pool);

  const FleetOptions& options() const { return options_; }

 private:
  Status BuildDemandGrid(ThreadPool* pool);
  StatusOr<FleetResult> RunFleet(ThreadPool* pool);
  StatusOr<FleetResult> RunDedicated(ThreadPool* pool);

  FleetOptions options_;
  std::vector<TenantSpec> tenants_;
  obs::Tracer* tracer_ = nullptr;

  // Materialized per-tenant demand on the common fine grid; built once
  // and reused across modes. fine_demand_[t] has grid_fine_slots_
  // samples.
  bool grid_built_ = false;
  std::vector<std::vector<double>> fine_demand_;
  size_t grid_fine_slots_ = 0;
};

// Resamples `source` onto a grid of `fine_slots` samples of
// `fine_slot_seconds` each by sample-and-hold: fine slot f takes the
// value of the source slot containing time f * fine_slot_seconds.
// Returns kInvalidArgument when the source is empty or too short to
// cover the grid.
StatusOr<std::vector<double>> ResampleToGrid(const TimeSeries& source,
                                             double fine_slot_seconds,
                                             size_t fine_slots);

// Renders one result as deterministic CSV (%.17g doubles): a one-row
// summary block, a blank line, then a per-tenant block. Byte-identical
// across thread counts — the artifact the fleet golden test compares.
std::string FleetCsvRows(const FleetResult& result);

}  // namespace fleet
}  // namespace pstore

#endif  // PSTORE_FLEET_FLEET_SIMULATOR_H_
