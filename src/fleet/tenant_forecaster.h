#ifndef PSTORE_FLEET_TENANT_FORECASTER_H_
#define PSTORE_FLEET_TENANT_FORECASTER_H_

#include <cstddef>
#include <vector>

namespace pstore {
namespace fleet {

// SPAR-style one-step capacity forecast for a single tenant: a seasonal
// baseline (the value one period ago) corrected by the mean of the most
// recent seasonal residuals — the same seasonal-plus-recent-offset
// structure as the paper's SPAR, stripped to what stays cheap when a
// fleet re-fits thousands of tenants every provisioning cycle (Sibyl's
// argument: at fleet scale the forecast must be cheap to update).
// Observe() is O(1); Forecast() is O(recent_window). Deterministic.
class TenantForecaster {
 public:
  TenantForecaster(size_t period_slots, size_t recent_window);

  // Appends one observed coarse-slot demand.
  void Observe(double load);

  // Predicts the next slot. Before one full period of history the
  // seasonal baseline does not exist yet, so the forecast falls back to
  // the last observation (zero when nothing has been observed).
  double Forecast() const;

 private:
  size_t period_;
  size_t recent_;
  std::vector<double> history_;
};

}  // namespace fleet
}  // namespace pstore

#endif  // PSTORE_FLEET_TENANT_FORECASTER_H_
