#ifndef PSTORE_FLEET_TENANT_FORECASTER_H_
#define PSTORE_FLEET_TENANT_FORECASTER_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/time_series.h"
#include "prediction/predictor.h"

namespace pstore {
namespace fleet {

// SPAR-style one-step capacity forecast for a single tenant: a seasonal
// baseline (the value one period ago) corrected by the mean of the most
// recent seasonal residuals — the same seasonal-plus-recent-offset
// structure as the paper's SPAR, stripped to what stays cheap when a
// fleet re-fits thousands of tenants every provisioning cycle (Sibyl's
// argument: at fleet scale the forecast must be cheap to update).
// Observe() is O(1); Forecast() is O(recent_window). Deterministic.
//
// A tenant may instead carry a full LoadPredictor (spec-built via
// --forecast, see prediction/predictor_spec.h): the model is re-fitted
// on the tenant's history every `refit_interval` cycles and queried for
// the one-step forecast, with the built-in seasonal forecast as the
// fallback until the first successful fit (and whenever the model
// declines to predict).
class TenantForecaster {
 public:
  TenantForecaster(size_t period_slots, size_t recent_window);

  // Spec-built variant: wraps `model` (owned; must not be null). The
  // built-in seasonal parameters stay as the fallback forecast.
  TenantForecaster(size_t period_slots, size_t recent_window,
                   std::unique_ptr<LoadPredictor> model,
                   size_t refit_interval);

  // Appends one observed coarse-slot demand.
  void Observe(double load);

  // Predicts the next slot. Before one full period of history the
  // seasonal baseline does not exist yet, so the forecast falls back to
  // the last observation (zero when nothing has been observed).
  double Forecast() const;

 private:
  double SeasonalForecast() const;

  size_t period_;
  size_t recent_;
  std::vector<double> history_;

  // Optional spec-built model (null = built-in seasonal forecast only).
  std::unique_ptr<LoadPredictor> model_;
  size_t refit_interval_ = 0;
  size_t since_fit_ = 0;
  bool fitted_ = false;
  TimeSeries series_;
};

}  // namespace fleet
}  // namespace pstore

#endif  // PSTORE_FLEET_TENANT_FORECASTER_H_
