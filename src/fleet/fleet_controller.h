#ifndef PSTORE_FLEET_FLEET_CONTROLLER_H_
#define PSTORE_FLEET_FLEET_CONTROLLER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "fleet/placement.h"
#include "fleet/tenant_forecaster.h"
#include "obs/tracer.h"
#include "planner/move_model_table.h"

namespace pstore {
namespace fleet {

struct FleetControllerOptions {
  PlacementOptions placement;
  // Multiplier applied to per-tenant forecasts before packing (the
  // paper's §8.2 inflation, applied per tenant).
  double inflation = 1.15;
  // Spike re-plan: when a tenant's observed demand exceeds this factor
  // times what was forecast for it, the controller re-plans the cycle
  // with the observed demand instead of waiting for the forecaster to
  // learn the new level.
  double spike_replan_factor = 1.5;
  // Demands below this are never treated as spikes (a tiny tenant going
  // from ~0 to a few txn/s is noise, not a flash crowd).
  double spike_min_demand = 1.0;
  // Seasonal period and recent-residual window of the per-tenant
  // forecasters, in provisioning-cycle slots.
  size_t forecast_period_slots = 288;
  size_t forecast_recent_window = 6;
  // Optional predictor spec (prediction/predictor_spec.h, e.g.
  // "ar(p=8)" or "shift(spar)"): when non-empty, every tenant carries a
  // spec-built model re-fitted each `forecast_refit_interval` cycles,
  // with the built-in seasonal forecast as the fallback. Must parse —
  // validate with ParsePredictorSpec first; the controller CHECKs.
  // Empty (default) keeps the cheap built-in forecaster, bit-identical
  // to before this knob existed.
  std::string forecast_spec;
  size_t forecast_refit_interval = 288;
};

// What one provisioning cycle decided.
struct FleetCycleDecision {
  int64_t cycle = 0;
  double total_forecast = 0.0;  // inflated, what was packed
  int machines = 0;
  int64_t moved_partitions = 0;
  bool repacked = false;
  bool spike_replan = false;
};

// The fleet-level layer above the per-tenant controller stack: owns one
// forecaster per tenant and the shared-pool placement, and re-plans the
// placement every provisioning cycle from the per-tenant forecasts.
// Mirrors Seagull's structure — per-tenant load forecasts feeding a
// fleet-wide allocator — on top of this repo's planner economics.
//
// Deterministic: the per-tenant forecast fan-out writes by tenant index
// (bit-identical for any thread count) and the packer is serial.
class FleetController {
 public:
  // `tenant_partitions[t]` is tenant t's placement-unit count (>= 1).
  // `move_table` and `tracer` are borrowed and may be null.
  FleetController(const FleetControllerOptions& options,
                  std::vector<int> tenant_partitions,
                  const MoveModelTable* move_table, obs::Tracer* tracer);

  // Feeds pre-horizon history into the forecasters without planning:
  // history[t][s] is tenant t's demand in warmup cycle s. All tenants
  // must have the same number of warmup slots.
  Status WarmUp(const std::vector<std::vector<double>>& history);

  // Runs one provisioning cycle at sim time `now`: observes the demands
  // of the finished cycle (empty on the first call), detects spikes,
  // forecasts every tenant one cycle ahead (fanned out on `pool` when
  // given), and packs. Emits fleet.pack and fleet.tenant_move events.
  StatusOr<FleetCycleDecision> Tick(SimTime now,
                                    const std::vector<double>& observed,
                                    ThreadPool* pool);

  const Placement& placement() const { return placement_; }
  const std::vector<double>& last_forecast() const { return forecast_; }
  size_t tenants() const { return tenant_partitions_.size(); }

  // Lifetime counters.
  int64_t cycles() const { return cycles_; }
  int64_t repacks() const { return repacks_; }
  int64_t spike_replans() const { return spike_replans_; }
  int64_t moved_partitions() const { return moved_partitions_; }

 private:
  FleetControllerOptions options_;
  std::vector<int> tenant_partitions_;
  PlacementPlanner planner_;
  obs::Tracer* tracer_;

  std::vector<TenantForecaster> forecasters_;
  std::vector<double> forecast_;  // uninflated, by tenant
  Placement placement_;
  bool has_placement_ = false;

  int64_t cycles_ = 0;
  int64_t repacks_ = 0;
  int64_t spike_replans_ = 0;
  int64_t moved_partitions_ = 0;
};

}  // namespace fleet
}  // namespace pstore

#endif  // PSTORE_FLEET_FLEET_CONTROLLER_H_
