#include "fleet/tenant_forecaster.h"

#include <cstddef>

namespace pstore {
namespace fleet {

TenantForecaster::TenantForecaster(size_t period_slots, size_t recent_window)
    : period_(period_slots > 0 ? period_slots : 1),
      recent_(recent_window > 0 ? recent_window : 1) {}

void TenantForecaster::Observe(double load) { history_.push_back(load); }

double TenantForecaster::Forecast() const {
  const size_t n = history_.size();
  if (n == 0) return 0.0;
  if (n < period_) return history_.back();

  // Seasonal baseline for slot n: the observation one period earlier.
  const double seasonal = history_[n - period_];

  // Recent offset: mean residual of the seasonal baseline over the last
  // `recent_` slots that have a one-period-older counterpart.
  double offset = 0.0;
  size_t samples = 0;
  for (size_t back = 0; back < recent_ && back + period_ < n; ++back) {
    const size_t i = n - 1 - back;
    offset += history_[i] - history_[i - period_];
    ++samples;
  }
  if (samples > 0) offset /= static_cast<double>(samples);

  const double forecast = seasonal + offset;
  return forecast > 0.0 ? forecast : 0.0;
}

}  // namespace fleet
}  // namespace pstore
