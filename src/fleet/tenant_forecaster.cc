#include "fleet/tenant_forecaster.h"

#include <cstddef>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/predictor.h"

namespace pstore {
namespace fleet {

TenantForecaster::TenantForecaster(size_t period_slots, size_t recent_window)
    : period_(period_slots > 0 ? period_slots : 1),
      recent_(recent_window > 0 ? recent_window : 1) {}

TenantForecaster::TenantForecaster(size_t period_slots, size_t recent_window,
                                   std::unique_ptr<LoadPredictor> model,
                                   size_t refit_interval)
    : TenantForecaster(period_slots, recent_window) {
  PSTORE_CHECK(model != nullptr);
  model_ = std::move(model);
  refit_interval_ = refit_interval > 0 ? refit_interval : 1;
}

void TenantForecaster::Observe(double load) {
  history_.push_back(load);
  if (model_ == nullptr) return;
  series_.Append(load);
  (void)model_->Update(series_);
  ++since_fit_;
  if (since_fit_ >= refit_interval_ && series_.size() >= 2) {
    since_fit_ = 0;
    // A failed fit (not enough history yet) keeps the previous fit, or
    // the seasonal fallback when there has never been one.
    if (model_->Fit(series_).ok()) fitted_ = true;
  }
}

double TenantForecaster::Forecast() const {
  if (model_ != nullptr && fitted_) {
    const StatusOr<double> predicted = model_->PredictAhead(series_, 1);
    if (predicted.ok()) return *predicted > 0.0 ? *predicted : 0.0;
  }
  return SeasonalForecast();
}

double TenantForecaster::SeasonalForecast() const {
  const size_t n = history_.size();
  if (n == 0) return 0.0;
  if (n < period_) return history_.back();

  // Seasonal baseline for slot n: the observation one period earlier.
  const double seasonal = history_[n - period_];

  // Recent offset: mean residual of the seasonal baseline over the last
  // `recent_` slots that have a one-period-older counterpart.
  double offset = 0.0;
  size_t samples = 0;
  for (size_t back = 0; back < recent_ && back + period_ < n; ++back) {
    const size_t i = n - 1 - back;
    offset += history_[i] - history_[i - period_];
    ++samples;
  }
  if (samples > 0) offset /= static_cast<double>(samples);

  const double forecast = seasonal + offset;
  return forecast > 0.0 ? forecast : 0.0;
}

}  // namespace fleet
}  // namespace pstore
