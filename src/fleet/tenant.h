#ifndef PSTORE_FLEET_TENANT_H_
#define PSTORE_FLEET_TENANT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/strong_id.h"
#include "sim/run_spec.h"

namespace pstore {
namespace fleet {

// One tenant of the shared machine pool: a workload description (any
// WorkloadSpec kind) plus the SLA target its violation fraction is
// reported against. Tenant demand is split evenly across `partitions`
// placement units, so a tenant larger than one machine can be spread
// over several machines by the packer.
struct TenantSpec {
  TenantId id{0};
  std::string name;
  WorkloadSpec workload;
  int partitions = 2;
  // Maximum fraction of evaluated fine slots with insufficient capacity
  // the tenant tolerates. Reporting only; the packer does not read it.
  double sla_target = 0.01;
};

// Mix description for synthesizing a fleet: how many tenants of each
// workload family, over how many days, with what demand spread. The
// per-tenant peaks are spread log-uniformly in
// [scale_min, scale_max] * mean_peak_rate, B2W tenants get rotated
// diurnal peak times and every generator is seeded from (seed, tenant
// index) — so equal options always produce the identical fleet.
struct TenantMixOptions {
  int b2w_tenants = 0;
  int wikipedia_tenants = 0;
  int ycsb_tenants = 0;
  int step_tenants = 0;
  int days = 4;
  uint64_t seed = 17;
  // Mean per-tenant peak demand, in load units (txn/s).
  double mean_peak_rate = 60.0;
  double scale_min = 0.5;
  double scale_max = 2.0;
  int partitions_per_tenant = 2;
  double sla_target = 0.01;
  // Step tenants jump from step_base_fraction*peak to peak at a seeded
  // slot in the second half of the horizon — the spike-re-plan drill.
  double step_base_fraction = 0.4;
};

int TotalTenants(const TenantMixOptions& options);

// Builds the tenant list: b2w tenants first, then wikipedia, ycsb and
// step, ids assigned in order. Pure function of the options.
std::vector<TenantSpec> MakeTenantMix(const TenantMixOptions& options);

// Short lowercase family name for a tenant's workload kind ("b2w",
// "wikipedia", "ycsb", "step", "provided").
const char* WorkloadKindName(WorkloadSpec::Kind kind);

}  // namespace fleet
}  // namespace pstore

#endif  // PSTORE_FLEET_TENANT_H_
