#include "fleet/tenant.h"

#include <cmath>
#include <cstddef>

#include "common/check.h"
#include "common/rng.h"
#include "common/strong_id.h"
#include "sim/run_spec.h"
#include "trace/wikipedia_trace_generator.h"

namespace pstore {
namespace fleet {
namespace {

// Published peak rates the Wikipedia generator reproduces (requests per
// hour); used to normalize a tenant's scale to its target peak txn/s.
constexpr double kEnglishPeakPerHour = 1.0e7;
constexpr double kGermanPeakPerHour = 2.5e6;

// Log-uniform multiplier in [scale_min, scale_max].
double DemandSpread(const TenantMixOptions& options, Rng* rng) {
  const double lo = std::log(options.scale_min);
  const double hi = std::log(options.scale_max);
  return std::exp(rng->NextDouble(lo, hi));
}

TenantSpec BaseTenant(const TenantMixOptions& options, int index) {
  TenantSpec tenant;
  tenant.id = TenantId(index);
  tenant.partitions =
      options.partitions_per_tenant > 0 ? options.partitions_per_tenant : 1;
  tenant.sla_target = options.sla_target;
  return tenant;
}

}  // namespace

int TotalTenants(const TenantMixOptions& options) {
  return options.b2w_tenants + options.wikipedia_tenants +
         options.ycsb_tenants + options.step_tenants;
}

std::vector<TenantSpec> MakeTenantMix(const TenantMixOptions& options) {
  // DemandSpread takes logs of the scale bounds; a non-positive or
  // inverted range would surface as NaN demand deep inside Pack.
  PSTORE_CHECK_MSG(
      options.scale_min > 0.0 && options.scale_max >= options.scale_min,
      "TenantMixOptions requires 0 < scale_min <= scale_max");
  std::vector<TenantSpec> tenants;
  tenants.reserve(static_cast<size_t>(TotalTenants(options)));
  // One RNG drives the per-tenant demand spread so the mix is a pure
  // function of options.seed; generator seeds derive from (seed, index).
  Rng spread_rng(options.seed);
  int index = 0;

  for (int i = 0; i < options.b2w_tenants; ++i, ++index) {
    TenantSpec tenant = BaseTenant(options, index);
    tenant.name = "b2w-" + std::to_string(i);
    const double peak = options.mean_peak_rate * DemandSpread(options, &spread_rng);
    tenant.workload.kind = WorkloadSpec::Kind::kB2wSynthetic;
    tenant.workload.b2w.days = options.days;
    tenant.workload.b2w.seed = options.seed * 1000003u + static_cast<uint64_t>(index);
    // The generator emits requests/min; peak*60 req/min scaled by 1/60
    // yields a trace peaking near `peak` txn/s.
    tenant.workload.b2w.peak_requests_per_min = peak * 60.0;
    tenant.workload.scale = 1.0 / 60.0;
    // Rotate the diurnal peak across tenants: a fleet whose tenants do
    // not all peak together is exactly where packing beats dedicated
    // machines.
    tenant.workload.b2w.peak_minute_of_day =
        (900 + i * 1440 / (options.b2w_tenants > 0 ? options.b2w_tenants : 1)) %
        1440;
    tenants.push_back(tenant);
  }

  for (int i = 0; i < options.wikipedia_tenants; ++i, ++index) {
    TenantSpec tenant = BaseTenant(options, index);
    tenant.name = "wiki-" + std::to_string(i);
    const double peak = options.mean_peak_rate * DemandSpread(options, &spread_rng);
    tenant.workload.kind = WorkloadSpec::Kind::kWikipedia;
    tenant.workload.wikipedia.edition =
        (i % 2 == 0) ? WikipediaEdition::kEnglish : WikipediaEdition::kGerman;
    tenant.workload.wikipedia.days = options.days;
    tenant.workload.wikipedia.seed =
        options.seed * 1000003u + static_cast<uint64_t>(index);
    // The generator emits requests/hour peaking near the published
    // rate; scaling by peak/published turns the series into a load in
    // txn/s peaking near `peak`.
    const double published_peak =
        (i % 2 == 0) ? kEnglishPeakPerHour : kGermanPeakPerHour;
    tenant.workload.scale = peak / published_peak;
    tenants.push_back(tenant);
  }

  for (int i = 0; i < options.ycsb_tenants; ++i, ++index) {
    TenantSpec tenant = BaseTenant(options, index);
    tenant.name = "ycsb-" + std::to_string(i);
    const double peak = options.mean_peak_rate * DemandSpread(options, &spread_rng);
    tenant.workload.kind = WorkloadSpec::Kind::kYcsbSteady;
    tenant.workload.ycsb_slot_seconds = 60.0;
    tenant.workload.ycsb_slots = static_cast<size_t>(options.days) * 1440u;
    // Steady offered rate a bit under the nominal peak, so noise peaks
    // near it.
    tenant.workload.ycsb_rate = 0.8 * peak;
    tenant.workload.ycsb_seed =
        options.seed * 1000003u + static_cast<uint64_t>(index);
    tenants.push_back(tenant);
  }

  for (int i = 0; i < options.step_tenants; ++i, ++index) {
    TenantSpec tenant = BaseTenant(options, index);
    tenant.name = "step-" + std::to_string(i);
    const double peak = options.mean_peak_rate * DemandSpread(options, &spread_rng);
    const size_t slots = static_cast<size_t>(options.days) * 1440u;
    tenant.workload.kind = WorkloadSpec::Kind::kStep;
    tenant.workload.step_slot_seconds = 60.0;
    tenant.workload.step_slots = slots;
    // Seeded jump somewhere in [1/2, 3/4) of the horizon: past the
    // warmup window, so it exercises the spike re-plan path.
    Rng step_rng(options.seed * 1000003u + static_cast<uint64_t>(index));
    tenant.workload.step_at_slot =
        slots / 2 + static_cast<size_t>(step_rng.NextUint64(slots / 4));
    tenant.workload.base_rate = options.step_base_fraction * peak;
    tenant.workload.peak_rate = peak;
    tenants.push_back(tenant);
  }

  return tenants;
}

const char* WorkloadKindName(WorkloadSpec::Kind kind) {
  switch (kind) {
    case WorkloadSpec::Kind::kProvided:
      return "provided";
    case WorkloadSpec::Kind::kB2wSynthetic:
      return "b2w";
    case WorkloadSpec::Kind::kWikipedia:
      return "wikipedia";
    case WorkloadSpec::Kind::kYcsbSteady:
      return "ycsb";
    case WorkloadSpec::Kind::kStep:
      return "step";
  }
  return "unknown";
}

}  // namespace fleet
}  // namespace pstore
