#include "fleet/placement.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/strong_id.h"
#include "planner/move_model.h"
#include "planner/move_model_table.h"

namespace pstore {
namespace fleet {
namespace {

// Mutable pool state during one Pack: per-machine load, partition count
// and per-tenant partition counts (distinct-tenant interference needs
// to know whether an arriving item's tenant is already resident).
class Pool {
 public:
  explicit Pool(const PlacementOptions& options) : options_(&options) {}

  size_t size() const { return load_.size(); }
  double load(size_t m) const { return load_[m]; }
  int64_t partitions(size_t m) const { return partitions_[m]; }
  int distinct_tenants(size_t m) const {
    return static_cast<int>(tenants_[m].size());
  }

  void EnsureMachine(size_t m) {
    if (m >= load_.size()) {
      load_.resize(m + 1, 0.0);
      partitions_.resize(m + 1, 0);
      tenants_.resize(m + 1);
    }
  }

  // Capacity of machine m after hypothetically adding one item of
  // `tenant`.
  double CapacityWith(size_t m, int tenant) const {
    int distinct = distinct_tenants(m);
    if (tenants_[m].find(tenant) == tenants_[m].end()) ++distinct;
    return EffectiveMachineCapacity(*options_, distinct);
  }

  bool Fits(size_t m, double demand, int tenant) const {
    return load_[m] + demand <= CapacityWith(m, tenant);
  }

  void Add(size_t m, double demand, int tenant) {
    EnsureMachine(m);
    load_[m] += demand;
    ++partitions_[m];
    ++tenants_[m][tenant];
  }

  void Remove(size_t m, double demand, int tenant) {
    load_[m] -= demand;
    --partitions_[m];
    auto it = tenants_[m].find(tenant);
    if (it != tenants_[m].end() && --it->second == 0) tenants_[m].erase(it);
    if (partitions_[m] == 0) load_[m] = 0.0;  // cancel rounding residue
  }

  // Over-capacity check for the machine as currently populated.
  bool Overloaded(size_t m) const {
    return load_[m] >
           EffectiveMachineCapacity(*options_, distinct_tenants(m));
  }

  int MachinesUsed() const {
    int used = 0;
    for (size_t m = 0; m < partitions_.size(); ++m) {
      if (partitions_[m] > 0) ++used;
    }
    return used;
  }

 private:
  const PlacementOptions* options_;
  std::vector<double> load_;
  std::vector<int64_t> partitions_;
  // Ordered map (vs. hash map) so any future traversal of a machine's
  // tenant set is deterministic by construction; the per-machine tenant
  // count is small, so the O(log n) lookups are immaterial.
  std::vector<std::map<int, int>> tenants_;
};

// Items ordered for placement: demand descending, flat index ascending.
std::vector<size_t> PlacementOrder(const std::vector<double>& item_demand) {
  std::vector<size_t> order(item_demand.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (item_demand[a] != item_demand[b]) {
      return item_demand[a] > item_demand[b];
    }
    return a < b;
  });
  return order;
}

// Best-fit machine for the item among [0, pool.size()), or npos. The
// fitting machine with the least capacity left after placement wins;
// ties break to the lowest machine id.
size_t BestFit(const Pool& pool, double demand, int tenant) {
  size_t best = static_cast<size_t>(-1);
  double best_remaining = 0.0;
  for (size_t m = 0; m < pool.size(); ++m) {
    if (!pool.Fits(m, demand, tenant)) continue;
    const double remaining =
        pool.CapacityWith(m, tenant) - (pool.load(m) + demand);
    if (best == static_cast<size_t>(-1) || remaining < best_remaining) {
      best = m;
      best_remaining = remaining;
    }
  }
  return best;
}

// Lowest-id empty machine, or pool.size() to open a new one.
size_t LowestFreeMachine(const Pool& pool) {
  for (size_t m = 0; m < pool.size(); ++m) {
    if (pool.partitions(m) == 0) return m;
  }
  return pool.size();
}

Placement Finalize(const Pool& pool, std::vector<size_t> offsets,
                   std::vector<MachineId> machine,
                   const Placement* previous) {
  Placement placement;
  placement.partition_offset = std::move(offsets);
  placement.machine = std::move(machine);
  placement.machine_load.resize(pool.size());
  placement.machine_partitions.resize(pool.size());
  placement.machine_tenant_counts.resize(pool.size());
  for (size_t m = 0; m < pool.size(); ++m) {
    placement.machine_load[m] = pool.load(m);
    placement.machine_partitions[m] = pool.partitions(m);
    placement.machine_tenant_counts[m] = pool.distinct_tenants(m);
  }
  placement.machines_used = pool.MachinesUsed();
  if (previous != nullptr &&
      previous->machine.size() == placement.machine.size()) {
    for (size_t i = 0; i < placement.machine.size(); ++i) {
      if (placement.machine[i] != previous->machine[i]) {
        ++placement.moved_partitions;
      }
    }
  }
  return placement;
}

}  // namespace

double EffectiveMachineCapacity(const PlacementOptions& options,
                                int distinct_tenants) {
  return EffectiveServeCapacity(options, options.machine_capacity,
                                distinct_tenants);
}

double EffectiveServeCapacity(const PlacementOptions& options,
                              double serve_capacity, int distinct_tenants) {
  const int extra = distinct_tenants > 1 ? distinct_tenants - 1 : 0;
  double fraction =
      1.0 - options.interference_per_tenant * static_cast<double>(extra);
  if (fraction < options.min_capacity_fraction) {
    fraction = options.min_capacity_fraction;
  }
  return serve_capacity * fraction;
}

PlacementPlanner::PlacementPlanner(const PlacementOptions& options,
                                   const MoveModelTable* move_table)
    : options_(options), move_table_(move_table) {}

StatusOr<Placement> PlacementPlanner::PackFresh(
    const std::vector<double>& item_demand,
    const std::vector<int>& item_tenant,
    const std::vector<size_t>& offsets) const {
  Pool pool(options_);
  std::vector<MachineId> machine(item_demand.size(), MachineId(0));
  for (size_t item : PlacementOrder(item_demand)) {
    const double demand = item_demand[item];
    const int tenant = item_tenant[item];
    size_t target = BestFit(pool, demand, tenant);
    if (target == static_cast<size_t>(-1)) {
      // Nothing fits: open a machine. An item larger than one machine
      // is placed alone and simply overloads it (the fleet layer does
      // not split partitions further).
      target = pool.size();
      if (target >= static_cast<size_t>(options_.max_machines)) {
        return Status::OutOfRange(
            "placement needs more than max_machines = " +
            std::to_string(options_.max_machines));
      }
    }
    pool.Add(target, demand, tenant);
    machine[item] = MachineId(static_cast<int>(target));
  }
  Placement placement = Finalize(pool, offsets, std::move(machine), nullptr);
  placement.repacked = true;
  return placement;
}

StatusOr<Placement> PlacementPlanner::PackIncremental(
    const std::vector<double>& item_demand,
    const std::vector<int>& item_tenant, const std::vector<size_t>& offsets,
    const Placement& previous) const {
  Pool pool(options_);
  std::vector<MachineId> machine = previous.machine;
  for (size_t i = 0; i < machine.size(); ++i) {
    pool.Add(static_cast<size_t>(machine[i].value()), item_demand[i],
             item_tenant[i]);
  }

  // Evict from overloaded machines, largest item first (fewest moves);
  // removing a tenant's last partition lifts the interference penalty,
  // so capacity is re-evaluated after every eviction. An evicted item
  // keeps its stale machine[] entry until re-placement, so the victim
  // scan must skip items already evicted or a machine needing several
  // evictions would pick the same victim repeatedly.
  std::vector<size_t> evicted;
  evicted.reserve(machine.size());
  std::vector<bool> is_evicted(machine.size(), false);
  for (size_t m = 0; m < pool.size(); ++m) {
    while (pool.partitions(m) > 1 && pool.Overloaded(m)) {
      size_t victim = static_cast<size_t>(-1);
      for (size_t i = 0; i < machine.size(); ++i) {
        if (is_evicted[i]) continue;
        if (static_cast<size_t>(machine[i].value()) != m) continue;
        if (victim == static_cast<size_t>(-1) ||
            item_demand[i] > item_demand[victim]) {
          victim = i;
        }
      }
      if (victim == static_cast<size_t>(-1)) break;
      pool.Remove(m, item_demand[victim], item_tenant[victim]);
      is_evicted[victim] = true;
      evicted.push_back(victim);
    }
  }

  // Re-place evicted items (demand desc, index asc); beyond best fit,
  // reuse the lowest-id empty machine before growing the pool.
  std::sort(evicted.begin(), evicted.end(), [&](size_t a, size_t b) {
    if (item_demand[a] != item_demand[b]) {
      return item_demand[a] > item_demand[b];
    }
    return a < b;
  });
  for (size_t item : evicted) {
    const double demand = item_demand[item];
    const int tenant = item_tenant[item];
    size_t target = BestFit(pool, demand, tenant);
    if (target == static_cast<size_t>(-1)) {
      target = LowestFreeMachine(pool);
      if (target >= static_cast<size_t>(options_.max_machines)) {
        return Status::OutOfRange(
            "placement needs more than max_machines = " +
            std::to_string(options_.max_machines));
      }
    }
    pool.Add(target, demand, tenant);
    machine[item] = MachineId(static_cast<int>(target));
  }

  Placement sticky = Finalize(pool, offsets, std::move(machine), &previous);

  // Consolidation: when total demand suggests the pool could shrink,
  // price a from-scratch repack against the move-model resize cost.
  double total = 0.0;
  for (double d : item_demand) total += d;
  const double best_case_capacity = EffectiveMachineCapacity(options_, 1);
  const int lower_bound = static_cast<int>(
      std::ceil(total / (best_case_capacity > 0.0 ? best_case_capacity
                                                  : 1.0)));
  if (sticky.machines_used > lower_bound) {
    StatusOr<Placement> fresh = PackFresh(item_demand, item_tenant, offsets);
    if (!fresh.ok()) return sticky;  // fresh pack can only need more; keep
    const int saved = sticky.machines_used - fresh->machines_used;
    if (saved > 0) {
      double resize_cost = 0.0;
      if (move_table_ != nullptr &&
          move_table_->Covers(NodeCount(sticky.machines_used),
                              NodeCount(fresh->machines_used))) {
        resize_cost = move_table_->MoveCost(
            NodeCount(sticky.machines_used),
            NodeCount(fresh->machines_used));
      }
      // Moves against the *previous* placement, not sticky: the churn a
      // repack is charged for is what it moves beyond the evictions the
      // sticky pack had to do anyway.
      fresh->moved_partitions = 0;
      for (size_t i = 0; i < fresh->machine.size(); ++i) {
        if (fresh->machine[i] != previous.machine[i]) {
          ++fresh->moved_partitions;
        }
      }
      const int64_t extra_moves =
          fresh->moved_partitions > sticky.moved_partitions
              ? fresh->moved_partitions - sticky.moved_partitions
              : 0;
      const double amortized_savings =
          static_cast<double>(saved) *
          static_cast<double>(options_.repack_amortize_slots);
      if (amortized_savings >
          resize_cost + options_.partition_move_cost *
                            static_cast<double>(extra_moves)) {
        return fresh;
      }
    }
  }
  return sticky;
}

StatusOr<Placement> PlacementPlanner::Pack(
    const std::vector<double>& tenant_demand,
    const std::vector<int>& tenant_partitions,
    const Placement* previous) const {
  if (tenant_demand.size() != tenant_partitions.size()) {
    return Status::InvalidArgument(
        "tenant_demand and tenant_partitions sizes differ");
  }
  // Flatten: demand splits evenly across a tenant's partitions.
  std::vector<size_t> offsets(tenant_demand.size() + 1, 0);
  for (size_t t = 0; t < tenant_demand.size(); ++t) {
    if (tenant_partitions[t] < 1) {
      return Status::InvalidArgument("tenant " + std::to_string(t) +
                                     " has no partitions");
    }
    if (!(tenant_demand[t] >= 0.0) || std::isinf(tenant_demand[t])) {
      return Status::InvalidArgument("tenant " + std::to_string(t) +
                                     " has invalid demand");
    }
    offsets[t + 1] = offsets[t] + static_cast<size_t>(tenant_partitions[t]);
  }
  std::vector<double> item_demand(offsets.back());
  std::vector<int> item_tenant(offsets.back());
  for (size_t t = 0; t < tenant_demand.size(); ++t) {
    const double share =
        tenant_demand[t] / static_cast<double>(tenant_partitions[t]);
    for (size_t i = offsets[t]; i < offsets[t + 1]; ++i) {
      item_demand[i] = share;
      item_tenant[i] = static_cast<int>(t);
    }
  }

  if (previous != nullptr) {
    if (previous->partition_offset != offsets) {
      return Status::InvalidArgument(
          "previous placement has a different tenant/partition shape");
    }
    return PackIncremental(item_demand, item_tenant, offsets, *previous);
  }
  return PackFresh(item_demand, item_tenant, offsets);
}

}  // namespace fleet
}  // namespace pstore
