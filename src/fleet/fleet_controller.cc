#include "fleet/fleet_controller.h"

#include <cmath>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/check.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "fleet/placement.h"
#include "obs/trace_event.h"
#include "obs/tracer.h"
#include "planner/move_model_table.h"
#include "prediction/predictor.h"
#include "prediction/predictor_spec.h"

namespace pstore {
namespace fleet {

FleetController::FleetController(const FleetControllerOptions& options,
                                 std::vector<int> tenant_partitions,
                                 const MoveModelTable* move_table,
                                 obs::Tracer* tracer)
    : options_(options),
      tenant_partitions_(std::move(tenant_partitions)),
      planner_(options.placement, move_table),
      tracer_(tracer) {
  forecasters_.reserve(tenant_partitions_.size());
  PredictorContext context;
  context.period = options_.forecast_period_slots;
  context.max_tau = 4;
  for (size_t t = 0; t < tenant_partitions_.size(); ++t) {
    if (options_.forecast_spec.empty()) {
      forecasters_.emplace_back(options_.forecast_period_slots,
                                options_.forecast_recent_window);
    } else {
      StatusOr<std::unique_ptr<LoadPredictor>> model =
          MakePredictor(options_.forecast_spec, context);
      PSTORE_CHECK_OK(model.status());
      forecasters_.emplace_back(options_.forecast_period_slots,
                                options_.forecast_recent_window,
                                std::move(*model),
                                options_.forecast_refit_interval);
    }
  }
  forecast_.assign(tenant_partitions_.size(), 0.0);
}

Status FleetController::WarmUp(
    const std::vector<std::vector<double>>& history) {
  if (history.size() != tenant_partitions_.size()) {
    return Status::InvalidArgument(
        "WarmUp history must cover every tenant exactly once");
  }
  const size_t slots = history.empty() ? 0 : history[0].size();
  for (const auto& tenant_history : history) {
    if (tenant_history.size() != slots) {
      return Status::InvalidArgument(
          "WarmUp tenants must have equal history lengths");
    }
  }
  for (size_t t = 0; t < history.size(); ++t) {
    for (double load : history[t]) forecasters_[t].Observe(load);
  }
  return Status::OK();
}

StatusOr<FleetCycleDecision> FleetController::Tick(
    SimTime now, const std::vector<double>& observed, ThreadPool* pool) {
  const size_t tenants = tenant_partitions_.size();
  if (!observed.empty() && observed.size() != tenants) {
    return Status::InvalidArgument(
        "Tick observed demands must be empty or cover every tenant");
  }

  // Spike detection compares the finished cycle's observation against
  // what was forecast for it *before* the forecasters absorb it.
  bool spike = false;
  std::vector<double> spike_floor(tenants, 0.0);
  if (!observed.empty()) {
    for (size_t t = 0; t < tenants; ++t) {
      if (cycles_ > 0 && observed[t] >= options_.spike_min_demand &&
          observed[t] > options_.spike_replan_factor * forecast_[t]) {
        spike = true;
        spike_floor[t] = observed[t];
      }
      forecasters_[t].Observe(observed[t]);
    }
  }

  // Forecast fan-out: each tenant's forecast is a pure function of its
  // own forecaster, written by index — bit-identical for any pool size.
  const auto forecast_one = [this](size_t t) {
    forecast_[t] = forecasters_[t].Forecast();
  };
  if (pool != nullptr && tenants > 1) {
    pool->ParallelFor(tenants, forecast_one);
  } else {
    for (size_t t = 0; t < tenants; ++t) forecast_one(t);
  }

  std::vector<double> demand(tenants, 0.0);
  double total = 0.0;
  for (size_t t = 0; t < tenants; ++t) {
    const double base =
        forecast_[t] > spike_floor[t] ? forecast_[t] : spike_floor[t];
    demand[t] = options_.inflation * base;
    total += demand[t];
  }

  const int machines_before = has_placement_ ? placement_.machines_used : 0;
  StatusOr<Placement> packed = planner_.Pack(
      demand, tenant_partitions_, has_placement_ ? &placement_ : nullptr);
  if (!packed.ok()) return packed.status();
  Placement next = std::move(*packed);

  FleetCycleDecision decision;
  decision.cycle = cycles_;
  decision.total_forecast = total;
  decision.machines = next.machines_used;
  decision.moved_partitions = next.moved_partitions;
  decision.repacked = next.repacked;
  decision.spike_replan = spike;

  PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kFleet, now,
               "fleet.pack",
               .With("cycle", cycles_)
                   .With("tenants", static_cast<int64_t>(tenants))
                   .With("demand", total)
                   .With("machines_before", machines_before)
                   .With("machines_after", next.machines_used)
                   .With("moved_partitions", next.moved_partitions)
                   .With("repacked", next.repacked)
                   .With("spike_replan", spike));
  if (tracer_ != nullptr &&
      tracer_->enabled(::pstore::obs::TraceCategory::kFleet) &&
      has_placement_ && next.moved_partitions > 0) {
    for (size_t t = 0; t < tenants; ++t) {
      int64_t moved = 0;
      for (size_t p = next.partition_offset[t];
           p < next.partition_offset[t + 1]; ++p) {
        if (next.machine[p] != placement_.machine[p]) ++moved;
      }
      if (moved == 0) continue;
      PSTORE_TRACE(tracer_, ::pstore::obs::TraceCategory::kFleet, now,
                   "fleet.tenant_move",
                   .With("cycle", cycles_)
                       .With("tenant", static_cast<int64_t>(t))
                       .With("moved_partitions", moved)
                       .With("demand", demand[t]));
    }
  }

  placement_ = std::move(next);
  has_placement_ = true;
  ++cycles_;
  if (decision.repacked) ++repacks_;
  if (spike) ++spike_replans_;
  moved_partitions_ += decision.moved_partitions;
  return decision;
}

}  // namespace fleet
}  // namespace pstore
