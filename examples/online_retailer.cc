// Online retailer demo: one compressed day of the B2W shopping-cart and
// checkout workload running on the simulated shared-nothing cluster,
// with the full P-Store stack (online SPAR predictor -> DP planner ->
// Squall-style migration) elastically resizing the cluster.
//
// Build & run:  ./build/examples/online_retailer [days]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "b2w/procedures.h"
#include "b2w/workload.h"
#include "common/logging.h"
#include "controller/predictive_controller.h"
#include "engine/workload_driver.h"
#include "migration/squall_migrator.h"
#include "prediction/online_predictor.h"
#include "prediction/spar_model.h"
#include "trace/b2w_trace_generator.h"

using namespace pstore;

int main(int argc, char** argv) {
  const int replay_days = argc > 1 ? std::atoi(argv[1]) : 1;
  const int training_days = 28;

  // Synthetic B2W aggregate load, in txn/s at the paper's 10x replay
  // speed (one trace minute = 6 simulated seconds).
  B2wTraceOptions trace_options;
  trace_options.days = training_days + replay_days;
  trace_options.peak_requests_per_min = 9000.0;
  trace_options.seed = 3;
  const TimeSeries trace = GenerateB2wTrace(trace_options).Scaled(10.0 / 60.0);

  // The cluster: machines of 6 partitions, 1.1 GB of carts/checkouts.
  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 6;
  cluster_options.max_nodes = 16;
  cluster_options.initial_nodes = 3;
  cluster_options.num_buckets = 3600;
  Cluster cluster(cluster_options);

  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(b2w::RegisterProcedures(&executor));
  b2w::Workload workload(b2w::B2wWorkloadOptions{});
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));
  std::printf("Loaded %lld rows (%.0f MB nominal) across %d machines\n",
              static_cast<long long>(cluster.TotalRowCount()),
              cluster.TotalDataBytes() / 1e6, cluster.active_nodes());

  EventLoop loop;
  MigrationOptions migration_options;  // paper-calibrated (D ~= 77 min)
  MigrationManager migration(&loop, &cluster, &metrics, migration_options);
  metrics.RecordMachines(0, cluster.active_nodes());

  // Online SPAR predictor warmed on four weeks of history.
  SparOptions spar_options;
  spar_options.period = 1440;
  spar_options.num_periods = 7;
  spar_options.num_recent = 30;
  spar_options.max_tau = 240;
  spar_options.tau_stride = 5;
  OnlinePredictorOptions online_options;
  online_options.training_window = training_days * 1440;
  online_options.refit_interval = 7 * 1440;
  online_options.inflation = 1.15;
  OnlinePredictor predictor(std::make_unique<SparPredictor>(spar_options),
                            online_options);
  PSTORE_CHECK_OK(predictor.Warmup(trace.Slice(0, training_days * 1440)));

  PredictiveControllerOptions controller_options;
  controller_options.slot_sim_seconds = 6.0;
  controller_options.plan_slot_factor = 5;
  controller_options.horizon_plan_slots = 48;
  controller_options.planner_params.target_rate_per_node = 285.0;
  controller_options.planner_params.max_rate_per_node = 350.0;
  controller_options.planner_params.partitions_per_node = 6;
  controller_options.planner_params.d_slots =
      SingleThreadFullMigrationSeconds(cluster.TotalDataBytes(),
                                       migration_options) /
      30.0;
  PredictiveController controller(&loop, &cluster, &executor, &migration,
                                  &predictor, controller_options);
  controller.Start();

  DriverOptions driver_options;
  driver_options.slot_sim_seconds = 6.0;
  driver_options.rate_factor = 1.0;
  driver_options.start_slot = training_days * 1440;
  WorkloadDriver driver(
      &loop, &executor, trace,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      driver_options);

  const SimTime end = FromSeconds(replay_days * 1440 * 6.0);
  driver.Start(end);

  // Run hour by hour (of compressed benchmark time) with progress.
  std::printf("\n%8s %10s %10s %10s %10s\n", "hour", "txn/s", "machines",
              "p99(ms)", "migrating");
  const SimTime hour = FromSeconds(360.0);  // one trace hour at 10x
  for (SimTime t = hour; t <= end; t += hour) {
    loop.RunUntil(t);
    const auto windows = metrics.Finalize(t);
    const auto& last = windows.back();
    double p99 = 0;
    int64_t completed = 0;
    for (size_t w = windows.size() - 360; w < windows.size(); ++w) {
      p99 = std::max(p99, windows[w].p99_ms);
      completed += windows[w].completed;
    }
    std::printf("%8lld %10.0f %10d %10.0f %10s\n",
                static_cast<long long>(t / hour), completed / 360.0,
                last.machines, p99, last.migrating ? "yes" : "no");
  }

  const auto windows = metrics.Finalize(end);
  const SlaViolations violations = MetricsCollector::CountViolations(windows);
  std::printf("\nDay complete: %lld txns committed, %lld aborted.\n",
              static_cast<long long>(executor.committed_count()),
              static_cast<long long>(executor.aborted_count()));
  std::printf("SLA violations (500 ms): p50=%lld p95=%lld p99=%lld; "
              "average machines %.2f; %lld reconfigurations.\n",
              static_cast<long long>(violations.p50),
              static_cast<long long>(violations.p95),
              static_cast<long long>(violations.p99),
              metrics.AverageMachines(end),
              static_cast<long long>(migration.reconfigurations_completed()));

  std::printf("\nTransaction mix:\n%-24s %12s %10s %8s\n", "procedure",
              "committed", "aborted", "abort%%");
  for (ProcedureId id = 0; id < b2w::kNumProcedures; ++id) {
    const auto& stats = executor.procedure_stats(id);
    const int64_t total = stats.committed + stats.aborted;
    if (total == 0) continue;
    std::printf("%-24s %12lld %10lld %7.2f%%\n", b2w::ProcedureName(id),
                static_cast<long long>(stats.committed),
                static_cast<long long>(stats.aborted),
                100.0 * static_cast<double>(stats.aborted) /
                    static_cast<double>(total));
  }
  return 0;
}
