// Composite strategy demo (paper §1): "a combination of complementary
// techniques: (i) predictive provisioning ... (ii) reactive provisioning
// to react in real time to unpredictable load spikes; and (iii) manual
// provisioning for rare one-off, but expected, load spikes". This
// example runs all three — plus the skew-management extension — in one
// compressed day:
//
//   * P-Store's SPAR + DP planner handles the ordinary diurnal cycle,
//     with the inflation buffer auto-calibrated from residuals;
//   * an operator-registered calendar event (a planned 17:00 promotion)
//     is provisioned for in advance even though history knows nothing
//     about it;
//   * an *unplanned* flash crowd at 21:00 exercises the reactive
//     fallback (boosted R x 8 migration);
//   * the hot-spot balancer keeps partitions even under mild key skew
//     injected via the workload.
//
// Build & run:  ./build/examples/composite_strategy

#include <algorithm>
#include <cstdio>
#include <memory>

#include "b2w/procedures.h"
#include "b2w/workload.h"
#include "common/logging.h"
#include "controller/load_balancer.h"
#include "controller/predictive_controller.h"
#include "engine/workload_driver.h"
#include "prediction/online_predictor.h"
#include "prediction/spar_model.h"
#include "trace/b2w_trace_generator.h"
#include "trace/spike_injector.h"

using namespace pstore;

int main() {
  const int training_days = 28;

  // Organic load (what history and SPAR know about).
  B2wTraceOptions trace_options;
  trace_options.days = training_days + 1;
  trace_options.peak_requests_per_min = 9000.0;
  trace_options.seed = 42;
  const TimeSeries organic =
      GenerateB2wTrace(trace_options).Scaled(10.0 / 60.0);

  // What actually happens on the replayed day: the planned 17:00
  // promotion (+60% for 2 trace-hours) AND an unplanned 21:00 flash
  // crowd (x2 for ~1.5 trace-hours).
  SpikeOptions promo;
  promo.start_slot = training_days * 1440 + 17 * 60;
  promo.ramp_slots = 10;
  promo.sustain_slots = 110;
  promo.decay_slots = 30;
  promo.magnitude = 1.6;
  SpikeOptions flash;
  flash.start_slot = training_days * 1440 + 21 * 60;
  flash.ramp_slots = 10;
  flash.sustain_slots = 60;
  flash.decay_slots = 60;
  flash.magnitude = 2.0;
  const TimeSeries actual = InjectSpike(InjectSpike(organic, promo), flash);

  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 6;
  cluster_options.max_nodes = 16;
  cluster_options.initial_nodes = 3;
  cluster_options.num_buckets = 3600;
  Cluster cluster(cluster_options);
  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(b2w::RegisterProcedures(&executor));
  b2w::Workload workload(b2w::B2wWorkloadOptions{});
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));

  EventLoop loop;
  MigrationOptions migration_options;
  MigrationManager migration(&loop, &cluster, &metrics, migration_options);
  metrics.RecordMachines(0, cluster.active_nodes());

  // (i) Predictive: SPAR warmed on four weeks, auto-calibrated buffer.
  SparOptions spar_options;
  spar_options.period = 1440;
  spar_options.num_periods = 7;
  spar_options.num_recent = 30;
  spar_options.max_tau = 240;
  spar_options.tau_stride = 5;
  OnlinePredictorOptions online_options;
  online_options.training_window = training_days * 1440;
  online_options.refit_interval = 7 * 1440;
  online_options.auto_inflation = true;
  online_options.auto_inflation_quantile = 0.98;
  online_options.auto_inflation_tau = 60;
  OnlinePredictor predictor(std::make_unique<SparPredictor>(spar_options),
                            online_options);
  PSTORE_CHECK_OK(predictor.Warmup(organic.Slice(0, training_days * 1440)));
  std::printf("Auto-calibrated prediction buffer: %.1f%% (the paper "
              "hand-picks 15%%)\n",
              100.0 * (predictor.effective_inflation() - 1.0));

  // (iii) Manual: the operator registers the 17:00 promotion. Calendar
  // slots are absolute on the predictor's timeline.
  PSTORE_CHECK_OK(predictor.calendar().AddEvent(
      {"planned 17:00 promo", promo.start_slot,
       promo.start_slot + promo.ramp_slots + promo.sustain_slots +
           promo.decay_slots,
       promo.magnitude}));

  PredictiveControllerOptions controller_options;
  controller_options.slot_sim_seconds = 6.0;
  controller_options.plan_slot_factor = 5;
  controller_options.horizon_plan_slots = 48;
  // (ii) Reactive fallback at the boosted rate when predictions miss.
  controller_options.fast_reactive_fallback = true;
  controller_options.planner_params.target_rate_per_node = 285.0;
  controller_options.planner_params.max_rate_per_node = 350.0;
  controller_options.planner_params.partitions_per_node = 6;
  controller_options.planner_params.d_slots =
      SingleThreadFullMigrationSeconds(cluster.TotalDataBytes(),
                                       migration_options) /
      30.0;
  PredictiveController controller(&loop, &cluster, &executor, &migration,
                                  &predictor, controller_options);
  controller.Start();

  // (extension) Hot-spot balancer.
  LoadBalancerOptions balancer_options;
  balancer_options.slot_sim_seconds = 6.0;
  balancer_options.sample_slots = 10;
  HotSpotBalancer balancer(&loop, &cluster, &migration, balancer_options);
  balancer.Start();

  DriverOptions driver_options;
  driver_options.slot_sim_seconds = 6.0;
  driver_options.rate_factor = 1.0;
  driver_options.start_slot = training_days * 1440;
  WorkloadDriver driver(
      &loop, &executor, actual,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      driver_options);
  const SimTime end = FromSeconds(1440 * 6.0);
  driver.Start(end);

  std::printf("\n%10s %10s %10s %10s\n", "trace hour", "txn/s", "machines",
              "worst p99");
  const SimTime hour = FromSeconds(360.0);
  for (SimTime t = hour; t <= end; t += hour) {
    loop.RunUntil(t);
    const auto windows = metrics.Finalize(t);
    double p99 = 0;
    int64_t completed = 0;
    for (size_t w = windows.size() - 360; w < windows.size(); ++w) {
      p99 = std::max(p99, windows[w].p99_ms);
      completed += windows[w].completed;
    }
    std::printf("%10lld %10.0f %10d %10.0f%s\n",
                static_cast<long long>(t / hour), completed / 360.0,
                windows.back().machines, p99,
                t / hour == 18 ? "   <- planned promo (calendar)"
                : t / hour == 22 ? "   <- unplanned flash crowd (fallback)"
                                 : "");
  }

  const auto windows = metrics.Finalize(end);
  const SlaViolations violations = MetricsCollector::CountViolations(windows);
  std::printf(
      "\nComposite day: violations p50=%lld p95=%lld p99=%lld; avg "
      "machines %.2f; %lld reconfigurations; %lld infeasible plans "
      "(reactive fallbacks); %lld buckets rebalanced.\n",
      static_cast<long long>(violations.p50),
      static_cast<long long>(violations.p95),
      static_cast<long long>(violations.p99), metrics.AverageMachines(end),
      static_cast<long long>(migration.reconfigurations_completed()),
      static_cast<long long>(controller.infeasible_plans()),
      static_cast<long long>(balancer.buckets_moved()));
  std::printf(
      "The planned promotion is absorbed without violations (capacity "
      "was up before 17:00); the unplanned crowd costs a short burst "
      "until the boosted fallback catches up — the paper's composite "
      "strategy in action.\n");
  return 0;
}
