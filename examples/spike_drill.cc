// Spike drill: rehearse an unpredicted flash crowd (paper §4.3.1 and
// Fig. 11). The predictor believes in a calm day; the actual traffic
// doubles mid-afternoon. Compares P-Store's two fallback policies —
// keep migrating at the regular rate R, or boost to R x 8 — on SLA
// violations and time-to-recover.
//
// Build & run:  ./build/examples/spike_drill [magnitude]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "b2w/procedures.h"
#include "b2w/workload.h"
#include "common/logging.h"
#include "controller/predictive_controller.h"
#include "engine/workload_driver.h"
#include "prediction/naive_models.h"
#include "trace/b2w_trace_generator.h"
#include "trace/spike_injector.h"

using namespace pstore;

namespace {

struct DrillResult {
  SlaViolations violations;
  double first_violation_s = -1.0;
  double recovered_s = -1.0;
  int reconfigurations = 0;
};

DrillResult RunDrill(bool fast_fallback, double magnitude) {
  // Believed (calm) trace vs actual (spiked) trace, txn/s at 10x.
  B2wTraceOptions trace_options;
  trace_options.days = 1;
  trace_options.peak_requests_per_min = 9000.0;
  trace_options.seed = 15;
  const TimeSeries believed =
      GenerateB2wTrace(trace_options).Scaled(10.0 / 60.0);
  SpikeOptions spike;
  spike.start_slot = 660;  // on the afternoon shoulder
  spike.ramp_slots = 15;
  spike.sustain_slots = 90;
  spike.decay_slots = 90;
  spike.magnitude = magnitude;
  const TimeSeries actual = InjectSpike(believed, spike);

  ClusterOptions cluster_options;
  cluster_options.partitions_per_node = 6;
  cluster_options.max_nodes = 16;
  cluster_options.initial_nodes = 3;
  cluster_options.num_buckets = 3600;
  Cluster cluster(cluster_options);
  MetricsCollector metrics(1.0);
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  PSTORE_CHECK_OK(b2w::RegisterProcedures(&executor));
  b2w::Workload workload(b2w::B2wWorkloadOptions{});
  PSTORE_CHECK_OK(workload.LoadInitialData(&cluster));

  EventLoop loop;
  MigrationOptions migration_options;
  MigrationManager migration(&loop, &cluster, &metrics, migration_options);
  metrics.RecordMachines(0, cluster.active_nodes());

  // The predictor is an oracle over the *believed* trace: exactly the
  // "accurate predictions, wrong world" failure mode.
  OnlinePredictorOptions online_options;
  online_options.inflation = 1.15;
  online_options.refit_interval = 1u << 30;
  online_options.training_window = 10;
  OnlinePredictor predictor(std::make_unique<OraclePredictor>(believed),
                            online_options);
  PSTORE_CHECK_OK(predictor.Warmup(believed.Slice(0, 1)));

  PredictiveControllerOptions controller_options;
  controller_options.slot_sim_seconds = 6.0;
  controller_options.plan_slot_factor = 5;
  controller_options.horizon_plan_slots = 48;
  controller_options.fast_reactive_fallback = fast_fallback;
  controller_options.planner_params.target_rate_per_node = 285.0;
  controller_options.planner_params.max_rate_per_node = 350.0;
  controller_options.planner_params.partitions_per_node = 6;
  controller_options.planner_params.d_slots =
      SingleThreadFullMigrationSeconds(cluster.TotalDataBytes(),
                                       migration_options) /
      30.0;
  PredictiveController controller(&loop, &cluster, &executor, &migration,
                                  &predictor, controller_options);
  controller.Start();

  DriverOptions driver_options;
  driver_options.slot_sim_seconds = 6.0;
  driver_options.rate_factor = 1.0;
  WorkloadDriver driver(
      &loop, &executor, actual,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      driver_options);
  const SimTime end = FromSeconds(1440 * 6.0);
  driver.Start(end);
  loop.RunUntil(end);

  DrillResult result;
  const auto windows = metrics.Finalize(end);
  result.violations = MetricsCollector::CountViolations(windows);
  result.reconfigurations =
      static_cast<int>(migration.reconfigurations_completed());
  for (const auto& w : windows) {
    if (w.completed == 0) continue;
    if (w.p99_ms > 500.0) {
      if (result.first_violation_s < 0) {
        result.first_violation_s = w.start_seconds;
      }
      result.recovered_s = w.start_seconds + 1.0;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const double magnitude = argc > 1 ? std::atof(argv[1]) : 2.2;
  std::printf("Flash-crowd drill: afternoon traffic x%.1f that the "
              "predictor does not see coming.\n\n",
              magnitude);
  std::printf("%-12s %8s %8s %8s %12s %12s %10s\n", "fallback", "p50",
              "p95", "p99", "first viol", "last viol", "reconfigs");
  for (const bool fast : {false, true}) {
    const DrillResult result = RunDrill(fast, magnitude);
    std::printf("%-12s %8lld %8lld %8lld %11.0fs %11.0fs %10d\n",
                fast ? "rate R x 8" : "rate R",
                static_cast<long long>(result.violations.p50),
                static_cast<long long>(result.violations.p95),
                static_cast<long long>(result.violations.p99),
                result.first_violation_s, result.recovered_s,
                result.reconfigurations);
  }
  std::printf(
      "\nThe boosted migration accepts extra overhead while data moves "
      "but restores capacity sooner, cutting total violation-seconds "
      "(paper Fig. 11).\n");
  return 0;
}
