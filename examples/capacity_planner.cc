// Capacity planner: a what-if tool on the long-horizon simulator. Feeds
// weeks of (synthetic) load to each allocation strategy and reports the
// machine-hours bill and the % of time capacity would have been
// insufficient — the Fig. 12 analysis as a CLI.
//
// Build & run:  ./build/examples/capacity_planner [weeks] [Q]

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "prediction/naive_models.h"
#include "prediction/spar_model.h"
#include "sim/capacity_simulator.h"
#include "trace/b2w_trace_generator.h"

using namespace pstore;

int main(int argc, char** argv) {
  const int weeks = argc > 1 ? std::atoi(argv[1]) : 8;
  const double q = argc > 2 ? std::atof(argv[2]) : 285.0;
  const int days = weeks * 7;
  const int train_days = 28;
  if (days <= train_days) {
    std::printf("need more than %d days (got %d)\n", train_days, days);
    return 1;
  }

  B2wTraceOptions trace_options;
  trace_options.days = days;
  trace_options.peak_requests_per_min = 9000.0;
  trace_options.black_friday_day = days - 7;  // a surprise near the end
  trace_options.seed = 9;
  const TimeSeries trace = GenerateB2wTrace(trace_options).Scaled(10.0 / 60.0);
  const TimeSeries coarse = trace.DownsampleMean(5);

  SimOptions options;
  options.q = q;
  options.q_hat = 350.0;
  options.d_fine_slots = 77.0;
  options.partitions_per_node = 6;
  options.initial_nodes = 4;
  options.max_nodes = 60;
  options.eval_begin = static_cast<size_t>(train_days) * 1440;
  const CapacitySimulator sim(options);

  SparOptions spar_options;
  spar_options.period = 288;
  spar_options.num_periods = 7;
  spar_options.num_recent = 6;
  spar_options.max_tau = options.horizon_plan_slots;
  SparPredictor spar(spar_options);
  PSTORE_CHECK_OK(spar.Fit(coarse.Slice(0, train_days * 288)));

  const double eval_minutes =
      static_cast<double>(trace.size() - options.eval_begin);
  std::printf("Simulating %d weeks of load (Q = %.0f, Q-hat = %.0f, "
              "D = 77 min, Black Friday in the last week)\n\n",
              weeks, options.q, options.q_hat);
  std::printf("%-18s %16s %14s %10s\n", "strategy", "machine-hours",
              "insufficient %", "reconfigs");

  auto report = [&](const char* name, const StatusOr<SimResult>& result) {
    PSTORE_CHECK_OK(result.status());
    std::printf("%-18s %16.0f %14.3f %10d\n", name,
                result->machine_slots / 60.0,
                100.0 * result->insufficient_fraction,
                result->reconfigurations);
    (void)eval_minutes;
  };

  report("P-Store (SPAR)", sim.RunPredictive(trace, spar));
  OraclePredictor oracle(coarse);
  SimOptions oracle_options = options;
  oracle_options.inflation = 1.0;
  report("P-Store (Oracle)",
         CapacitySimulator(oracle_options).RunPredictive(trace, oracle));
  report("Reactive", sim.RunReactive(trace, ReactiveSimParams{}));
  SimpleSimParams simple;
  report("Simple (3..10)", sim.RunSimple(trace, simple));
  report("Static-10", sim.RunStatic(trace, 10));
  report("Static-6", sim.RunStatic(trace, 6));

  std::printf(
      "\nReading: pick the row with acceptable 'insufficient %%' and the "
      "lowest bill. Vary Q (arg 2) to trade cost against headroom.\n");
  return 0;
}
