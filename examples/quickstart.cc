// Quickstart: the P-Store pipeline in ~100 lines.
//
//   1. Obtain an aggregate load history (here: a synthetic B2W-like
//      trace; in production, your DBMS's request counters).
//   2. Fit the SPAR time-series model on a few weeks of history.
//   3. Forecast the next few hours.
//   4. Run the dynamic-programming planner to get the cheapest feasible
//      sequence of reconfigurations.
//   5. Expand the first move into a round-by-round migration schedule.
//
// Build & run:  ./build/examples/quickstart

#include <algorithm>
#include <cstdio>
#include <vector>

#include "planner/dp_planner.h"
#include "planner/migration_schedule.h"
#include "prediction/spar_model.h"
#include "trace/b2w_trace_generator.h"

using namespace pstore;

int main() {
  // 1. Thirty days of per-minute load (requests/minute).
  B2wTraceOptions trace_options;
  trace_options.days = 30;
  trace_options.seed = 1;
  const TimeSeries trace = GenerateB2wTrace(trace_options);
  std::printf("History: %zu minutes of load, peak %.0f req/min\n",
              trace.size(), trace.Max());

  // 2. Fit SPAR on the first 28 days: n = 7 daily periods, the last 30
  //    minutes as the transient signal, forecasts up to 4 hours out.
  SparOptions spar_options;
  spar_options.period = 1440;
  spar_options.num_periods = 7;
  spar_options.num_recent = 30;
  spar_options.max_tau = 240;
  spar_options.tau_stride = 5;
  SparPredictor spar(spar_options);
  const Status fit = spar.Fit(trace.Slice(0, 28 * 1440));
  if (!fit.ok()) {
    std::printf("SPAR fit failed: %s\n", fit.ToString().c_str());
    return 1;
  }

  // 3. Forecast the next 4 hours from "now" (end of day 28), planning
  //    on 5-minute slots. Predictions are inflated 15% for headroom.
  const TimeSeries history = trace.Slice(0, 28 * 1440 + 6 * 60);
  StatusOr<std::vector<double>> forecast = spar.PredictHorizon(history, 240);
  if (!forecast.ok()) {
    std::printf("forecast failed: %s\n", forecast.status().ToString().c_str());
    return 1;
  }

  // Convert to planning slots (max within each 5-minute window) with the
  // current measured load as slot 0.
  std::vector<double> load;
  load.push_back(history[history.size() - 1]);
  for (size_t slot = 0; slot < 48; ++slot) {
    double peak = 0.0;
    for (size_t j = 0; j < 5; ++j) {
      peak = std::max(peak, (*forecast)[slot * 5 + j] * 1.15);
    }
    load.push_back(peak);
  }

  // 4. Plan. Q is each server's target req/min rate; D is how long one
  //    sender-receiver pair would need to move the whole database,
  //    expressed in 5-minute planning slots (77 min => 15.4 slots).
  PlannerParams params;
  params.target_rate_per_node = 3600.0;  // req/min per server
  params.max_rate_per_node = 4400.0;
  params.d_slots = 15.4;
  params.partitions_per_node = 6;
  const DpPlanner planner(params);
  const NodeCount current_nodes(3);
  StatusOr<PlanResult> plan = planner.BestMoves(load, current_nodes);
  if (!plan.ok()) {
    std::printf("no feasible plan: %s (a reactive scale-out would kick "
                "in here)\n",
                plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\nPlanned moves over the next 4 hours (5-min slots), cost "
              "%.1f machine-slots:\n",
              plan->total_cost);
  for (const Move& move : plan->Condensed()) {
    std::printf("  %s\n", move.ToString().c_str());
  }

  // 5. Expand the first reconfiguration into its migration schedule.
  const Move* first = plan->FirstReconfiguration();
  if (first == nullptr) {
    std::printf("\nNo reconfiguration needed within the horizon.\n");
    return 0;
  }
  StatusOr<MigrationSchedule> schedule =
      BuildMigrationSchedule(first->nodes_before, first->nodes_after);
  if (schedule.ok()) {
    std::printf("\nFirst move %d -> %d expands to:\n%s",
                first->nodes_before.value(), first->nodes_after.value(),
                schedule->ToString().c_str());
  }
  return 0;
}
