#include "migration/squall_migrator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "b2w/procedures.h"
#include "b2w/schema.h"
#include "b2w/workload.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "engine/table.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"
#include "planner/move_model.h"

namespace pstore {
namespace {

ClusterOptions TestCluster(int initial_nodes, int max_nodes = 16) {
  ClusterOptions options;
  options.partitions_per_node = 2;
  options.max_nodes = max_nodes;
  options.initial_nodes = initial_nodes;
  options.num_buckets = 512;
  return options;
}

MigrationOptions FastMigration() {
  MigrationOptions options;
  options.net_rate_bytes_per_sec = 10e6;
  options.chunk_spacing_seconds = 0.01;
  options.extract_rate_bytes_per_sec = 200e6;
  options.chunk_bytes = 256 * 1024;
  return options;
}

void LoadData(Cluster* cluster, uint64_t rows, uint32_t row_bytes) {
  Row row;
  row.payload_bytes = row_bytes;
  for (uint64_t key = 0; key < rows; ++key) {
    const BucketId bucket = cluster->BucketForKey(key);
    row.f0 = static_cast<int64_t>(key);
    cluster->partition(cluster->PartitionOfBucket(bucket))
        .Put(bucket, 0, key, row);
  }
}

TEST(SustainedRateTest, MatchesClosedForm) {
  MigrationOptions options;
  options.net_rate_bytes_per_sec = 500e3;
  options.chunk_spacing_seconds = 2.0;
  options.chunk_bytes = 1000 * 1000;
  // 1 MB per (2 s transfer + 2 s spacing) = 250 kB/s.
  EXPECT_NEAR(SustainedPairRate(options), 250e3, 1e-6);
  EXPECT_NEAR(SustainedPairRate(options, 8.0), 2e6, 1e-3);
  // D for a 1106 MB database: ~4424 s (the paper measured 4646 s
  // including its 10% buffer).
  EXPECT_NEAR(SingleThreadFullMigrationSeconds(1106 * 1000 * 1000, options),
              4424.0, 1.0);
}

TEST(MigrationManagerTest, RejectsBadTargets) {
  Cluster cluster(TestCluster(2));
  EventLoop loop;
  MigrationManager manager(&loop, &cluster, nullptr, FastMigration());
  EXPECT_FALSE(manager.StartReconfiguration(NodeCount(2), 1.0, nullptr).ok());
  EXPECT_FALSE(manager.StartReconfiguration(NodeCount(0), 1.0, nullptr).ok());
  EXPECT_FALSE(manager.StartReconfiguration(NodeCount(17), 1.0, nullptr).ok());
  EXPECT_FALSE(manager.StartReconfiguration(NodeCount(3), 0.0, nullptr).ok());
}

TEST(MigrationManagerTest, RejectsConcurrentReconfiguration) {
  Cluster cluster(TestCluster(2));
  LoadData(&cluster, 2000, 1024);
  EventLoop loop;
  MigrationManager manager(&loop, &cluster, nullptr, FastMigration());
  ASSERT_TRUE(manager.StartReconfiguration(NodeCount(4), 1.0, nullptr).ok());
  EXPECT_TRUE(manager.InProgress());
  EXPECT_FALSE(manager.StartReconfiguration(NodeCount(6), 1.0, nullptr).ok());
  loop.RunToCompletion();
  EXPECT_FALSE(manager.InProgress());
}

// The load-bearing invariant: scale-out then scale-in moves every row
// without loss or duplication, leaves shares even, and empties released
// machines.
class MigrationRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MigrationRoundTrip, PreservesDataAndBalance) {
  const auto [from_nodes, to_nodes] = GetParam();
  Cluster cluster(TestCluster(from_nodes));
  const uint64_t kRows = 3000;
  LoadData(&cluster, kRows, 2048);
  const int64_t total_bytes = cluster.TotalDataBytes();

  EventLoop loop;
  MetricsCollector metrics;
  MigrationManager manager(&loop, &cluster, &metrics, FastMigration());
  bool done = false;
  ASSERT_TRUE(
      manager
          .StartReconfiguration(NodeCount(to_nodes), 1.0,
                                [&](const Status& s) { done = s.ok(); })
          .ok());
  loop.RunToCompletion();
  ASSERT_TRUE(done);
  EXPECT_FALSE(manager.InProgress());
  EXPECT_EQ(cluster.active_nodes(), to_nodes);

  // No rows lost or duplicated.
  EXPECT_EQ(cluster.TotalRowCount(), static_cast<int64_t>(kRows));
  EXPECT_EQ(cluster.TotalDataBytes(), total_bytes);

  // Every row is reachable through routing.
  for (uint64_t key = 0; key < kRows; key += 17) {
    const BucketId bucket = cluster.BucketForKey(key);
    const Row* row =
        cluster.partition(cluster.PartitionOfBucket(bucket)).Get(bucket, 0,
                                                                 key);
    ASSERT_NE(row, nullptr) << "key " << key;
    EXPECT_EQ(row->f0, static_cast<int64_t>(key));
  }

  // Shares even to within bucket granularity (~ a few buckets).
  const double mean =
      static_cast<double>(total_bytes) / static_cast<double>(to_nodes);
  for (int node = 0; node < to_nodes; ++node) {
    EXPECT_NEAR(static_cast<double>(cluster.NodeDataBytes(node)) / mean, 1.0,
                0.25)
        << "node " << node;
  }

  // Released machines hold nothing.
  for (int node = to_nodes; node < cluster.options().max_nodes; ++node) {
    EXPECT_EQ(cluster.NodeDataBytes(node), 0) << "node " << node;
  }
}

INSTANTIATE_TEST_SUITE_P(
    UpAndDown, MigrationRoundTrip,
    ::testing::Values(std::make_tuple(1, 2), std::make_tuple(2, 1),
                      std::make_tuple(2, 4), std::make_tuple(4, 2),
                      std::make_tuple(3, 5), std::make_tuple(5, 3),
                      std::make_tuple(3, 9), std::make_tuple(9, 3),
                      std::make_tuple(3, 7), std::make_tuple(7, 3),
                      std::make_tuple(2, 3), std::make_tuple(4, 10),
                      std::make_tuple(10, 4)));

TEST(MigrationManagerTest, DurationTracksModel) {
  // Reconfiguration time must match Eq. 3 with D derived from the
  // sustained pair rate.
  Cluster cluster(TestCluster(2, 8));
  LoadData(&cluster, 4000, 4096);
  const int64_t db_bytes = cluster.TotalDataBytes();
  const MigrationOptions options = FastMigration();

  EventLoop loop;
  MigrationManager manager(&loop, &cluster, nullptr, options);
  SimTime finished_at = -1;
  ASSERT_TRUE(
      manager
          .StartReconfiguration(
              NodeCount(4), 1.0, [&](const Status&) { finished_at = loop.now(); })
          .ok());
  loop.RunToCompletion();
  ASSERT_GE(finished_at, 0);

  PlannerParams params;
  params.target_rate_per_node = 1.0;
  params.d_slots = SingleThreadFullMigrationSeconds(db_bytes, options);
  params.partitions_per_node = 2;
  const double expected_seconds =
      MoveTime(NodeCount(2), NodeCount(4), params);
  EXPECT_NEAR(ToSeconds(finished_at), expected_seconds,
              expected_seconds * 0.35 + 1.0);
}

TEST(MigrationManagerTest, FractionMovedProgresses) {
  Cluster cluster(TestCluster(2, 8));
  LoadData(&cluster, 4000, 4096);
  EventLoop loop;
  MigrationManager manager(&loop, &cluster, nullptr, FastMigration());
  ASSERT_TRUE(manager.StartReconfiguration(NodeCount(4), 1.0, nullptr).ok());
  EXPECT_LT(manager.FractionMoved(), 0.5);
  // Run halfway through the expected duration.
  loop.RunUntil(loop.now() + 2 * kSecond);
  const double midway = manager.FractionMoved();
  loop.RunToCompletion();
  EXPECT_GE(manager.FractionMoved(), midway);
  EXPECT_EQ(manager.FractionMoved(), 1.0);  // idle => 1.0
  EXPECT_GT(manager.total_bytes_moved(), 0);
  EXPECT_EQ(manager.reconfigurations_completed(), 1);
}

TEST(MigrationManagerTest, HigherRateMultiplierIsFaster) {
  auto run = [](double multiplier) {
    Cluster cluster(TestCluster(1, 4));
    LoadData(&cluster, 3000, 4096);
    EventLoop loop;
    MigrationManager manager(&loop, &cluster, nullptr, FastMigration());
    SimTime finished_at = 0;
    PSTORE_CHECK_OK(manager.StartReconfiguration(
        NodeCount(2), multiplier, [&](const Status&) { finished_at = loop.now(); }));
    loop.RunToCompletion();
    return finished_at;
  };
  const SimTime slow = run(1.0);
  const SimTime fast = run(8.0);
  EXPECT_LT(fast, slow);
  EXPECT_NEAR(static_cast<double>(slow) / static_cast<double>(fast), 8.0,
              2.0);
}

TEST(MigrationManagerTest, ChunkWorkBlocksPartitions) {
  Cluster cluster(TestCluster(1, 4));
  LoadData(&cluster, 3000, 4096);
  EventLoop loop;
  MigrationOptions options = FastMigration();
  options.extract_rate_bytes_per_sec = 1e6;  // heavy per-chunk blocking
  MigrationManager manager(&loop, &cluster, nullptr, options);
  ASSERT_TRUE(manager.StartReconfiguration(NodeCount(2), 1.0, nullptr).ok());
  loop.RunToCompletion();
  // Source partitions must have been busy with extraction work.
  SimTime busy = 0;
  for (int p = 0; p < 4; ++p) {
    busy += cluster.partition(p).total_busy_time();
  }
  EXPECT_GT(busy, 0);
}

TEST(MigrationManagerTest, RoutingStaysCorrectMidMigration) {
  // Submit reads continuously during a migration: every key must always
  // resolve to a partition that actually has its row.
  Cluster cluster(TestCluster(2, 8));
  const uint64_t kRows = 2000;
  LoadData(&cluster, kRows, 2048);
  EventLoop loop;
  MigrationManager manager(&loop, &cluster, nullptr, FastMigration());
  bool done = false;
  ASSERT_TRUE(
      manager
          .StartReconfiguration(NodeCount(5), 1.0,
                                [&](const Status& s) { done = s.ok(); })
          .ok());

  Rng rng(4);
  int probes = 0;
  while (!done) {
    loop.RunUntil(loop.now() + 50 * kMillisecond);
    for (int i = 0; i < 20; ++i) {
      const uint64_t key = rng.NextUint64(kRows);
      const BucketId bucket = cluster.BucketForKey(key);
      const Row* row = cluster.partition(cluster.PartitionOfBucket(bucket))
                           .Get(bucket, 0, key);
      ASSERT_NE(row, nullptr) << "key " << key << " mid-migration";
      ++probes;
    }
    if (loop.pending_events() == 0) break;
  }
  EXPECT_TRUE(done);
  EXPECT_GT(probes, 20);
}

}  // namespace
}  // namespace pstore
