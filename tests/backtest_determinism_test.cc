// Determinism gate: the backtest harness must produce byte-identical
// CSV output (and therefore identical rankings) for every worker-thread
// count — models are scored independently and merged by input index, so
// threading must never leak into the numbers.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/time_series.h"
#include "prediction/backtest.h"
#include "prediction/predictor_spec.h"

namespace pstore {
namespace {

constexpr size_t kPeriod = 48;

TimeSeries NoisyPeriodicSeries(int periods, uint64_t seed) {
  Rng rng(seed);
  TimeSeries out(60.0);
  for (int p = 0; p < periods; ++p) {
    for (size_t s = 0; s < kPeriod; ++s) {
      const double phase = 2.0 * M_PI * static_cast<double>(s) / kPeriod;
      double value = 100.0 + 50.0 * std::sin(phase);
      value *= 1.0 + 0.03 * rng.NextGaussian();
      out.Append(value);
    }
  }
  return out;
}

TEST(BacktestDeterminismTest, CsvIsByteIdenticalAcrossThreadCounts) {
  const StatusOr<std::vector<PredictorSpec>> specs = ParsePredictorSpecList(
      "spar(n=3,m=6),ar(p=8),hw,mf(rank=3),last_value,"
      "shift(spar(n=3,m=6),window=24,threshold=1.5,min_mre=0.05,"
      "cooldown=96),ensemble(spar(n=3,m=6),ar(p=8),epoch=24,window=24)");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();

  const TimeSeries series = NoisyPeriodicSeries(12, 17);
  PredictorContext context;
  context.period = kPeriod;
  context.max_tau = 8;

  std::string baseline;
  for (const int threads : {1, 2, 5, 16}) {
    BacktestOptions options;
    options.eval_begin = 8 * kPeriod;
    options.horizon = 4;
    options.refit_epoch = kPeriod;
    options.focus_begin = 10 * kPeriod;
    options.focus_end = 12 * kPeriod;
    options.threads = threads;
    const StatusOr<BacktestResult> result =
        RunBacktest(*specs, series, context, options);
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    ASSERT_EQ(result->models.size(), specs->size());
    const std::string csv = BacktestCsv(*result);
    if (baseline.empty()) {
      baseline = csv;
      // The serial pass is the golden path: every model must have run.
      for (const BacktestModelResult& model : result->models) {
        EXPECT_TRUE(model.ok) << model.model_name << ": " << model.error;
      }
    } else {
      EXPECT_EQ(csv, baseline) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace pstore
