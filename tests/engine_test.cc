#include <gtest/gtest.h>

#include <cmath>

#include "b2w/procedures.h"
#include "b2w/schema.h"
#include "b2w/workload.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/time_series.h"
#include "engine/cluster.h"
#include "engine/event_loop.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "engine/transaction.h"
#include "engine/txn_executor.h"
#include "engine/workload_driver.h"

namespace pstore {
namespace {

ClusterOptions OneNodeCluster() {
  ClusterOptions options;
  options.partitions_per_node = 6;
  options.max_nodes = 4;
  options.initial_nodes = 1;
  options.num_buckets = 600;
  return options;
}

// ---- Executor ---------------------------------------------------------------

TEST(TxnExecutorTest, UnknownProcedureAborts) {
  Cluster cluster(OneNodeCluster());
  MetricsCollector metrics;
  TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
  TxnRequest request;
  request.procedure = 63;
  const TxnResult result = executor.Submit(request, 0);
  EXPECT_EQ(result.status, TxnStatus::kUnknownProcedure);
  EXPECT_EQ(executor.aborted_count(), 1);
}

TEST(TxnExecutorTest, RegistrationGuards) {
  Cluster cluster(OneNodeCluster());
  TxnExecutor executor(&cluster, nullptr, ExecutorOptions{});
  ASSERT_TRUE(b2w::RegisterProcedures(&executor).ok());
  // Double registration rejected.
  EXPECT_FALSE(b2w::RegisterProcedures(&executor).ok());
}

TEST(TxnExecutorTest, ExecutesProcedureLogicAndChargesService) {
  Cluster cluster(OneNodeCluster());
  MetricsCollector metrics;
  ExecutorOptions options;
  options.mean_service_seconds = 0.010;
  TxnExecutor executor(&cluster, &metrics, options);
  ASSERT_TRUE(b2w::RegisterProcedures(&executor).ok());

  TxnRequest request;
  request.procedure = b2w::kAddLineToCart;
  request.key = b2w::CartKey(1);
  request.arg = b2w::kNewCartFlag | 100;
  const TxnResult result = executor.Submit(request, 0);
  EXPECT_EQ(result.status, TxnStatus::kCommitted);
  EXPECT_EQ(executor.committed_count(), 1);

  // The row landed on the partition owning the key's bucket.
  const BucketId bucket = cluster.BucketForKey(request.key);
  const Partition& partition =
      cluster.partition(cluster.PartitionOfBucket(bucket));
  EXPECT_EQ(partition.jobs_executed(), 1);
  EXPECT_GT(partition.total_busy_time(), 0);
  ASSERT_NE(partition.Get(bucket, b2w::kCartTable, request.key), nullptr);
}

TEST(TxnExecutorTest, PerProcedureStatsTracked) {
  Cluster cluster(OneNodeCluster());
  TxnExecutor executor(&cluster, nullptr, ExecutorOptions{});
  ASSERT_TRUE(b2w::RegisterProcedures(&executor).ok());
  // Two commits of AddLineToCart and one abort of GetCart (missing key).
  TxnRequest add;
  add.procedure = b2w::kAddLineToCart;
  add.key = b2w::CartKey(1);
  add.arg = b2w::kNewCartFlag | 100;
  executor.Submit(add, 0);
  add.arg = 100;
  executor.Submit(add, 1);
  TxnRequest get;
  get.procedure = b2w::kGetCart;
  get.key = b2w::CartKey(999);
  executor.Submit(get, 2);

  EXPECT_EQ(executor.procedure_stats(b2w::kAddLineToCart).committed, 2);
  EXPECT_EQ(executor.procedure_stats(b2w::kAddLineToCart).aborted, 0);
  EXPECT_EQ(executor.procedure_stats(b2w::kGetCart).committed, 0);
  EXPECT_EQ(executor.procedure_stats(b2w::kGetCart).aborted, 1);
  EXPECT_EQ(executor.procedure_stats(b2w::kDeleteCart).committed, 0);
}

TEST(TxnExecutorTest, SingleNodeSaturatesNearCalibratedRate) {
  // The calibration behind Fig. 7: with the default service model, a
  // 6-partition node keeps tail latency bounded at 285 txn/s (Q) and
  // melts down at ~550 txn/s (beyond the ~438 saturation point).
  for (const auto& [rate, should_saturate] :
       {std::pair<double, bool>{285.0, false},
        std::pair<double, bool>{550.0, true}}) {
    Cluster cluster(OneNodeCluster());
    MetricsCollector metrics;
    TxnExecutor executor(&cluster, &metrics, ExecutorOptions{});
    ASSERT_TRUE(b2w::RegisterProcedures(&executor).ok());
    b2w::B2wWorkloadOptions wl_options;
    wl_options.cart_pool = 20000;
    wl_options.checkout_pool = 8000;
    b2w::Workload workload(wl_options);
    ASSERT_TRUE(workload.LoadInitialData(&cluster).ok());

    EventLoop loop;
    TimeSeries trace(60.0, std::vector<double>(10, rate));
    DriverOptions driver_options;
    driver_options.slot_sim_seconds = 6.0;
    driver_options.rate_factor = 1.0;  // trace already in txn/s
    WorkloadDriver driver(
        &loop, &executor, trace,
        [&workload](Rng& rng) { return workload.NextTransaction(rng); },
        driver_options);
    driver.Start(60 * kSecond);
    loop.RunUntil(60 * kSecond);

    const auto windows = metrics.Finalize(60 * kSecond);
    // Inspect the last 10 seconds.
    double p99_ms = 0.0;
    for (size_t w = windows.size() - 10; w < windows.size(); ++w) {
      p99_ms = std::max(p99_ms, windows[w].p99_ms);
    }
    if (should_saturate) {
      EXPECT_GT(p99_ms, 500.0) << "rate " << rate;
    } else {
      // M/M/1 at utilization 0.65 per partition: p99 sojourn ~180 ms.
      EXPECT_LT(p99_ms, 450.0) << "rate " << rate;
    }
  }
}

// ---- Driver ------------------------------------------------------------------

TEST(WorkloadDriverTest, ArrivalCountTracksTrace) {
  Cluster cluster(OneNodeCluster());
  TxnExecutor executor(&cluster, nullptr, ExecutorOptions{});
  ASSERT_TRUE(b2w::RegisterProcedures(&executor).ok());
  EventLoop loop;
  // 100 txn/s for 30 slots of 1 s each.
  TimeSeries trace(1.0, std::vector<double>(30, 100.0));
  DriverOptions options;
  options.slot_sim_seconds = 1.0;
  options.rate_factor = 1.0;
  options.seed = 12;
  b2w::Workload workload(b2w::B2wWorkloadOptions{});
  WorkloadDriver driver(
      &loop, &executor, trace,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      options);
  driver.Start(30 * kSecond);
  loop.RunUntil(30 * kSecond);
  // Poisson(3000) total: within 5 sigma.
  EXPECT_NEAR(static_cast<double>(driver.arrivals_generated()), 3000.0,
              5.0 * std::sqrt(3000.0));
  EXPECT_EQ(executor.submitted_count(), driver.arrivals_generated());
}

TEST(WorkloadDriverTest, OfferedRateFollowsSlots) {
  Cluster cluster(OneNodeCluster());
  TxnExecutor executor(&cluster, nullptr, ExecutorOptions{});
  EventLoop loop;
  TimeSeries trace(60.0, {60.0, 120.0});  // req/min
  DriverOptions options;
  options.slot_sim_seconds = 6.0;
  options.rate_factor = 10.0 / 60.0;  // 10x accelerated replay
  b2w::Workload workload(b2w::B2wWorkloadOptions{});
  WorkloadDriver driver(
      &loop, &executor, trace,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      options);
  EXPECT_NEAR(driver.OfferedRate(0), 10.0, 1e-9);
  EXPECT_NEAR(driver.OfferedRate(7 * kSecond), 20.0, 1e-9);
  EXPECT_EQ(driver.OfferedRate(13 * kSecond), 0.0);  // past the trace
}

TEST(WorkloadDriverTest, StartSlotOffset) {
  Cluster cluster(OneNodeCluster());
  TxnExecutor executor(&cluster, nullptr, ExecutorOptions{});
  EventLoop loop;
  TimeSeries trace(60.0, {60.0, 120.0, 180.0});
  DriverOptions options;
  options.slot_sim_seconds = 6.0;
  options.rate_factor = 1.0;
  options.start_slot = 2;
  b2w::Workload workload(b2w::B2wWorkloadOptions{});
  WorkloadDriver driver(
      &loop, &executor, trace,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      options);
  EXPECT_NEAR(driver.OfferedRate(0), 180.0, 1e-9);
}

TEST(WorkloadDriverTest, FractionalSlotsRateTicksPiecewise) {
  // Regression: Tick() sampled OfferedRate once at tick start for the
  // whole 1 s batch. With a fractional slot_sim_seconds a trace-slot
  // boundary lands mid-tick and the whole tick was generated at the old
  // slot's rate. Here slot 0 (rate 0) covers [0, 1.5) and slot 1 (rate
  // 400) covers [1.5, 3.0): the tick spanning [1, 2) starts in the
  // silent slot, so the pre-fix driver produced zero arrivals by t = 2 s
  // even though [1.5, 2.0) should see Poisson(200) of them.
  Cluster cluster(OneNodeCluster());
  TxnExecutor executor(&cluster, nullptr, ExecutorOptions{});
  ASSERT_TRUE(b2w::RegisterProcedures(&executor).ok());
  EventLoop loop;
  TimeSeries trace(60.0, {0.0, 400.0});
  DriverOptions options;
  options.slot_sim_seconds = 1.5;
  options.rate_factor = 1.0;
  options.seed = 9;
  b2w::Workload workload(b2w::B2wWorkloadOptions{});
  WorkloadDriver driver(
      &loop, &executor, trace,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      options);
  driver.Start(2 * kSecond);
  loop.RunUntil(2 * kSecond);
  // Poisson(200) over the half-second at 400 txn/s: within 5 sigma.
  EXPECT_NEAR(static_cast<double>(driver.arrivals_generated()), 200.0,
              5.0 * std::sqrt(200.0));
}

TEST(WorkloadDriverTest, FractionalSlotsStopAtMidTickBoundary) {
  // The mirror case: the rate drops to zero at a mid-tick boundary
  // (t = 1.5 s), so arrivals over [0, 3) must track 1.5 s of load, not
  // the full 2 ticks the start-of-tick sample would produce.
  Cluster cluster(OneNodeCluster());
  TxnExecutor executor(&cluster, nullptr, ExecutorOptions{});
  ASSERT_TRUE(b2w::RegisterProcedures(&executor).ok());
  EventLoop loop;
  TimeSeries trace(60.0, {400.0, 0.0});
  DriverOptions options;
  options.slot_sim_seconds = 1.5;
  options.rate_factor = 1.0;
  options.seed = 9;
  b2w::Workload workload(b2w::B2wWorkloadOptions{});
  WorkloadDriver driver(
      &loop, &executor, trace,
      [&workload](Rng& rng) { return workload.NextTransaction(rng); },
      options);
  driver.Start(3 * kSecond);
  loop.RunUntil(3 * kSecond);
  // Poisson(600) over [0, 1.5): within 5 sigma — and clearly below the
  // ~800 a whole-tick sample of slot 0's rate would generate.
  EXPECT_NEAR(static_cast<double>(driver.arrivals_generated()), 600.0,
              5.0 * std::sqrt(600.0));
}

TEST(WorkloadDriverTest, DeterministicReplay) {
  auto run = [] {
    Cluster cluster(OneNodeCluster());
    TxnExecutor executor(&cluster, nullptr, ExecutorOptions{});
    EXPECT_TRUE(b2w::RegisterProcedures(&executor).ok());
    EventLoop loop;
    TimeSeries trace(1.0, std::vector<double>(10, 200.0));
    DriverOptions options;
    options.slot_sim_seconds = 1.0;
    options.rate_factor = 1.0;
    options.seed = 77;
    b2w::B2wWorkloadOptions wl;
    wl.cart_pool = 1000;
    wl.checkout_pool = 500;
    b2w::Workload workload(wl);
    EXPECT_TRUE(workload.LoadInitialData(&cluster).ok());
    WorkloadDriver driver(
        &loop, &executor, trace,
        [&workload](Rng& rng) { return workload.NextTransaction(rng); },
        options);
    driver.Start(10 * kSecond);
    loop.RunUntil(10 * kSecond);
    return std::make_pair(driver.arrivals_generated(),
                          cluster.TotalDataBytes());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace pstore
