#include "planner/dp_planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/strong_id.h"
#include "common/thread_pool.h"
#include "planner/brute_force_planner.h"
#include "planner/move.h"
#include "planner/move_model.h"
#include "planner/move_model_table.h"

namespace pstore {
namespace {

PlannerParams FastParams() {
  PlannerParams params;
  params.target_rate_per_node = 100.0;
  params.max_rate_per_node = 123.0;
  params.d_slots = 4.0;
  params.partitions_per_node = 1;
  return params;
}

// Verifies the feasibility invariant the DP promises: walking the plan,
// predicted load never exceeds the effective capacity implied by each
// move's progress.
void CheckPlanFeasible(const PlanResult& plan,
                       const std::vector<double>& load,
                       const PlannerParams& params, int initial_nodes) {
  ASSERT_FALSE(plan.moves.empty());
  EXPECT_EQ(plan.moves.front().start_slot, TimeStep(0));
  EXPECT_EQ(plan.moves.front().nodes_before, NodeCount(initial_nodes));
  EXPECT_EQ(plan.moves.back().end_slot,
            TimeStep(static_cast<int>(load.size()) - 1));
  EXPECT_LE(load[0], Capacity(NodeCount(initial_nodes), params));
  TimeStep prev_end(0);
  NodeCount prev_nodes(initial_nodes);
  for (const Move& move : plan.moves) {
    EXPECT_EQ(move.start_slot, prev_end);
    EXPECT_EQ(move.nodes_before, prev_nodes);
    const int duration = move.DurationSlots();
    EXPECT_GE(duration, 1);
    for (int i = 1; i <= duration; ++i) {
      const double fraction =
          static_cast<double>(i) / static_cast<double>(duration);
      const double cap = EffectiveCapacity(move.nodes_before,
                                           move.nodes_after, fraction,
                                           params);
      EXPECT_LE(load[static_cast<size_t>(move.start_slot.value() + i)],
                cap + 1e-9)
          << "slot " << move.start_slot + i << " during move "
          << move.ToString();
    }
    prev_end = move.end_slot;
    prev_nodes = move.nodes_after;
  }
  EXPECT_EQ(prev_nodes, plan.final_nodes);
}

TEST(DpPlannerTest, RejectsDegenerateInputs) {
  const DpPlanner planner(FastParams());
  EXPECT_FALSE(planner.BestMoves({100.0}, NodeCount(2)).ok());
  EXPECT_FALSE(planner.BestMoves({100.0, 100.0}, NodeCount(0)).ok());
}

TEST(DpPlannerTest, FlatLoadDoesNothing) {
  const DpPlanner planner(FastParams());
  const std::vector<double> load(10, 150.0);  // needs 2 nodes
  StatusOr<PlanResult> plan = planner.BestMoves(load, NodeCount(2));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->final_nodes, NodeCount(2));
  EXPECT_EQ(plan->FirstReconfiguration(), nullptr);
  // Cost: 2 machines for 10 slots (slot 0 through 9).
  EXPECT_NEAR(plan->total_cost, 20.0, 1e-9);
}

TEST(DpPlannerTest, ScalesOutAheadOfRamp) {
  const DpPlanner planner(FastParams());
  // Load jumps from 150 to 350 at slot 8: needs 2 -> 4 nodes; the move
  // takes ceil((4/2)*(1 - 2/4)) = 4 slots, so it must start by slot 4.
  std::vector<double> load(12, 150.0);
  for (size_t t = 8; t < load.size(); ++t) load[t] = 350.0;
  StatusOr<PlanResult> plan = planner.BestMoves(load, NodeCount(2));
  ASSERT_TRUE(plan.ok());
  CheckPlanFeasible(*plan, load, FastParams(), 2);
  EXPECT_EQ(plan->final_nodes, NodeCount(4));
  const Move* first = plan->FirstReconfiguration();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->nodes_after, NodeCount(4));
  // Effective capacity during 2->4 reaches 350 only near the end of the
  // move, so the move must complete just as (or before) the ramp hits.
  EXPECT_LE(first->end_slot, TimeStep(8));
  // Cost minimization: the move should start as late as possible.
  EXPECT_GE(first->start_slot, TimeStep(3));
}

TEST(DpPlannerTest, ScaleInDelayedUntilLoadDrops) {
  const DpPlanner planner(FastParams());
  std::vector<double> load(12, 380.0);  // needs 4 nodes
  for (size_t t = 4; t < load.size(); ++t) load[t] = 90.0;  // needs 1
  StatusOr<PlanResult> plan = planner.BestMoves(load, NodeCount(4));
  ASSERT_TRUE(plan.ok());
  CheckPlanFeasible(*plan, load, FastParams(), 4);
  EXPECT_EQ(plan->final_nodes, NodeCount(1));
  const Move* first = plan->FirstReconfiguration();
  ASSERT_NE(first, nullptr);
  EXPECT_LT(first->nodes_after, NodeCount(4));
  // Cannot start shedding capacity while load is still high.
  EXPECT_GE(first->start_slot, TimeStep(3));
}

TEST(DpPlannerTest, InfeasibleWhenRampTooFast) {
  const DpPlanner planner(FastParams());
  // Load explodes next slot; migration cannot complete in time.
  std::vector<double> load = {150.0, 800.0, 800.0, 800.0};
  StatusOr<PlanResult> plan = planner.BestMoves(load, NodeCount(2));
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInfeasible);
}

TEST(DpPlannerTest, InfeasibleWhenCurrentLoadExceedsCapacity) {
  const DpPlanner planner(FastParams());
  const std::vector<double> load(6, 500.0);
  EXPECT_FALSE(planner.BestMoves(load, NodeCount(2)).ok());
}

TEST(DpPlannerTest, EndsWithMinimalMachines) {
  const DpPlanner planner(FastParams());
  // A hump in the middle: scale out then back in; final count minimal.
  std::vector<double> load(24, 120.0);
  for (int t = 8; t < 12; ++t) load[t] = 290.0;
  StatusOr<PlanResult> plan = planner.BestMoves(load, NodeCount(2));
  ASSERT_TRUE(plan.ok());
  CheckPlanFeasible(*plan, load, FastParams(), 2);
  EXPECT_EQ(plan->final_nodes, NodeCount(2));
  // Somewhere mid-plan we must have had >= 3 nodes.
  int peak_nodes = 0;
  for (const Move& move : plan->moves) {
    peak_nodes = std::max(peak_nodes, move.nodes_after.value());
  }
  EXPECT_GE(peak_nodes, 3);
}

TEST(DpPlannerTest, NodesForRounding) {
  const DpPlanner planner(FastParams());
  EXPECT_EQ(planner.NodesFor(0.0), NodeCount(1));
  EXPECT_EQ(planner.NodesFor(99.9), NodeCount(1));
  EXPECT_EQ(planner.NodesFor(100.0), NodeCount(1));
  EXPECT_EQ(planner.NodesFor(100.1), NodeCount(2));
  EXPECT_EQ(planner.NodesFor(1000.0), NodeCount(10));
}

TEST(DpPlannerTest, MoveSlotsAtLeastOne) {
  const DpPlanner planner(FastParams());
  EXPECT_EQ(planner.MoveSlots(NodeCount(3), NodeCount(3)), 1);
  EXPECT_GE(planner.MoveSlots(NodeCount(3), NodeCount(4)), 1);
  // 3 -> 4 with D = 4: (4/1)*(1/4) = 1.0 slots -> 1.
  EXPECT_EQ(planner.MoveSlots(NodeCount(3), NodeCount(4)), 1);
  // 2 -> 4 with D = 4: (4/2)*(1/2) = 1.0 -> 1.
  EXPECT_EQ(planner.MoveSlots(NodeCount(2), NodeCount(4)), 1);
  // 1 -> 2 with D = 4: (4/1)*(1/2) = 2.
  EXPECT_EQ(planner.MoveSlots(NodeCount(1), NodeCount(2)), 2);
}

TEST(DpPlannerTest, ChargedCostCoversWholeSlots) {
  const DpPlanner planner(FastParams());
  // The charged cost must be at least Eq. 4's cost and at most the full
  // integral duration at the larger machine count.
  for (int b = 1; b <= 8; ++b) {
    for (int a = 1; a <= 8; ++a) {
      if (a == b) continue;
      const double charged = planner.MoveCostCharged(NodeCount(b), NodeCount(a));
      EXPECT_GE(charged, MoveCost(NodeCount(b), NodeCount(a), FastParams()) - 1e-9);
      EXPECT_LE(charged,
                planner.MoveSlots(NodeCount(b), NodeCount(a)) *
                        static_cast<double>(std::max(a, b)) +
                    1e-9);
    }
  }
}

// ---- Equivalence with exhaustive search -------------------------------------

struct BruteForceCase {
  uint64_t seed;
  int horizon;
  double base_load;
  double swing;
  int initial_nodes;
};

class DpVersusBruteForce : public ::testing::TestWithParam<BruteForceCase> {};

TEST_P(DpVersusBruteForce, SameFinalNodesAndCost) {
  const BruteForceCase& test_case = GetParam();
  PlannerParams params = FastParams();
  params.d_slots = 3.0;
  Rng rng(test_case.seed);
  std::vector<double> load;
  for (int t = 0; t <= test_case.horizon; ++t) {
    load.push_back(test_case.base_load +
                   test_case.swing * rng.NextDouble());
  }
  const DpPlanner dp(params);
  const BruteForcePlanner brute(params);
  StatusOr<PlanResult> dp_plan = dp.BestMoves(load, NodeCount(test_case.initial_nodes));
  StatusOr<PlanResult> bf_plan =
      brute.BestMoves(load, NodeCount(test_case.initial_nodes));
  ASSERT_EQ(dp_plan.ok(), bf_plan.ok());
  if (!dp_plan.ok()) return;
  EXPECT_EQ(dp_plan->final_nodes, bf_plan->final_nodes);
  EXPECT_NEAR(dp_plan->total_cost, bf_plan->total_cost, 1e-6);
  CheckPlanFeasible(*dp_plan, load, params, test_case.initial_nodes);
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, DpVersusBruteForce,
    ::testing::Values(BruteForceCase{1, 6, 80, 200, 1},
                      BruteForceCase{2, 6, 80, 200, 2},
                      BruteForceCase{3, 7, 150, 150, 3},
                      BruteForceCase{4, 7, 50, 300, 1},
                      BruteForceCase{5, 8, 120, 120, 2},
                      BruteForceCase{6, 8, 200, 100, 4},
                      BruteForceCase{7, 5, 90, 250, 2},
                      BruteForceCase{8, 6, 60, 60, 1},
                      BruteForceCase{9, 7, 300, 80, 4},
                      BruteForceCase{10, 8, 100, 180, 3},
                      BruteForceCase{11, 6, 250, 140, 3},
                      BruteForceCase{12, 7, 70, 220, 1}));

// The planner must also agree with brute force on ramps that force
// multi-step scale-outs.
TEST(DpVersusBruteForceRamp, StepRamp) {
  PlannerParams params = FastParams();
  params.d_slots = 2.0;
  std::vector<double> load;
  for (int t = 0; t <= 8; ++t) {
    load.push_back(90.0 + 40.0 * t);  // 90 .. 410
  }
  const DpPlanner dp(params);
  const BruteForcePlanner brute(params);
  StatusOr<PlanResult> dp_plan = dp.BestMoves(load, NodeCount(1));
  StatusOr<PlanResult> bf_plan = brute.BestMoves(load, NodeCount(1));
  ASSERT_EQ(dp_plan.ok(), bf_plan.ok());
  if (dp_plan.ok()) {
    EXPECT_EQ(dp_plan->final_nodes, bf_plan->final_nodes);
    EXPECT_NEAR(dp_plan->total_cost, bf_plan->total_cost, 1e-6);
  }
}

// ---- Parallel brute force ---------------------------------------------------

// The parallel candidate search must return the *same plan* — ties
// included — as the serial search, for any thread count.
TEST(BruteForcePlannerTest, ParallelSearchMatchesSerial) {
  PlannerParams params = FastParams();
  params.d_slots = 3.0;
  const BruteForcePlanner serial(params);
  for (const uint64_t seed : {21u, 22u, 23u, 24u, 25u, 26u}) {
    Rng rng(seed);
    std::vector<double> load;
    for (int t = 0; t <= 7; ++t) {
      load.push_back(60.0 + 260.0 * rng.NextDouble());
    }
    const NodeCount initial(1 + static_cast<int>(seed % 4));
    StatusOr<PlanResult> serial_plan = serial.BestMoves(load, initial);
    for (int threads : {2, 8}) {
      ThreadPool pool(threads);
      BruteForcePlanner parallel(params);
      parallel.set_thread_pool(&pool);
      StatusOr<PlanResult> parallel_plan = parallel.BestMoves(load, initial);
      ASSERT_EQ(serial_plan.ok(), parallel_plan.ok())
          << "seed " << seed << " threads " << threads;
      if (!serial_plan.ok()) continue;
      EXPECT_EQ(serial_plan->moves, parallel_plan->moves)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(serial_plan->total_cost, parallel_plan->total_cost);
      EXPECT_EQ(serial_plan->final_nodes, parallel_plan->final_nodes);
    }
  }
}

// ---- Move-model table -------------------------------------------------------

// Plans must not change when the planner looks Eqs. 3-4 up in a
// precomputed table instead of recomputing them per transition.
TEST(DpPlannerTest, TableBackedPlansAreIdentical) {
  PlannerParams params = FastParams();
  params.d_slots = 4.0;
  const DpPlanner direct(params);
  DpPlanner table_backed(params);
  const MoveModelTable table(params, NodeCount(16));
  table_backed.set_move_table(&table);

  for (int before = 1; before <= 16; ++before) {
    for (int after = 1; after <= 16; ++after) {
      EXPECT_EQ(direct.MoveSlots(NodeCount(before), NodeCount(after)),
                table_backed.MoveSlots(NodeCount(before), NodeCount(after)));
      EXPECT_EQ(
          direct.MoveCostCharged(NodeCount(before), NodeCount(after)),
          table_backed.MoveCostCharged(NodeCount(before), NodeCount(after)));
    }
  }

  for (const uint64_t seed : {31u, 32u, 33u, 34u}) {
    Rng rng(seed);
    std::vector<double> load;
    for (int t = 0; t <= 30; ++t) {
      load.push_back(80.0 + 600.0 * rng.NextDouble());
    }
    StatusOr<PlanResult> a = direct.BestMoves(load, NodeCount(2));
    StatusOr<PlanResult> b = table_backed.BestMoves(load, NodeCount(2));
    ASSERT_EQ(a.ok(), b.ok()) << "seed " << seed;
    if (!a.ok()) continue;
    EXPECT_EQ(a->moves, b->moves) << "seed " << seed;
    EXPECT_EQ(a->total_cost, b->total_cost) << "seed " << seed;
    EXPECT_EQ(a->final_nodes, b->final_nodes) << "seed " << seed;
  }
}

// A table smaller than the planner's reach: covered pairs come from the
// table, pairs beyond max_nodes fall back to direct computation.
TEST(DpPlannerTest, SmallTableFallsBackBeyondItsGrid) {
  PlannerParams params = FastParams();
  const DpPlanner direct(params);
  DpPlanner table_backed(params);
  const MoveModelTable table(params, NodeCount(3));
  table_backed.set_move_table(&table);
  for (int before = 1; before <= 8; ++before) {
    for (int after = 1; after <= 8; ++after) {
      EXPECT_EQ(direct.MoveSlots(NodeCount(before), NodeCount(after)),
                table_backed.MoveSlots(NodeCount(before), NodeCount(after)));
      EXPECT_EQ(
          direct.MoveCostCharged(NodeCount(before), NodeCount(after)),
          table_backed.MoveCostCharged(NodeCount(before), NodeCount(after)));
    }
  }
}

TEST(DpPlannerTest, CondensedMergesIdleStretches) {
  const DpPlanner planner(FastParams());
  std::vector<double> load(10, 150.0);
  StatusOr<PlanResult> plan = planner.BestMoves(load, NodeCount(2));
  ASSERT_TRUE(plan.ok());
  const std::vector<Move> condensed = plan->Condensed();
  ASSERT_EQ(condensed.size(), 1u);
  EXPECT_EQ(condensed[0].start_slot, TimeStep(0));
  EXPECT_EQ(condensed[0].end_slot, TimeStep(9));
  EXPECT_FALSE(condensed[0].IsReconfiguration());
}

TEST(DpPlannerTest, LargeHorizonRunsQuickly) {
  // Smoke test for the memoized DP at realistic scale: a 48-slot horizon
  // with a diurnal-like double ramp.
  PlannerParams params = FastParams();
  params.d_slots = 15.4;
  params.partitions_per_node = 6;
  const DpPlanner planner(params);
  std::vector<double> load;
  for (int t = 0; t <= 48; ++t) {
    load.push_back(150.0 + 800.0 * 0.5 *
                               (1.0 - std::cos(2.0 * M_PI * t / 48.0)));
  }
  StatusOr<PlanResult> plan = planner.BestMoves(load, NodeCount(2));
  ASSERT_TRUE(plan.ok());
  CheckPlanFeasible(*plan, load, params, 2);
  EXPECT_GE(plan->final_nodes, NodeCount(1));
}

}  // namespace
}  // namespace pstore
