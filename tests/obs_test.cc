#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/sim_time.h"
#include "common/status.h"
#include "obs/metrics_registry.h"
#include "obs/run_report.h"
#include "obs/trace_event.h"
#include "obs/trace_reader.h"
#include "obs/tracer.h"

namespace pstore {
namespace obs {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

// ---- TraceEvent serialization ---------------------------------------------

TEST(TraceEventTest, SerializesEnvelopeAndTypedFields) {
  std::string out;
  TraceEvent(TraceCategory::kMigration, 1500000, "migration.chunk")
      .With("from", 3)
      .With("rate", 2.5)
      .With("ok", true)
      .With("label", "plain")
      .AppendJsonl(&out);
  EXPECT_EQ(out,
            "{\"ts\":1500000,\"cat\":\"migration\",\"name\":"
            "\"migration.chunk\",\"from\":3,\"rate\":2.5,\"ok\":true,"
            "\"label\":\"plain\"}\n");
}

TEST(TraceEventTest, EscapesStringsInNamesAndValues) {
  std::string out;
  TraceEvent(TraceCategory::kReport, 0, "run.summary")
      .With("text", "a\"b\\c\nd\te")
      .AppendJsonl(&out);
  EXPECT_NE(out.find("\"text\":\"a\\\"b\\\\c\\nd\\te\""), std::string::npos);
}

TEST(TraceEventTest, NarrowIntegralTypesWidenToInt64) {
  std::string out;
  uint32_t small = 7;
  int64_t big = 1234567890123LL;
  TraceEvent(TraceCategory::kEngine, 0, "e")
      .With("small", small)
      .With("big", big)
      .AppendJsonl(&out);
  EXPECT_NE(out.find("\"small\":7"), std::string::npos);
  EXPECT_NE(out.find("\"big\":1234567890123"), std::string::npos);
}

// ---- Reader round trip ----------------------------------------------------

TEST(TraceReaderTest, ParsesEventBackWithTypedFields) {
  std::string line;
  TraceEvent(TraceCategory::kSim, 42 * kSecond, "sim.cycle")
      .With("load", 123.5)
      .With("machines", 4)
      .With("migrating", false)
      .With("kind", "start_move")
      .AppendJsonl(&line);
  // Strip the trailing newline the serializer appends.
  line.pop_back();
  StatusOr<ParsedTraceEvent> parsed = ParseTraceLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ts, 42 * kSecond);
  EXPECT_EQ(parsed->cat, "sim");
  EXPECT_EQ(parsed->name, "sim.cycle");
  EXPECT_DOUBLE_EQ(parsed->Number("load", 0.0), 123.5);
  EXPECT_EQ(parsed->Int("machines", 0), 4);
  EXPECT_FALSE(parsed->Bool("migrating", true));
  EXPECT_EQ(parsed->Str("kind", ""), "start_move");
  // Fallbacks for absent keys.
  EXPECT_EQ(parsed->Int("absent", -1), -1);
  EXPECT_EQ(parsed->Find("absent"), nullptr);
}

TEST(TraceReaderTest, EscapedStringsSurviveRoundTrip) {
  std::string line;
  TraceEvent(TraceCategory::kFault, 0, "fault.apply")
      .With("kind", "crash\"quoted\\back\nline")
      .AppendJsonl(&line);
  line.pop_back();
  StatusOr<ParsedTraceEvent> parsed = ParseTraceLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Str("kind", ""), "crash\"quoted\\back\nline");
}

TEST(TraceReaderTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseTraceLine("not json").ok());
  EXPECT_FALSE(ParseTraceLine("{\"ts\":1,\"cat\":\"sim\"").ok());
  EXPECT_FALSE(ParseTraceLine("").ok());
}

TEST(TraceReaderTest, ReadTraceFileFailsOnMissingPath) {
  EXPECT_FALSE(ReadTraceFile("/nonexistent/dir/trace.jsonl").ok());
}

// ---- Tracer + JSONL sink --------------------------------------------------

TEST(TracerTest, JsonlFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/roundtrip.jsonl";
  Tracer tracer;
  ASSERT_TRUE(tracer.OpenJsonl(path).ok());
  // Emit directly (not via PSTORE_TRACE) so the serialization round
  // trip is exercised even in -DPSTORE_TRACING=OFF builds.
  tracer.Emit(TraceEvent(TraceCategory::kController, FromSeconds(1.0),
                         "controller.cycle")
                  .With("load", 100.0)
                  .With("machines", 4)
                  .With("migrating", false));
  tracer.Emit(TraceEvent(TraceCategory::kMigration, FromSeconds(2.0),
                         "migration.chunk")
                  .With("bytes", 1000000));
  ASSERT_TRUE(tracer.Close().ok());
  EXPECT_EQ(tracer.events_emitted(), 2);

  StatusOr<std::vector<ParsedTraceEvent>> events = ReadTraceFile(path);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].name, "controller.cycle");
  EXPECT_DOUBLE_EQ((*events)[0].Number("load", 0.0), 100.0);
  EXPECT_EQ((*events)[1].name, "migration.chunk");
  EXPECT_EQ((*events)[1].Int("bytes", 0), 1000000);
  std::remove(path.c_str());
}

TEST(TracerTest, OpenJsonlFailsOnBadPath) {
  Tracer tracer;
  EXPECT_FALSE(tracer.OpenJsonl("/nonexistent/dir/trace.jsonl").ok());
}

TEST(TracerTest, VerboseCategoryMaskedByDefault) {
  // In -DPSTORE_TRACING=OFF builds the macro emits nothing at all; in
  // normal builds only the enabled-category emission lands.
#if defined(PSTORE_TRACE_DISABLED)
  constexpr int64_t kEmitted = 0;
#else
  constexpr int64_t kEmitted = 1;
#endif
  Tracer tracer;
  tracer.SetSink(std::make_unique<CountingTraceSink>());
  EXPECT_TRUE(tracer.enabled(TraceCategory::kController));
  EXPECT_FALSE(tracer.enabled(TraceCategory::kVerbose));
  PSTORE_TRACE(&tracer, TraceCategory::kVerbose, 0, "engine.txn",
               .With("latency_us", 5));
  EXPECT_EQ(tracer.events_emitted(), 0);
  tracer.Enable(TraceCategory::kVerbose);
  PSTORE_TRACE(&tracer, TraceCategory::kVerbose, 0, "engine.txn",
               .With("latency_us", 5));
  EXPECT_EQ(tracer.events_emitted(), kEmitted);
  tracer.Disable(TraceCategory::kVerbose);
  PSTORE_TRACE(&tracer, TraceCategory::kVerbose, 0, "engine.txn",
               .With("latency_us", 5));
  EXPECT_EQ(tracer.events_emitted(), kEmitted);
}

TEST(TracerTest, NoSinkMeansNothingEnabled) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled(TraceCategory::kController));
  PSTORE_TRACE(&tracer, TraceCategory::kController, 0, "controller.cycle",
               .With("load", 1.0));
  EXPECT_EQ(tracer.events_emitted(), 0);
  EXPECT_TRUE(tracer.Close().ok());
}

TEST(TracerTest, MacroDoesNotEvaluateArgsWhenDisabled) {
  // The field expressions of a skipped event must not run: hot paths
  // rely on this to make disabled tracing free.
  int calls = 0;
  Tracer* null_tracer = nullptr;
  PSTORE_TRACE(null_tracer, TraceCategory::kController, 0, "x",
               .With("v", ++calls));
  EXPECT_EQ(calls, 0);

  Tracer masked;
  masked.SetSink(std::make_unique<CountingTraceSink>());
  PSTORE_TRACE(&masked, TraceCategory::kVerbose, 0, "x",
               .With("v", ++calls));
  EXPECT_EQ(calls, 0);

  PSTORE_TRACE(&masked, TraceCategory::kEngine, 0, "x", .With("v", ++calls));
#if defined(PSTORE_TRACE_DISABLED)
  EXPECT_EQ(calls, 0);
#else
  EXPECT_EQ(calls, 1);
#endif
}

// ---- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistryTest, GetReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* chunks = registry.GetCounter("migration.chunks_moved");
  chunks->Increment();
  // Creating many other entries must not invalidate the cached pointer.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler." + std::to_string(i))->Increment();
  }
  chunks->Increment(4);
  EXPECT_EQ(registry.GetCounter("migration.chunks_moved")->value(), 5);
}

TEST(MetricsRegistryTest, ToJsonIsSortedAndTyped) {
  MetricsRegistry registry;
  registry.GetCounter("b.count")->Increment(2);
  registry.GetCounter("a.count")->Increment(1);
  registry.GetGauge("sim.avg_machines")->Set(4.5);
  registry.GetTimer("planner.search_us")->Observe(100);
  registry.GetTimer("planner.search_us")->Observe(300);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"a.count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"b.count\":2"), std::string::npos);
  EXPECT_LT(json.find("\"a.count\""), json.find("\"b.count\""));
  EXPECT_NE(json.find("\"sim.avg_machines\":4.5"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"total_us\":400"), std::string::npos);
  EXPECT_NE(json.find("\"max_us\":300"), std::string::npos);
}

TEST(MetricsRegistryTest, WriteJsonAndCsvLand) {
  MetricsRegistry registry;
  registry.GetCounter("engine.committed")->Increment(10);
  registry.GetGauge("engine.avg_machines")->Set(5.25);
  registry.GetTimer("predictor.fit_us")->Observe(42);

  const std::string json_path = ::testing::TempDir() + "/metrics.json";
  ASSERT_TRUE(registry.WriteJson(json_path).ok());
  EXPECT_EQ(ReadWholeFile(json_path), registry.ToJson());

  const std::string csv_path = ::testing::TempDir() + "/metrics.csv";
  ASSERT_TRUE(registry.WriteCsv(csv_path).ok());
  const std::string csv = ReadWholeFile(csv_path);
  EXPECT_NE(csv.find("engine.committed,counter,10"), std::string::npos);
  EXPECT_NE(csv.find("predictor.fit_us.count"), std::string::npos);
  std::remove(json_path.c_str());
  std::remove(csv_path.c_str());
}

TEST(MetricsRegistryTest, ExportersFailLoudlyOnBadPath) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.WriteJson("/nonexistent/dir/m.json").ok());
  EXPECT_FALSE(registry.WriteCsv("/nonexistent/dir/m.csv").ok());
}

// ---- Run report -----------------------------------------------------------

ParsedTraceEvent MakeEvent(SimTime ts, const std::string& name) {
  ParsedTraceEvent event;
  event.ts = ts;
  event.cat = "sim";
  event.name = name;
  return event;
}

void AddNumber(ParsedTraceEvent* event, const std::string& key,
               double value) {
  TraceFieldValue field;
  field.kind = TraceFieldValue::Kind::kNumber;
  field.number = value;
  event->fields.emplace_back(key, field);
}

void AddBool(ParsedTraceEvent* event, const std::string& key, bool value) {
  TraceFieldValue field;
  field.kind = TraceFieldValue::Kind::kBool;
  field.bool_value = value;
  event->fields.emplace_back(key, field);
}

void AddString(ParsedTraceEvent* event, const std::string& key,
               const std::string& value) {
  TraceFieldValue field;
  field.kind = TraceFieldValue::Kind::kString;
  field.text = value;
  event->fields.emplace_back(key, field);
}

TEST(RunReportTest, AggregatesSyntheticRun) {
  std::vector<ParsedTraceEvent> events;

  // Cycle 0: load 100, forecast 120, planner plans, a move starts.
  ParsedTraceEvent cycle0 = MakeEvent(0, "controller.cycle");
  AddNumber(&cycle0, "load", 100.0);
  AddNumber(&cycle0, "machines", 4);
  AddBool(&cycle0, "migrating", false);
  events.push_back(cycle0);
  ParsedTraceEvent forecast0 = MakeEvent(0, "predictor.forecast");
  AddNumber(&forecast0, "pred_next", 120.0);
  AddNumber(&forecast0, "wall_us", 50);
  events.push_back(forecast0);
  ParsedTraceEvent plan0 = MakeEvent(0, "planner.plan");
  AddBool(&plan0, "feasible", true);
  AddNumber(&plan0, "wall_us", 200);
  events.push_back(plan0);
  ParsedTraceEvent action0 = MakeEvent(0, "controller.action");
  AddString(&action0, "kind", "start_move");
  AddNumber(&action0, "target", 5);
  events.push_back(action0);
  events.push_back(MakeEvent(0, "migration.start"));

  // Cycle 1: load 110 (actual for cycle 0's forecast); chunks flow, one
  // retry, then the move completes.
  ParsedTraceEvent cycle1 = MakeEvent(kSecond, "controller.cycle");
  AddNumber(&cycle1, "load", 110.0);
  AddNumber(&cycle1, "machines", 4);
  AddBool(&cycle1, "migrating", true);
  events.push_back(cycle1);
  ParsedTraceEvent chunk = MakeEvent(kSecond, "migration.chunk");
  AddNumber(&chunk, "bytes", 1000);
  events.push_back(chunk);
  events.push_back(MakeEvent(kSecond, "migration.retry"));
  events.push_back(MakeEvent(kSecond, "migration.done"));

  // One infeasible plan, a fault window opening and closing, SLA
  // windows in each attribution bucket, and the trailing summary.
  ParsedTraceEvent plan1 = MakeEvent(kSecond, "planner.plan");
  AddBool(&plan1, "feasible", false);
  AddNumber(&plan1, "wall_us", 100);
  events.push_back(plan1);
  ParsedTraceEvent fault_on = MakeEvent(kSecond, "fault.window");
  AddBool(&fault_on, "active", true);
  events.push_back(fault_on);
  ParsedTraceEvent fault_off = MakeEvent(2 * kSecond, "fault.window");
  AddBool(&fault_off, "active", false);
  events.push_back(fault_off);
  events.push_back(MakeEvent(2 * kSecond, "sim.insufficient"));
  ParsedTraceEvent sla_fault = MakeEvent(2 * kSecond, "sla.window");
  AddBool(&sla_fault, "fault", true);
  AddBool(&sla_fault, "migrating", true);  // fault wins
  events.push_back(sla_fault);
  ParsedTraceEvent sla_migration = MakeEvent(2 * kSecond, "sla.window");
  AddBool(&sla_migration, "fault", false);
  AddBool(&sla_migration, "migrating", true);
  events.push_back(sla_migration);
  ParsedTraceEvent sla_base = MakeEvent(2 * kSecond, "sla.window");
  AddBool(&sla_base, "fault", false);
  AddBool(&sla_base, "migrating", false);
  events.push_back(sla_base);
  ParsedTraceEvent summary = MakeEvent(3 * kSecond, "run.summary");
  AddString(&summary, "controller", "pstore");
  AddNumber(&summary, "committed", 1000);
  events.push_back(summary);

  StatusOr<RunReport> report = BuildRunReport(events);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  EXPECT_EQ(report->events, static_cast<int64_t>(events.size()));
  EXPECT_DOUBLE_EQ(report->duration_seconds, 3.0);
  ASSERT_EQ(report->cycles.size(), 2u);
  EXPECT_DOUBLE_EQ(report->cycles[0].load, 100.0);
  EXPECT_TRUE(report->cycles[0].has_forecast);
  EXPECT_DOUBLE_EQ(report->cycles[0].pred_next, 120.0);
  EXPECT_EQ(report->cycles[0].action, "start_move");
  EXPECT_EQ(report->cycles[0].action_target, 5);
  EXPECT_EQ(report->cycles[1].chunks, 1);
  EXPECT_EQ(report->cycles[1].chunk_retries, 1);

  EXPECT_EQ(report->plans, 2);
  EXPECT_EQ(report->infeasible_plans, 1);
  EXPECT_EQ(report->moves_started, 1);
  EXPECT_EQ(report->moves_completed, 1);
  EXPECT_EQ(report->moves_aborted, 0);
  EXPECT_EQ(report->chunks, 1);
  EXPECT_EQ(report->chunk_retries, 1);
  EXPECT_EQ(report->bytes_moved, 1000);
  // fault.window with active=false closes a window; only the opening
  // counts.
  EXPECT_EQ(report->fault_windows, 1);
  EXPECT_EQ(report->insufficient_slots, 1);
  EXPECT_EQ(report->sla_violations, 3);
  EXPECT_EQ(report->sla_during_fault, 1);
  EXPECT_EQ(report->sla_during_migration, 1);
  EXPECT_EQ(report->sla_baseline, 1);

  // Forecast error: |120 - 110| against actual 110.
  EXPECT_EQ(report->forecast_samples, 1);
  EXPECT_NEAR(report->forecast_mae, 10.0, 1e-9);
  EXPECT_NEAR(report->forecast_mre, 10.0 / 110.0, 1e-9);

  // Wall rollups cover every event carrying wall_us, keyed by name.
  ASSERT_EQ(report->wall.size(), 2u);
  EXPECT_EQ(report->wall[0].name, "planner.plan");
  EXPECT_EQ(report->wall[0].count, 2);
  EXPECT_EQ(report->wall[0].total_us, 300);
  EXPECT_EQ(report->wall[0].max_us, 200);
  EXPECT_EQ(report->wall[1].name, "predictor.forecast");

  ASSERT_EQ(report->summary.size(), 2u);
  EXPECT_EQ(report->summary[0].first, "controller");
  EXPECT_EQ(report->summary[0].second, "pstore");
  EXPECT_EQ(report->summary[1].second, "1000");

  const std::string rendered = RenderRunReport(*report, -1);
  EXPECT_NE(rendered.find("== run summary =="), std::string::npos);
  EXPECT_NE(rendered.find("== timeline (2 of 2 cycles) =="),
            std::string::npos);
  EXPECT_NE(rendered.find("start_move(5)"), std::string::npos);
  const std::string summary_only = RenderRunReport(*report, 0);
  EXPECT_EQ(summary_only.find("== timeline"), std::string::npos);

  const std::string csv_path = ::testing::TempDir() + "/cycles.csv";
  ASSERT_TRUE(WriteCycleCsv(*report, csv_path).ok());
  const std::string csv = ReadWholeFile(csv_path);
  EXPECT_NE(csv.find("t_s,load,pred_next"), std::string::npos);
  EXPECT_NE(csv.find("start_move"), std::string::npos);
  std::remove(csv_path.c_str());
}

TEST(RunReportTest, ForecastErrorSkipsNearZeroActuals) {
  std::vector<ParsedTraceEvent> events;
  for (int i = 0; i < 3; ++i) {
    ParsedTraceEvent cycle = MakeEvent(i * kSecond, "sim.cycle");
    // Loads: 100, 0, 50 — the middle actual is skipped for MRE safety.
    AddNumber(&cycle, "load", i == 0 ? 100.0 : (i == 1 ? 0.0 : 50.0));
    events.push_back(cycle);
    ParsedTraceEvent forecast = MakeEvent(i * kSecond, "sim.forecast");
    AddNumber(&forecast, "pred_next", 60.0);
    events.push_back(forecast);
  }
  StatusOr<RunReport> report = BuildRunReport(events);
  ASSERT_TRUE(report.ok());
  // Only cycle 1 -> cycle 2 (actual 50) contributes; cycle 0 -> cycle 1
  // has actual 0 and is skipped by both MAE and MRE.
  EXPECT_EQ(report->forecast_samples, 1);
  EXPECT_NEAR(report->forecast_mae, 10.0, 1e-9);
  EXPECT_NEAR(report->forecast_mre, 0.2, 1e-9);
}

TEST(RunReportTest, ZeroTaskSweepSkipsEfficiency) {
  // A sweep.done with no tasks (e.g. an empty spec list) must not claim
  // a speedup or efficiency, and the rendering must say so instead of
  // printing a 0.0x figure.
  ParsedTraceEvent done = MakeEvent(kSecond, "sweep.done");
  AddNumber(&done, "tasks", 0);
  AddNumber(&done, "threads", 4);
  AddNumber(&done, "wall_us", 1500.0);
  AddNumber(&done, "serial_wall_us", 0.0);
  StatusOr<RunReport> report = BuildRunReport({done});
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->has_sweep);
  EXPECT_EQ(report->sweep.tasks, 0);
  EXPECT_EQ(report->sweep.speedup, 0.0);
  EXPECT_EQ(report->sweep.efficiency, 0.0);
  const std::string rendered = RenderRunReport(*report, 0);
  EXPECT_NE(rendered.find("parallel efficiency not meaningful"),
            std::string::npos);
  EXPECT_EQ(rendered.find("speedup"), std::string::npos);
}

TEST(RunReportTest, AggregatesFleetEvents) {
  std::vector<ParsedTraceEvent> events;

  ParsedTraceEvent pack0 = MakeEvent(0, "fleet.pack");
  AddNumber(&pack0, "machines_after", 6);
  AddNumber(&pack0, "moved_partitions", 3);
  AddBool(&pack0, "repacked", false);
  AddBool(&pack0, "spike_replan", false);
  events.push_back(pack0);
  ParsedTraceEvent move0 = MakeEvent(0, "fleet.tenant_move");
  AddNumber(&move0, "tenant", 2);
  AddNumber(&move0, "moved_partitions", 3);
  events.push_back(move0);
  ParsedTraceEvent cycle0 = MakeEvent(0, "fleet.cycle");
  AddNumber(&cycle0, "machines", 6);
  AddNumber(&cycle0, "violation_slot_tenants", 1);
  events.push_back(cycle0);

  // Second cycle: a spike re-plan adopts a repack and grows the pool.
  ParsedTraceEvent pack1 = MakeEvent(kSecond, "fleet.pack");
  AddNumber(&pack1, "machines_after", 9);
  AddNumber(&pack1, "moved_partitions", 4);
  AddBool(&pack1, "repacked", true);
  AddBool(&pack1, "spike_replan", true);
  events.push_back(pack1);
  ParsedTraceEvent cycle1 = MakeEvent(kSecond, "fleet.cycle");
  AddNumber(&cycle1, "machines", 9);
  AddNumber(&cycle1, "violation_slot_tenants", 0);
  events.push_back(cycle1);

  StatusOr<RunReport> report = BuildRunReport(events);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->has_fleet);
  EXPECT_EQ(report->fleet.cycles, 2);
  EXPECT_EQ(report->fleet.packs, 2);
  EXPECT_EQ(report->fleet.repacks, 1);
  EXPECT_EQ(report->fleet.spike_replans, 1);
  EXPECT_EQ(report->fleet.peak_machines, 9);
  EXPECT_EQ(report->fleet.moved_partitions, 7);
  EXPECT_EQ(report->fleet.tenant_moves, 1);
  EXPECT_EQ(report->fleet.violation_slot_tenants, 1);

  const std::string rendered = RenderRunReport(*report, 0);
  EXPECT_NE(rendered.find("fleet: 2 cycles, peak 9 machines"),
            std::string::npos);
}

TEST(RunReportTest, NoFleetLineWithoutFleetEvents) {
  ParsedTraceEvent cycle = MakeEvent(0, "controller.cycle");
  AddNumber(&cycle, "load", 10.0);
  StatusOr<RunReport> report = BuildRunReport({cycle});
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->has_fleet);
  EXPECT_EQ(RenderRunReport(*report, 0).find("fleet:"), std::string::npos);
}

TEST(RunReportTest, EmptyTraceMakesEmptyReport) {
  StatusOr<RunReport> report = BuildRunReport({});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->events, 0);
  EXPECT_TRUE(report->cycles.empty());
  // Rendering an empty report must not crash or divide by zero.
  const std::string rendered = RenderRunReport(*report, -1);
  EXPECT_NE(rendered.find("cycles: 0"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace pstore
