#include "engine/metrics.h"

#include <gtest/gtest.h>

#include "common/sim_time.h"

namespace pstore {
namespace {

TEST(WindowHistogramTest, EmptyQuantileIsZero) {
  WindowHistogram h;
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0);
  EXPECT_EQ(h.count(), 0);
}

TEST(WindowHistogramTest, SingleValue) {
  WindowHistogram h;
  h.Record(123 * kMillisecond);
  EXPECT_EQ(h.count(), 1);
  const SimTime p50 = h.ValueAtQuantile(0.5);
  EXPECT_LE(p50, 123 * kMillisecond);
  EXPECT_GE(p50, 100 * kMillisecond);
}

TEST(WindowHistogramTest, QuantileAccuracyWithinBucketResolution) {
  WindowHistogram h;
  for (int i = 0; i < 900; ++i) h.Record(10 * kMillisecond);
  for (int i = 0; i < 100; ++i) h.Record(800 * kMillisecond);
  const double p50_ms = ToSeconds(h.ValueAtQuantile(0.5)) * 1e3;
  const double p95_ms = ToSeconds(h.ValueAtQuantile(0.95)) * 1e3;
  EXPECT_NEAR(p50_ms, 10.0, 1.5);
  EXPECT_NEAR(p95_ms, 800.0, 100.0);
}

TEST(WindowHistogramTest, SubMillisecondLatenciesLandInFirstBucket) {
  WindowHistogram h;
  h.Record(50);  // 50 us
  EXPECT_LE(h.ValueAtQuantile(1.0), 100);
}

TEST(WindowHistogramTest, QuantileEdgeCases) {
  WindowHistogram empty;
  EXPECT_EQ(empty.ValueAtQuantile(0.0), 0);
  EXPECT_EQ(empty.ValueAtQuantile(1.0), 0);

  WindowHistogram h;
  h.Record(10 * kMillisecond);
  h.Record(400 * kMillisecond);
  // q = 0.0 still reports the smallest recorded sample's bucket (its
  // upper edge, within the ~9% bucket resolution), not 0.
  EXPECT_GT(h.ValueAtQuantile(0.0), 0);
  EXPECT_LE(h.ValueAtQuantile(0.0), 11 * kMillisecond);
  // q = 1.0 is capped at the true maximum, not the bucket's upper edge.
  EXPECT_EQ(h.ValueAtQuantile(1.0), 400 * kMillisecond);
  // Out-of-range quantiles clamp instead of reading out of bounds.
  EXPECT_EQ(h.ValueAtQuantile(-0.5), h.ValueAtQuantile(0.0));
  EXPECT_EQ(h.ValueAtQuantile(2.0), h.ValueAtQuantile(1.0));
}

TEST(WindowHistogramTest, BeyondTopBucketStaysBoundedAndMonotone) {
  WindowHistogram h;
  // ~28 hours: far past the top bucket's edge. The sample lands in the
  // last bucket; quantiles stay within [top-bucket range, observed max]
  // instead of overflowing or crashing.
  const SimTime huge = 100000 * kSecond;
  h.Record(huge);
  const SimTime p50 = h.ValueAtQuantile(0.5);
  EXPECT_EQ(p50, h.ValueAtQuantile(1.0));
  EXPECT_GT(p50, FromSeconds(5.0));
  EXPECT_LE(p50, huge);
}

TEST(MetricsCollectorTest, ThroughputPerWindow) {
  MetricsCollector metrics(1.0);
  // Three txns complete in window 0, one in window 2.
  metrics.RecordTxn(0, 100 * kMillisecond);
  metrics.RecordTxn(0, 200 * kMillisecond);
  metrics.RecordTxn(kSecond - 1, kSecond - 1);
  metrics.RecordTxn(kSecond / 2, 2 * kSecond + 1);
  const auto windows = metrics.Finalize(3 * kSecond);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].completed, 3);
  EXPECT_EQ(windows[0].submitted, 4);
  EXPECT_EQ(windows[1].completed, 0);
  EXPECT_EQ(windows[2].completed, 1);
}

TEST(MetricsCollectorTest, LatencyLandsInCompletionWindow) {
  MetricsCollector metrics(1.0);
  // Submitted in window 0, completes in window 4 with 4.2 s latency.
  metrics.RecordTxn(800 * kMillisecond, 5 * kSecond);
  const auto windows = metrics.Finalize(6 * kSecond);
  ASSERT_EQ(windows.size(), 6u);
  EXPECT_EQ(windows[5].completed, 1);
  EXPECT_NEAR(windows[5].p99_ms, 4200.0, 400.0);
}

TEST(MetricsCollectorTest, MachineStepSeries) {
  MetricsCollector metrics(1.0);
  metrics.RecordMachines(0, 2);
  metrics.RecordMachines(2 * kSecond + kSecond / 2, 5);
  const auto windows = metrics.Finalize(5 * kSecond);
  ASSERT_EQ(windows.size(), 5u);
  EXPECT_EQ(windows[0].machines, 2);
  EXPECT_EQ(windows[1].machines, 2);
  EXPECT_EQ(windows[2].machines, 5);  // step within the window
  EXPECT_EQ(windows[4].machines, 5);
}

TEST(MetricsCollectorTest, AverageMachinesTimeWeighted) {
  MetricsCollector metrics(1.0);
  metrics.RecordMachines(0, 2);
  metrics.RecordMachines(6 * kSecond, 4);
  // 6 s at 2 machines + 4 s at 4 machines over 10 s = 2.8.
  EXPECT_NEAR(metrics.AverageMachines(10 * kSecond), 2.8, 1e-9);
}

TEST(MetricsCollectorTest, MigrationFlagPerWindow) {
  MetricsCollector metrics(1.0);
  metrics.RecordMigrationActive(kSecond, true);
  metrics.RecordMigrationActive(3 * kSecond, false);
  const auto windows = metrics.Finalize(5 * kSecond);
  EXPECT_FALSE(windows[0].migrating);
  EXPECT_TRUE(windows[1].migrating);
  EXPECT_TRUE(windows[2].migrating);
  EXPECT_FALSE(windows[4].migrating);
}

TEST(MetricsCollectorTest, SlaViolationCounting) {
  MetricsCollector metrics(1.0);
  // Window 0: fast txns. Window 1: p99 over 500 ms but p50 fine.
  for (int i = 0; i < 100; ++i) {
    metrics.RecordTxn(0, 10 * kMillisecond);
  }
  for (int i = 0; i < 98; ++i) {
    metrics.RecordTxn(kSecond, kSecond + 20 * kMillisecond);
  }
  for (int i = 0; i < 2; ++i) {
    metrics.RecordTxn(kSecond, kSecond + 900 * kMillisecond);
  }
  const auto windows = metrics.Finalize(2 * kSecond);
  const SlaViolations violations =
      MetricsCollector::CountViolations(windows, 500.0);
  EXPECT_EQ(violations.p50, 0);
  EXPECT_EQ(violations.p95, 0);
  EXPECT_EQ(violations.p99, 1);
}

TEST(MetricsCollectorTest, UnavailableTxnsCountedPerWindow) {
  MetricsCollector metrics(1.0);
  metrics.RecordTxn(0, 10 * kMillisecond);
  metrics.RecordUnavailable(100 * kMillisecond);
  metrics.RecordUnavailable(kSecond + 1);
  const auto windows = metrics.Finalize(2 * kSecond);
  ASSERT_EQ(windows.size(), 2u);
  // Fast-failed txns count as submitted but never complete, so they
  // leave the latency percentiles untouched.
  EXPECT_EQ(windows[0].submitted, 2);
  EXPECT_EQ(windows[0].completed, 1);
  EXPECT_EQ(windows[0].unavailable, 1);
  EXPECT_EQ(windows[1].unavailable, 1);
  EXPECT_EQ(windows[1].completed, 0);
}

TEST(MetricsCollectorTest, AttributionSplitsByFaultAndMigration) {
  MetricsCollector metrics(1.0);
  // Four windows, all violating at p99: 0 baseline, 1 migrating,
  // 2 fault-only, 3 fault AND migrating (fault wins).
  for (SimTime w = 0; w < 4; ++w) {
    for (int i = 0; i < 10; ++i) {
      metrics.RecordTxn(w * kSecond, w * kSecond + 900 * kMillisecond);
    }
  }
  metrics.RecordMigrationActive(kSecond, true);
  metrics.RecordMigrationActive(2 * kSecond, false);
  metrics.RecordMigrationActive(3 * kSecond, true);
  metrics.RecordFaultActive(2 * kSecond, true);
  const auto windows = metrics.Finalize(5 * kSecond);
  const SlaAttribution attribution =
      MetricsCollector::AttributeViolations(windows, 500.0);
  EXPECT_EQ(attribution.total.p99, 4);
  EXPECT_EQ(attribution.baseline.p99, 1);
  EXPECT_EQ(attribution.during_migration.p99, 1);
  EXPECT_EQ(attribution.during_fault.p99, 2);
  EXPECT_EQ(attribution.during_fault.p99 + attribution.during_migration.p99 +
                attribution.baseline.p99,
            attribution.total.p99);
}

TEST(MetricsCollectorTest, EmptyWindowsDoNotViolate) {
  MetricsCollector metrics(1.0);
  const auto windows = metrics.Finalize(10 * kSecond);
  const SlaViolations violations =
      MetricsCollector::CountViolations(windows);
  EXPECT_EQ(violations.p50 + violations.p95 + violations.p99, 0);
}

}  // namespace
}  // namespace pstore
